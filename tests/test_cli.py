"""CLI smoke tests (every subcommand exercised in-process)."""

from __future__ import annotations

import pytest

from fragalign.cli import build_parser, main


def test_demo_all(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "csr_improve" in out and "score=11" in out


def test_demo_single_solver(capsys):
    assert main(["demo", "--solver", "greedy"]) == 0
    out = capsys.readouterr().out
    assert "greedy" in out


def test_pipeline(capsys):
    assert (
        main(
            [
                "pipeline",
                "--seed",
                "3",
                "--blocks",
                "5",
                "--h-contigs",
                "2",
                "--m-contigs",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "accuracy" in out


def test_hardness(capsys):
    assert main(["hardness", "--nodes", "8", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "CSoP-opt" in out


def test_bench_dp(capsys):
    assert main(["bench-dp", "--length", "200", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "Mcells/s" in out


def test_engine_numpy(capsys):
    assert main(["engine", "--backend", "numpy", "--batch", "8", "--length", "64"]) == 0
    out = capsys.readouterr().out
    assert "backend=numpy" in out and "Mcells/s" in out
    assert "naive, native, numpy, parallel" in out


def test_engine_naive_local(capsys):
    assert (
        main(
            [
                "engine",
                "--backend",
                "naive",
                "--batch",
                "2",
                "--length",
                "32",
                "--mode",
                "local",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "backend=naive mode=local" in out


def test_engine_unknown_backend():
    from fragalign.util.errors import SolverError

    with pytest.raises(SolverError, match="unknown backend"):
        main(["engine", "--backend", "gpu"])


def test_serve_and_client_round_trip(tmp_path, capsys):
    """`fragalign serve` + `fragalign client`: load, stats, clean stop."""
    import threading

    port_file = tmp_path / "port"
    exit_codes = {}

    def serve():
        exit_codes["serve"] = main(
            ["serve", "--port", "0", "--port-file", str(port_file)]
        )

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    for _ in range(100):
        if port_file.exists() and port_file.read_text().strip():
            break
        thread.join(timeout=0.05)
    port = port_file.read_text().strip()
    assert main(
        [
            "client",
            "--port",
            port,
            "--requests",
            "30",
            "--concurrency",
            "8",
            "--length",
            "48",
            "--dup-fraction",
            "0.5",
            "--expect-cache-hits",
            "--shutdown",
        ]
    ) == 0
    thread.join(timeout=10)
    assert not thread.is_alive() and exit_codes["serve"] == 0
    out = capsys.readouterr().out
    assert "req/s" in out and "cache hit rate" in out
    assert "fragalign.service stopped" in out


def test_cluster_serve_route_warm_stats_round_trip(tmp_path, capsys):
    """`fragalign cluster`: boot 2 shards, warm, route+verify, stats,
    shutdown — the whole tier through the CLI entry points."""
    import threading

    cluster_file = tmp_path / "cluster.json"
    keyset = tmp_path / "keys.jsonl"
    exit_codes = {}

    def serve():
        exit_codes["serve"] = main(
            [
                "cluster",
                "serve",
                "--shards",
                "2",
                "--cache-size",
                "256",
                "--cluster-file",
                str(cluster_file),
                "--base-dir",
                str(tmp_path / "scratch"),
            ]
        )

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    for _ in range(300):
        if cluster_file.exists() and cluster_file.read_text().strip():
            break
        thread.join(timeout=0.1)
    assert cluster_file.exists(), "cluster file never appeared"
    common = ["--cluster-file", str(cluster_file)]
    assert main(
        ["cluster", "warm", *common, "--keyset", str(keyset), "--generate", "20", "--length", "48"]
    ) == 0
    assert main(
        [
            "cluster",
            "route",
            *common,
            "--requests",
            "40",
            "--concurrency",
            "8",
            "--length",
            "48",
            "--op",
            "mixed",
            "--verify",
            "--expect-cache-hits",
        ]
    ) == 0
    assert main(["cluster", "stats", *common]) == 0
    assert main(
        [
            "cluster",
            "route",
            *common,
            "--requests",
            "4",
            "--concurrency",
            "2",
            "--length",
            "32",
            "--shutdown",
        ]
    ) == 0
    thread.join(timeout=30)
    assert not thread.is_alive() and exit_codes["serve"] == 0
    out = capsys.readouterr().out
    assert "warmed 20/20" in out
    assert "router: routed=40" in out
    assert '"aggregate"' in out  # the stats JSON
    assert "all shards exited" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
