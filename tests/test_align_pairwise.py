"""Pairwise nucleotide alignment kernels vs. references and properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.align.pairwise import (
    banded_align,
    banded_align_batch,
    banded_global_score,
    banded_global_score_reference,
    banded_scores_batch,
    get_prefix_max_mode,
    global_align,
    global_align_batch,
    global_score,
    global_score_reference,
    global_scores_batch,
    local_align,
    local_align_batch,
    local_score,
    local_score_reference,
    local_scores_batch,
    overlap_align,
    overlap_align_batch,
    overlap_score,
    overlap_score_reference,
    overlap_scores_batch,
    set_prefix_max_mode,
)
from fragalign.align.scoring_matrices import (
    encode,
    transition_transversion,
    unit_dna,
)

dna = st.text(alphabet="ACGT", min_size=0, max_size=24)
dna1 = st.text(alphabet="ACGT", min_size=1, max_size=24)


def test_encode_roundtrip():
    codes = encode("ACGTN")
    assert list(codes) == [0, 1, 2, 3, 4]
    assert list(encode("acxg")) == [0, 1, 4, 2]


def test_substitution_model_validation():
    import numpy as np

    from fragalign.align.scoring_matrices import SubstitutionModel

    with pytest.raises(ValueError):
        SubstitutionModel(matrix=np.zeros((4, 4)), gap=-1)
    bad = np.zeros((5, 5))
    bad[0, 1] = 1.0
    with pytest.raises(ValueError):
        SubstitutionModel(matrix=bad, gap=-1)


def test_transition_vs_transversion_scores():
    m = transition_transversion()
    assert m.score("A", "G") > m.score("A", "C")  # transition beats transversion
    assert m.score("A", "A") > m.score("A", "G")


def test_global_identical_sequences():
    s = "ACGTACGT"
    assert global_score(s, s) == len(s)


def test_global_empty():
    model = unit_dna()
    assert global_score("", "ACG") == 3 * model.gap
    assert global_score("ACG", "") == 3 * model.gap


def test_known_alignment():
    # classic: GATTACA vs GCATGCU-like sanity on DNA
    s = global_score("GATTACA", "GATGACA")
    assert s == 5.0  # 6 matches, 1 mismatch with unit scores: 6 - 1


@given(dna, dna)
def test_global_vectorized_equals_reference(a, b):
    assert global_score(a, b) == pytest.approx(
        global_score_reference(a, b), abs=1e-9
    )


@given(dna, dna)
def test_global_symmetry(a, b):
    assert global_score(a, b) == pytest.approx(global_score(b, a), abs=1e-9)


@given(dna1, dna1)
def test_global_align_traceback_consistent(a, b):
    aln = global_align(a, b)
    assert aln.score == pytest.approx(global_score(a, b), abs=1e-9)
    for (i1, j1), (i2, j2) in zip(aln.pairs, aln.pairs[1:]):
        assert i1 < i2 and j1 < j2


@given(dna1, dna1)
def test_local_at_least_global_tail(a, b):
    # Local can always do at least 0 and at least any exact shared char.
    s = local_score(a, b)
    assert s >= 0.0
    if set(a) & set(b):
        assert s >= 1.0


@given(dna1, dna1)
def test_local_align_window_scores(a, b):
    aln = local_align(a, b)
    assert aln.score == pytest.approx(local_score(a, b), abs=1e-9)
    (ai, aj) = aln.a_interval
    (bi, bj) = aln.b_interval
    if aln.pairs:
        # Re-aligning the windows globally recovers at least the score.
        assert global_score(a[ai:aj], b[bi:bj]) >= aln.score - 1e-9


def test_local_finds_planted_motif(rng):
    from fragalign.genome.dna import random_dna

    motif = "ACGTGTACCAGT"
    a = random_dna(60, rng) + motif + random_dna(60, rng)
    b = random_dna(40, rng) + motif + random_dna(50, rng)
    assert local_score(a, b) >= len(motif) - 2


def test_overlap_score_detects_overlap():
    a = "TTTTTACGTACGT"
    b = "ACGTACGTCCCC"
    score, a_start, b_end = overlap_score(a, b)
    assert score >= 8.0
    assert a[a_start:] .startswith("ACGT")
    assert b[:b_end].endswith("ACGT")


@given(dna1, dna1)
def test_banded_equals_global_with_wide_band(a, b):
    band = max(len(a), len(b))
    assert banded_global_score(a, b, band) == pytest.approx(
        global_score(a, b), abs=1e-9
    )


def test_banded_rejects_too_narrow():
    with pytest.raises(ValueError):
        banded_global_score("AAAA", "A", band=1)


def test_banded_validates_band_up_front():
    with pytest.raises(ValueError, match="non-negative"):
        banded_global_score("ACGT", "ACGT", band=-1)
    with pytest.raises(ValueError, match="integer"):
        banded_global_score("ACGT", "ACGT", band=2.5)
    with pytest.raises(ValueError, match="integer"):
        banded_global_score("ACGT", "ACGT", band=None)


def _random_uniform_batch(rng, count, n, m):
    from fragalign.genome.dna import random_dna

    return [(random_dna(n, rng), random_dna(m, rng)) for _ in range(count)]


class TestBatchKernelsVsScalarReferences:
    """Cross-kernel parity: every batch kernel vs its per-cell oracle."""

    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.tuples(dna, dna), min_size=1, max_size=6), st.booleans())
    def test_overlap_batch_equals_reference(self, shapes, biological):
        model = transition_transversion() if biological else unit_dna()
        n, m = len(shapes[0][0]), len(shapes[0][1])
        pairs = [(a[:n].ljust(n, "A"), b[:m].ljust(m, "C")) for a, b in shapes]
        got = overlap_scores_batch(pairs, model)
        want = [overlap_score_reference(a, b, model) for a, b in pairs]
        assert np.allclose(got, want, atol=1e-9)
        if not biological:
            assert list(got) == want  # bit-identical on integer models

    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.tuples(dna, dna), min_size=1, max_size=6), st.integers(0, 6))
    def test_banded_batch_equals_reference(self, shapes, extra_band):
        n, m = len(shapes[0][0]), len(shapes[0][1])
        band = abs(n - m) + extra_band
        pairs = [(a[:n].ljust(n, "A"), b[:m].ljust(m, "C")) for a, b in shapes]
        got = banded_scores_batch(pairs, band)
        want = [banded_global_score_reference(a, b, band) for a, b in pairs]
        assert list(got) == want  # bit-identical on the unit model

    def test_banded_wide_band_alignment_equals_global(self, rng):
        pairs = _random_uniform_batch(rng, 6, 40, 37)
        band = 64
        banded = banded_align_batch(pairs, band)
        full = global_align_batch(pairs)
        for x, y in zip(banded, full):
            assert x.score == y.score
            assert x.pairs == y.pairs

    def test_overlap_align_batch_equals_scalar(self, rng):
        pairs = _random_uniform_batch(rng, 8, 30, 26)
        batch = overlap_align_batch(pairs)
        loop = [overlap_align(a, b) for a, b in pairs]
        assert batch == loop
        for (a, b), aln in zip(pairs, batch):
            s, a_start, b_end = overlap_score(a, b)
            assert (s, a_start, b_end) == (
                aln.score,
                aln.a_interval[0],
                aln.b_interval[1],
            )

    def test_local_align_batch_equals_scalar(self, rng):
        pairs = _random_uniform_batch(rng, 8, 30, 26)
        assert local_align_batch(pairs) == [local_align(a, b) for a, b in pairs]

    def test_local_kernels_match_reference(self, rng):
        # Parity: vectorized Smith–Waterman against the per-cell oracle.
        pairs = _random_uniform_batch(rng, 12, 23, 31)
        expected = [local_score_reference(a, b) for a, b in pairs]
        np.testing.assert_allclose(local_scores_batch(pairs), expected)
        for (a, b), aln, want in zip(pairs, local_align_batch(pairs), expected):
            assert aln.score == want
            assert local_align(a, b).score == want

    @given(dna, dna)
    def test_local_reference_parity_hypothesis(self, a, b):
        assert local_score(a, b) == local_score_reference(a, b)


class TestDirectionWalkVsRecomputeWalk:
    """The packed-code walk reproduces the old H-table float-equality
    walk exactly on integer models (same tie order: diag, up, left)."""

    @staticmethod
    def _recompute_walk(a, b, model):
        """The pre-direction-code traceback: full H table plus float
        equality re-testing, kept here as the independent oracle."""
        W = model.pair_matrix(encode(a), encode(b))
        g = model.gap
        n, m = len(a), len(b)
        H = np.empty((n + 1, m + 1))
        H[0] = np.arange(m + 1) * g
        for i in range(1, n + 1):
            H[i, 0] = i * g
            for j in range(1, m + 1):
                H[i, j] = max(
                    H[i - 1, j - 1] + W[i - 1, j - 1],
                    H[i - 1, j] + g,
                    H[i, j - 1] + g,
                )
        pairs = []
        i, j = n, m
        while i > 0 and j > 0:
            h = H.item(i, j)
            if h == H.item(i - 1, j - 1) + W.item(i - 1, j - 1):
                pairs.append((i - 1, j - 1))
                i -= 1
                j -= 1
            elif h == H.item(i - 1, j) + g:
                i -= 1
            else:
                j -= 1
        pairs.reverse()
        return float(H[n, m]), tuple(pairs)

    def test_randomized_batches(self, rng):
        model = unit_dna()
        for n, m in [(1, 1), (7, 3), (16, 16), (24, 31)]:
            pairs = _random_uniform_batch(rng, 10, n, m)
            for (a, b), aln in zip(pairs, global_align_batch(pairs, model)):
                score, walked = self._recompute_walk(a, b, model)
                assert aln.score == score
                assert aln.pairs == walked

    @given(dna1, dna1)
    def test_hypothesis_identity(self, a, b):
        aln = global_align(a, b)
        score, walked = self._recompute_walk(a, b, unit_dna())
        assert (aln.score, aln.pairs) == (score, walked)


class TestDegenerateShapes:
    """Empty/degenerate sweeps through every kernel: n==0, m==0,
    band == |n - m|, and the empty batch."""

    def test_empty_batches(self):
        assert len(global_scores_batch([])) == 0
        assert len(local_scores_batch([])) == 0
        assert len(overlap_scores_batch([])) == 0
        assert len(banded_scores_batch([], band=0)) == 0
        assert global_align_batch([]) == []
        assert local_align_batch([]) == []
        assert overlap_align_batch([]) == []
        assert banded_align_batch([], band=0) == []

    @pytest.mark.parametrize("a,b", [("", ""), ("", "ACG"), ("ACGT", "")])
    def test_empty_sequences(self, a, b):
        g = unit_dna().gap
        n, m = len(a), len(b)
        assert global_scores_batch([(a, b)])[0] == (n + m) * g
        assert local_scores_batch([(a, b)])[0] == 0.0
        assert overlap_scores_batch([(a, b)])[0] == 0.0
        assert banded_scores_batch([(a, b)], band=max(n, m))[0] == (n + m) * g
        for aln in (
            global_align_batch([(a, b)])[0],
            banded_align_batch([(a, b)], band=max(n, m))[0],
        ):
            assert aln.pairs == () and aln.score == (n + m) * g
        assert local_align_batch([(a, b)])[0].pairs == ()
        assert overlap_align_batch([(a, b)])[0].pairs == ()

    def test_band_exactly_length_gap(self):
        # band == |n - m|: the tightest band that still connects the
        # corners — one forced diagonal staircase.
        a, b = "ACGTACGT", "ACGT"
        band = len(a) - len(b)
        got = banded_global_score(a, b, band)
        assert got == banded_global_score_reference(a, b, band)
        aln = banded_align(a, b, band)
        assert aln.score == got
        for (i1, j1), (i2, j2) in zip(aln.pairs, aln.pairs[1:]):
            assert i1 < i2 and j1 < j2

    def test_band_zero_square(self):
        assert banded_global_score("ACGT", "AGGT", 0) == 2.0
        assert banded_align("ACGT", "AGGT", 0).pairs == (
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 3),
        )


class TestPrefixMaxSwitch:
    """The blocked two-pass prefix max is bit-identical to the scan."""

    def _all_outputs(self, pairs, band):
        return (
            global_scores_batch(pairs),
            local_scores_batch(pairs),
            overlap_scores_batch(pairs),
            banded_scores_batch(pairs, band),
            global_align_batch(pairs),
            local_align_batch(pairs),
        )

    def test_modes_are_bit_identical(self, rng):
        for count, n, m in [(4, 33, 29), (200, 17, 21), (3, 1, 1)]:
            pairs = _random_uniform_batch(rng, count, n, m)
            band = abs(n - m) + 5
            old = set_prefix_max_mode("scan")
            try:
                scan = self._all_outputs(pairs, band)
                set_prefix_max_mode("blocked")
                blocked = self._all_outputs(pairs, band)
            finally:
                set_prefix_max_mode(old)
            for s, bl in zip(scan, blocked):
                if isinstance(s, np.ndarray):
                    assert np.array_equal(s, bl)
                else:
                    assert s == bl

    def test_switch_validates_and_restores(self):
        assert get_prefix_max_mode() == "auto"
        with pytest.raises(ValueError, match="unknown prefix-max mode"):
            set_prefix_max_mode("sideways")
        old = set_prefix_max_mode("blocked")
        assert old == "auto" and get_prefix_max_mode() == "blocked"
        set_prefix_max_mode(old)
        assert get_prefix_max_mode() == "auto"
