"""Pairwise nucleotide alignment kernels vs. references and properties."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from fragalign.align.pairwise import (
    banded_global_score,
    global_align,
    global_score,
    global_score_reference,
    local_align,
    local_score,
    overlap_score,
)
from fragalign.align.scoring_matrices import (
    encode,
    transition_transversion,
    unit_dna,
)

dna = st.text(alphabet="ACGT", min_size=0, max_size=24)
dna1 = st.text(alphabet="ACGT", min_size=1, max_size=24)


def test_encode_roundtrip():
    codes = encode("ACGTN")
    assert list(codes) == [0, 1, 2, 3, 4]
    assert list(encode("acxg")) == [0, 1, 4, 2]


def test_substitution_model_validation():
    import numpy as np

    from fragalign.align.scoring_matrices import SubstitutionModel

    with pytest.raises(ValueError):
        SubstitutionModel(matrix=np.zeros((4, 4)), gap=-1)
    bad = np.zeros((5, 5))
    bad[0, 1] = 1.0
    with pytest.raises(ValueError):
        SubstitutionModel(matrix=bad, gap=-1)


def test_transition_vs_transversion_scores():
    m = transition_transversion()
    assert m.score("A", "G") > m.score("A", "C")  # transition beats transversion
    assert m.score("A", "A") > m.score("A", "G")


def test_global_identical_sequences():
    s = "ACGTACGT"
    assert global_score(s, s) == len(s)


def test_global_empty():
    model = unit_dna()
    assert global_score("", "ACG") == 3 * model.gap
    assert global_score("ACG", "") == 3 * model.gap


def test_known_alignment():
    # classic: GATTACA vs GCATGCU-like sanity on DNA
    s = global_score("GATTACA", "GATGACA")
    assert s == 5.0  # 6 matches, 1 mismatch with unit scores: 6 - 1


@given(dna, dna)
def test_global_vectorized_equals_reference(a, b):
    assert global_score(a, b) == pytest.approx(
        global_score_reference(a, b), abs=1e-9
    )


@given(dna, dna)
def test_global_symmetry(a, b):
    assert global_score(a, b) == pytest.approx(global_score(b, a), abs=1e-9)


@given(dna1, dna1)
def test_global_align_traceback_consistent(a, b):
    aln = global_align(a, b)
    assert aln.score == pytest.approx(global_score(a, b), abs=1e-9)
    for (i1, j1), (i2, j2) in zip(aln.pairs, aln.pairs[1:]):
        assert i1 < i2 and j1 < j2


@given(dna1, dna1)
def test_local_at_least_global_tail(a, b):
    # Local can always do at least 0 and at least any exact shared char.
    s = local_score(a, b)
    assert s >= 0.0
    if set(a) & set(b):
        assert s >= 1.0


@given(dna1, dna1)
def test_local_align_window_scores(a, b):
    aln = local_align(a, b)
    assert aln.score == pytest.approx(local_score(a, b), abs=1e-9)
    (ai, aj) = aln.a_interval
    (bi, bj) = aln.b_interval
    if aln.pairs:
        # Re-aligning the windows globally recovers at least the score.
        assert global_score(a[ai:aj], b[bi:bj]) >= aln.score - 1e-9


def test_local_finds_planted_motif(rng):
    from fragalign.genome.dna import random_dna

    motif = "ACGTGTACCAGT"
    a = random_dna(60, rng) + motif + random_dna(60, rng)
    b = random_dna(40, rng) + motif + random_dna(50, rng)
    assert local_score(a, b) >= len(motif) - 2


def test_overlap_score_detects_overlap():
    a = "TTTTTACGTACGT"
    b = "ACGTACGTCCCC"
    score, a_start, b_end = overlap_score(a, b)
    assert score >= 8.0
    assert a[a_start:] .startswith("ACGT")
    assert b[:b_end].endswith("ACGT")


@given(dna1, dna1)
def test_banded_equals_global_with_wide_band(a, b):
    band = max(len(a), len(b))
    assert banded_global_score(a, b, band) == pytest.approx(
        global_score(a, b), abs=1e-9
    )


def test_banded_rejects_too_narrow():
    with pytest.raises(ValueError):
        banded_global_score("AAAA", "A", band=1)
