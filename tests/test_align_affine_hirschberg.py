"""Affine (Gotoh) kernels and linear-memory alignment.

The standing invariants:

* every batched affine kernel (global/local/overlap/banded, score and
  align) agrees with the transparent per-cell Gotoh oracle in
  :mod:`fragalign.align.affine` — scores exactly and tracebacks
  alignment-for-alignment on integer models;
* ``linear_align`` (and therefore ``hirschberg_align``) returns
  **byte-identical** alignments to the direction-tensor walks of
  ``global_align``/``overlap_align``/``local_align`` — not merely
  co-optimal — at every block size;
* affine with ``open == extend == model.gap`` scores exactly like the
  linear kernels.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.align.affine import (
    affine_align_reference,
    affine_global_align,
    affine_global_score,
    affine_global_score_reference,
    affine_score_reference,
)
from fragalign.align.hirschberg import (
    hirschberg_align,
    hirschberg_align_reference,
    linear_align,
)
from fragalign.align.pairwise import (
    affine_align_batch,
    affine_banded_align_batch,
    affine_banded_scores_batch,
    affine_local_align_batch,
    affine_local_scores_batch,
    affine_overlap_align_batch,
    affine_overlap_scores_batch,
    affine_scores_batch,
    check_affine_gaps,
    global_align,
    global_score,
    local_align,
    local_score,
    overlap_align,
    overlap_score,
)
from fragalign.align.scoring_matrices import transition_transversion, unit_dna
from fragalign.genome.dna import random_dna

dna = st.text(alphabet="ACGT", min_size=0, max_size=18)
dna1 = st.text(alphabet="ACGT", min_size=1, max_size=30)

SCORE_KERNELS = {
    "global": affine_scores_batch,
    "local": affine_local_scores_batch,
    "overlap": affine_overlap_scores_batch,
}
ALIGN_KERNELS = {
    "global": affine_align_batch,
    "local": affine_local_align_batch,
    "overlap": affine_overlap_align_batch,
}


class TestAffineGapValidation:
    def test_mismatched_pair_rejected(self):
        with pytest.raises(ValueError, match="together"):
            check_affine_gaps(-2.0, None)
        with pytest.raises(ValueError, match="together"):
            check_affine_gaps(None, -1.0)

    def test_positive_rejected(self):
        with pytest.raises(ValueError, match="<= 0"):
            check_affine_gaps(1.0, -1.0)
        with pytest.raises(ValueError, match="<= 0"):
            check_affine_gaps(-1.0, 0.5)

    def test_non_numbers_rejected(self):
        with pytest.raises(ValueError, match="number"):
            check_affine_gaps("x", -1.0)
        with pytest.raises(ValueError, match="number"):
            check_affine_gaps(True, -1.0)

    def test_zero_allowed(self):
        assert check_affine_gaps(0, 0) == (0.0, 0.0)


class TestAffineKernelParity:
    """Batched kernels vs the per-cell Gotoh oracle, all four modes."""

    @pytest.mark.parametrize("mode", ["global", "local", "overlap"])
    def test_randomized_scores_and_alignments(self, mode, rng):
        models = [unit_dna(), transition_transversion()]
        for trial in range(60):
            n, m = int(rng.integers(0, 16)), int(rng.integers(0, 16))
            a, b = random_dna(n, rng), random_dna(m, rng)
            model = models[trial % 2]
            open_ = float(rng.choice([-1, -2, -4]))
            ext = float(rng.choice([0, -1, -2]))
            got = float(SCORE_KERNELS[mode]([(a, b)], model, open_, ext, chunk=1)[0])
            want = affine_score_reference(a, b, model, open_, ext, mode=mode)
            assert got == pytest.approx(want, abs=1e-9)
            got_aln = ALIGN_KERNELS[mode]([(a, b)], model, open_, ext, chunk=1)[0]
            want_aln = affine_align_reference(a, b, model, open_, ext, mode=mode)
            assert got_aln == want_aln

    def test_randomized_banded(self, rng):
        models = [unit_dna(), transition_transversion()]
        for trial in range(60):
            n, m = int(rng.integers(1, 16)), int(rng.integers(1, 16))
            band = abs(n - m) + int(rng.integers(0, 5))
            a, b = random_dna(n, rng), random_dna(m, rng)
            model = models[trial % 2]
            open_ = float(rng.choice([-1, -3, -5]))
            ext = float(rng.choice([0, -1]))
            got = float(
                affine_banded_scores_batch([(a, b)], band, model, open_, ext, chunk=1)[0]
            )
            want = affine_score_reference(
                a, b, model, open_, ext, mode="banded", band=band
            )
            assert got == pytest.approx(want, abs=1e-9)
            got_aln = affine_banded_align_batch(
                [(a, b)], band, model, open_, ext, chunk=1
            )[0]
            want_aln = affine_align_reference(
                a, b, model, open_, ext, mode="banded", band=band
            )
            assert got_aln == want_aln

    @given(dna, dna)
    def test_global_kernel_vs_reference(self, a, b):
        got = affine_global_score(a, b)
        expect = affine_global_score_reference(a, b)
        assert got == pytest.approx(expect, abs=1e-6)

    def test_batch_equals_loop(self, rng):
        pairs = [(random_dna(20, rng), random_dna(24, rng)) for _ in range(17)]
        batch = affine_scores_batch(pairs, None, -4.0, -1.0, chunk=5)
        loop = [affine_global_score(a, b) for a, b in pairs]
        assert np.array_equal(batch, loop)
        batch_al = affine_align_batch(pairs, None, -4.0, -1.0, chunk=5)
        loop_al = [affine_global_align(a, b) for a, b in pairs]
        assert batch_al == loop_al

    def test_banded_full_width_equals_global(self, rng):
        a, b = random_dna(24, rng), random_dna(30, rng)
        band = max(len(a), len(b))
        assert affine_banded_scores_batch([(a, b)], band, None, -3.0, -1.0)[
            0
        ] == pytest.approx(affine_global_score(a, b, None, -3.0, -1.0))


class TestAffineSemantics:
    @given(dna1, dna1)
    def test_equals_linear_when_open_equals_extend(self, a, b):
        """open == extend == gap collapses affine to the linear model."""
        model = unit_dna(gap=-2.0)
        affine = affine_global_score(a, b, model, open_=-2.0, extend=-2.0)
        linear = global_score(a, b, model)
        assert affine == pytest.approx(linear, abs=1e-6)

    def test_equals_linear_all_modes(self, rng):
        model = unit_dna(gap=-2.0)
        for _ in range(20):
            a, b = random_dna(int(rng.integers(1, 24)), rng), random_dna(
                int(rng.integers(1, 24)), rng
            )
            pairs = [(a, b)]
            assert affine_local_scores_batch(pairs, model, -2.0, -2.0)[
                0
            ] == pytest.approx(local_score(a, b, model))
            assert affine_overlap_scores_batch(pairs, model, -2.0, -2.0)[
                0
            ] == pytest.approx(overlap_score(a, b, model)[0])

    def test_long_gap_cheaper_than_linear(self):
        a = "ACGTACGTACGT"
        b = "ACGT" + "ACGT"  # middle chunk deleted
        model = unit_dna(gap=-2.0)
        linear = global_score(a, b, model)
        affine = affine_global_score(a, b, model, open_=-3.0, extend=-0.5)
        # One 4-gap: affine pays 3 + 3·0.5 = 4.5 < linear 8.
        assert affine > linear

    def test_identical_sequences(self):
        s = "ACGTACGT"
        assert affine_global_score(s, s) == pytest.approx(len(s))
        aln = affine_global_align(s, s)
        assert aln.pairs == tuple((i, i) for i in range(len(s)))

    def test_empty_cases(self):
        assert affine_global_score("", "") == 0.0
        assert affine_global_score("A", "") == pytest.approx(-4.0)
        assert affine_global_score("", "AAA") == pytest.approx(-4.0 - 2.0)
        assert affine_local_scores_batch([("", "ACG")], None, -4.0, -1.0)[0] == 0.0
        assert affine_overlap_scores_batch([("ACG", "")], None, -4.0, -1.0)[0] == 0.0
        aln = affine_align_batch([("A", "")], None, -4.0, -1.0)[0]
        assert aln.pairs == () and aln.a_interval == (0, 1)

    def test_degenerate_band_equals_diff(self, rng):
        """band == |n - m|, the narrowest legal band."""
        a, b = random_dna(9, rng), random_dna(14, rng)
        band = abs(len(a) - len(b))
        got = float(affine_banded_scores_batch([(a, b)], band, None, -3.0, -1.0)[0])
        want = affine_score_reference(a, b, None, -3.0, -1.0, mode="banded", band=band)
        assert got == pytest.approx(want)

    @given(dna1, dna1)
    def test_symmetry(self, a, b):
        assert affine_global_score(a, b) == pytest.approx(
            affine_global_score(b, a), abs=1e-6
        )

    def test_local_alignment_positive_and_consistent(self, rng):
        for _ in range(10):
            a, b = random_dna(30, rng), random_dna(30, rng)
            aln = affine_local_align_batch([(a, b)], None, -3.0, -1.0)[0]
            assert aln.score >= 0
            for (i1, j1), (i2, j2) in zip(aln.pairs, aln.pairs[1:]):
                assert i1 < i2 and j1 < j2


class TestLinearMemoryIdentity:
    """linear_align must reproduce the tensor walks byte for byte."""

    @pytest.mark.parametrize("mode,ref", [
        ("global", global_align),
        ("overlap", overlap_align),
        ("local", local_align),
    ])
    def test_randomized_byte_identity(self, mode, ref, rng):
        models = [unit_dna(), transition_transversion()]
        for trial in range(80):
            n, m = int(rng.integers(0, 48)), int(rng.integers(0, 48))
            a, b = random_dna(n, rng), random_dna(m, rng)
            model = models[trial % 2]
            block = int(rng.choice([1, 3, 17, 1 << 22]))
            assert linear_align(a, b, model, mode=mode, block_cells=block) == ref(
                a, b, model
            )

    def test_long_pair_identity_and_small_blocks(self, rng):
        a, b = random_dna(700, rng), random_dna(650, rng)
        lin = linear_align(a, b, block_cells=4096)
        assert lin == global_align(a, b)

    def test_mutated_pair_identity(self, rng):
        """Realistic indel structure, not just iid noise."""
        src = random_dna(800, rng)
        out = []
        for ch in src:
            r = rng.random()
            if r < 0.03:
                continue
            if r < 0.06:
                out.append(ch)
                out.append("ACGT"[rng.integers(4)])
                continue
            out.append(ch)
        b = "".join(out)
        assert linear_align(src, b, block_cells=1 << 14) == global_align(src, b)

    def test_unsupported_mode_rejected(self):
        with pytest.raises(ValueError, match="linear-memory"):
            linear_align("ACGT", "ACGT", mode="banded")

    def test_empty_inputs(self):
        assert linear_align("", "ACG").score == 3 * unit_dna().gap
        assert linear_align("", "", mode="local").pairs == ()
        assert linear_align("ACG", "", mode="overlap").a_interval == (3, 3)


class TestHirschberg:
    @given(dna1, dna1)
    def test_byte_identical_to_tensor_walk(self, a, b):
        assert hirschberg_align(a, b) == global_align(a, b)

    @given(dna1, dna1)
    def test_score_matches_quadratic(self, a, b):
        aln = hirschberg_align(a, b)
        assert aln.score == pytest.approx(global_score(a, b), abs=1e-9)

    @given(dna1, dna1)
    def test_pairs_are_a_valid_alignment(self, a, b):
        aln = hirschberg_align(a, b)
        for (i1, j1), (i2, j2) in zip(aln.pairs, aln.pairs[1:]):
            assert i1 < i2 and j1 < j2
        for i, j in aln.pairs:
            assert 0 <= i < len(a) and 0 <= j < len(b)

    @given(dna1, dna1)
    @settings(max_examples=15)
    def test_pairs_realize_optimal_score(self, a, b):
        """Summing σ over the pairs plus gap costs = the DP optimum."""
        model = unit_dna()
        aln = hirschberg_align(a, b, model)
        pair_score = sum(model.score(a[i], b[j]) for i, j in aln.pairs)
        gaps = (len(a) - len(aln.pairs)) + (len(b) - len(aln.pairs))
        assert pair_score + gaps * model.gap == pytest.approx(
            aln.score, abs=1e-9
        )

    @given(dna1, dna1)
    @settings(max_examples=15)
    def test_reference_oracle_score_parity(self, a, b):
        """The classic split-recursion oracle stays co-optimal."""
        assert hirschberg_align_reference(a, b).score == pytest.approx(
            hirschberg_align(a, b).score, abs=1e-9
        )

    def test_long_sequences(self, rng):
        a = random_dna(800, rng)
        b = random_dna(700, rng)
        aln = hirschberg_align(a, b)
        quad = global_align(a, b)
        assert aln == quad
