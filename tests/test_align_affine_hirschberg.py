"""Gotoh affine gaps and Hirschberg linear-space alignment."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.align.affine import (
    affine_global_score,
    affine_global_score_reference,
)
from fragalign.align.hirschberg import hirschberg_align
from fragalign.align.pairwise import global_align, global_score
from fragalign.align.scoring_matrices import unit_dna
from fragalign.genome.dna import random_dna

dna = st.text(alphabet="ACGT", min_size=0, max_size=18)
dna1 = st.text(alphabet="ACGT", min_size=1, max_size=30)


class TestAffine:
    @given(dna, dna)
    def test_vectorized_equals_reference(self, a, b):
        got = affine_global_score(a, b)
        expect = affine_global_score_reference(a, b)
        assert got == pytest.approx(expect, abs=1e-6)

    @given(dna1, dna1)
    def test_equals_linear_when_open_equals_extend(self, a, b):
        model = unit_dna(gap=-2.0)
        affine = affine_global_score(a, b, model, open_=-2.0, extend=-2.0)
        linear = global_score(a, b, model)
        assert affine == pytest.approx(linear, abs=1e-6)

    def test_long_gap_cheaper_than_linear(self):
        a = "ACGTACGTACGT"
        b = "ACGT" + "ACGT"  # middle chunk deleted
        model = unit_dna(gap=-2.0)
        linear = global_score(a, b, model)
        affine = affine_global_score(a, b, model, open_=-3.0, extend=-0.5)
        # One 4-gap: affine pays 3 + 3·0.5 = 4.5 < linear 8.
        assert affine > linear

    def test_identical_sequences(self):
        s = "ACGTACGT"
        assert affine_global_score(s, s) == pytest.approx(len(s))

    def test_empty_cases(self):
        assert affine_global_score("", "") == 0.0
        assert affine_global_score("A", "") == pytest.approx(-4.0)
        assert affine_global_score("", "AAA") == pytest.approx(-4.0 - 2.0)

    @given(dna1, dna1)
    def test_symmetry(self, a, b):
        assert affine_global_score(a, b) == pytest.approx(
            affine_global_score(b, a), abs=1e-6
        )


class TestHirschberg:
    @given(dna1, dna1)
    def test_score_matches_quadratic(self, a, b):
        aln = hirschberg_align(a, b)
        assert aln.score == pytest.approx(global_score(a, b), abs=1e-9)

    @given(dna1, dna1)
    def test_pairs_are_a_valid_alignment(self, a, b):
        aln = hirschberg_align(a, b)
        for (i1, j1), (i2, j2) in zip(aln.pairs, aln.pairs[1:]):
            assert i1 < i2 and j1 < j2
        for i, j in aln.pairs:
            assert 0 <= i < len(a) and 0 <= j < len(b)

    @given(dna1, dna1)
    @settings(max_examples=15)
    def test_pairs_realize_optimal_score(self, a, b):
        """Summing σ over the pairs plus gap costs = the DP optimum."""
        model = unit_dna()
        aln = hirschberg_align(a, b, model)
        pair_score = sum(model.score(a[i], b[j]) for i, j in aln.pairs)
        gaps = (len(a) - len(aln.pairs)) + (len(b) - len(aln.pairs))
        assert pair_score + gaps * model.gap == pytest.approx(
            aln.score, abs=1e-9
        )

    def test_long_sequences(self, rng):
        a = random_dna(800, rng)
        b = random_dna(700, rng)
        aln = hirschberg_align(a, b)
        quad = global_align(a[:0] + a, b)  # same inputs, quadratic DP
        assert aln.score == pytest.approx(quad.score, abs=1e-9)
