"""Chain DP: vectorized kernel ≡ reference, traceback validity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from fragalign.align.chain import (
    chain_pairs_scores,
    chain_score,
    chain_score_reference,
    chain_score_with_pairs,
    chain_table,
)

matrices = arrays(
    dtype=float,
    shape=st.tuples(st.integers(0, 8), st.integers(0, 8)),
    elements=st.floats(-5, 5, allow_nan=False, width=32),
)


def test_empty_matrix_scores_zero():
    assert chain_score(np.zeros((0, 5))) == 0.0
    assert chain_score(np.zeros((5, 0))) == 0.0
    assert chain_score_reference(np.zeros((0, 0))) == 0.0


def test_single_cell():
    assert chain_score(np.array([[3.0]])) == 3.0
    assert chain_score(np.array([[-3.0]])) == 0.0  # skipping is free


def test_known_small_case():
    W = np.array([[1.0, 5.0], [4.0, 1.0]])
    # Either take the 5 alone or 1+1; the anti-diagonal 5+4 is not a chain.
    assert chain_score(W) == 5.0


def test_crossing_pairs_rejected():
    # Only increasing chains allowed: both 10s cross, so one is chosen.
    W = np.array([[0.0, 10.0], [10.0, 0.0]])
    assert chain_score(W) == 10.0


@given(matrices)
def test_vectorized_equals_reference(W):
    assert chain_score(W) == pytest.approx(chain_score_reference(W), abs=1e-9)


@given(matrices)
def test_score_nonnegative_and_bounded(W):
    s = chain_score(W)
    assert s >= 0.0
    positive_sum = float(np.where(W > 0, W, 0).sum())
    assert s <= positive_sum + 1e-9


@given(matrices)
def test_traceback_chain_is_valid_and_scores(W):
    s, pairs = chain_score_with_pairs(W)
    assert s == pytest.approx(chain_score(W), abs=1e-9)
    # strictly increasing in both coordinates
    for (i1, j1), (i2, j2) in zip(pairs, pairs[1:]):
        assert i1 < i2 and j1 < j2
    assert sum(W[i, j] for i, j in pairs) == pytest.approx(s, abs=1e-9)


@given(matrices)
def test_table_monotone(W):
    C = chain_table(W)
    assert (np.diff(C, axis=0) >= -1e-12).all()
    assert (np.diff(C, axis=1) >= -1e-12).all()


@given(matrices)
def test_adding_rows_never_hurts(W):
    if W.shape[0] == 0:
        return
    assert chain_score(W) >= chain_score(W[:-1]) - 1e-9


def test_chain_pairs_scores_builder():
    W = chain_pairs_scores("ab", "abc", lambda a, b: 1.0 if a == b else 0.0)
    assert W.shape == (2, 3)
    assert W[0, 0] == 1.0 and W[1, 1] == 1.0 and W[0, 1] == 0.0
    assert chain_score(W) == 2.0


def test_rejects_bad_shapes():
    with pytest.raises(ValueError):
        chain_score(np.zeros(3))
    with pytest.raises(ValueError):
        chain_score_reference(np.zeros((2, 2, 2)))
