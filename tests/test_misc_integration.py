"""Cross-cutting coverage: baseline internals, generators, util, and
integration paths connecting the reductions to the core solvers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.core import (
    CSRInstance,
    baseline4,
    border_chain_instance,
    concat_m_instance,
    csr_improve,
    exact_csr,
    full_csr_instance,
    planted_instance,
    random_instance,
    score_pair,
    solve_one_csr,
    transposed_concat_instance,
    ucsr_instance,
)
from fragalign.core.conjecture import identity_arrangement
from fragalign.reductions import build_gadget, gadget_to_csr_instance, random_cubic_graph
from fragalign.util.errors import InstanceError
from fragalign.util.rng import as_generator, spawn
from fragalign.util.timing import Stopwatch, time_call

seeds = st.integers(0, 10_000)


class TestBaselineInternals:
    def test_concat_preserves_region_multiset(self, paper_instance):
        cm = concat_m_instance(paper_instance)
        assert cm.n_m == 1
        all_regions = tuple(
            r for f in paper_instance.m_fragments for r in f.regions
        )
        assert cm.m_fragments[0].regions == all_regions

    def test_transpose_preserves_scores(self, paper_instance):
        tc = transposed_concat_instance(paper_instance)
        # σ′(b, a) = σ(a, b) for every stored pair.
        for a, b, v in paper_instance.scorer.pairs():
            assert tc.scorer.get(b, a) == pytest.approx(v)

    @given(seeds)
    @settings(max_examples=10)
    def test_concat_score_is_a_csr_score(self, seed):
        # A conjecture of (H, M') is a conjecture of (H, M), so the
        # concat optimum never exceeds the CSR optimum.
        inst = random_instance(n_h=2, n_m=2, rng=seed)
        assert (
            exact_csr(concat_m_instance(inst)).score
            <= exact_csr(inst).score + 1e-9
        )

    @given(seeds)
    @settings(max_examples=10)
    def test_baseline_score_is_realizable(self, seed):
        inst = random_instance(n_h=2, n_m=2, rng=seed)
        sol = baseline4(inst)
        assert score_pair(inst, sol.arr_h, sol.arr_m) == pytest.approx(
            sol.score
        )


class TestGenerators:
    @given(seeds)
    @settings(max_examples=10)
    def test_full_instance_h_singletons(self, seed):
        inst = full_csr_instance(rng=seed)
        assert all(len(f) == 1 for f in inst.h_fragments)

    @given(seeds)
    @settings(max_examples=10)
    def test_ucsr_each_letter_once_per_species(self, seed):
        inst = ucsr_instance(n_letters=8, rng=seed)
        for species in ("H", "M"):
            occ = [
                abs(r)
                for f in inst.fragments(species)
                for r in f.regions
            ]
            assert sorted(occ) == list(range(1, 9))
        # σ is diagonal (UCSR restriction).
        for a, b, _v in inst.scorer.pairs():
            assert abs(a) == abs(b)

    @given(seeds)
    @settings(max_examples=10)
    def test_planted_score_achievable(self, seed):
        p = planted_instance(n_blocks=5, n_h=2, n_m=2, rng=seed)
        assert exact_csr(p.instance).score + 1e-9 >= p.planted_score

    def test_border_chain_expected_optimum(self):
        inst = border_chain_instance(k=3, w=5.0)
        # 2k−1 = 5 scored junctions of weight 5.
        assert exact_csr(inst).score == pytest.approx(25.0)

    def test_generator_validation(self):
        with pytest.raises(InstanceError):
            planted_instance(n_blocks=2, n_h=3, n_m=1)
        with pytest.raises(InstanceError):
            ucsr_instance(n_letters=2, n_h=3)


class TestUtil:
    def test_rng_coercion(self):
        gen = as_generator(5)
        assert isinstance(gen, np.random.Generator)
        assert as_generator(gen) is gen
        with pytest.raises(TypeError):
            as_generator("nope")

    def test_rng_determinism(self):
        a = as_generator(42).integers(0, 1000, 5)
        b = as_generator(42).integers(0, 1000, 5)
        assert list(a) == list(b)

    def test_spawn_decorrelates(self):
        kids = spawn(7, 3)
        draws = [int(k.integers(0, 10**9)) for k in kids]
        assert len(set(draws)) == 3

    def test_stopwatch(self):
        sw = Stopwatch()
        with sw.measure():
            pass
        with sw.measure():
            pass
        assert len(sw.laps) == 2
        assert sw.total >= sw.best >= 0.0
        with pytest.raises(ValueError):
            Stopwatch().best  # noqa: B018

    def test_time_call(self):
        t, result = time_call(lambda x: x + 1, 41, repeat=2)
        assert result == 42 and t >= 0.0


class TestIntegration:
    def test_hardness_instance_through_one_csr(self):
        """The Theorem-2 UCSR instance is a 1-CSR instance; the TPA
        solver must earn at least half its optimum (= 5n + MIS)."""
        from fragalign.reductions import exact_csop

        g = random_cubic_graph(8, rng=4)
        gadget = build_gadget(g)
        inst = gadget_to_csr_instance(gadget)
        opt = len(exact_csop(gadget.csop, max_pairs=30))
        sol = solve_one_csr(inst)
        assert 2.0 * sol.score + 1e-6 >= opt

    def test_identity_score_invariant_under_io_roundtrip(self):
        from fragalign.core import loads, dumps

        inst = random_instance(n_h=2, n_m=2, rng=3)
        back = loads(dumps(inst))
        ah, am = (
            identity_arrangement(inst, "H"),
            identity_arrangement(inst, "M"),
        )
        assert score_pair(inst, ah, am) == pytest.approx(
            score_pair(back, ah, am)
        )

    def test_improvement_from_ucsr_instance(self):
        inst = ucsr_instance(n_letters=6, n_h=2, n_m=2, rng=9)
        sol = csr_improve(inst, validate=True)
        opt = exact_csr(inst).score
        assert 3.0 * sol.score + 1e-6 >= opt

    def test_instance_describe_roundtrip_names(self):
        inst = CSRInstance.from_names(
            [["x", "y"]], [["z"]], {("x", "z"): 1.0}
        )
        text = inst.describe()
        assert "x" in text and "z" in text
