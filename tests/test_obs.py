"""Observability: metrics registry, tracing, kernel profiling, logging.

Standing invariants:

* trace fields are non-semantic — a traced request gets byte-identical
  answers, batching and cache keys to an untraced one (the analyzer
  enforces the registration flags; these tests exercise the wiring);
* histogram quantiles are exact to within one bucket width
  (``10**(1/8) ≈ 1.33×``) and, unlike the old 4096-sample deque, free
  of recency bias;
* expositions are mergeable: scrape-side quantiles over summed bucket
  counts equal server-side quantiles over the same data.
"""

from __future__ import annotations

import asyncio
import io
import json
import logging
import threading
from collections import deque

import numpy as np
import pytest

from fragalign.cluster import HealthMonitor, ShardRouter
from fragalign.engine import AlignmentEngine
from fragalign.obs import (
    KernelProfiler,
    MetricsRegistry,
    Span,
    TraceBuffer,
    TraceContext,
    Tracer,
    child_context,
    configure_logging,
    default_latency_buckets,
    get_logger,
    merge_expositions,
    new_trace_context,
    parse_exposition,
)
from fragalign.obs.kprof import format_top, top_rows, top_rows_from_exposition
from fragalign.obs.metrics import histogram_quantile_from_samples
from fragalign.obs.trace import span_tree
from fragalign.service import AlignmentClient, AlignmentService, ServiceConfig
from fragalign.service.stats import ServiceStats


# -- in-thread service harness (mirrors test_cluster.py) ---------------


def _serve_in_thread(config: ServiceConfig):
    holder: dict = {}
    ready = threading.Event()

    def target():
        async def main():
            service = AlignmentService(config)
            await service.start()
            holder["service"] = service
            holder["port"] = service.port
            holder["loop"] = asyncio.get_running_loop()
            ready.set()
            await service.wait_closed()
            service.close()

        asyncio.run(main())

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    assert ready.wait(10), "service failed to start"
    holder["thread"] = thread
    return holder


def _stop_shard(holder) -> None:
    try:
        holder["loop"].call_soon_threadsafe(holder["service"].stop)
    except RuntimeError:
        pass
    holder["thread"].join(timeout=10)
    assert not holder["thread"].is_alive()


@pytest.fixture()
def one_server():
    holder = _serve_in_thread(
        ServiceConfig(port=0, max_batch=16, max_delay=0.002, cache_size=256)
    )
    yield holder
    _stop_shard(holder)


@pytest.fixture()
def three_shards():
    holders = [
        _serve_in_thread(
            ServiceConfig(port=0, max_batch=16, max_delay=0.002, cache_size=256)
        )
        for _ in range(3)
    ]
    yield holders
    for holder in holders:
        _stop_shard(holder)


def _addresses(holders) -> list[tuple[str, int]]:
    return [("127.0.0.1", h["port"]) for h in holders]


# -- metrics registry --------------------------------------------------


class TestInstruments:
    def test_counter_labels_and_monotonicity(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help", labels=("op",))
        c.inc(op="score")
        c.inc(2, op="score")
        c.inc(op="align")
        assert c.value(op="score") == 3
        assert c.value(op="align") == 1
        with pytest.raises(ValueError):
            c.inc(-1, op="score")
        with pytest.raises(ValueError):
            c.inc(op="score", extra="nope")

    def test_gauge_set_add_set_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(5)
        g.add(-2)
        assert g.value() == 3
        g.set_max(10)
        g.set_max(7)
        assert g.value() == 10

    def test_registry_create_or_get_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        with pytest.raises(ValueError):
            reg.gauge("a_total")  # same name, different kind

    def test_default_buckets_are_log_spaced(self):
        bounds = default_latency_buckets()
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(abs(r - 10 ** 0.125) < 1e-6 for r in ratios)
        assert bounds[0] <= 1e-5 and bounds[-1] >= 30.0

    def test_histogram_quantile_within_one_bucket_width(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds")
        gen = np.random.default_rng(7)
        samples = np.exp(gen.normal(-5.0, 1.5, size=5000))
        for s in samples:
            h.observe(float(s))
        width = 10 ** 0.125  # per-decade=8 bucket ratio
        for q in (0.5, 0.9, 0.95, 0.99):
            true = float(np.quantile(samples, q))
            est = h.quantile(q)
            assert true / width <= est <= true * width, (q, true, est)

    def test_histogram_empty_and_bounds(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        assert h.quantile(0.95) == 0.0
        h.observe(100.0)  # overflow bucket reports largest finite bound
        assert h.quantile(0.5) == 4.0
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestExposition:
    def _loaded_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("req_total", "requests", labels=("op",)).inc(3, op="score")
        reg.gauge("open", "conns").set(2)
        h = reg.histogram("lat", "latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.7, 5.0):
            h.observe(v)
        return reg

    def test_render_parse_round_trip(self):
        reg = self._loaded_registry()
        parsed = parse_exposition(reg.render())
        s = parsed["samples"]
        assert s[("req_total", (("op", "score"),))] == 3
        assert s[("open", ())] == 2
        assert s[("lat_bucket", (("le", "1"),))] == 3  # cumulative
        assert s[("lat_count", ())] == 4
        assert parsed["types"]["lat"] == "histogram"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("this is not a metric line\n")

    def test_merge_sums_counters_and_buckets(self):
        text = self._loaded_registry().render()
        merged = parse_exposition(merge_expositions([text, text]))["samples"]
        assert merged[("req_total", (("op", "score"),))] == 6
        assert merged[("lat_count", ())] == 8
        assert merged[("lat_bucket", (("le", "+Inf"),))] == 8

    def test_merged_output_is_reparseable(self):
        text = self._loaded_registry().render()
        twice = merge_expositions([text, text])
        again = merge_expositions([twice])  # idempotent round trip
        assert parse_exposition(again)["samples"] == parse_exposition(twice)["samples"]

    def test_scrape_side_quantile_matches_server_side(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        gen = np.random.default_rng(11)
        for v in np.exp(gen.normal(-4.0, 1.0, size=2000)):
            h.observe(float(v))
        samples = parse_exposition(reg.render())["samples"]
        for q in (0.5, 0.95, 0.99):
            assert histogram_quantile_from_samples(samples, "lat", q) == pytest.approx(
                h.quantile(q)
            )

    def test_merged_quantile_over_two_shards(self):
        # Two shards with disjoint latency regimes: the merged p95 must
        # reflect the union, not either shard alone.
        regs = [MetricsRegistry() for _ in range(2)]
        for v in [0.001] * 900 + [0.5] * 100:
            regs[0].histogram("lat").observe(v)
        for v in [0.001] * 1000:
            regs[1].histogram("lat").observe(v)
        merged = parse_exposition(
            merge_expositions([r.render() for r in regs])
        )["samples"]
        width = 10 ** 0.125
        # 100/2000 slow: p95 stays in the fast regime, p99 lands in
        # the slow one — only the union of both shards shows that.
        p95 = histogram_quantile_from_samples(merged, "lat", 0.95)
        assert p95 <= 0.001 * width
        p99 = histogram_quantile_from_samples(merged, "lat", 0.99)
        assert p99 >= 0.5 / width


def _legacy_deque_p95(observations: list[float]) -> float:
    """The pre-histogram estimator: newest 4096 samples, nearest rank."""
    reservoir: deque[float] = deque(maxlen=4096)
    reservoir.extend(observations)
    ordered = sorted(reservoir)
    idx = min(len(ordered) - 1, max(0, round(0.95 * (len(ordered) - 1))))
    return ordered[idx]


class TestRecencyBiasRegression:
    def test_old_reservoir_under_reports_p95_histogram_does_not(self):
        # A latency regression early in the window followed by a burst
        # of fast requests: 500 slow (100 ms) then 8000 fast (1 ms).
        # True p95 over all 8500 observations is still 100 ms-class
        # (slow fraction ≈ 5.9% > 5%), but the slow samples have fallen
        # out of the 4096-deep deque entirely.
        observations = [0.1] * 500 + [0.001] * 8000
        true_p95 = float(np.quantile(observations, 0.95))
        assert true_p95 == pytest.approx(0.1)

        legacy = _legacy_deque_p95(observations)
        assert legacy == pytest.approx(0.001)  # off by 100x: the bug

        h = MetricsRegistry().histogram("lat")
        for v in observations:
            h.observe(v)
        width = 10 ** 0.125
        assert true_p95 / width <= h.quantile(0.95) <= true_p95 * width

    def test_service_stats_snapshot_uses_histogram_estimator(self):
        stats = ServiceStats()
        for v in [0.1] * 500 + [0.001] * 8000:
            stats.observe_request("score")
            stats.observe_latency(v)
        snap = stats.snapshot()
        assert snap["latency_ms"]["estimator"] == "histogram"
        width = 10 ** 0.125
        assert snap["latency_ms"]["p95"] >= 100.0 / width  # not 1 ms


# -- tracing -----------------------------------------------------------


class TestTraceContext:
    def test_child_links_parent_and_shares_trace(self):
        root = new_trace_context()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_child_context_none_means_tracing_off(self):
        assert child_context(None, None) is None
        assert child_context("", "abc") is None
        ctx = child_context("t1", "p1")
        assert ctx is not None and ctx.trace_id == "t1" and ctx.parent_id == "p1"

    def test_to_wire_carries_exactly_two_fields(self):
        ctx = new_trace_context()
        assert set(ctx.to_wire()) == {"trace_id", "span_id"}


class TestTraceBuffer:
    def test_ring_drops_oldest_and_counts(self):
        buf = TraceBuffer(maxlen=3)
        tracer = Tracer(buf)
        ctx = new_trace_context()
        for k in range(5):
            tracer.record(ctx, f"s{k}", 0.001)
        assert len(buf) == 3
        assert buf.dropped == 2
        assert [s.name for s in buf.peek()] == ["s2", "s3", "s4"]

    def test_drain_filters_by_trace_and_keeps_others(self):
        buf = TraceBuffer()
        tracer = Tracer(buf)
        a, b = new_trace_context(), new_trace_context()
        tracer.record(a, "a1", 0.001)
        tracer.record(b, "b1", 0.001)
        tracer.record(a, "a2", 0.001)
        drained = buf.drain(a.trace_id)
        assert [s.name for s in drained] == ["a1", "a2"]
        assert [s.name for s in buf.peek()] == ["b1"]
        assert buf.drain() and not buf.peek()  # unfiltered drain empties

    def test_span_round_trips_through_dict(self):
        span = Span("t", "s", "p", "work", 1.0, 0.5, {"op": "score"})
        assert Span.from_dict(span.to_dict()) == span

    def test_tracer_span_contextmanager_times_and_parents(self):
        tracer = Tracer()
        root = new_trace_context()
        with tracer.span(root, "outer", op="x") as outer_ctx:
            assert outer_ctx.parent_id == root.span_id
            with tracer.span(outer_ctx, "inner"):
                pass
        spans = {s.name: s for s in tracer.buffer.drain()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].tags == {"op": "x"}
        assert spans["outer"].duration_s >= spans["inner"].duration_s >= 0
        # ctx=None is a no-op everywhere.
        with tracer.span(None, "ghost"):
            pass
        tracer.record(None, "ghost", 1.0)
        assert not tracer.buffer.peek()


# -- kernel profiling --------------------------------------------------


class TestKernelProfiler:
    def test_record_accumulates_per_family(self):
        reg = MetricsRegistry()
        prof = KernelProfiler(reg)
        prof.record("score_many", "numpy", "global", [(64, 64)] * 8, 0.5)
        prof.record("score_many", "numpy", "global", [(64, 64)] * 4, 0.5)
        rows = top_rows(reg)
        assert len(rows) == 1
        row = rows[0]
        assert row["calls"] == 2 and row["pairs"] == 12
        assert row["cells"] == 12 * 64 * 64
        assert row["max_batch"] == 8
        assert row["mcells_per_s"] == pytest.approx(12 * 64 * 64 / 1.0 / 1e6)

    def test_engine_facade_records_when_profiler_attached(self):
        reg = MetricsRegistry()
        with AlignmentEngine(backend="numpy") as eng:
            eng.profiler = KernelProfiler(reg)
            eng.score("ACGTACGT", "ACGTAGGT")
            eng.align("ACGTACGT", "ACGTAGGT")
            eng.score_many([("ACGT", "AGGT"), ("ACGTA", "AGGTA")])
            eng.align_many([("ACGT", "AGGT")], mode="local")
        families = {(r["family"], r["mode"]) for r in top_rows(reg)}
        assert ("score", "global") in families
        assert ("align", "global") in families
        assert ("score_many", "global") in families
        assert ("align_many", "local") in families
        # mixed-shape batch: one dispatch per shape bucket
        row = next(r for r in top_rows(reg) if r["family"] == "score_many")
        assert row["calls"] == 2 and row["pairs"] == 2

    def test_profiler_off_changes_nothing(self):
        with AlignmentEngine() as eng:
            assert eng.profiler is None
            baseline = eng.score("ACGTACGT", "ACGTAGGT")
        reg = MetricsRegistry()
        with AlignmentEngine() as eng:
            eng.profiler = KernelProfiler(reg)
            assert eng.score("ACGTACGT", "ACGTAGGT") == baseline

    def test_format_top_renders_table_or_placeholder(self):
        assert "no kernel-profile samples" in format_top([])
        reg = MetricsRegistry()
        KernelProfiler(reg).record("score", "numpy", "global", [(8, 8)], 0.01)
        table = format_top(top_rows(reg))
        assert "FAMILY" in table and "score" in table and "MCELLS/S" in table

    def test_rows_survive_exposition_round_trip(self):
        reg = MetricsRegistry()
        KernelProfiler(reg).record("align", "numpy", "banded", [(32, 32)], 0.25)
        direct = top_rows(reg)
        scraped = top_rows_from_exposition(reg.render())
        assert direct == scraped


# -- structured logging ------------------------------------------------


class TestLogging:
    def test_json_formatter_emits_parseable_lines_with_extras(self):
        stream = io.StringIO()
        configure_logging(level="info", json_format=True, stream=stream)
        try:
            get_logger("service").info(
                "server started", extra={"port": 1234, "backend": "numpy"}
            )
            record = json.loads(stream.getvalue().strip())
            assert record["event"] == "server started"
            assert record["level"] == "INFO"
            assert record["logger"] == "fragalign.service"
            assert record["port"] == 1234 and record["backend"] == "numpy"
        finally:
            logging.getLogger("fragalign").handlers.clear()

    def test_level_threshold_and_text_format(self):
        stream = io.StringIO()
        configure_logging(level="warning", json_format=False, stream=stream)
        try:
            get_logger("cluster").info("quiet", extra={})
            get_logger("cluster").warning("shard evicted", extra={"shard": "s0"})
            out = stream.getvalue()
            assert "quiet" not in out
            assert "shard evicted" in out and "shard=s0" in out
        finally:
            logging.getLogger("fragalign").handlers.clear()

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        configure_logging(stream=stream)
        try:
            assert len(logging.getLogger("fragalign").handlers) == 1
        finally:
            logging.getLogger("fragalign").handlers.clear()


# -- service integration ----------------------------------------------


def _tree_is_consistent(spans: list[dict], root: TraceContext) -> bool:
    ids = {s["span_id"] for s in spans}
    return all(
        s["parent_id"] == root.span_id or s["parent_id"] in ids for s in spans
    ) and all(s["trace_id"] == root.trace_id for s in spans)


class TestServiceObservability:
    def test_traced_request_yields_full_span_tree(self, one_server):
        with AlignmentClient("127.0.0.1", one_server["port"]) as client:
            root = new_trace_context()
            client.score("ACGTACGTAC", "ACGTAGGTAC", trace=root)
            reply = client.trace_spans(root.trace_id)
        names = {s["name"] for s in reply["spans"]}
        assert {
            "server.read",
            "server.cache",
            "batcher.wait",
            "batcher.compute",
            "server.write",
            "server.request",
        } <= names
        assert _tree_is_consistent(reply["spans"], root)
        assert reply["dropped"] == 0
        # The server-side request span parents directly under the
        # caller's wire span.
        request_span = next(
            s for s in reply["spans"] if s["name"] == "server.request"
        )
        assert request_span["parent_id"] == root.span_id

    def test_cache_hit_trace_has_no_batcher_spans(self, one_server):
        with AlignmentClient("127.0.0.1", one_server["port"]) as client:
            client.score("ACGTACGT", "ACGTAGGT")  # seed the cache
            root = new_trace_context()
            client.score("ACGTACGT", "ACGTAGGT", trace=root)
            reply = client.trace_spans(root.trace_id)
        names = {s["name"] for s in reply["spans"]}
        assert "batcher.compute" not in names
        cache_span = next(s for s in reply["spans"] if s["name"] == "server.cache")
        assert cache_span["tags"]["hit"] is True

    def test_untraced_requests_record_no_spans(self, one_server):
        with AlignmentClient("127.0.0.1", one_server["port"]) as client:
            client.score("ACGT", "AGGT")
            reply = client.trace_spans()
        assert reply["spans"] == []

    def test_traced_and_untraced_answers_are_identical(self, one_server):
        with AlignmentClient("127.0.0.1", one_server["port"]) as client:
            plain = client.score("ACGTACGTACGT", "ACGTAGGTACGT", mode="local")
            traced = client.score(
                "ACGTACGTACGT", "ACGTAGGTACGT", mode="local",
                trace=new_trace_context(),
            )
            aln_plain = client.align("ACGTAC", "ACGTTC")
            aln_traced = client.align("ACGTAC", "ACGTTC", trace=new_trace_context())
        assert plain == traced
        assert aln_plain == aln_traced

    def test_metrics_op_exposes_requests_latency_and_kernels(self, one_server):
        with AlignmentClient("127.0.0.1", one_server["port"]) as client:
            pairs = [("ACGTACGT", "ACGTAGGT" + "T" * k) for k in range(6)]
            client.score_many(pairs, concurrency=4)
            text = client.metrics()
            snap = client.stats()
        parsed = parse_exposition(text)
        samples = parsed["samples"]
        assert samples[("fragalign_requests_total", (("op", "score"),))] >= 6
        assert parsed["types"]["fragalign_request_latency_seconds"] == "histogram"
        kernel_calls = sum(
            v for (name, _), v in samples.items()
            if name == "fragalign_kernel_calls_total"
        )
        assert kernel_calls > 0
        # Exposition-derived quantiles agree with the stats snapshot
        # (same histogram underneath).
        p95 = histogram_quantile_from_samples(
            samples, "fragalign_request_latency_seconds", 0.95
        )
        # The snapshot rounds to 3 decimals; otherwise identical.
        assert snap["latency_ms"]["p95"] == pytest.approx(p95 * 1e3, abs=1e-3)

    def test_stats_snapshot_schema_is_additive(self, one_server):
        with AlignmentClient("127.0.0.1", one_server["port"]) as client:
            client.score("ACGT", "AGGT")
            snap = client.stats()
        # Pre-observability consumers keep working: the seed schema.
        assert {"uptime_s", "requests", "connections", "batches", "cache",
                "latency_ms"} <= set(snap)
        assert {"p50", "p95", "p99", "mean", "samples"} <= set(snap["latency_ms"])


# -- cluster integration ----------------------------------------------


class TestClusterObservability:
    def test_failover_produces_one_consistent_trace(self, three_shards):
        # A fresh pair (cold cache) so the surviving shard's batcher
        # and kernel spans appear in the tree.
        a, b = "ACGTACGTACGTACGTAC", "ACGTAGGTACGTAGGTAC"

        async def run():
            router = ShardRouter(_addresses(three_shards), max_attempts=3)
            try:
                victim = router.shard_for("score", a, b)
                holder = three_shards[
                    [f"127.0.0.1:{h['port']}" for h in three_shards].index(victim)
                ]
                _stop_shard(holder)
                root = new_trace_context()
                value = await router.score(a, b, trace=root)
                report = await router.collect_trace(root.trace_id)
                return value, report, root, router.router_stats()
            finally:
                await router.close()

        value, report, root, stats = asyncio.run(run())
        with AlignmentEngine() as eng:
            assert value == eng.score(a, b)
        assert stats["failovers"] == 1 and stats["evictions"] == 1

        spans = report["spans"]
        names = {s["name"] for s in spans}
        assert {
            "router.route", "router.attempt", "server.request",
            "batcher.wait", "batcher.compute",
        } <= names
        assert _tree_is_consistent(spans, root)

        attempts = [s for s in spans if s["name"] == "router.attempt"]
        assert len(attempts) == 2
        outcomes = sorted(s["tags"]["outcome"] for s in attempts)
        assert outcomes[-1] == "ok" and outcomes[0].startswith("failed")
        route = next(s for s in spans if s["name"] == "router.route")
        assert route["tags"]["failover"] is True
        assert route["tags"]["attempts"] == 2
        # Both attempts parent under the route span; the server-side
        # request span parents under the *successful* attempt.
        ok_attempt = next(s for s in attempts if s["tags"]["outcome"] == "ok")
        assert all(s["parent_id"] == route["span_id"] for s in attempts)
        request_span = next(s for s in spans if s["name"] == "server.request")
        assert request_span["parent_id"] == ok_attempt["span_id"]
        # The dead shard is reported unreachable, not silently skipped.
        assert len(report["errors"]) == 1

    def test_cluster_metrics_merges_shards_and_router(self, three_shards):
        pairs = [("ACGTACGTAC", "ACGTAGGTAC" + "T" * k) for k in range(12)]

        async def run():
            router = ShardRouter(_addresses(three_shards))
            try:
                await router.score_many(pairs, concurrency=8)
                per_shard = []
                for shard in router.configured_shards:
                    per_shard.append(await router.scrape_shard_metrics(shard))
                return await router.cluster_metrics(), per_shard
            finally:
                await router.close()

        report, per_shard = asyncio.run(run())
        assert not report["errors"]
        merged = parse_exposition(report["merged"])["samples"]
        shard_totals = [
            parse_exposition(t)["samples"].get(
                ("fragalign_requests_total", (("op", "score"),)), 0.0
            )
            for t in per_shard
        ]
        # Every shard served some of the spread, and the merged counter
        # is within one extra metrics-scrape round of their sum.
        merged_scores = merged[("fragalign_requests_total", (("op", "score"),))]
        assert merged_scores >= len(pairs)
        assert merged_scores >= sum(shard_totals)
        assert merged[("fragalign_router_live_shards", ())] == 3
        routed_samples = [
            v for (name, _), v in merged.items()
            if name == "fragalign_router_requests_total"
        ]
        assert sum(routed_samples) == len(pairs)

    def test_health_monitor_records_probe_rtt(self, three_shards):
        async def run():
            router = ShardRouter(_addresses(three_shards))
            try:
                monitor = HealthMonitor(router, fail_after=2)
                await monitor.probe_round()
                await monitor.probe_round()
                return monitor.snapshot()
            finally:
                await router.close()

        snap = asyncio.run(run())
        for shard, record in snap["shards"].items():
            rtt = record["rtt_ms"]
            assert rtt["last"] is not None and rtt["last"] > 0
            assert rtt["ema"] is not None and rtt["ema"] > 0
            assert rtt["max"] >= rtt["last"] * 0.999

    def test_dead_shard_has_no_rtt_and_stays_failed(self):
        async def run():
            router = ShardRouter([("127.0.0.1", 1)], connect_timeout=0.5)
            try:
                monitor = HealthMonitor(router, fail_after=1, timeout=1.0)
                await monitor.probe_round()
                return monitor.snapshot()
            finally:
                await router.close()

        snap = asyncio.run(run())
        (record,) = snap["shards"].values()
        assert record["healthy"] is False
        assert record["rtt_ms"]["last"] is None


# -- CLI surface -------------------------------------------------------


class TestCliSurface:
    def test_parser_accepts_observability_flags(self):
        from fragalign.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--log-level", "debug", "--log-json", "--trace-buffer", "64"]
        )
        assert args.log_level == "debug" and args.log_json and args.trace_buffer == 64
        args = parser.parse_args(["client", "--trace"])
        assert args.trace is True
        args = parser.parse_args(
            ["cluster", "serve", "--log-level", "warning", "--log-json"]
        )
        assert args.log_level == "warning"
        args = parser.parse_args(
            ["cluster", "route", "--cluster-file", "x.json", "--trace"]
        )
        assert args.trace is True
        args = parser.parse_args(["metrics", "--cluster-file", "x.json", "--summary"])
        assert args.summary is True
        args = parser.parse_args(["top", "--port", "9999", "--expect-samples"])
        assert args.expect_samples is True

    def test_metrics_command_against_live_server(self, one_server, capsys):
        from fragalign.cli import main

        with AlignmentClient("127.0.0.1", one_server["port"]) as client:
            client.score("ACGTACGT", "ACGTAGGT")
        rc = main(
            ["metrics", "--port", str(one_server["port"]), "--summary"]
        )
        out, err = capsys.readouterr()
        assert rc == 0
        parse_exposition(out)  # stdout is a well-formed exposition
        assert "request latency p95" in err

    def test_top_command_against_live_server(self, one_server, capsys):
        from fragalign.cli import main

        with AlignmentClient("127.0.0.1", one_server["port"]) as client:
            client.score("ACGTACGT", "ACGTAGGT")
        rc = main(["top", "--port", str(one_server["port"]), "--expect-samples"])
        out, _ = capsys.readouterr()
        assert rc == 0
        assert "FAMILY" in out and "score_many" in out

    def test_client_trace_flag_prints_span_tree(self, one_server, capsys):
        from fragalign.cli import main

        rc = main(
            [
                "client", "--port", str(one_server["port"]),
                "--requests", "4", "--concurrency", "2", "--length", "16",
                "--trace",
            ]
        )
        out, _ = capsys.readouterr()
        assert rc == 0
        assert "trace " in out and "server.request" in out

    def test_span_tree_printer_orders_children(self, capsys):
        from fragalign.cli import _print_span_tree

        root = new_trace_context()
        tracer = Tracer()
        with tracer.span(root, "outer") as outer:
            with tracer.span(outer, "inner"):
                pass
        spans = [s.to_dict() for s in tracer.buffer.drain()]
        _print_span_tree(spans, 0, root.trace_id)
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith(f"trace {root.trace_id}: 2 spans")
        outer_line = next(l for l in lines if "outer" in l)
        inner_line = next(l for l in lines if "inner" in l)
        assert len(inner_line) - len(inner_line.lstrip()) > (
            len(outer_line) - len(outer_line.lstrip())
        )

    def test_span_tree_helper_groups_by_parent(self):
        root = new_trace_context()
        tracer = Tracer()
        tracer.record(root, "a", 0.001)
        tracer.record(root, "b", 0.002)
        tree = span_tree(tracer.buffer.drain())
        assert {s.name for s in tree[root.span_id]} == {"a", "b"}
