"""Genome substrate: DNA ops, evolution, shotgun, assembly, discovery,
and the end-to-end pipeline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.genome.assembly import exact_overlap, greedy_assemble
from fragalign.genome.conserved import find_conserved_regions
from fragalign.genome.dna import (
    gc_content,
    mutate,
    random_dna,
    reverse_complement,
)
from fragalign.genome.evolution import evolve, make_ancestor
from fragalign.genome.metrics import evaluate_solution
from fragalign.genome.pipeline import PipelineConfig, run_pipeline, truth_hits
from fragalign.genome.shotgun import fragment_into_contigs, sample_reads

dna_text = st.text(alphabet="ACGT", min_size=0, max_size=50)


class TestDNA:
    @given(dna_text)
    def test_revcomp_involution(self, s):
        assert reverse_complement(reverse_complement(s)) == s

    @given(dna_text, dna_text)
    def test_revcomp_antihomomorphism(self, a, b):
        assert reverse_complement(a + b) == reverse_complement(
            b
        ) + reverse_complement(a)

    def test_random_dna_length_and_alphabet(self, rng):
        s = random_dna(500, rng)
        assert len(s) == 500
        assert set(s) <= set("ACGT")

    def test_gc_bias(self, rng):
        high = random_dna(4000, rng, gc=0.8)
        low = random_dna(4000, rng, gc=0.2)
        assert gc_content(high) > 0.7 > 0.3 > gc_content(low)

    def test_mutation_rate(self, rng):
        s = random_dna(3000, rng)
        m = mutate(s, sub_rate=0.2, rng=rng)
        assert len(m) == len(s)
        diffs = sum(1 for a, b in zip(s, m) if a != b)
        assert 0.1 < diffs / len(s) < 0.3

    def test_indels_change_length(self, rng):
        s = random_dna(1000, rng)
        m = mutate(s, indel_rate=0.1, rng=rng)
        assert m != s


class TestEvolution:
    def test_ancestor_shape(self, rng):
        anc = make_ancestor(n_blocks=5, block_len=100, rng=rng)
        assert anc.n_blocks == 5
        assert all(len(b) == 100 for b in anc.blocks)

    def test_evolve_keeps_blocks_alignable(self, rng):
        from fragalign.align.pairwise import local_score

        anc = make_ancestor(n_blocks=3, block_len=150, rng=rng)
        sp = evolve(anc, sub_rate=0.05, rng=rng)
        assert len(sp.blocks) == 3
        for placed in sp.blocks:
            found = sp.sequence[placed.start : placed.end]
            orig = anc.blocks[placed.block_id]
            if placed.reversed:
                found = reverse_complement(found)
            assert local_score(orig, found) > 0.5 * len(orig)

    def test_loss_and_shuffle(self, rng):
        anc = make_ancestor(n_blocks=10, block_len=60, rng=rng)
        sp = evolve(anc, loss_prob=0.4, shuffle=True, rng=rng)
        assert len(sp.blocks) < 10


class TestShotgun:
    def test_read_coverage(self, rng):
        g = random_dna(1000, rng)
        reads = sample_reads(g, read_len=50, coverage=6.0, rng=rng)
        assert len(reads) == 120
        assert all(len(r.sequence) == 50 for r in reads)

    def test_contigs_cover_and_annotate(self, rng):
        anc = make_ancestor(n_blocks=6, block_len=100, spacer_len=50, rng=rng)
        sp = evolve(anc, rng=rng)
        contigs = fragment_into_contigs(sp, n_contigs=3, rng=rng)
        assert len(contigs) == 3
        total_blocks = sum(len(c.blocks) for c in contigs)
        assert total_blocks >= 4  # most blocks survive the cuts
        for c in contigs:
            for b in c.blocks:
                assert 0 <= b.start < b.end <= len(c.sequence)


class TestAssembly:
    def test_exact_overlap(self):
        assert exact_overlap("AAACGT", "CGTTTT", 3) == 3
        assert exact_overlap("AAACGT", "GGGTTT", 3) == 0
        assert exact_overlap("AAA", "AAA", 3) == 3

    def test_reconstructs_genome_from_clean_reads(self, rng):
        g = random_dna(600, rng)
        reads = sample_reads(g, read_len=100, coverage=10, rng=rng)
        contigs = greedy_assemble(reads, min_overlap=30)
        best = contigs[0]
        assert (
            best in g
            or reverse_complement(best) in g
            or len(best) >= 0.8 * len(g)
        )

    def test_min_overlap_guard(self):
        from fragalign.util.errors import InstanceError

        with pytest.raises(InstanceError):
            greedy_assemble([], min_overlap=1)


class TestConservedDiscovery:
    def test_finds_planted_homology(self, rng):
        anc = make_ancestor(n_blocks=3, block_len=120, spacer_len=60, rng=rng)
        a = evolve(anc, sub_rate=0.02, rng=rng)
        b = evolve(anc, sub_rate=0.02, inversion_prob=0.5, rng=rng)
        ca = fragment_into_contigs(a, n_contigs=1, flip_prob=0, shuffle=False, rng=rng)
        cb = fragment_into_contigs(b, n_contigs=1, flip_prob=0, shuffle=False, rng=rng)
        hits = find_conserved_regions(ca, cb, min_score=40)
        assert len(hits) >= 3

    def test_h_kmer_index_built_once_per_contig(self, rng, monkeypatch):
        import fragalign.genome.conserved as conserved

        anc = make_ancestor(n_blocks=2, block_len=100, spacer_len=40, rng=rng)
        a = evolve(anc, sub_rate=0.02, rng=rng)
        b = evolve(anc, sub_rate=0.02, rng=rng)
        ca = fragment_into_contigs(a, n_contigs=2, flip_prob=0, shuffle=False, rng=rng)
        cb = fragment_into_contigs(b, n_contigs=3, flip_prob=0, shuffle=False, rng=rng)
        calls = []
        real_kmers = conserved._kmers
        monkeypatch.setattr(
            conserved, "_kmers", lambda seq, k: calls.append(seq) or real_kmers(seq, k)
        )
        find_conserved_regions(ca, cb, min_score=40)
        # One index per H contig — not one per (H, M, strand) combination.
        assert len(calls) == len(ca)


class TestPipeline:
    @settings(max_examples=3)
    @given(st.integers(0, 100))
    def test_truth_pipeline_accuracy(self, seed):
        # No block inversions: every contig pair has a consistent
        # relative orientation, so the inference must be near-perfect.
        cfg = PipelineConfig(
            n_blocks=6,
            block_len=120,
            n_h_contigs=2,
            n_m_contigs=3,
            inversion_prob=0.0,
            discovery="truth",
        )
        res = run_pipeline(cfg, rng=seed)
        assert res.solution.score > 0
        if res.report.n_orientation_checks:
            assert res.report.orientation_accuracy >= 0.9

    def test_inverted_blocks_cap_accuracy(self):
        # With within-contig inversions the data itself is inconsistent
        # (the paper's Fig. 3, first pattern): some alignments MUST be
        # discarded, so orientation accuracy may legitimately drop —
        # but the solver must still be consistent and score-optimal.
        cfg = PipelineConfig(
            n_blocks=6,
            block_len=120,
            n_h_contigs=2,
            n_m_contigs=3,
            inversion_prob=0.3,
            discovery="truth",
        )
        res = run_pipeline(cfg, rng=7)
        from fragalign.core import exact_csr

        assert res.solution.score == pytest.approx(
            exact_csr(res.instance).score
        )
        assert 0.0 <= res.report.orientation_accuracy <= 1.0

    def test_alignment_pipeline_runs(self):
        cfg = PipelineConfig(
            n_blocks=4,
            block_len=100,
            spacer_len=50,
            n_h_contigs=2,
            n_m_contigs=2,
            discovery="alignment",
        )
        res = run_pipeline(cfg, rng=0)
        assert res.instance.n_h == 2
        assert res.report is not None

    def test_solver_variants(self):
        cfg = PipelineConfig(
            n_blocks=5, block_len=80, n_h_contigs=2, n_m_contigs=2,
            solver="baseline4",
        )
        res = run_pipeline(cfg, rng=1)
        assert res.solution.algorithm == "baseline4"
        cfg2 = PipelineConfig(
            n_blocks=5, block_len=80, n_h_contigs=2, n_m_contigs=2,
            solver="greedy",
        )
        assert run_pipeline(cfg2, rng=1).solution.algorithm == "greedy"

    def test_bad_config_rejected(self):
        from fragalign.util.errors import InstanceError

        with pytest.raises(InstanceError):
            run_pipeline(PipelineConfig(discovery="nope"), rng=0)
        with pytest.raises(InstanceError):
            run_pipeline(PipelineConfig(solver="nope"), rng=0)

    def test_metrics_report_fields(self):
        res = run_pipeline(
            PipelineConfig(n_blocks=5, block_len=80, n_h_contigs=2, n_m_contigs=2),
            rng=3,
        )
        rep = evaluate_solution(res.solution, res.h_contigs, res.m_contigs)
        assert 0.0 <= rep.orientation_accuracy <= 1.0
        assert 0.0 <= rep.order_accuracy <= 1.0
        assert "orientation" in rep.summary()
