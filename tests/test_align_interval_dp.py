"""Incremental all-intervals DP ≡ per-interval reference; parallel ≡ serial."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from fragalign.align.chain import chain_score
from fragalign.align.interval_dp import (
    all_interval_chain_scores,
    all_interval_chain_scores_parallel,
    all_interval_chain_scores_reference,
)

matrices = arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 6), st.integers(1, 8)),
    elements=st.floats(-4, 4, allow_nan=False, width=32),
)


@given(matrices)
def test_incremental_equals_reference(W):
    got = all_interval_chain_scores(W)
    expect = all_interval_chain_scores_reference(W)
    assert np.allclose(got, expect, atol=1e-9)


@given(matrices)
def test_full_interval_matches_chain_score(W):
    S = all_interval_chain_scores(W)
    m = W.shape[1]
    assert S[0, m] == pytest.approx(chain_score(W), abs=1e-9)


@given(matrices)
def test_monotone_in_interval_extension(W):
    # Padding is free, so a wider interval never scores less.
    S = all_interval_chain_scores(W)
    m = W.shape[1]
    for d in range(m):
        for e in range(d + 1, m):
            assert S[d, e + 1] >= S[d, e] - 1e-9
            assert S[d, e] >= S[d + 1, e] - 1e-9 if d + 1 <= e else True


def test_empty_matrix():
    S = all_interval_chain_scores(np.zeros((0, 0)))
    assert S.shape == (1, 1)


@settings(max_examples=5)
@given(matrices)
def test_parallel_equals_serial_small(W):
    got = all_interval_chain_scores_parallel(W, workers=1)
    assert np.allclose(got, all_interval_chain_scores(W))


def test_parallel_equals_serial_with_pool(rng):
    W = rng.normal(size=(10, 24))
    got = all_interval_chain_scores_parallel(W, workers=3)
    assert np.allclose(got, all_interval_chain_scores(W), atol=1e-9)
