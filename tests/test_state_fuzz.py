"""State fuzzing: random operation sequences never break invariants.

Hypothesis drives random but *type-correct* sequences of the state
primitives (add full, add border, prepare, detach, restrict through
prepare) and asserts after every step that

* the structural invariants hold (``check``),
* the layout realizes at least the claimed score,
* snapshots taken before a rolled-back prefix restore exactly.

This is the safety net under the improvement engine: every attempt is
a composition of exactly these primitives.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.core.consistency import layout_score
from fragalign.core.generators import random_instance
from fragalign.core.match_score import MatchScorer
from fragalign.core.sites import Site
from fragalign.core.state import SolutionState
from fragalign.util.errors import InconsistentMatchSetError

ops = st.lists(
    st.tuples(
        st.sampled_from(["plug", "border", "prepare", "detach"]),
        st.integers(0, 10**6),
    ),
    min_size=1,
    max_size=12,
)


def _random_site(state: SolutionState, species: str, salt: int) -> Site:
    frags = state.instance.fragments(species)
    frag = frags[salt % len(frags)]
    n = len(frag)
    start = salt // 7 % n
    end = start + 1 + (salt // 31 % (n - start))
    return Site(species, frag.fid, start, end)


def _apply(state: SolutionState, op: str, salt: int) -> None:
    inst = state.instance
    if op == "plug":
        species = "H" if salt % 2 else "M"
        frag = inst.fragments(species)[salt % len(inst.fragments(species))]
        host_site = _random_site(state, "M" if species == "H" else "H", salt)
        try:
            state.add_full((species, frag.fid), host_site)
        except InconsistentMatchSetError:
            pass  # occupied territory — legal refusal
    elif op == "border":
        h_site = _random_site(state, "H", salt)
        m_site = _random_site(state, "M", salt // 3)
        h_len = len(inst.fragment("H", h_site.fid))
        m_len = len(inst.fragment("M", m_site.fid))
        if h_site.kind(h_len) != "border" or m_site.kind(m_len) != "border":
            return
        if state.border_match_of(h_site.key) is not None:
            return
        if state.border_match_of(m_site.key) is not None:
            return
        try:
            state.add_border(h_site, m_site)
        except InconsistentMatchSetError:
            pass
    elif op == "prepare":
        species = "H" if salt % 2 else "M"
        state.prepare(_random_site(state, species, salt))
    elif op == "detach":
        species = "H" if salt % 2 else "M"
        frags = inst.fragments(species)
        state.detach_fragment((species, frags[salt % len(frags)].fid))


@settings(max_examples=40)
@given(st.integers(0, 10_000), ops)
def test_invariants_survive_random_operations(seed, operations):
    inst = random_instance(n_h=2, n_m=2, len_lo=2, len_hi=4, rng=seed)
    state = SolutionState(inst, MatchScorer(inst))
    for op, salt in operations:
        _apply(state, op, salt)
        state.check()
        assert layout_score(state) + 1e-9 >= state.score()


@settings(max_examples=25)
@given(st.integers(0, 10_000), ops, ops)
def test_snapshot_isolates_suffix(seed, prefix, suffix):
    inst = random_instance(n_h=2, n_m=2, len_lo=2, len_hi=4, rng=seed)
    state = SolutionState(inst, MatchScorer(inst))
    for op, salt in prefix:
        _apply(state, op, salt)
    snap = state.snapshot()
    score_before = state.score()
    matches_before = sorted(repr(m) for m in state.matches())
    for op, salt in suffix:
        _apply(state, op, salt)
    state.restore(snap)
    assert state.score() == pytest.approx(score_before)
    assert sorted(repr(m) for m in state.matches()) == matches_before
    state.check()
