"""Sites (Definition 3/5) and fragments/instances."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from fragalign.core.fragments import CSRInstance, Fragment, other_species
from fragalign.core.sites import Site, full_site
from fragalign.util.errors import InstanceError


def site(start: int, end: int) -> Site:
    return Site("H", 0, start, end)


class TestSiteClassification:
    def test_full_border_inner(self):
        n = 5
        assert site(0, 5).kind(n) == "full"
        assert site(0, 3).kind(n) == "border"
        assert site(2, 5).kind(n) == "border"
        assert site(1, 4).kind(n) == "inner"

    def test_touched_end(self):
        n = 4
        assert site(0, 2).touched_end(n) == "L"
        assert site(2, 4).touched_end(n) == "R"
        assert site(0, 4).touched_end(n) is None
        assert site(1, 3).touched_end(n) is None

    def test_bad_sites(self):
        with pytest.raises(InstanceError):
            Site("H", 0, 3, 3)
        with pytest.raises(InstanceError):
            Site("H", 0, -1, 2)
        with pytest.raises(InstanceError):
            site(0, 9).kind(5)


bounds = st.tuples(st.integers(0, 9), st.integers(1, 10)).filter(
    lambda t: t[0] < t[1]
)


class TestSiteRelations:
    @given(bounds, bounds)
    def test_hidden_is_strict_containment(self, a, b):
        s1, s2 = site(*a), site(*b)
        expect = b[0] < a[0] and a[1] < b[1]
        assert s1.hidden_by(s2) == expect

    @given(bounds, bounds)
    def test_overlap_symmetry(self, a, b):
        assert site(*a).overlaps(site(*b)) == site(*b).overlaps(site(*a))

    @given(bounds, bounds)
    def test_minus_covers_exactly(self, a, b):
        s1, s2 = site(*a), site(*b)
        pieces = s1.minus(s2)
        covered = set()
        for p in pieces:
            covered |= set(range(p.start, p.end))
        expect = set(range(a[0], a[1])) - set(range(b[0], b[1]))
        assert covered == expect

    @given(bounds, bounds)
    def test_intersect(self, a, b):
        inter = site(*a).intersect(site(*b))
        expect = set(range(a[0], a[1])) & set(range(b[0], b[1]))
        if inter is None:
            assert not expect
        else:
            assert set(range(inter.start, inter.end)) == expect

    def test_relations_need_same_fragment(self):
        other = Site("M", 0, 0, 3)
        assert not site(0, 3).overlaps(other)
        assert not site(0, 3).contains(other)

    def test_adjacent(self):
        assert site(0, 2).adjacent(site(2, 4))
        assert not site(0, 2).adjacent(site(3, 4))


class TestFragments:
    def test_fragment_validation(self):
        with pytest.raises(InstanceError):
            Fragment("X", 0, (1,))
        with pytest.raises(InstanceError):
            Fragment("H", 0, ())
        with pytest.raises(InstanceError):
            Fragment("H", 0, (1, 0))

    def test_other_species(self):
        assert other_species("H") == "M"
        assert other_species("M") == "H"
        with pytest.raises(InstanceError):
            other_species("Q")

    def test_instance_indexing_enforced(self):
        with pytest.raises(InstanceError):
            CSRInstance(
                (Fragment("H", 1, (1,)),),
                (Fragment("M", 0, (2,)),),
                __import__(
                    "fragalign.core.scoring", fromlist=["Scorer"]
                ).Scorer(),
            )

    def test_paper_example_shape(self, paper_instance):
        assert paper_instance.n_h == 2
        assert paper_instance.n_m == 2
        assert paper_instance.total_regions("H") == 4
        assert paper_instance.total_regions("M") == 4
        assert "h1" in paper_instance.describe()

    def test_full_site(self, paper_instance):
        f = paper_instance.fragment("H", 0)
        s = full_site(f)
        assert (s.start, s.end) == (0, 3)
        assert s.content(paper_instance) == f.regions

    def test_from_names_reversed_scores(self, paper_instance):
        # σ(b, tᴿ) = 3 must be retrievable both ways.
        scorer = paper_instance.scorer
        table_entries = list(scorer.pairs())
        assert any(abs(v - 3.0) < 1e-9 for _a, _b, v in table_entries)
