"""CSoP: validity, normalization, exact vs brute force."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.reductions.csop import (
    CSoPInstance,
    exact_csop,
    greedy_csop,
    normalize_solution,
    solution_from_full_pairs,
)
from fragalign.util.errors import InstanceError, SolverError
from fragalign.util.rng import as_generator


def random_csop(n_pairs: int, seed: int) -> CSoPInstance:
    gen = as_generator(seed)
    elems = [int(x) for x in gen.permutation(range(1, 2 * n_pairs + 1))]
    pairs = []
    for k in range(n_pairs):
        a, b = elems[2 * k], elems[2 * k + 1]
        pairs.append((min(a, b), max(a, b)))
    return CSoPInstance(tuple(sorted(pairs)))


def brute_force_csop(instance: CSoPInstance) -> set[int]:
    universe = list(instance.universe)
    best: set[int] = set()
    for r in range(len(universe), 0, -1):
        if r <= len(best):
            break
        for combo in combinations(universe, r):
            if instance.is_valid(combo):
                return set(combo)
    return best


class TestInstance:
    def test_partition_enforced(self):
        with pytest.raises(InstanceError):
            CSoPInstance(((1, 2), (2, 3)))
        with pytest.raises(InstanceError):
            CSoPInstance(((2, 1), (3, 4)))

    def test_validity(self):
        inst = CSoPInstance(((1, 4), (2, 3)))
        assert inst.is_valid({1, 4})  # full pair, span empty of others
        assert not inst.is_valid({1, 2, 4})  # 2 inside span of (1,4)
        assert inst.is_valid({1, 2, 3})  # (2,3) full, span empty

    def test_normal(self):
        inst = CSoPInstance(((1, 4), (2, 3)))
        assert inst.is_normal({1, 2})
        assert not inst.is_normal({1})


class TestSolvers:
    @settings(max_examples=20)
    @given(st.integers(2, 5), st.integers(0, 10_000))
    def test_exact_matches_brute_force(self, n_pairs, seed):
        inst = random_csop(n_pairs, seed)
        got = exact_csop(inst)
        expect = brute_force_csop(inst)
        assert inst.is_valid(got)
        assert len(got) == len(expect)

    @settings(max_examples=20)
    @given(st.integers(2, 8), st.integers(0, 10_000))
    def test_greedy_valid_and_at_least_n(self, n_pairs, seed):
        inst = random_csop(n_pairs, seed)
        got = greedy_csop(inst)
        assert inst.is_valid(got)
        assert len(got) >= n_pairs  # one element per pair is always free

    def test_exact_size_guard(self):
        inst = random_csop(25, 0)
        with pytest.raises(SolverError):
            exact_csop(inst, max_pairs=10)

    def test_solution_from_full_pairs_disjointness_guard(self):
        inst = CSoPInstance(((1, 4), (2, 3)))
        with pytest.raises(SolverError):
            solution_from_full_pairs(inst, [(1, 4), (2, 3)])


class TestNormalization:
    @settings(max_examples=20)
    @given(st.integers(2, 6), st.integers(0, 10_000))
    def test_normalization_preserves_size_and_validity(self, n_pairs, seed):
        inst = random_csop(n_pairs, seed)
        # Start from a valid but possibly non-normal solution.
        U = exact_csop(inst)
        # Drop elements to de-normalize.
        U_small = set(list(sorted(U))[: max(1, len(U) // 2)])
        if not inst.is_valid(U_small):
            return
        norm = normalize_solution(inst, U_small)
        assert inst.is_valid(norm)
        assert inst.is_normal(norm)
        assert len(norm) >= len(U_small)

    def test_rejects_invalid_input(self):
        inst = CSoPInstance(((1, 4), (2, 3)))
        with pytest.raises(SolverError):
            normalize_solution(inst, {1, 2, 4})
