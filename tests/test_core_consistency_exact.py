"""Layout generation (Remark 1), consistency screens (Fig. 3), the
exact solver and Definition-2 match derivation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.core.conjecture import Arrangement, identity_arrangement, score_pair
from fragalign.core.consistency import (
    check_consistent,
    find_inconsistency,
    layout,
    layout_score,
)
from fragalign.core.exact import derive_matches, exact_csr, state_from_arrangements
from fragalign.core.fragments import CSRInstance
from fragalign.core.generators import planted_instance, random_instance
from fragalign.core.match_score import MatchScorer
from fragalign.core.matches import Match
from fragalign.core.sites import Site
from fragalign.core.state import SolutionState
from fragalign.util.errors import SolverError


class TestExact:
    def test_paper_example_is_11(self, paper_instance):
        res = exact_csr(paper_instance)
        assert res.score == pytest.approx(11.0)

    def test_search_size_guard(self):
        inst = random_instance(n_h=6, n_m=6, rng=0)
        with pytest.raises(SolverError):
            exact_csr(inst, max_pairs=100)

    @given(st.integers(0, 3_000))
    @settings(max_examples=15)
    def test_exact_at_least_any_arrangement(self, seed):
        inst = random_instance(n_h=2, n_m=2, rng=seed)
        res = exact_csr(inst)
        arr_h = identity_arrangement(inst, "H")
        arr_m = identity_arrangement(inst, "M")
        assert res.score + 1e-9 >= score_pair(inst, arr_h, arr_m)

    def test_planted_lower_bound(self):
        p = planted_instance(n_blocks=5, n_h=2, n_m=2, rng=3)
        res = exact_csr(p.instance)
        assert res.score + 1e-9 >= p.planted_score


class TestDeriveMatches:
    @given(st.integers(0, 3_000))
    @settings(max_examples=15)
    def test_remark1_score_equality(self, seed):
        inst = random_instance(n_h=2, n_m=3, rng=seed)
        arr_h = identity_arrangement(inst, "H")
        arr_m = identity_arrangement(inst, "M")
        matches = derive_matches(inst, arr_h, arr_m)
        total = sum(m.score for m in matches)
        assert total == pytest.approx(score_pair(inst, arr_h, arr_m))

    def test_paper_fig5_matches(self, paper_instance):
        # Fig. 5: ω1=(h1(1,2), m1(1,2)), ω2=(h1(3,3), m2(1,1)),
        # ω3=(h2ᴿ(1,1), m2(2,2)) — in our 0-based coords below.
        arr_h = Arrangement("H", ((0, False), (1, True)))
        arr_m = Arrangement("M", ((0, False), (1, False)))
        matches = derive_matches(paper_instance, arr_h, arr_m)
        got = {
            (m.h_site.fid, m.h_site.start, m.h_site.end,
             m.m_site.fid, m.m_site.start, m.m_site.end, m.score)
            for m in matches
        }
        assert (0, 0, 2, 0, 0, 2, 4.0) in got  # ω1 = (h1(1,2), m1(1,2))
        assert (0, 2, 3, 1, 0, 1, 5.0) in got  # ω2 = (h1(3,3), m2(1,1))
        assert (1, 0, 1, 1, 1, 2, 2.0) in got  # ω3 = (h2ᴿ(1,1), m2(2,2))
        assert len(matches) == 3
        assert sum(m.score for m in matches) == pytest.approx(11.0)

    @given(st.integers(0, 3_000))
    @settings(max_examples=15)
    def test_seeded_state_is_consistent(self, seed):
        inst = random_instance(n_h=2, n_m=2, rng=seed)
        res = exact_csr(inst)
        state = state_from_arrangements(inst, res.arr_h, res.arr_m)
        # The layout must realize at least the state's score.
        assert layout_score(state) + 1e-9 >= state.score()


class TestLayout:
    def test_layout_covers_all_fragments(self, paper_instance):
        state = SolutionState(paper_instance, MatchScorer(paper_instance))
        arr_h, arr_m = layout(state)
        assert len(arr_h.order) == paper_instance.n_h
        assert len(arr_m.order) == paper_instance.n_m

    def test_layout_realizes_two_island(self):
        inst = CSRInstance.build(
            [(1, 2), (7,)],
            [(3, 4), (8,)],
            {(2, 3): 5.0, (1, 8): 2.0, (7, 4): 2.0},
        )
        state = SolutionState(inst, MatchScorer(inst))
        state.add_border(Site("H", 0, 1, 2), Site("M", 0, 0, 1))
        state.add_full(("M", 1), Site("H", 0, 0, 1))
        state.add_full(("H", 1), Site("M", 0, 1, 2))
        check_consistent(state)
        assert layout_score(state) == pytest.approx(9.0)

    def test_layout_two_island_all_end_geometries(self):
        # Border matches at every end combination must lay out.
        for h_cut, m_cut in (((1, 2), (0, 1)), ((0, 1), (1, 2))):
            inst = CSRInstance.build(
                [(1, 2)],
                [(3, 4)],
                {
                    (2, 3): 5.0,
                    (1, 4): 5.0,
                    (2, -4): 5.0,
                    (1, -3): 5.0,
                },
            )
            state = SolutionState(inst, MatchScorer(inst))
            state.add_border(
                Site("H", 0, *h_cut), Site("M", 0, *m_cut)
            )
            assert layout_score(state) + 1e-9 >= state.score()


class TestFig3Screens:
    def test_orientation_conflict_detected(self):
        m1 = Match(Site("H", 0, 0, 1), Site("M", 0, 0, 1), False, "full", 1.0)
        m2 = Match(Site("H", 0, 2, 3), Site("M", 0, 2, 3), True, "full", 1.0)
        msg = find_inconsistency([m1, m2])
        assert msg and "orientation conflict" in msg

    def test_order_violation_detected(self):
        m1 = Match(Site("H", 0, 0, 1), Site("M", 0, 2, 3), False, "full", 1.0)
        m2 = Match(Site("H", 0, 2, 3), Site("M", 0, 0, 1), False, "full", 1.0)
        msg = find_inconsistency([m1, m2])
        assert msg and "order violation" in msg

    def test_reversed_pairs_order(self):
        # With rev=True the m-sites must DEcrease along h — valid case.
        m1 = Match(Site("H", 0, 0, 1), Site("M", 0, 2, 3), True, "full", 1.0)
        m2 = Match(Site("H", 0, 2, 3), Site("M", 0, 0, 1), True, "full", 1.0)
        assert find_inconsistency([m1, m2]) is None

    def test_overlap_detected(self):
        m1 = Match(Site("H", 0, 0, 2), Site("M", 0, 0, 2), False, "full", 1.0)
        m2 = Match(Site("H", 1, 0, 1), Site("M", 0, 1, 3), False, "full", 1.0)
        msg = find_inconsistency([m1, m2])
        assert msg and "overlap" in msg

    def test_consistent_set_passes(self, paper_instance):
        arr_h = Arrangement("H", ((0, False), (1, True)))
        arr_m = Arrangement("M", ((0, False), (1, False)))
        matches = derive_matches(paper_instance, arr_h, arr_m)
        assert find_inconsistency(matches) is None
