"""Observability v2: SLOs, tail sampling + exemplars, journal, dash.

Standing invariants (the issue's acceptance criteria live here):

* tail sampling at a 10% head rate retains **100%** of errored and
  above-threshold-latency traces — only boring traces are shed;
* the trace ring buffer never loses or duplicates a span under
  concurrent drain + write, and its bound holds;
* exposition merge fails loudly on metric-type conflicts and
  round-trips empty histograms and NaN/Inf gauges;
* replaying a journal reproduces the recorded cache-hit structure
  (synthetic sequences preserve the dedup graph);
* the SLO engine's multi-window burn alerts page on fast burn and
  stay quiet on a healthy service.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time

import pytest

from fragalign.obs import (
    MetricsRegistry,
    TailSampler,
    TraceBuffer,
    Tracer,
    build_state,
    diff_report,
    exemplar_for_quantile,
    merge_expositions,
    new_trace_context,
    parse_exposition,
    read_journal,
    render_frame,
    replay_journal,
    synth_sequence,
)
from fragalign.obs.journal import JournalWriter, build_record, format_diff_report
from fragalign.obs.kprof import KernelProfiler, top_rows
from fragalign.obs.slo import (
    PAGE_BURN,
    SLOEngine,
    format_slo_report,
    parse_slo,
)
from fragalign.service import AlignmentClient, AlignmentService, ServiceConfig


# -- in-thread service harness (mirrors test_obs.py) -------------------


def _entry(trace_id: str, name: str) -> tuple:
    """A raw deferred-span tuple (what leaf_entry builds from a ctx)."""
    return (trace_id, trace_id, name, 0.0, 0.001, None)


def _serve_in_thread(config: ServiceConfig):
    holder: dict = {}
    ready = threading.Event()

    def target():
        async def main():
            service = AlignmentService(config)
            await service.start()
            holder["service"] = service
            holder["port"] = service.port
            holder["loop"] = asyncio.get_running_loop()
            ready.set()
            await service.wait_closed()
            service.close()

        asyncio.run(main())

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    assert ready.wait(10), "service failed to start"
    holder["thread"] = thread
    return holder


def _stop_shard(holder) -> None:
    try:
        holder["loop"].call_soon_threadsafe(holder["service"].stop)
    except RuntimeError:
        pass
    holder["thread"].join(timeout=10)
    assert not holder["thread"].is_alive()


# -- tail-based sampling -----------------------------------------------


class TestTailSampler:
    def test_head_rate_is_deterministic_stride(self):
        sampler = TailSampler(head_rate=0.1, warmup=10_000)
        kept = sum(
            sampler.decide("score", 0.001, True).retain for _ in range(100)
        )
        assert kept == 10

    def test_acceptance_drill_errors_and_slow_always_retained(self):
        """The issue's acceptance criterion: at a 10% head rate, 100%
        of errored and above-threshold traces survive sampling."""
        sampler = TailSampler(
            head_rate=0.1, slow_factor=3.0, min_slow_s=0.0, warmup=20
        )
        # Warm the EWMA with boring 1ms traffic.
        for _ in range(200):
            sampler.decide("score", 0.001, True)
        threshold = sampler.slow_threshold("score")
        assert 0.001 < threshold < 0.01

        retained_errors = sum(
            sampler.decide("score", 0.001, False).retain for _ in range(50)
        )
        retained_slow = sum(
            sampler.decide("score", 0.050, True).retain for _ in range(50)
        )
        assert retained_errors == 50  # 100%
        assert retained_slow == 50  # 100%

    def test_reasons_and_counters(self):
        reg = MetricsRegistry()
        sampler = TailSampler(head_rate=0.5, warmup=5, registry=reg)
        for _ in range(10):
            sampler.decide("score", 0.001, True)
        assert sampler.decide("score", 0.001, False).reason == "error"
        assert sampler.decide("score", 10.0, True).reason == "slow"
        # Tallies batch on the hot path; publish() flushes them to the
        # registry (the server does this at every scrape).
        sampler.publish()
        text = reg.render()
        assert 'fragalign_traces_retained_total{reason="error"} 1' in text
        assert 'fragalign_traces_retained_total{reason="slow"} 1' in text
        # A second publish with no new decisions is a no-op, not a
        # double count.
        sampler.publish()
        assert 'fragalign_traces_retained_total{reason="error"} 1' in reg.render()

    def test_warmup_defers_slow_classification(self):
        sampler = TailSampler(head_rate=1.0, warmup=50)
        for _ in range(10):
            decision = sampler.decide("score", 5.0, True)
            assert decision.reason == "head"  # EWMA not trusted yet

    def test_per_op_isolation(self):
        sampler = TailSampler(head_rate=1.0, warmup=5, min_slow_s=0.0)
        for _ in range(50):
            sampler.decide("score", 0.001, True)
            sampler.decide("align", 1.0, True)
        # 10ms is slow for score (1ms mean), boring for align (1s mean).
        assert sampler.decide("score", 0.010, True).reason == "slow"
        assert sampler.decide("align", 0.010, True).reason == "head"


# -- trace buffer under concurrency ------------------------------------


class TestTraceBufferConcurrency:
    def test_concurrent_drain_and_write_loses_nothing(self):
        buf = TraceBuffer(maxlen=100_000)
        n_writers, per_writer = 4, 2_000
        drained: list = []
        stop = threading.Event()

        def writer(w: int) -> None:
            for k in range(per_writer):
                buf.append(_entry(f"t{w}-{k}", "work"))

        def drainer() -> None:
            while not stop.is_set():
                drained.extend(buf.drain())
            drained.extend(buf.drain())

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(n_writers)]
        d = threading.Thread(target=drainer)
        d.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        d.join()
        ids = [s.trace_id for s in drained]
        assert len(ids) == n_writers * per_writer  # nothing lost
        assert len(set(ids)) == len(ids)  # nothing duplicated
        assert buf.dropped == 0

    def test_ring_bound_holds_under_concurrent_writes(self):
        buf = TraceBuffer(maxlen=64)
        threads = [
            threading.Thread(
                target=lambda w=w: [
                    buf.append(_entry(f"t{w}-{k}", "x")) for k in range(500)
                ]
            )
            for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(buf) <= 64
        assert buf.dropped == 4 * 500 - len(buf)
        assert len(buf.drain()) <= 64

    def test_discard_removes_one_trace_without_counting_dropped(self):
        buf = TraceBuffer(maxlen=100)
        for k in range(10):
            buf.append(_entry("keep", f"s{k}"))
            buf.append(_entry("toss", f"s{k}"))
        assert buf.discard("toss") == 10
        spans = buf.drain()
        assert {s.trace_id for s in spans} == {"keep"}
        assert len(spans) == 10
        assert buf.dropped == 0  # discard is deliberate, not pressure

    def test_discard_missing_trace_is_noop(self):
        buf = TraceBuffer(maxlen=10)
        buf.append(_entry("a", "s"))
        assert buf.discard("nope") == 0
        assert len(buf) == 1


# -- kernel profiler under concurrency ---------------------------------


class TestKprofConcurrent:
    def test_concurrent_recording_is_exact(self):
        """Regression: the parallel backend dispatches kernels from
        several worker threads at once; totals must come out exact."""
        reg = MetricsRegistry()
        prof = KernelProfiler(reg)
        n_threads, per_thread = 8, 500

        def worker() -> None:
            for _ in range(per_thread):
                prof.record("score_many", "parallel", "global", [(64, 64)], 0.001)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        rows = top_rows(reg)
        assert len(rows) == 1
        row = rows[0]
        assert row["calls"] == n_threads * per_thread
        assert row["pairs"] == n_threads * per_thread
        assert row["cells"] == n_threads * per_thread * 64 * 64
        assert row["seconds"] == pytest.approx(n_threads * per_thread * 0.001)


# -- exposition hardening: merge, NaN/Inf, exemplars -------------------


class TestExpositionHardening:
    def test_empty_histogram_round_trips(self):
        reg = MetricsRegistry()
        reg.histogram("empty_seconds", "help")
        text = reg.render()
        parsed = parse_exposition(text)
        assert parsed["samples"][("empty_seconds_count", ())] == 0.0
        merged = merge_expositions([text, text])
        reparsed = parse_exposition(merged)
        assert reparsed["samples"][("empty_seconds_count", ())] == 0.0

    def test_nan_and_inf_gauges_round_trip(self):
        reg = MetricsRegistry()
        g = reg.gauge("weird", "help", labels=("k",))
        g.set(float("nan"), k="nan")
        g.set(float("inf"), k="pinf")
        g.set(float("-inf"), k="ninf")
        samples = parse_exposition(reg.render())["samples"]
        assert math.isnan(samples[("weird", (("k", "nan"),))])
        assert samples[("weird", (("k", "pinf"),))] == float("inf")
        assert samples[("weird", (("k", "ninf"),))] == float("-inf")

    def test_merge_raises_on_type_conflict(self):
        a = MetricsRegistry()
        a.counter("thing", "help").inc()
        b = MetricsRegistry()
        b.gauge("thing", "help").set(1.0)
        with pytest.raises(ValueError, match="type conflict"):
            merge_expositions([a.render(), b.render()])

    def test_exemplar_round_trip_and_merge_keeps_newest(self):
        import re

        def one(trace_id: str, when: float) -> str:
            reg = MetricsRegistry()
            h = reg.histogram("lat_seconds", "help")
            h.observe(0.005, exemplar=trace_id)
            # Pin the exemplar timestamp so merge recency is testable.
            return re.sub(
                r'(\{trace_id="[^"]+"\} \S+) \S+$',
                rf"\1 {when!r}",
                reg.render(),
                flags=re.MULTILINE,
            )

        old, new = one("trace-old", 100.0), one("trace-new", 200.0)
        parsed = parse_exposition(merge_expositions([old, new]))
        exemplars = parsed["exemplars"]
        assert len(exemplars) == 1
        (trace_id, value, ts) = next(iter(exemplars.values()))
        assert trace_id == "trace-new"
        assert ts == 200.0

    def test_exemplar_for_quantile_finds_nearest_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "help")
        for _ in range(99):
            h.observe(0.001)
        h.observe(0.5, exemplar="slow-trace")
        parsed = parse_exposition(reg.render())
        ex = exemplar_for_quantile(parsed, "lat_seconds", 0.99)
        assert ex is not None
        assert ex["trace_id"] == "slow-trace"

    def test_exemplar_absent_returns_none(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "help")
        h.observe(0.001)
        parsed = parse_exposition(reg.render())
        assert exemplar_for_quantile(parsed, "lat_seconds", 0.99) is None
        assert exemplar_for_quantile(parsed, "missing_seconds", 0.99) is None


# -- SLO engine --------------------------------------------------------


def _slo_samples(good: float, total: float) -> dict:
    """A minimal parsed exposition for a `score availability` target."""
    return {
        "samples": {
            ("fragalign_requests_total", (("op", "score"),)): total,
            ("fragalign_errors_by_op_total", (("op", "score"),)): total - good,
        }
    }


class TestSLOEngine:
    def test_parse_latency_spec(self):
        t = parse_slo("score p99 < 50ms @ 99.9%")
        assert (t.op, t.kind) == ("score", "latency")
        assert t.threshold_s == pytest.approx(0.050)
        assert t.objective == pytest.approx(0.999)
        assert t.name == "score_latency_50ms"

    def test_parse_quantile_doubles_as_objective(self):
        t = parse_slo("align p95 < 2s")
        assert t.objective == pytest.approx(0.95)
        assert t.threshold_s == pytest.approx(2.0)

    def test_parse_availability_spec(self):
        t = parse_slo("align availability @ 99.9")
        assert (t.kind, t.name) == ("availability", "align_availability")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_slo("score should be fast please")

    def test_healthy_service_stays_ok(self):
        engine = SLOEngine.from_specs(["score availability @ 99%"])
        t0 = 1_000_000.0
        for k in range(100):
            engine.sample(_slo_samples(good=100.0 * k, total=100.0 * k), now=t0 + 60 * k)
        (report,) = engine.evaluate(now=t0 + 60 * 99)
        assert report["alert"] == "ok"
        assert report["compliance"] == pytest.approx(1.0)
        assert all(burn == 0.0 for burn in report["windows"].values())

    def test_fast_burn_pages(self):
        engine = SLOEngine.from_specs(["score availability @ 99.9%"])
        t0 = 1_000_000.0
        # 2h of clean history, then every request fails for 20 minutes.
        for k in range(120):
            engine.sample(_slo_samples(good=100.0 * k, total=100.0 * k), now=t0 + 60 * k)
        good = 100.0 * 119
        for k in range(20):
            engine.sample(
                _slo_samples(good=good, total=100.0 * (120 + k)),
                now=t0 + 60 * (120 + k),
            )
        (report,) = engine.evaluate(now=t0 + 60 * 139)
        assert report["windows"]["5m"] >= PAGE_BURN
        assert report["windows"]["1h"] >= PAGE_BURN
        assert report["alert"] == "page"

    def test_window_clamps_to_uptime(self):
        engine = SLOEngine.from_specs(["score availability @ 99%"])
        t0 = 1_000_000.0
        engine.sample(_slo_samples(good=100.0, total=100.0), now=t0)
        engine.sample(_slo_samples(good=100.0, total=200.0), now=t0 + 60)
        (report,) = engine.evaluate(now=t0 + 60)
        # All four windows clamp to the same 2-snapshot history, whose
        # delta is 100 requests, all bad: burn = 1.0 / 1% budget.
        assert report["windows"]["6h"] == pytest.approx(1.0 / 0.01)
        assert report["windows"]["5m"] == report["windows"]["6h"]

    def test_no_data_alert(self):
        engine = SLOEngine.from_specs(["align availability @ 99%"])
        (report,) = engine.evaluate()
        assert report["alert"] == "no-data"
        assert "no-data" in format_slo_report([report])

    def test_export_gauges_renders(self):
        engine = SLOEngine.from_specs(["score availability @ 99%"])
        engine.sample(_slo_samples(good=99.0, total=100.0), now=1_000.0)
        reg = MetricsRegistry()
        engine.export_gauges(reg, now=1_000.0)
        text = reg.render()
        assert 'fragalign_slo_burn_rate{slo="score_availability",window="5m"}' in text
        assert 'fragalign_slo_compliance{slo="score_availability"} 0.99' in text
        assert 'fragalign_slo_alert{slo="score_availability"} 0' in text

    def test_latency_target_reads_histogram(self):
        engine = SLOEngine.from_specs(["score p99 < 50ms @ 99%"])
        reg = MetricsRegistry()
        h = reg.histogram("fragalign_score_latency_seconds", "help")
        for _ in range(99):
            h.observe(0.001)
        h.observe(5.0)  # one blown request
        engine.sample(parse_exposition(reg.render()), now=1_000.0)
        (report,) = engine.evaluate(now=1_000.0)
        assert report["total"] == 100.0
        assert report["good"] == 99.0

    def test_duplicate_targets_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine.from_specs(
                ["score availability @ 99%", "score availability @ 99.9%"]
            )


# -- journal + replay --------------------------------------------------


class TestJournal:
    def test_record_sanitized_by_default(self):
        rec = build_record(
            "score", "ACGT" * 8, "TTTT" * 8, {"mode": "global", "band": None},
            ok=True, duration_s=0.004, ts=1.0,
        )
        assert "a" not in rec and "b" not in rec
        assert rec["a_len"] == 32 and len(rec["a_sha"]) == 12
        assert rec["mode"] == "global"
        assert "band" not in rec  # None knobs elided

    def test_record_can_opt_sequences_in(self):
        rec = build_record(
            "score", "ACGT", "TTAA", {}, ok=True, include_sequences=True, ts=1.0
        )
        assert (rec["a"], rec["b"]) == ("ACGT", "TTAA")

    def test_rotation_bounds_disk_and_preserves_order(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        writer = JournalWriter(path, max_bytes=2_000, segments=3)
        for k in range(200):
            writer.write({"seq": k, "pad": "x" * 40})
        writer.close()
        segments = [p.name for p in sorted(tmp_path.iterdir())]
        assert len(segments) <= 3
        records = read_journal(path)
        assert len(records) < 200  # oldest segments fell off
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs)  # oldest-first, in arrival order
        assert seqs[-1] == 199

    def test_torn_line_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"ok": true}\n{"torn": ')
        assert read_journal(str(path)) == [{"ok": True}]

    def test_write_failure_flips_failed_not_raises(self, tmp_path):
        writer = JournalWriter(str(tmp_path / "nope" / "j.jsonl"))
        writer.write({"k": 1})  # parent dir missing -> OSError inside
        assert writer.failed
        writer.write({"k": 2})  # and subsequent writes no-op
        writer.close()

    def test_synth_sequence_deterministic_and_distinct(self):
        a1 = synth_sequence("abcdef012345", 64)
        a2 = synth_sequence("abcdef012345", 64)
        b = synth_sequence("fedcba543210", 64)
        assert a1 == a2 and len(a1) == 64
        assert a1 != b
        assert set(a1) <= set("ACGT")

    def test_replay_preserves_dedup_structure(self):
        """The acceptance criterion: replayed hit-rate within ±5 points
        of recorded.  A perfect cache replay is exact: repeated hashes
        synthesize identical pairs, so hits land exactly where the
        recorded traffic's hits did."""
        pairs = [("AAAA" + "C" * 28, "GGGG" + "T" * 28), ("ACAC" * 8, "GTGT" * 8)]
        records = []
        seen: set = set()
        for k in range(40):
            a, b = pairs[k % 2] if k % 4 < 2 else (f"U{k}" + "A" * 30, "C" * 32)
            hit = (a, b) in seen
            seen.add((a, b))
            records.append(
                build_record(
                    "score", a, b, {"mode": "global"},
                    ok=True, cached=hit, duration_s=0.002, ts=float(k),
                )
            )
        recorded_hits = sum(1 for r in records if r["cached"])

        cache: set = set()

        def send(op, a, b, knobs):
            hit = (a, b) in cache
            cache.add((a, b))
            return True, hit

        results = replay_journal(records, send, speed=0)
        diff = diff_report(records, results)
        assert diff["recorded"]["hit_rate"] == pytest.approx(recorded_hits / 40)
        assert abs(diff["hit_rate_delta"]) <= 0.05
        text = format_diff_report(diff)
        assert "cache hit rate" in text

    def test_replay_paces_but_caps_gaps(self):
        records = [
            build_record("score", "A" * 8, "C" * 8, {}, ok=True, ts=0.0),
            build_record("score", "A" * 8, "C" * 8, {}, ok=True, ts=100.0),
        ]
        start = time.perf_counter()
        replay_journal(records, lambda *a: (True, False), speed=1.0, max_gap_s=0.05)
        assert time.perf_counter() - start < 2.0  # 100s gap capped


# -- dashboard pure halves ---------------------------------------------


class TestDash:
    def test_build_state_and_render_single_server(self):
        reg = MetricsRegistry()
        reg.counter("fragalign_requests_total", "h", labels=("op",)).inc(
            5, op="score"
        )
        reg.histogram("fragalign_request_latency_seconds", "h").observe(0.004)
        stats = {
            "requests": {"total": 5, "errors": 0},
            "latency_ms": {"p99": 4.2},
            "cache": {"hit_rate": 0.5},
            "resilience": {"degraded_mode": False, "shed": 0, "deadline_exceeded": 0},
        }
        state = build_state(
            cluster_stats={"router": {}, "aggregate": {}, "shards": {"s1": stats}},
            slo_reports=[
                {
                    "name": "score_availability",
                    "op": "score",
                    "kind": "availability",
                    "objective": 0.999,
                    "threshold_s": None,
                    "windows": {"5m": 0.0, "1h": 0.0, "30m": 0.0, "6h": 0.0},
                    "compliance": 1.0,
                    "alert": "ok",
                    "good": 5,
                    "total": 5,
                }
            ],
            metrics_text=reg.render(),
            label="test",
        )
        assert "router" not in state  # single server: no router line
        frame = render_frame(state, color=False)
        assert "fragalign dash" in frame
        assert "s1" in frame
        assert "score_availability" in frame
        assert "\x1b[" not in frame  # color off means no ANSI

    def test_render_marks_down_shard_and_paints_alerts(self):
        state = build_state(
            cluster_stats={
                "router": {
                    "breakers": {"s1": "open"},
                    "live_shards": [],
                    "configured_shards": ["s1"],
                    "failovers": 2,
                    "retries": 1,
                    "hedges": 0,
                    "breaker_fast_fails": 3,
                },
                "aggregate": {},
                "shards": {"s1": {"error": "ConnectionRefusedError"}},
            },
            slo_reports=[
                {
                    "name": "score_availability",
                    "op": "score",
                    "kind": "availability",
                    "objective": 0.999,
                    "threshold_s": None,
                    "windows": {"5m": 50.0, "1h": 30.0, "30m": 20.0, "6h": 10.0},
                    "compliance": 0.5,
                    "alert": "page",
                    "good": 1,
                    "total": 2,
                }
            ],
        )
        frame = render_frame(state, color=True)
        assert "DOWN" in frame
        assert "shards 0/1" in frame
        assert "\x1b[31m" in frame  # red paint on the paging SLO / down shard

    def test_empty_state_renders_placeholder(self):
        assert "no data yet" in render_frame(build_state(), color=False)


# -- end-to-end: server with sampling + journal + slo op ---------------


@pytest.fixture()
def sampled_server(tmp_path):
    holder = _serve_in_thread(
        ServiceConfig(
            port=0,
            max_batch=16,
            max_delay=0.002,
            cache_size=256,
            trace_sample=0.1,
            journal=str(tmp_path / "journal.jsonl"),
        )
    )
    holder["journal_path"] = str(tmp_path / "journal.jsonl")
    yield holder
    _stop_shard(holder)


class TestServerIntegration:
    def test_sampling_journal_slo_exemplars_end_to_end(self, sampled_server):
        port = sampled_server["port"]
        with AlignmentClient("127.0.0.1", port) as client:
            pairs = [("ACGTACGT", "ACGGACGT"), ("TTTTCCCC", "TTTTGCCC")]
            for k in range(30):
                a, b = pairs[k % 2]
                client.score(a, b)
            # One guaranteed error: banded mode without a band.
            with pytest.raises(Exception):
                client.score("ACGT", "ACGT", mode="banded")
            slos = client.slo()["slos"]
            text = client.metrics()

        names = {s["name"] for s in slos}
        assert "score_availability" in names
        score_avail = next(s for s in slos if s["name"] == "score_availability")
        assert score_avail["total"] >= 31

        parsed = parse_exposition(text)
        samples = parsed["samples"]
        # The errored request was always retained (tail sampling).
        assert (
            samples.get(
                ("fragalign_traces_retained_total", (("reason", "error"),)), 0
            )
            >= 1
        )
        # Most boring traces were sampled out at a 10% head rate.
        assert samples.get(("fragalign_traces_sampled_out_total", ()), 0) > 0
        # SLO gauges ride the exposition.
        assert ("fragalign_slo_alert", (("slo", "score_availability"),)) in samples
        # At least one exemplar pins a retained trace to a bucket.
        assert parsed["exemplars"]

        # The journal recorded every pair request, sanitized.
        records = read_journal(sampled_server["journal_path"])
        assert len(records) == 31
        assert all("a" not in r for r in records)
        assert sum(1 for r in records if not r["ok"]) == 1
        assert sum(1 for r in records if r.get("disposition") == "cache_hit") > 0

    def test_retained_trace_resolvable_not_sampled_out_ones(self, sampled_server):
        port = sampled_server["port"]
        with AlignmentClient("127.0.0.1", port) as client:
            for k in range(40):
                client.score("ACGTACGT", "ACGGACGT")
            text = client.metrics()
            parsed = parse_exposition(text)
            ex = exemplar_for_quantile(
                parsed, "fragalign_request_latency_seconds", 0.99
            )
            assert ex is not None
            reply = client.trace_spans(ex["trace_id"])
        assert reply["spans"], "exemplar must resolve to a retained trace"
        assert {s["trace_id"] for s in reply["spans"]} == {ex["trace_id"]}

    def test_client_trace_bypasses_sampling(self, sampled_server):
        """A client-initiated trace context is always retained — the
        operator asked for that trace explicitly."""
        port = sampled_server["port"]
        with AlignmentClient("127.0.0.1", port) as client:
            for _ in range(5):
                ctx = new_trace_context()
                client.score("ACGTACGT", "TTGGAACC", trace=ctx)
                reply = client.trace_spans(ctx.trace_id)
                assert reply["spans"], "explicit traces must never be shed"
