"""Exact 1-CSR and the true ratio-2 CSR combinator it enables."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.core.exact import exact_csr
from fragalign.core.generators import random_instance
from fragalign.core.one_csr import solve_one_csr, solve_one_csr_exact
from fragalign.reductions.to_one_csr import combine_one_csr
from fragalign.util.errors import SolverError

seeds = st.integers(0, 10_000)


@given(seeds)
@settings(max_examples=10)
def test_exact_one_csr_matches_exhaustive(seed):
    inst = random_instance(n_h=3, n_m=1, len_lo=1, len_hi=3, rng=seed)
    try:
        sol = solve_one_csr_exact(inst, max_items=40)
    except SolverError:
        return  # too many items for the oracle — legal refusal
    opt = exact_csr(inst).score
    assert sol.score == pytest.approx(opt, abs=1e-6)


@given(seeds)
@settings(max_examples=10)
def test_exact_dominates_tpa(seed):
    inst = random_instance(n_h=3, n_m=1, len_lo=1, len_hi=3, rng=seed)
    try:
        exact_sol = solve_one_csr_exact(inst, max_items=40)
    except SolverError:
        return
    tpa_sol = solve_one_csr(inst)
    assert exact_sol.score + 1e-9 >= tpa_sol.score


@given(seeds)
@settings(max_examples=8)
def test_true_ratio_two_combinator(seed):
    """Theorem 3 with r = 1: A′(exact 1-CSR) is a 2-approximation."""
    inst = random_instance(n_h=2, n_m=2, len_lo=1, len_hi=2, rng=seed)

    def solver(sub):
        return solve_one_csr_exact(sub, max_items=60)

    try:
        sol = combine_one_csr(inst, solver)
    except SolverError:
        return
    opt = exact_csr(inst).score
    assert 2.0 * sol.score + 1e-6 >= opt


def test_item_guard():
    inst = random_instance(
        n_h=5, n_m=1, len_lo=4, len_hi=6, score_density=8.0, rng=0
    )
    with pytest.raises(SolverError):
        solve_one_csr_exact(inst, max_items=2)
