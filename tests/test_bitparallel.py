"""The native backend: bit-parallel + striped-SW kernels and routing.

Standing invariants:

* every accelerated (op, model, mode) combo scores **bit-for-bit**
  like the numpy kernels and the per-cell references — the C
  extension, the numpy-uint64 fallback, and the oracles form a
  three-way parity triangle (``bitparallel_scores_batch`` vs
  ``bitparallel_score_reference``, striped SW vs
  ``local_score_reference``);
* word-boundary lengths (63/64/65, 127/128/129) and degenerate
  (empty, ``N``-laden) sequences are exercised explicitly — the
  bit-parallel kernels work in 64-cell words and the eq tables cover
  A/C/G/T only;
* capability probing is an optimization contract, not a correctness
  one: un-accelerated combos fall through to numpy with identical
  results, both through the facade and on the backend directly;
* ``backend`` is a per-request knob end to end: service round-trips
  honor it, unknown names fail only their own request.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from fragalign.align.bitparallel import (
    bitparallel_score_reference,
    bitparallel_scores_batch,
    flat_model_family,
)
from fragalign.align.pairwise import (
    affine_banded_align_batch,
    affine_banded_scores_batch,
    affine_scores_batch,
    global_score_reference,
    local_score_reference,
    overlap_score_reference,
)
from fragalign.align.scoring_matrices import SubstitutionModel, unit_dna
from fragalign._native import HAVE_NATIVE
from fragalign.engine import AlignmentEngine, NativeBackend, get_backend
from fragalign.engine.backends import NumpyBackend

# Word-boundary lengths: the kernels pack 64 DP cells per uint64 word.
BOUNDARY_LENGTHS = [1, 2, 3, 5, 17, 63, 64, 65, 127, 128, 129, 200]

_ENC = np.full(256, 4, dtype=np.uint8)
for _i, _ch in enumerate("ACGTN"):
    _ENC[ord(_ch)] = _i


def _enc(s: str) -> np.ndarray:
    return _ENC[np.frombuffer(s.encode(), dtype=np.uint8)]


def _rand_seq(rng, n: int, alphabet: str = "ACGT") -> str:
    return "".join(alphabet[c] for c in rng.integers(0, len(alphabet), size=n))


def _lev_model(c: float = 1.0) -> SubstitutionModel:
    matrix = np.full((5, 5), -c)
    np.fill_diagonal(matrix, 0.0)
    matrix[4, :] = 0.0
    matrix[:, 4] = 0.0
    return SubstitutionModel(matrix=matrix, gap=-c)


FLAT_MODELS = {
    "unit": unit_dna(),
    "unit_scaled": unit_dna(match=2.0, mismatch=-2.0, gap=-2.0),
    "unit_half": unit_dna(match=0.5, mismatch=-0.5, gap=-0.5),
    "lev": _lev_model(),
    "lev_half": _lev_model(0.5),
}


class TestFlatModelFamily:
    def test_unit_and_lev_families_detected(self):
        assert flat_model_family(unit_dna()) == ("unit", 1.0)
        assert flat_model_family(unit_dna(2.0, -2.0, -2.0)) == ("unit", 2.0)
        assert flat_model_family(_lev_model()) == ("lev", 1.0)
        assert flat_model_family(_lev_model(0.5)) == ("lev", 0.5)

    def test_non_flat_models_rejected(self):
        from fragalign.align.scoring_matrices import transition_transversion

        assert flat_model_family(transition_transversion()) is None
        # match/mismatch magnitudes that disagree with the gap
        assert flat_model_family(unit_dna(match=2.0, mismatch=-1.0)) is None

    def test_non_half_integral_cost_rejected(self):
        # 2c must be integral for the +-c ladder to stay on int grid.
        assert flat_model_family(unit_dna(0.3, -0.3, -0.3)) is None


class TestBitparallelParity:
    """Numpy-uint64 kernel vs the per-cell references."""

    @pytest.mark.parametrize("model_name", sorted(FLAT_MODELS))
    @pytest.mark.parametrize("mode", ["global", "overlap"])
    def test_kernel_matches_reference_fuzz(self, model_name, mode):
        model = FLAT_MODELS[model_name]
        rng = np.random.default_rng(hash((model_name, mode)) % (1 << 32))
        for _ in range(25):
            # uniform-shape batches, like every engine batch kernel
            n = int(rng.choice(BOUNDARY_LENGTHS))
            m = int(rng.choice(BOUNDARY_LENGTHS))
            B = int(rng.integers(1, 4))
            pairs = [(_rand_seq(rng, n), _rand_seq(rng, m)) for _ in range(B)]
            got = bitparallel_scores_batch(pairs, model=model, mode=mode)
            want = [
                bitparallel_score_reference(a, b, model=model, mode=mode)
                for a, b in pairs
            ]
            assert np.array_equal(got, np.asarray(want))

    @pytest.mark.parametrize("mode", ["global", "overlap"])
    def test_reference_matches_classic_dp(self, mode):
        model = unit_dna()
        classic = (
            global_score_reference if mode == "global" else overlap_score_reference
        )
        rng = np.random.default_rng(11)
        for _ in range(20):
            a = _rand_seq(rng, int(rng.integers(0, 70)))
            b = _rand_seq(rng, int(rng.integers(0, 70)))
            got = bitparallel_score_reference(a, b, model=model, mode=mode)
            want = classic(a, b, model)
            if mode == "overlap":
                want = want[0] if isinstance(want, tuple) else want
            assert got == want, (a, b)

    def test_word_boundaries_exact(self):
        model = unit_dna()
        rng = np.random.default_rng(63)
        for n in (63, 64, 65, 127, 128, 129):
            for m in (63, 64, 65):
                a, b = _rand_seq(rng, n), _rand_seq(rng, m)
                got = bitparallel_scores_batch([(a, b)], model=model)
                assert got[0] == global_score_reference(a, b, model)

    def test_empty_and_degenerate(self):
        model = unit_dna()
        for pair, want in [(("", ""), 0.0), (("", "ACGT"), -4.0), (("ACGT", ""), -4.0)]:
            got = bitparallel_scores_batch([pair], model=model)
            assert list(got) == [want]

    def test_lev_overlap_is_identically_zero(self):
        for pair in [("ACGT", "TTTT"), ("A", "CCCCCCC")]:
            got = bitparallel_scores_batch([pair], model=_lev_model(), mode="overlap")
            assert list(got) == [0.0]


@pytest.mark.skipif(not HAVE_NATIVE, reason="C extension not built")
class TestNativeCParity:
    """C kernels vs the numpy-uint64 kernels (same inputs, exact)."""

    @pytest.mark.parametrize("model_name", sorted(FLAT_MODELS))
    @pytest.mark.parametrize("mode", ["global", "overlap"])
    def test_c_matches_numpy_kernel(self, model_name, mode):
        from fragalign._native import bitparallel_scores_native

        model = FLAT_MODELS[model_name]
        family, c = flat_model_family(model)
        if family == "lev" and mode == "overlap":
            pytest.skip("short-circuited to zeros before the kernel")
        rng = np.random.default_rng(hash((model_name, mode, "c")) % (1 << 32))
        for _ in range(15):
            n = int(rng.choice(BOUNDARY_LENGTHS))
            m = int(rng.choice(BOUNDARY_LENGTHS))
            B = int(rng.integers(1, 5))
            pairs = [(_rand_seq(rng, n), _rand_seq(rng, m)) for _ in range(B)]
            ref = bitparallel_scores_batch(pairs, model=model, mode=mode)
            ac = np.stack([_enc(a) for a, _ in pairs])
            bc = np.stack([_enc(b) for _, b in pairs])
            got = bitparallel_scores_native(ac, bc, family, mode) * c
            assert np.array_equal(ref, got.astype(np.float64))

    def test_c_rejects_out_of_range_codes(self):
        from fragalign._native import bitparallel_scores_native

        ac = np.array([[0, 1, 4]], dtype=np.uint8)  # N: code 4 > 3
        bc = np.array([[0, 1, 2]], dtype=np.uint8)
        with pytest.raises(ValueError):
            bitparallel_scores_native(ac, bc, "unit", "global")

    def test_striped_matches_local_reference(self):
        from fragalign._native import striped_local_scores_native

        rng = np.random.default_rng(17)
        matrix = np.full((5, 5), -1, dtype=np.int32)
        np.fill_diagonal(matrix, 2)
        matrix[4, :] = 0
        matrix[:, 4] = 0
        model = SubstitutionModel(matrix=matrix.astype(float), gap=-1.0)
        for _ in range(25):
            n = int(rng.choice(BOUNDARY_LENGTHS))
            m = int(rng.choice(BOUNDARY_LENGTHS))
            a = _rand_seq(rng, n, "ACGTN")
            b = _rand_seq(rng, m, "ACGTN")
            got = striped_local_scores_native(
                _enc(a)[None, :], _enc(b)[None, :], matrix, 1
            )
            assert float(got[0]) == local_score_reference(a, b, model), (a, b)


class TestNativeBackend:
    def test_accelerates_contract(self):
        be = NativeBackend()
        unit = unit_dna()
        assert be.accelerates("score", unit, "global")
        assert be.accelerates("score_many", unit, "overlap")
        assert not be.accelerates("align", unit, "global")
        assert not be.accelerates("score", unit, "banded")
        assert not be.accelerates("score", unit, "global", gap_open=-4.0)
        from fragalign.align.scoring_matrices import transition_transversion

        assert not be.accelerates("score", transition_transversion(), "global")
        # local acceleration needs the C extension
        assert be.accelerates("score", unit, "local") == be.use_c

    def test_force_fallback_matches_c(self):
        pairs = [("ACGTACGTAC", "ACGTTCGTAC"), ("AAAA", "AAAT"), ("", "AC")]
        with AlignmentEngine(backend="native") as eng:
            via_default = eng.score_many(pairs)
        fallback = NativeBackend(force_fallback=True)
        with AlignmentEngine() as eng:
            prepared = [eng.prepare(a, b) for a, b in pairs]
        # uniform-shape batches only for the direct backend call
        for p, want in zip(prepared, via_default):
            got = fallback.score(p, unit_dna(), "global")
            assert got == want

    def test_require_native_flag(self):
        if HAVE_NATIVE:
            assert NativeBackend(require_native=True).use_c
        else:
            with pytest.raises(RuntimeError):
                NativeBackend(require_native=True)

    def test_n_pairs_split_from_bitparallel_path(self):
        rng = np.random.default_rng(5)
        pairs = [
            (_rand_seq(rng, 40, "ACGTN"), _rand_seq(rng, 40, "ACGTN"))
            for _ in range(8)
        ]
        with AlignmentEngine(backend="native") as eng:
            got = eng.score_many(pairs)
        with AlignmentEngine(backend="numpy") as eng:
            want = eng.score_many(pairs)
        assert np.array_equal(got, want)


class TestFacadeRouting:
    """The engine facade's capability probing and per-call backend."""

    PAIRS = [("ACGTACGTACGTACGT", "ACGTTCGTACGAACGT"), ("AAAA", "AAAT")]

    @pytest.mark.parametrize("mode", ["global", "overlap", "local"])
    def test_native_equals_numpy_through_facade(self, mode):
        with AlignmentEngine(backend="native", mode=mode) as nat, AlignmentEngine(
            backend="numpy", mode=mode
        ) as np_eng:
            assert np.array_equal(
                nat.score_many(self.PAIRS), np_eng.score_many(self.PAIRS)
            )

    def test_per_call_backend_override(self):
        with AlignmentEngine(backend="numpy") as eng:
            base = eng.score_many(self.PAIRS)
            assert np.array_equal(eng.score_many(self.PAIRS, backend="native"), base)
            assert np.array_equal(eng.score_many(self.PAIRS, backend="naive"), base)
            a1 = eng.align(*self.PAIRS[0])
            a2 = eng.align(*self.PAIRS[0], backend="native")
            assert a1 == a2  # align falls through to numpy either way

    def test_unaccelerated_combo_falls_through(self):
        # affine gaps: native reports unaccelerated, facade uses numpy.
        with AlignmentEngine(backend="native") as nat, AlignmentEngine() as ref:
            got = nat.score_many(self.PAIRS, gap_open=-4.0, gap_extend=-1.0)
            want = ref.score_many(self.PAIRS, gap_open=-4.0, gap_extend=-1.0)
            assert np.array_equal(got, want)

    def test_unknown_backend_raises(self):
        with AlignmentEngine() as eng:
            with pytest.raises(Exception):
                eng.score(*self.PAIRS[0], backend="bogus")


class TestBandedAffineSinglePair:
    """The batch-of-one fast path in the banded Gotoh kernels."""

    def test_single_matches_batch_and_unbanded(self):
        rng = np.random.default_rng(23)
        for n, m in [(1, 1), (5, 3), (17, 17), (31, 33), (64, 64), (63, 65)]:
            a = _rand_seq(rng, n, "ACGTN")
            b = _rand_seq(rng, m, "ACGTN")
            for band in sorted({max(abs(n - m), 1), max(n, m)}):
                single = affine_banded_scores_batch([(a, b)], band)
                batch = affine_banded_scores_batch([(a, b)] * 3, band, chunk=3)
                assert single[0] == batch[0]
                al1 = affine_banded_align_batch([(a, b)], band)[0]
                al2 = affine_banded_align_batch([(a, b)] * 3, band, chunk=3)[0]
                assert al1.score == al2.score and al1.pairs == al2.pairs
                if band >= max(n, m):
                    full = affine_scores_batch([(a, b)])
                    assert single[0] == pytest.approx(full[0])


class TestServiceBackendKnob:
    def test_backend_round_trip_and_bad_name(self, tmp_path):
        from fragalign.service.client import AlignmentClient
        from fragalign.service.server import (
            ServiceConfig,
            run_server,
            wait_for_port_file,
        )

        port_file = str(tmp_path / "svc.port")
        config = ServiceConfig(host="127.0.0.1", port=0, backend="numpy")
        thread = threading.Thread(
            target=run_server, args=(config, port_file), daemon=True
        )
        thread.start()
        port = wait_for_port_file(port_file)
        pairs = [("ACGTACGTAC", "ACGTTCGTAC"), ("AAAA", "AAAT"), ("", "ACGT")]
        try:
            with AlignmentClient("127.0.0.1", port) as client:
                native = client.score_many(pairs, 4, "global", backend="native")
                default = client.score_many(pairs, 4, "global")
                assert native == default
                # unknown backend fails just that request, typed
                with pytest.raises(Exception, match="backend"):
                    client.score(*pairs[0], backend="bogus")
                # ...and the connection still serves afterwards
                assert client.score(*pairs[0], backend="native") == native[0]
                client.shutdown()
        finally:
            thread.join(timeout=10)

    def test_backend_is_group_key_not_cache_key(self):
        from fragalign.service.fields import (
            cache_key_fields,
            group_key_fields,
            keyset_fields,
        )

        assert "backend" in group_key_fields()
        assert "backend" in keyset_fields()
        assert "backend" not in cache_key_fields()


class TestRegistryExposure:
    def test_native_backend_registered(self):
        assert isinstance(get_backend("native"), NativeBackend)
