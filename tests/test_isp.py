"""ISP substrate: instances, exact solvers, greedy, and TPA.

The headline property (Berman–DasGupta): TPA's selection is feasible
and earns at least half the optimum — tested against the exact solver
on random instances via hypothesis.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.isp.exact import exact_isp, exact_isp_distinct
from fragalign.isp.greedy import greedy_isp
from fragalign.isp.instance import (
    ISPInstance,
    ISPItem,
    clustered_instance,
    random_instance,
    staircase_instance,
)
from fragalign.isp.tpa import _phase1_fast, _phase1_naive, tpa, tpa_select
from fragalign.util.errors import InstanceError, SolverError

items_strategy = st.lists(
    st.builds(
        ISPItem,
        index=st.integers(0, 5),
        start=st.integers(0, 20),
        end=st.integers(21, 30),
        profit=st.floats(0, 10, allow_nan=False, width=32),
    ),
    min_size=0,
    max_size=12,
)

compact_items = st.lists(
    st.tuples(
        st.integers(0, 4),  # index
        st.integers(0, 12),  # start
        st.integers(1, 6),  # length
        st.floats(0.0, 9.0, allow_nan=False, width=32),
    ),
    min_size=0,
    max_size=14,
).map(
    lambda raw: ISPInstance.build(
        ISPItem(index=i, start=s, end=s + l, profit=p) for i, s, l, p in raw
    )
)


class TestInstance:
    def test_item_validation(self):
        with pytest.raises(InstanceError):
            ISPItem(index=0, start=5, end=5, profit=1.0)
        with pytest.raises(InstanceError):
            ISPItem(index=0, start=0, end=1, profit=-1.0)

    def test_conflicts(self):
        a = ISPItem(0, 0, 5, 1.0)
        b = ISPItem(1, 5, 8, 1.0)
        c = ISPItem(0, 6, 9, 1.0)
        assert not a.overlaps(b)
        assert not a.conflicts(b)
        assert a.conflicts(c)  # same index
        assert b.conflicts(c)  # overlap

    def test_feasibility_check(self):
        inst = random_instance(10, 4, rng=0)
        assert inst.is_feasible([])
        a = ISPItem(0, 0, 5, 1.0)
        b = ISPItem(0, 10, 12, 1.0)
        assert not ISPInstance.build([a, b]).is_feasible([a, b])  # same idx

    def test_generators_produce_valid_instances(self):
        for inst in (
            random_instance(25, 6, rng=1),
            clustered_instance(4, 5, 6, rng=2),
            staircase_instance(7),
        ):
            assert len(inst.items) > 0


class TestExact:
    def test_distinct_requires_distinct(self):
        a = ISPItem(0, 0, 2, 1.0)
        b = ISPItem(0, 3, 4, 1.0)
        with pytest.raises(SolverError):
            exact_isp_distinct(ISPInstance.build([a, b]))

    def test_distinct_simple(self):
        items = [
            ISPItem(0, 0, 3, 2.0),
            ISPItem(1, 2, 5, 3.0),
            ISPItem(2, 4, 7, 2.0),
        ]
        score, chosen = exact_isp_distinct(ISPInstance.build(items))
        assert score == 4.0  # first + third
        assert len(chosen) == 2

    def test_size_guard(self):
        inst = random_instance(50, 10, rng=3)
        with pytest.raises(SolverError):
            exact_isp(inst, max_items=10)

    @given(compact_items)
    def test_exact_output_feasible_and_dominates_greedy(self, inst):
        opt, chosen = exact_isp(inst)
        assert inst.is_feasible(chosen)
        assert opt == pytest.approx(inst.total_profit(chosen))
        g, gchosen = greedy_isp(inst)
        assert inst.is_feasible(gchosen)
        assert opt >= g - 1e-9


class TestTPA:
    @given(compact_items)
    def test_fast_equals_naive(self, inst):
        fast = tpa(inst, fast=True)
        slow = tpa(inst, fast=False)
        assert [(i.index, i.start, i.end) for i in fast] == [
            (i.index, i.start, i.end) for i in slow
        ]

    def test_fast_no_float_cancellation(self):
        # Regression: the fast phase 1 used to compute overlap sums as
        # ``pushed_total - prefix``, which cancels a 2.22e-16 value
        # pushed after a 2.0 one, so the fast path pushed an item the
        # naive path rejects (value exactly 0).  The suffix-query
        # scheme sums the conflicting values directly.
        eps = 2.220446049250313e-16
        inst = ISPInstance.build(
            [
                ISPItem(index=0, start=1, end=2, profit=eps),
                ISPItem(index=0, start=1, end=3, profit=eps),
                ISPItem(index=1, start=0, end=1, profit=2.0),
            ]
        )
        items = sorted(
            inst.items, key=lambda it: (it.end, it.start, it.index, -it.profit)
        )
        fast_stack = _phase1_fast(items)
        naive_stack = _phase1_naive(items)
        assert [(i, v) for i, v in fast_stack] == [(i, v) for i, v in naive_stack]
        assert tpa(inst, fast=True) == tpa(inst, fast=False)

    @given(compact_items)
    def test_selection_feasible(self, inst):
        assert inst.is_feasible(tpa(inst))

    @given(compact_items)
    def test_ratio_two(self, inst):
        opt, _ = exact_isp(inst)
        got, _ = tpa_select(inst)
        assert 2.0 * got + 1e-6 >= opt

    @settings(max_examples=10)
    @given(st.integers(2, 40), st.integers(1, 8), st.integers(0, 10_000))
    def test_ratio_two_random_family(self, n_items, n_idx, seed):
        inst = random_instance(n_items, n_idx, rng=seed)
        if len(inst.items) > 25:
            inst = ISPInstance.build(inst.items[:25])
        opt, _ = exact_isp(inst)
        got, _ = tpa_select(inst)
        assert 2.0 * got + 1e-6 >= opt

    def test_staircase_beats_greedy(self):
        inst = staircase_instance(12)
        tpa_score, _ = tpa_select(inst)
        greedy_score, _ = greedy_isp(inst)
        opt, _ = exact_isp(inst)
        assert opt == pytest.approx(12.0)
        assert tpa_score >= opt / 2
        assert greedy_score == pytest.approx(1.01)

    def test_empty_instance(self):
        assert tpa(ISPInstance.build([])) == []
