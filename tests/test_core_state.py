"""Solution state: mutation, preparation (§4.2/§4.3), transactions."""

from __future__ import annotations

import pytest

from fragalign.core.fragments import CSRInstance
from fragalign.core.match_score import MatchScorer
from fragalign.core.sites import Site
from fragalign.core.state import SolutionState
from fragalign.util.errors import InconsistentMatchSetError


@pytest.fixture
def inst() -> CSRInstance:
    # H0=⟨1,2⟩ H1=⟨3⟩ H2=⟨4⟩ ; M0=⟨5,6,7,8⟩ M1=⟨9,10⟩
    return CSRInstance.build(
        [(1, 2), (3,), (4,)],
        [(5, 6, 7, 8), (9, 10)],
        {
            (1, 5): 2.0,
            (2, 6): 2.0,
            (3, 7): 3.0,
            (4, 8): 4.0,
            (2, 9): 1.5,
            (4, 10): 1.0,
        },
    )


@pytest.fixture
def state(inst) -> SolutionState:
    return SolutionState(inst, MatchScorer(inst))


class TestAddRemove:
    def test_add_full_and_score(self, state):
        state.add_full(("H", 0), Site("M", 0, 0, 2))
        assert state.score() == pytest.approx(4.0)  # σ(1,5)+σ(2,6)
        assert state.contribution(("H", 0)) == pytest.approx(4.0)
        assert state.contribution(("M", 0)) == pytest.approx(4.0)

    def test_overlap_rejected(self, state):
        state.add_full(("H", 0), Site("M", 0, 0, 2))
        with pytest.raises(InconsistentMatchSetError):
            state.add_full(("H", 1), Site("M", 0, 1, 3))

    def test_remove_restores_freedom(self, state):
        mid = state.add_full(("H", 0), Site("M", 0, 0, 2))
        state.remove(mid)
        state.add_full(("H", 1), Site("M", 0, 1, 3))
        assert len(state) == 1

    def test_free_intervals(self, state):
        state.add_full(("H", 1), Site("M", 0, 1, 3))
        free = state.free_intervals(("M", 0))
        assert [(f.start, f.end) for f in free] == [(0, 1), (3, 4)]

    def test_islands_and_multiplicity(self, state):
        state.add_full(("H", 0), Site("M", 0, 0, 2))
        state.add_full(("H", 1), Site("M", 0, 2, 3))
        assert state.is_multiple(("M", 0))
        assert state.is_simple(("H", 0))
        assert len(state.islands()) == 1
        state.check()


class TestRestrict:
    def test_restrict_shrinks_and_rescores(self, state):
        mid = state.add_full(("H", 0), Site("M", 0, 0, 3))
        state.restrict(mid, ("M", 0), Site("M", 0, 0, 1))
        assert state.score() == pytest.approx(2.0)  # only σ(1,5) fits

    def test_restrict_to_none_removes(self, state):
        mid = state.add_full(("H", 0), Site("M", 0, 0, 2))
        state.restrict(mid, ("M", 0), None)
        assert len(state) == 0


class TestHidden:
    def test_hidden_detection(self, state):
        state.add_full(("H", 0), Site("M", 0, 0, 3))
        assert state.hidden(Site("M", 0, 1, 2))
        assert not state.hidden(Site("M", 0, 0, 2))  # shares an edge
        assert not state.hidden(Site("M", 0, 2, 4))


class TestPrepare:
    def test_prepare_simple_detaches_and_reports_hole(self, state):
        state.add_full(("H", 0), Site("M", 0, 0, 2))
        res = state.prepare(Site("H", 0, 0, 1))
        assert res.ok
        assert len(state) == 0
        assert res.holes == [Site("M", 0, 0, 2)]

    def test_prepare_multiple_restricts_overlaps(self, state):
        state.add_full(("H", 0), Site("M", 0, 0, 2))
        state.add_full(("H", 1), Site("M", 0, 2, 3))
        res = state.prepare(Site("M", 0, 1, 3))
        assert res.ok
        # first match restricted to [0,1), second removed entirely
        sites = [s for s, _ in state.sites_on(("M", 0))]
        assert [(s.start, s.end) for s in sites] == [(0, 1)]
        assert ("H", 1) in res.detached

    def test_prepare_hidden_fails(self, state):
        state.add_full(("H", 0), Site("M", 0, 0, 3))
        state.add_full(("H", 2), Site("M", 0, 3, 4))  # M0 now multiple
        res = state.prepare(Site("M", 0, 1, 2))
        assert not res.ok

    def test_prepare_unmatched_is_noop(self, state):
        res = state.prepare(Site("M", 1, 0, 1))
        assert res.ok and not res.holes


class TestTwoIslands:
    @pytest.fixture
    def binst(self) -> CSRInstance:
        # H0=⟨1,2⟩ M0=⟨3,4⟩ with suffix-prefix border σ(2,3)=5,
        # plus partners for each host side.
        return CSRInstance.build(
            [(1, 2), (7,)],
            [(3, 4), (8,)],
            {(2, 3): 5.0, (1, 8): 2.0, (7, 4): 2.0},
        )

    def test_border_match_forms_two_island(self, binst):
        state = SolutionState(binst, MatchScorer(binst))
        state.add_border(Site("H", 0, 1, 2), Site("M", 0, 0, 1))
        state.add_full(("M", 1), Site("H", 0, 0, 1))
        state.add_full(("H", 1), Site("M", 0, 1, 2))
        assert state.is_multiple(("H", 0)) and state.is_multiple(("M", 0))
        assert len(state.islands()) == 1
        state.check()
        assert state.score() == pytest.approx(9.0)

    def test_prepare_breaks_two_island(self, binst):
        state = SolutionState(binst, MatchScorer(binst))
        state.add_border(Site("H", 0, 1, 2), Site("M", 0, 0, 1))
        state.add_full(("M", 1), Site("H", 0, 0, 1))
        assert state.border_match_of(("H", 0)) is not None
        res = state.prepare(Site("H", 0, 0, 1))
        assert res.ok
        assert state.border_match_of(("H", 0)) is None

    def test_double_border_match_rejected_by_check(self, binst):
        state = SolutionState(binst, MatchScorer(binst))
        state.add_border(Site("H", 0, 1, 2), Site("M", 0, 0, 1))
        # Second border match on H0's other end (M1 is single-region so
        # use M0's suffix — but that fragment already has its border
        # match; use check() to flag it).
        from fragalign.core.matches import Match

        m = Match(
            Site("H", 0, 0, 1),
            Site("M", 0, 1, 2),
            True,
            "border",
            0.0,
        )
        state.add(m)
        with pytest.raises(InconsistentMatchSetError):
            state.check()


class TestTransactions:
    def test_snapshot_restore(self, state):
        state.add_full(("H", 0), Site("M", 0, 0, 2))
        snap = state.snapshot()
        state.add_full(("H", 1), Site("M", 0, 2, 3))
        state.detach_fragment(("H", 0))
        state.restore(snap)
        assert len(state) == 1
        assert state.score() == pytest.approx(4.0)

    def test_copy_independent(self, state):
        state.add_full(("H", 0), Site("M", 0, 0, 2))
        clone = state.copy()
        clone.detach_fragment(("H", 0))
        assert len(state) == 1 and len(clone) == 0

    def test_check_catches_score_drift(self, state):
        from fragalign.core.matches import Match

        bad = Match(Site("H", 1, 0, 1), Site("M", 0, 2, 3), False, "full", 99.0)
        state.add(bad)
        with pytest.raises(InconsistentMatchSetError):
            state.check()
