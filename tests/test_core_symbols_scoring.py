"""Reversal algebra (§2.1 axioms) and σ canonicalization."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from fragalign.core.scoring import Scorer
from fragalign.core.symbols import (
    PAD,
    format_word,
    reverse_symbol,
    reverse_word,
    validate_word,
    word_from_names,
)
from fragalign.util.errors import InstanceError

symbols = st.integers(-20, 20).filter(lambda x: x != 0)
words = st.lists(symbols, min_size=0, max_size=12).map(tuple)


class TestReversal:
    @given(symbols)
    def test_reverse_symbol_involution(self, a):
        assert reverse_symbol(reverse_symbol(a)) == a

    @given(symbols)
    def test_sigma_and_sigma_r_disjoint(self, a):
        assert reverse_symbol(a) != a  # Σ ∩ Σᴿ = ∅

    @given(words)
    def test_reverse_word_involution(self, w):
        assert reverse_word(reverse_word(w)) == w

    @given(words, words)
    def test_antihomomorphism(self, u, v):
        assert reverse_word(u + v) == reverse_word(v) + reverse_word(u)

    def test_pad_is_self_reverse(self):
        assert reverse_symbol(PAD) == PAD


class TestWordHelpers:
    def test_validate_rejects_pad(self):
        with pytest.raises(InstanceError):
            validate_word((1, 0, 2))

    def test_word_from_names_reversal_suffixes(self):
        table: dict[str, int] = {}
        w = word_from_names(["a", "b'", "a"], table)
        assert w == (1, -2, 1)

    def test_format_word(self):
        s = format_word((1, -2), {1: "a", 2: "b"})
        assert "a" in s and "ᴿ" in s


class TestScorer:
    @given(symbols, symbols, st.floats(-10, 10, allow_nan=False, width=32))
    def test_reversal_invariance(self, a, b, v):
        s = Scorer()
        s.set(a, b, v)
        assert s.get(a, b) == pytest.approx(v)
        assert s.get(-a, -b) == pytest.approx(v)  # σ(a,b) = σ(aᴿ,bᴿ)

    @given(symbols, symbols)
    def test_pad_scores_zero(self, a, b):
        s = Scorer({(a, b): 5.0})
        assert s.get(a, PAD) == 0.0
        assert s.get(PAD, b) == 0.0

    def test_setting_pad_rejected(self):
        s = Scorer()
        with pytest.raises(InstanceError):
            s.set(PAD, 1, 1.0)

    def test_default_zero_and_unset(self):
        s = Scorer({(1, 2): 3.0})
        assert s.get(1, 3) == 0.0
        s.set(1, 2, 0.0)  # zero deletes
        assert len(s) == 0

    def test_weight_matrix(self):
        s = Scorer({(1, 10): 2.0, (2, -10): 3.0})
        W = s.weight_matrix((1, 2), (10,))
        assert W.shape == (2, 1)
        assert W[0, 0] == 2.0
        assert W[1, 0] == 0.0
        Wr = s.weight_matrix_reversed((1, 2), (10,))
        assert Wr[1, 0] == 3.0  # 2 vs 10ᴿ

    def test_copy_independent(self):
        s = Scorer({(1, 2): 1.0})
        c = s.copy()
        c.set(1, 2, 9.0)
        assert s.get(1, 2) == 1.0

    def test_positive_total_and_max_abs(self):
        s = Scorer({(1, 2): 3.0, (1, 3): -2.0})
        assert s.positive_total() == 3.0
        assert s.max_abs() == 3.0
        assert len(list(s.pairs())) == 2
