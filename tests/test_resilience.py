"""The resilience layer: deadlines, admission, breakers, faults, healing.

Standing invariants:

* a fault can delay a request or fail it with a *typed* error from the
  :mod:`fragalign.util.errors` taxonomy — it can never change an
  answer: everything that completes equals the direct engine result;
* every request a breaker admits reports an outcome back (success,
  failure, or abandon), so the half-open trial slot can never leak and
  wedge a shard out of the fleet forever;
* deadlines are end-to-end: an expired budget is refused at whichever
  tier notices first (router give-up, server admission, batch queue),
  and a queued job never waits past its remaining budget.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from fragalign.cluster import ClusterSupervisor, ShardRouter
from fragalign.engine import AlignmentEngine
from fragalign.resilience import (
    AdmissionController,
    CircuitBreaker,
    FaultProxyThread,
    deadline_from_budget_ms,
    estimate_cost,
    expired,
    remaining_ms,
)
from fragalign.service import (
    AlignmentClient,
    AlignmentService,
    AsyncAlignmentClient,
    MicroBatcher,
    ServiceConfig,
    ServiceError,
)
from fragalign.service.protocol import DeadlineExceededError, OverloadedError, encode_line
from fragalign.util.errors import (
    CircuitOpen,
    DeadlineExceeded,
    FragalignError,
    NonRetryableError,
    Overloaded,
    RetryableError,
)


class TestErrorTaxonomy:
    """The router retries by isinstance, never by message text."""

    def test_retryable_split(self):
        assert issubclass(Overloaded, RetryableError)
        assert issubclass(CircuitOpen, RetryableError)
        assert issubclass(DeadlineExceeded, NonRetryableError)
        assert not issubclass(DeadlineExceeded, RetryableError)
        for cls in (Overloaded, CircuitOpen, DeadlineExceeded):
            assert issubclass(cls, FragalignError)

    def test_wire_errors_are_both_service_and_taxonomy_errors(self):
        # A server-reported deadline/overload answer must satisfy both
        # isinstance branches the router takes: "the shard answered"
        # (ServiceError) and "is that answer retryable" (taxonomy).
        assert issubclass(DeadlineExceededError, ServiceError)
        assert issubclass(DeadlineExceededError, DeadlineExceeded)
        assert issubclass(OverloadedError, ServiceError)
        assert issubclass(OverloadedError, Overloaded)


class TestCircuitBreaker:
    def _breaker(self, threshold=3, recovery=10.0):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=threshold, recovery_time=recovery,
            clock=lambda: clock[0],
        )
        return breaker, clock

    def test_trips_after_consecutive_failures_only(self):
        breaker, _ = self._breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the consecutive count
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.opens == 1

    def test_half_open_admits_exactly_one_trial(self):
        breaker, clock = self._breaker(threshold=1, recovery=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock[0] = 5.0
        assert breaker.state == "half_open"
        assert breaker.allow()  # the trial slot
        assert not breaker.allow()  # everyone else fast-fails

    def test_trial_success_closes_and_trial_failure_reopens(self):
        breaker, clock = self._breaker(threshold=1, recovery=5.0)
        breaker.record_failure()
        clock[0] = 5.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

        breaker.record_failure()
        clock[0] = 10.0
        assert breaker.allow()
        breaker.record_failure()  # failed trial: re-open, restart clock
        assert breaker.state == "open"
        clock[0] = 14.0
        assert not breaker.allow()  # recovery restarted at t=10
        clock[0] = 15.0
        assert breaker.allow()
        assert breaker.opens == 3

    def test_abandon_releases_trial_slot_without_verdict(self):
        # A cancelled request (lost hedge race, abandoned attempt) is
        # neither success nor failure — but it must hand the half-open
        # trial slot back or the shard is refused forever.
        breaker, clock = self._breaker(threshold=1, recovery=5.0)
        breaker.record_failure()
        clock[0] = 5.0
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_abandon()
        assert breaker.state == "half_open"
        assert breaker.allow()  # slot returned, next caller gets the trial
        breaker.record_success()
        assert breaker.state == "closed"

    def test_snapshot_and_validation(self):
        breaker, _ = self._breaker()
        assert breaker.snapshot() == {"state": "closed", "failures": 0, "opens": 0}
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_time=0.0)


class TestDeadlineHelpers:
    def test_budget_round_trip_is_relative(self):
        deadline = deadline_from_budget_ms(250.0, now=100.0)
        assert deadline == pytest.approx(100.25)
        assert remaining_ms(deadline, now=100.1) == pytest.approx(150.0)
        assert remaining_ms(deadline, now=101.0) == pytest.approx(-750.0)

    def test_expiry_and_none_passthrough(self):
        assert not expired(None)
        assert deadline_from_budget_ms(None) is None
        assert remaining_ms(None) is None
        assert expired(5.0, now=5.0)  # boundary counts as expired
        assert not expired(5.0, now=4.999)


class TestAdmissionController:
    def test_cost_model(self):
        assert estimate_cost("score", "A" * 10, "A" * 20) == 200
        assert estimate_cost("align", "A" * 10, "A" * 20) == 400  # traceback pass
        banded = estimate_cost("score", "A" * 100, "A" * 100, mode="banded", band=2)
        assert banded == 5 * 100  # (2*band+1) * max(n, m)
        # A band wider than the table never costs more than the table.
        assert estimate_cost("score", "AC", "GT", mode="banded", band=50) == 4
        assert estimate_cost("score", "", "") == 1  # floor

    def test_cell_cap_sheds_but_always_admits_one(self):
        ctl = AdmissionController(max_cells=100)
        ctl.try_admit(1000)  # oversized, but nothing inflight: progress guarantee
        assert ctl.inflight_jobs == 1
        with pytest.raises(Overloaded):
            ctl.try_admit(10)
        assert ctl.shed_total == 1
        ctl.release(1000)
        assert ctl.inflight_cells == 0 and ctl.inflight_jobs == 0
        ctl.try_admit(60)
        ctl.try_admit(40)  # exactly at capacity is admitted
        with pytest.raises(Overloaded):
            ctl.try_admit(1)

    def test_job_cap(self):
        ctl = AdmissionController(max_jobs=2)
        ctl.try_admit(1)
        ctl.try_admit(1)
        with pytest.raises(Overloaded):
            ctl.try_admit(1)
        ctl.release(1)
        ctl.try_admit(1)

    def test_degraded_mode_hysteresis(self):
        ctl = AdmissionController(
            max_cells=100, degrade_watermark=0.75, recover_watermark=0.5
        )
        for _ in range(8):
            ctl.try_admit(10)
        assert ctl.degraded  # load 0.8, past the watermark
        ctl.release(10)
        ctl.release(10)  # load 0.6: above recover, below degrade
        assert ctl.degraded  # still engaged (hysteresis)
        ctl.release(10)  # load 0.5: at the recover watermark
        assert not ctl.degraded
        ctl.try_admit(10)  # back to 0.6, rising: does not engage
        assert not ctl.degraded

    def test_disabled_and_snapshot(self):
        ctl = AdmissionController()
        assert not ctl.enabled and ctl.load() == 0.0
        for _ in range(50):
            ctl.try_admit(10**9)  # unbounded: never sheds
        snap = ctl.snapshot()
        assert snap["admitted"] == 50 and snap["shed"] == 0
        assert not snap["degraded"]
        with pytest.raises(ValueError):
            AdmissionController(max_cells=-1)
        with pytest.raises(ValueError):
            AdmissionController(degrade_watermark=0.5, recover_watermark=0.8)


_KNOBS = {"mode": None, "band": None, "gap_open": None, "gap_extend": None,
          "memory": None, "backend": None}


class TestBatcherDeadlines:
    def test_note_deadline_keeps_the_tightest(self):
        batcher = MicroBatcher(AlignmentEngine(), max_batch=4, max_delay=0.002)
        try:
            batcher.note_deadline("score", "ACGT", "AGGT", _KNOBS, 50.0)
            batcher.note_deadline("score", "ACGT", "AGGT", _KNOBS, 20.0)
            batcher.note_deadline("score", "ACGT", "AGGT", _KNOBS, 30.0)
            assert list(batcher._deadlines.values()) == [20.0]
        finally:
            batcher.close()

    def test_flush_window_clamps_to_registered_deadline(self):
        async def run():
            # An absurd flush window: only the deadline clamp can
            # dispatch this job in time.
            batcher = MicroBatcher(AlignmentEngine(), max_batch=64, max_delay=60.0)
            try:
                batcher.note_deadline(
                    "score", "ACGTACGT", "AGGTACGT", _KNOBS,
                    time.monotonic() + 0.2,
                )
                return await asyncio.wait_for(
                    batcher.submit("score", "ACGTACGT", "AGGTACGT"), timeout=5.0
                )
            finally:
                batcher.close()

        score = asyncio.run(run())
        assert score == AlignmentEngine().score("ACGTACGT", "AGGTACGT")

    def test_job_expired_in_queue_is_dropped_not_computed(self):
        class NeverEngine:
            def score_many(self, pairs, **kw):  # pragma: no cover - must not run
                raise AssertionError("expired job reached the engine")

        async def run():
            batcher = MicroBatcher(NeverEngine(), max_batch=4, max_delay=0.002)
            try:
                batcher.note_deadline(
                    "score", "ACGT", "AGGT", _KNOBS, time.monotonic() - 1.0
                )
                with pytest.raises(DeadlineExceeded):
                    await batcher.submit("score", "ACGT", "AGGT")
            finally:
                batcher.close()

        asyncio.run(run())


def _serve_in_thread(config: ServiceConfig):
    """Start one service on a daemon thread; return its control handle."""
    holder: dict = {}
    ready = threading.Event()

    def target():
        async def main():
            service = AlignmentService(config)
            await service.start()
            holder["service"] = service
            holder["port"] = service.port
            holder["loop"] = asyncio.get_running_loop()
            ready.set()
            await service.wait_closed()
            service.close()

        asyncio.run(main())

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    assert ready.wait(10), "service failed to start"
    holder["thread"] = thread
    return holder


def _stop_shard(holder) -> None:
    try:
        holder["loop"].call_soon_threadsafe(holder["service"].stop)
    except RuntimeError:
        pass  # loop already closed
    holder["thread"].join(timeout=10)
    assert not holder["thread"].is_alive()


@pytest.fixture()
def one_shard():
    holder = _serve_in_thread(
        ServiceConfig(port=0, max_batch=16, max_delay=0.002, cache_size=64)
    )
    yield holder
    _stop_shard(holder)


class TestServerDeadline:
    def test_expired_budget_refused_before_any_compute(self, one_shard):
        async def run():
            client = await AsyncAlignmentClient.connect(port=one_shard["port"])
            try:
                with pytest.raises(DeadlineExceededError) as err:
                    # A fraction of a microsecond: expired by the time
                    # the server unpacks it, deterministically.
                    await client.score("ACGT", "AGGT", deadline_ms=1e-4)
                # The typed answer is non-retryable: every replica
                # would refuse the same corpse the same way.
                assert isinstance(err.value, DeadlineExceeded)
                assert not isinstance(err.value, RetryableError)
                return await client.stats()
            finally:
                await client.close()

        stats = asyncio.run(run())
        assert stats["resilience"]["deadline_exceeded"] >= 1

    def test_generous_budget_answers_normally(self, one_shard):
        async def run():
            client = await AsyncAlignmentClient.connect(port=one_shard["port"])
            try:
                return await client.score("ACGTACGT", "AGGTACGT", deadline_ms=30_000)
            finally:
                await client.close()

        assert asyncio.run(run()) == AlignmentEngine().score("ACGTACGT", "AGGTACGT")


class TestFaultProxy:
    """The chaos harness's own instrument, checked against one shard."""

    @pytest.fixture()
    def proxied(self, one_shard):
        proxy = FaultProxyThread("127.0.0.1", one_shard["port"])
        proxy.start()
        yield proxy
        proxy.stop()

    def test_latency_fault_delays_but_never_corrupts(self, proxied):
        async def run():
            client = await AsyncAlignmentClient.connect(port=proxied.port)
            try:
                clean = await client.score("ACGTAC", "AGGTAC")
                proxied.set_faults(latency_ms=250.0)
                start = time.monotonic()
                slow = await client.score("ACGTTC", "AGGTAC")
                elapsed = time.monotonic() - start
                return clean, slow, elapsed
            finally:
                proxied.clear_faults()
                await client.close()

        clean, slow, elapsed = asyncio.run(run())
        with AlignmentEngine() as eng:
            assert clean == eng.score("ACGTAC", "AGGTAC")
            assert slow == eng.score("ACGTTC", "AGGTAC")
        assert elapsed >= 0.2  # the injected delay actually applied

    def test_blackhole_stalls_instead_of_answering(self, proxied):
        async def run():
            client = await AsyncAlignmentClient.connect(port=proxied.port)
            try:
                proxied.set_faults(blackhole=True)
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(client.score("ACGT", "AGGT"), timeout=0.4)
            finally:
                proxied.clear_faults()
                await client.close()

        asyncio.run(run())

    def test_garbled_response_can_never_parse_as_an_answer(self, proxied):
        proxied.set_faults(garble=True)
        with socket.create_connection(("127.0.0.1", proxied.port), timeout=5) as sock:
            sock.settimeout(5)
            sock.sendall(encode_line({"id": 0, "op": "score", "a": "ACGT", "b": "AGGT"}))
            raw = sock.makefile("rb").readline()
        assert raw.endswith(b"\n")  # frames still terminate...
        with pytest.raises(ValueError):  # ...but can never decode as JSON
            json.loads(raw)

    def test_deny_connect_refuses_at_the_door(self, proxied):
        proxied.set_faults(deny_connect=True)
        with socket.create_connection(("127.0.0.1", proxied.port), timeout=5) as sock:
            sock.settimeout(5)
            try:
                assert sock.recv(1) == b""  # clean EOF...
            except OSError:
                pass  # ...or an RST, depending on timing
        assert proxied.proxy.denied >= 1

    def test_set_upstream_repoints_new_connections(self, one_shard):
        # Reserve a port that is certainly closed, then point the
        # proxy at it: the shard "moved" and the proxy must follow.
        with socket.socket() as placeholder:
            placeholder.bind(("127.0.0.1", 0))
            dead_port = placeholder.getsockname()[1]
        proxy = FaultProxyThread("127.0.0.1", dead_port)
        proxy.start()
        try:
            async def attempt():
                client = await AsyncAlignmentClient.connect(port=proxy.port)
                try:
                    return await asyncio.wait_for(client.score("ACGT", "AGGT"), 5.0)
                finally:
                    await client.close()

            with pytest.raises((ConnectionError, OSError, EOFError)):
                asyncio.run(attempt())
            proxy.set_upstream("127.0.0.1", one_shard["port"])
            assert asyncio.run(attempt()) == AlignmentEngine().score("ACGT", "AGGT")
        finally:
            proxy.stop()


@pytest.fixture()
def two_shards():
    holders = [
        _serve_in_thread(
            ServiceConfig(port=0, max_batch=16, max_delay=0.002, cache_size=64)
        )
        for _ in range(2)
    ]
    yield holders
    for holder in holders:
        _stop_shard(holder)


def _owned_pairs(router: ShardRouter, shard: str, count: int) -> list[tuple[str, str]]:
    """Distinct pairs whose routing key lands on ``shard``."""
    owned, k = [], 0
    while len(owned) < count:
        pair = ("ACGTACGTACGT", "AGGTACGTACGT" + "T" * k)
        k += 1
        if router.shard_for("score", *pair) == shard:
            owned.append(pair)
    return owned


class TestSlowShardStall:
    """ISSUE scenario: a shard stalls; the breaker opens, traffic fails
    over with zero wrong answers, and the half-open trial readmits the
    shard once it recovers."""

    def test_breaker_opens_failover_stays_correct_then_readmits(self, two_shards):
        proxy = FaultProxyThread("127.0.0.1", two_shards[0]["port"])
        proxy.start()
        try:
            async def run():
                router = ShardRouter(
                    [("127.0.0.1", proxy.port),
                     ("127.0.0.1", two_shards[1]["port"])],
                    max_attempts=2, request_timeout=0.4, connect_timeout=2.0,
                    breaker_threshold=2, breaker_recovery=0.4,
                )
                async with router:
                    stalled_shard = f"127.0.0.1:{proxy.port}"
                    pairs = _owned_pairs(router, stalled_shard, 4)
                    baseline = await asyncio.gather(
                        *(router.score(a, b) for a, b in pairs)
                    )
                    # Stall the owner.  The requests are concurrent, so
                    # the breaker sees enough timeouts to trip before
                    # eviction hides the shard from later candidates.
                    proxy.set_faults(blackhole=True)
                    failed_over = await asyncio.gather(
                        *(router.score(a, b) for a, b in pairs)
                    )
                    snap = router.router_stats()
                    mid = (
                        failed_over, snap["breakers"][stalled_shard],
                        snap["breaker_opens"],
                        stalled_shard in router.live_shards,
                    )
                    # Recovery: clear the fault, let the breaker cool
                    # to half-open, then nudge the shard serially —
                    # the first owned request is the trial.
                    proxy.clear_faults()
                    await asyncio.sleep(0.6)
                    for a, b in pairs:
                        await router.score(a, b)
                    after = router.router_stats()
                    healed = await asyncio.gather(
                        *(router.score(a, b) for a, b in pairs)
                    )
                    return (
                        baseline, mid, after["breakers"][stalled_shard],
                        stalled_shard in router.live_shards, healed,
                        after["failed_requests"],
                    )

            baseline, mid, breaker_after, live_after, healed, failed = asyncio.run(run())
            failed_over, breaker_mid, opens, live_mid = mid
            # Zero wrong answers through the stall and after recovery.
            assert failed_over == baseline and healed == baseline
            assert breaker_mid in ("open", "half_open")
            assert opens >= 1
            assert not live_mid  # evicted while stalled
            assert breaker_after == "closed"  # trial passed
            assert live_after  # readmitted into the ring
            assert failed == 0  # every request found a live replica
        finally:
            proxy.stop()

    def test_hedged_score_races_past_a_slow_owner(self, two_shards):
        proxy = FaultProxyThread("127.0.0.1", two_shards[0]["port"])
        proxy.start()
        try:
            async def run():
                router = ShardRouter(
                    [("127.0.0.1", proxy.port),
                     ("127.0.0.1", two_shards[1]["port"])],
                    max_attempts=2, request_timeout=5.0, connect_timeout=2.0,
                    hedge_delay=0.05, hedge_max_fraction=1.0,
                )
                async with router:
                    slow_shard = f"127.0.0.1:{proxy.port}"
                    (pair,) = _owned_pairs(router, slow_shard, 1)
                    proxy.set_faults(latency_ms=2_000.0)
                    start = time.monotonic()
                    score = await router.score(*pair)
                    elapsed = time.monotonic() - start
                    return score, elapsed, router.router_stats(), pair

            score, elapsed, snap, pair = asyncio.run(run())
            assert score == AlignmentEngine().score(*pair)
            assert elapsed < 1.5  # the hedge answered, not the 2 s owner
            assert snap["hedges"] >= 1 and snap["hedge_wins"] >= 1
        finally:
            proxy.stop()

    def test_deadline_gives_up_instead_of_hopeless_retry(self, two_shards):
        proxy = FaultProxyThread("127.0.0.1", two_shards[0]["port"])
        proxy.start()
        try:
            async def run():
                router = ShardRouter(
                    [("127.0.0.1", proxy.port),
                     ("127.0.0.1", two_shards[1]["port"])],
                    max_attempts=3, connect_timeout=2.0,
                )
                async with router:
                    stalled = f"127.0.0.1:{proxy.port}"
                    (pair,) = _owned_pairs(router, stalled, 1)
                    proxy.set_faults(blackhole=True)
                    # No per-attempt timeout: the deadline alone bounds
                    # the first attempt, and the retry floor (set by
                    # that attempt's observed cost) forbids a second.
                    with pytest.raises(DeadlineExceeded):
                        await router.score(*pair, deadline_ms=300.0)
                    return router.router_stats()

            snap = asyncio.run(run())
            assert snap["deadline_gaveups"] >= 1
            assert snap["failed_requests"] == 0  # gave up, not exhausted
        finally:
            proxy.stop()


class TestSupervisorAutoHeal:
    """Healing driven deterministically through ``_heal_tick(now=...)``."""

    def test_crash_is_respawned_after_backoff(self, tmp_path):
        with ClusterSupervisor(
            shards=1, cache_size=32, base_dir=str(tmp_path),
            heal_backoff=0.2, heal_backoff_max=0.2, heal_jitter=0.0,
        ) as sup:
            sup.kill_shard(0)
            sup.procs[0].process.wait(timeout=10)
            t0 = time.monotonic()
            sup._heal_tick(now=t0)
            assert sup.heal_events[-1]["event"] == "crash"
            sup._heal_tick(now=t0 + 0.1)  # backoff (0.2 s) not yet elapsed
            assert sup.alive_count == 0
            sup._heal_tick(now=t0 + 1.0)  # due: respawns and waits for boot
            assert sup.heal_events[-1]["event"] == "respawned"
            assert sup.alive_count == 1
            assert sup.procs[0].restarts == 1
            new_port = sup.addresses[0][1]
            with AlignmentClient(port=new_port) as client:
                assert client.score("ACGT", "AGGT") == AlignmentEngine().score(
                    "ACGT", "AGGT"
                )

    def test_crash_loop_fails_permanently_instead_of_thrashing(self, tmp_path):
        with ClusterSupervisor(
            shards=1, cache_size=32, base_dir=str(tmp_path),
            heal_backoff=0.1, heal_backoff_max=0.1, heal_jitter=0.0,
            crash_loop_threshold=2, crash_loop_window=1_000.0,
        ) as sup:
            t0 = time.monotonic()
            sup.kill_shard(0)
            sup.procs[0].process.wait(timeout=10)
            sup._heal_tick(now=t0)
            sup._heal_tick(now=t0 + 10.0)
            assert sup.heal_events[-1]["event"] == "respawned"
            # Second death inside the window: one short of nothing —
            # the threshold says this fleet slot is beyond healing.
            sup.kill_shard(0)
            sup.procs[0].process.wait(timeout=10)
            sup._heal_tick(now=t0 + 20.0)
            assert sup.heal_events[-1]["event"] == "crash_loop"
            assert sup.procs[0].failed
            events_before = len(sup.heal_events)
            sup._heal_tick(now=t0 + 100.0)  # permanently failed: no respawn
            assert len(sup.heal_events) == events_before
            assert sup.alive_count == 0
