"""The §4.1 scaling rule as an acceptance threshold."""

from __future__ import annotations

import pytest

from fragalign.core.baseline import baseline4
from fragalign.core.csr_improve import csr_improve
from fragalign.core.exact import exact_csr
from fragalign.core.generators import random_instance
from fragalign.core.scaling import (
    iteration_bound,
    match_count_bound,
    scaling_threshold,
)


def test_match_count_bound(paper_instance):
    assert match_count_bound(paper_instance) == 4  # min(4, 4) regions


def test_threshold_formula(paper_instance):
    u = scaling_threshold(paper_instance, baseline_score=8.0, eps=0.1)
    assert u == pytest.approx(0.1 * 8.0 / 16.0)
    assert scaling_threshold(paper_instance, 0.0) == 0.0


def test_iteration_bound():
    assert iteration_bound(8.0, 0.05) == 640
    assert iteration_bound(8.0, 0.0) == 10_000  # fallback


def test_scaled_run_still_within_ratio(paper_instance):
    sol = csr_improve(paper_instance, eps=0.1)
    opt = exact_csr(paper_instance).score
    # (3 + ε) guarantee with ε = 0.1-ish slack.
    assert (3.0 + 0.2) * sol.score + 1e-6 >= opt


def test_scaled_run_accepts_fewer_or_equal_improvements():
    inst = random_instance(n_h=3, n_m=2, rng=9)
    plain = csr_improve(inst)
    base = baseline4(inst).score
    scaled = csr_improve(inst, eps=0.5, baseline_score=base)
    assert scaled.stats["accepted"] <= plain.stats["accepted"] + 1
    assert scaled.stats["threshold"] >= plain.stats["threshold"]
