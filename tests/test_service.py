"""The serving layer: LRU cache, micro-batcher, server, clients.

Standing invariants:

* serving is an execution detail — every response equals what a direct
  ``AlignmentEngine`` call produces;
* N concurrent identical requests cost one backend call and return
  identical results (coalescing);
* the result cache keys on op, pair, mode, *and* model, so results
  computed under one configuration never answer another.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from fragalign.align.pairwise import Alignment
from fragalign.align.scoring_matrices import transition_transversion, unit_dna
from fragalign.engine import AlignmentEngine
from fragalign.service import (
    AlignmentClient,
    AlignmentService,
    AsyncAlignmentClient,
    LRUCache,
    MicroBatcher,
    ServiceConfig,
    ServiceError,
    model_fingerprint,
    wait_for_port_file,
    write_port_file,
)
from fragalign.service.protocol import (
    ProtocolError,
    alignment_from_dict,
    alignment_to_dict,
    decode_line,
    encode_line,
    parse_request,
)


class TestLRUCache:
    def test_hit_and_miss_counts(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b", "fallback") == "fallback"
        assert (cache.hits, cache.misses) == (1, 2)
        assert cache.hit_rate == pytest.approx(1 / 3)

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # promote a: b is now least recently used
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1
        assert cache.keys() == ["a", "c"]

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not duplicate
        cache.put("c", 3)
        assert "b" not in cache and cache.get("a") == 10

    def test_maxsize_zero_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.misses == 1

    def test_stats_shape(self):
        cache = LRUCache(8)
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert stats == {
            "size": 1,
            "maxsize": 8,
            "hits": 1,
            "misses": 0,
            "evictions": 0,
            "hit_rate": 1.0,
        }

    def test_thread_safety_under_concurrent_access(self):
        # The same instance is shared by the engine encode memo (hit
        # from the batcher worker thread), the service result cache
        # (event loop) and cluster warmers: hammer one cache from many
        # threads and require intact invariants afterwards.
        cache = LRUCache(64)
        n_threads, n_ops, key_space = 8, 3000, 256
        errors: list[BaseException] = []
        barrier = threading.Barrier(n_threads)

        def worker(seed: int) -> None:
            try:
                barrier.wait()
                for k in range(n_ops):
                    key = (seed * 7919 + k * 31) % key_space
                    if k % 3 == 0:
                        cache.put(key, (seed, k))
                    else:
                        value = cache.get(key)
                        assert value is None or isinstance(value, tuple)
                    if k % 101 == 0:
                        assert len(cache.keys()) <= 64
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(cache) <= 64
        # Counter conservation: every get() was exactly one hit or miss.
        gets = n_threads * sum(1 for k in range(n_ops) if k % 3 != 0)
        assert cache.hits + cache.misses == gets
        stats = cache.stats()
        assert stats["size"] == len(cache.keys()) <= stats["maxsize"]


class TestFacadeEncodeMemoIsBounded:
    def test_engine_reuses_lru_primitive(self):
        eng = AlignmentEngine(cache_size=2)
        assert isinstance(eng._codes, LRUCache)

    def test_encode_memo_stays_bounded(self):
        eng = AlignmentEngine(backend="naive", cache_size=2)
        for seq in ("AC", "GT", "CA", "TG", "AA"):
            eng.score(seq, "ACGT")
        assert len(eng._codes) <= 2


class TestProtocol:
    def test_line_round_trip(self):
        obj = {"id": 7, "op": "score", "a": "ACGT", "b": "AGGT"}
        assert decode_line(encode_line(obj)) == obj

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            decode_line(b"{nope\n")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1, 2]\n")

    def test_parse_request_validation(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_request({"op": "frobnicate"})
        with pytest.raises(ProtocolError, match="string fields"):
            parse_request({"op": "score", "a": "ACGT"})
        request = parse_request({"id": 3, "op": "align", "a": "AC", "b": "GT"})
        assert (request.op, request.a, request.b) == ("align", "AC", "GT")
        assert (request.mode, request.band) == (None, None)

    def test_parse_request_mode_and_band(self):
        request = parse_request(
            {"id": 1, "op": "score", "a": "AC", "b": "GT", "mode": "banded", "band": 4}
        )
        assert (request.mode, request.band) == ("banded", 4)
        with pytest.raises(ProtocolError, match="unknown mode"):
            parse_request({"op": "score", "a": "AC", "b": "GT", "mode": "diagonal"})
        for bad_band in (-1, 2.5, True, "8"):
            with pytest.raises(ProtocolError, match="band must be"):
                parse_request(
                    {"op": "score", "a": "AC", "b": "GT", "mode": "banded", "band": bad_band}
                )

    def test_alignment_round_trip(self):
        aln = Alignment(3.5, ((0, 1), (2, 2)), (0, 3), (1, 3))
        assert alignment_from_dict(alignment_to_dict(aln)) == aln

    def test_model_fingerprint_distinguishes_models(self):
        assert model_fingerprint(unit_dna()) == model_fingerprint(unit_dna())
        assert model_fingerprint(unit_dna()) != model_fingerprint(
            transition_transversion()
        )
        assert model_fingerprint(unit_dna()) != model_fingerprint(
            unit_dna(gap=-2.0)
        )


class CountingEngine:
    """Engine wrapper that counts backend batch calls (batcher's view)."""

    def __init__(self, engine: AlignmentEngine) -> None:
        self._engine = engine
        self.calls: list[tuple[str, int]] = []

    def score_many(
        self, pairs, mode=None, band=None, gap_open=None, gap_extend=None,
        backend=None,
    ):
        self.calls.append(("score", len(pairs)))
        return self._engine.score_many(
            pairs, mode=mode, band=band, gap_open=gap_open,
            gap_extend=gap_extend, backend=backend,
        )

    def align_many(
        self, pairs, mode=None, band=None, gap_open=None, gap_extend=None,
        memory=None, backend=None,
    ):
        self.calls.append(("align", len(pairs)))
        return self._engine.align_many(
            pairs, mode=mode, band=band, gap_open=gap_open,
            gap_extend=gap_extend, memory=memory, backend=backend,
        )


class TestMicroBatcher:
    def test_identical_concurrent_requests_coalesce(self):
        async def run():
            counting = CountingEngine(AlignmentEngine())
            batcher = MicroBatcher(counting, max_batch=64, max_delay=0.005)
            try:
                results = await asyncio.gather(
                    *(batcher.submit("score", "ACGTACGT", "AGGTACGT") for _ in range(16))
                )
            finally:
                batcher.close()
            return counting.calls, results

        calls, results = asyncio.run(run())
        assert calls == [("score", 1)]  # one backend call, batch of one job
        assert len(set(results)) == 1  # identical results for all awaiters
        assert results[0] == AlignmentEngine().score("ACGTACGT", "AGGTACGT")

    def test_mixed_batch_matches_direct_engine(self):
        pairs = [("ACGT", "AGGT"), ("AAAA", "TTTT"), ("ACGTAC", "ACGTAC")]

        async def run():
            counting = CountingEngine(AlignmentEngine())
            batcher = MicroBatcher(counting, max_batch=64, max_delay=0.005)
            try:
                scores = asyncio.gather(*(batcher.submit("score", a, b) for a, b in pairs))
                alns = asyncio.gather(*(batcher.submit("align", a, b) for a, b in pairs))
                return counting.calls, await scores, await alns
            finally:
                batcher.close()

        calls, scores, alns = asyncio.run(run())
        # One flush: one score_many and one align_many dispatch.
        assert sorted(calls) == [("align", 3), ("score", 3)]
        with AlignmentEngine() as eng:
            assert scores == [eng.score(a, b) for a, b in pairs]
            assert alns == eng.align_many(pairs)

    def test_flush_by_size_before_delay(self):
        async def run():
            counting = CountingEngine(AlignmentEngine())
            # Absurd delay: only the size trigger can flush in time.
            batcher = MicroBatcher(counting, max_batch=4, max_delay=60.0)
            pairs = [("ACGT" * 2, "AGGT" * 2 + "A" * k) for k in range(4)]
            try:
                scores = await asyncio.wait_for(
                    asyncio.gather(*(batcher.submit("score", a, b) for a, b in pairs)),
                    timeout=5.0,
                )
            finally:
                batcher.close()
            return counting.calls, scores

        calls, scores = asyncio.run(run())
        assert calls == [("score", 4)]
        assert len(scores) == 4

    def test_engine_error_propagates_to_all_waiters(self):
        class ExplodingEngine:
            def score_many(self, pairs, **knobs):
                raise RuntimeError("kernel on fire")

        async def run():
            batcher = MicroBatcher(ExplodingEngine(), max_batch=8, max_delay=0.001)
            try:
                results = await asyncio.gather(
                    *(batcher.submit("score", "AC", "GT") for _ in range(3)),
                    batcher.submit("score", "TT", "AA"),
                    return_exceptions=True,
                )
            finally:
                batcher.close()
            return results

        results = asyncio.run(run())
        assert len(results) == 4
        assert all(isinstance(r, RuntimeError) for r in results)


def _serve_in_thread(config: ServiceConfig):
    """Start a service on a daemon thread; return (port, stop, service)."""
    holder: dict = {}
    ready = threading.Event()

    def target():
        async def main():
            service = AlignmentService(config)
            await service.start()
            holder["service"] = service
            holder["port"] = service.port
            holder["loop"] = asyncio.get_running_loop()
            ready.set()
            await service.wait_closed()
            service.close()

        asyncio.run(main())

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    assert ready.wait(10), "service failed to start"

    def stop():
        try:
            holder["loop"].call_soon_threadsafe(holder["service"].stop)
        except RuntimeError:
            pass  # loop already closed: the server stopped on its own
        thread.join(timeout=10)
        assert not thread.is_alive(), "service thread failed to exit"

    return holder["port"], stop, holder["service"]


@pytest.fixture()
def service_port():
    port, stop, _service = _serve_in_thread(
        ServiceConfig(port=0, max_batch=16, max_delay=0.002, cache_size=256)
    )
    yield port
    stop()


class TestServiceEndToEnd:
    def test_score_align_parity_with_engine(self, service_port):
        pairs = [("ACGTACGTAC", "ACGTAGGTAC"), ("AAAA", "AAAT"), ("", "ACG")]
        with AlignmentClient(port=service_port) as client:
            assert client.ping()
            scores = client.score_many(pairs, concurrency=4)
            alns = client.align_many(pairs, concurrency=4)
        with AlignmentEngine() as eng:
            assert scores == [eng.score(a, b) for a, b in pairs]
            assert alns == eng.align_many(pairs)

    def test_cache_hit_on_repeat(self, service_port):
        async def run():
            client = await AsyncAlignmentClient.connect(port=service_port)
            try:
                first, cached_first = await client.score_detail("ACGT", "AGGT")
                second, cached_second = await client.score_detail("ACGT", "AGGT")
                stats = await client.stats()
            finally:
                await client.close()
            return first, cached_first, second, cached_second, stats

        first, cached_first, second, cached_second, stats = asyncio.run(run())
        assert first == second
        assert not cached_first and cached_second
        assert stats["cache"]["hits"] >= 1

    def test_concurrent_load_batches_and_stats(self, service_port):
        pairs = [("ACGT" * 4, "AGGT" * 3 + "ACG" + "T" * k) for k in range(40)]
        with AlignmentClient(port=service_port) as client:
            scores = client.score_many(pairs + pairs, concurrency=16)
            stats = client.stats()
        assert scores[:40] == scores[40:]
        # Far fewer backend dispatches than requests: batching happened.
        assert 0 < stats["batches"]["dispatched"] < 80
        assert stats["batches"]["max_size"] > 1
        assert stats["cache"]["hits"] + stats["batches"]["coalesced"] >= 40
        assert stats["requests"]["score"] == 80
        assert stats["requests"]["by_mode"]["global"] == 80  # resolved default
        assert (
            stats["latency_ms"]["p99"]
            >= stats["latency_ms"]["p95"]
            >= stats["latency_ms"]["p50"]
            >= 0
        )

    def test_overlap_and_banded_round_trip(self, service_port):
        # Per-request mode overrides route client -> batcher -> engine
        # and come back intact; every response equals the direct
        # engine call in that mode.
        pairs = [("TTTTTACGTACGT", "ACGTACGTCCCC"), ("ACGTACGT", "ACGTAGGT")]
        with AlignmentClient(port=service_port) as client:
            overlap_scores = client.score_many(pairs, concurrency=4, mode="overlap")
            overlap_alns = client.align_many(pairs, concurrency=4, mode="overlap")
            banded_scores = client.score_many(pairs, concurrency=4, mode="banded", band=4)
            banded_alns = client.align_many(pairs, concurrency=4, mode="banded", band=4)
            global_scores = client.score_many(pairs, concurrency=4)
        with AlignmentEngine() as eng:
            assert overlap_scores == [
                eng.score(a, b, mode="overlap") for a, b in pairs
            ]
            assert overlap_alns == eng.align_many(pairs, mode="overlap")
            assert banded_scores == [
                eng.score(a, b, mode="banded", band=4) for a, b in pairs
            ]
            assert banded_alns == eng.align_many(pairs, mode="banded", band=4)
            assert global_scores == [eng.score(a, b) for a, b in pairs]
        # Distinct modes for one pair must not cross-contaminate the
        # result cache: the overlap score of these pairs differs from
        # the global score.
        assert overlap_scores != global_scores

    def test_banded_requests_validated_before_batching(self, service_port):
        async def run():
            client = await AsyncAlignmentClient.connect(port=service_port)
            try:
                with pytest.raises(ServiceError, match="needs a band"):
                    await client.score("ACGT", "AGGT", mode="banded")
                with pytest.raises(ServiceError, match="too narrow"):
                    await client.score("ACGTACGTACGT", "AC", mode="banded", band=2)
                # The failed requests poisoned nothing: a good banded
                # request on the same connection still works.
                return await client.score("ACGT", "AGGT", mode="banded", band=2)
            finally:
                await client.close()

        assert asyncio.run(run()) == AlignmentEngine().score(
            "ACGT", "AGGT", mode="banded", band=2
        )

    def test_unknown_op_is_answered_not_fatal(self, service_port):
        async def run():
            client = await AsyncAlignmentClient.connect(port=service_port)
            try:
                with pytest.raises(ServiceError, match="unknown op"):
                    await client._request("frobnicate")
                return await client.ping()  # connection still serves
            finally:
                await client.close()

        assert asyncio.run(run())

    def test_shutdown_request_stops_server(self):
        port, stop, _service = _serve_in_thread(ServiceConfig(port=0))
        client = AlignmentClient(port=port)
        try:
            assert client.ping()
            client.shutdown()
        finally:
            client.close()
        stop()  # joins the server thread: returns only on clean exit
        with pytest.raises(OSError):
            AlignmentClient(port=port).ping()


class TestServiceStatsSurface:
    def test_p99_and_by_mode_counters(self):
        from fragalign.service import ServiceStats

        stats = ServiceStats()
        for k in range(100):
            stats.observe_latency(k / 1000.0)
        stats.observe_request("score")
        stats.observe_mode("global")
        stats.observe_request("score")
        stats.observe_mode("overlap")
        snap = stats.snapshot()
        assert snap["latency_ms"]["p99"] >= snap["latency_ms"]["p95"]
        assert snap["requests"]["by_mode"] == {"global": 1, "overlap": 1}
        # Backward compatibility: the pre-existing schema keys survive.
        for key in ("total", "errors", "score"):
            assert key in snap["requests"]
        for key in ("p50", "p95", "mean", "samples"):
            assert key in snap["latency_ms"]


class TestPortFileHandshake:
    def test_write_is_atomic_and_wait_polls(self, tmp_path):
        path = tmp_path / "server.port"

        def late_write():
            time.sleep(0.15)
            write_port_file(str(path), 43210)

        writer = threading.Thread(target=late_write)
        writer.start()
        try:
            # The reader starts before the file exists and must never
            # see a half-written value — only nothing, then the port.
            assert wait_for_port_file(str(path), timeout=5.0, poll=0.01) == 43210
        finally:
            writer.join()
        assert not list(tmp_path.glob("*.tmp.*"))  # tmp file renamed away

    def test_wait_times_out_and_aborts_on_dead_server(self, tmp_path):
        path = str(tmp_path / "never.port")
        with pytest.raises(TimeoutError, match="no port appeared"):
            wait_for_port_file(path, timeout=0.2, poll=0.02)
        with pytest.raises(RuntimeError, match="exited before"):
            wait_for_port_file(path, timeout=5.0, poll=0.02, alive=lambda: False)


async def _abrupt_server():
    """A server that reads one line, then closes the connection without
    answering — the mid-stream-death simulator."""

    async def handle(reader, writer):
        await reader.readline()
        writer.close()

    server = await asyncio.start_server(handle, host="127.0.0.1", port=0)
    return server, server.sockets[0].getsockname()[1]


class TestClientReconnectBehavior:
    def test_pending_request_fails_cleanly_on_mid_stream_close(self):
        async def run():
            server, port = await _abrupt_server()
            try:
                client = await AsyncAlignmentClient.connect(port=port)
                try:
                    with pytest.raises((ConnectionError, OSError)):
                        await client.score("ACGT", "AGGT")
                    assert client.closed
                    # Requests issued after the close fail fast with a
                    # clean error instead of hanging on a dead reader.
                    with pytest.raises((ConnectionError, OSError)):
                        await client.ping()
                finally:
                    await client.close()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(run())

    def test_sync_client_surfaces_connection_error(self):
        async def start():
            return await _abrupt_server()

        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        server, port = asyncio.run_coroutine_threadsafe(start(), loop).result()
        try:
            client = AlignmentClient(port=port)
            try:
                with pytest.raises((ConnectionError, OSError)):
                    client.score("ACGT", "AGGT")
                with pytest.raises((ConnectionError, OSError)):
                    client.ping()  # still clean on the next call
            finally:
                client.close()
        finally:
            asyncio.run_coroutine_threadsafe(_close(server), loop).result()
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=5)
            loop.close()

    def test_close_releases_pending_waiters(self):
        # close() cancels the reader task; the cleanup must run anyway
        # (finally, not except) or a request sharing the client — e.g.
        # through the cluster router's failover path — hangs forever.
        async def run():
            async def handle(reader, writer):
                await asyncio.sleep(3600)  # a server that never answers

            server = await asyncio.start_server(handle, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            client = await AsyncAlignmentClient.connect(port=port)
            pending = asyncio.create_task(client.score("ACGT", "AGGT"))
            await asyncio.sleep(0.05)  # let the request hit the wire
            await client.close()
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.wait_for(pending, timeout=5)
            server.close()
            await server.wait_closed()

        asyncio.run(run())

    def test_server_restart_allows_fresh_connection(self, service_port):
        # The documented reconnect story: a new client object per
        # connection.  After an old client dies with the server, a
        # fresh connect to a live server works.
        async def run():
            client = await AsyncAlignmentClient.connect(port=service_port)
            try:
                return await client.score("ACGT", "AGGT")
            finally:
                await client.close()

        assert asyncio.run(run()) == asyncio.run(run())


async def _close(server):
    server.close()
    await server.wait_closed()


class TestCacheKeying:
    def test_key_includes_op_mode_band_and_model(self):
        svc = AlignmentService(ServiceConfig(port=0))
        svc_model = AlignmentService(
            ServiceConfig(port=0),
            engine=AlignmentEngine(model=transition_transversion()),
        )
        keys = {
            svc.cache_key("score", "ACGT", "AGGT", "global", None),
            svc.cache_key("align", "ACGT", "AGGT", "global", None),
            svc.cache_key("score", "ACGT", "AGGT", "local", None),
            svc.cache_key("score", "ACGT", "AGGT", "overlap", None),
            svc.cache_key("score", "ACGT", "AGGT", "banded", 2),
            svc.cache_key("score", "ACGT", "AGGT", "banded", 3),
            svc_model.cache_key("score", "ACGT", "AGGT", "global", None),
        }
        assert len(keys) == 7  # op, mode, band, model all key
        svc.close()
        svc_model.close()

    def test_same_config_same_key(self):
        svc_a = AlignmentService(ServiceConfig(port=0))
        svc_b = AlignmentService(ServiceConfig(port=0))
        try:
            assert svc_a.cache_key("score", "AC", "GT", "global", None) == svc_b.cache_key(
                "score", "AC", "GT", "global", None
            )
        finally:
            svc_a.close()
            svc_b.close()


class TestAffineAndMemoryKnobsEndToEnd:
    """gap_open/gap_extend/memory round-trip client -> server -> engine."""

    def test_affine_requests_match_engine(self, service_port):
        a, b = "ACGTACGTACGTTT", "ACGTAAGTACG"
        with AlignmentEngine() as eng, AlignmentClient(port=service_port) as client:
            got = client.score(a, b, gap_open=-3.0, gap_extend=-1.0)
            assert got == eng.score(a, b, gap_open=-3.0, gap_extend=-1.0)
            for mode in ("global", "local", "overlap"):
                got_aln = client.align(a, b, mode=mode, gap_open=-3.0, gap_extend=-1.0)
                assert got_aln == eng.align(a, b, mode=mode, gap_open=-3.0, gap_extend=-1.0)
            got_aln = client.align(
                a, b, mode="banded", band=8, gap_open=-3.0, gap_extend=-1.0
            )
            assert got_aln == eng.align(
                a, b, mode="banded", band=8, gap_open=-3.0, gap_extend=-1.0
            )

    def test_memory_strategies_agree_and_share_cache(self, service_port):
        """linear and tensor return identical alignments, so they share
        one cache entry (memory is not in the cache key)."""
        a, b = "ACGTACGTACGT", "ACGTAAGTACG"

        async def run():
            client = await AsyncAlignmentClient.connect(port=service_port)
            aln1 = await client.align(a, b, memory="tensor")
            response = await client._request("align", a=a, b=b, memory="linear")
            await client.close()
            return aln1, response

        aln1, response = asyncio.run(run())
        assert response["cached"] is True  # same key as the tensor request
        assert alignment_from_dict(response["result"]) == aln1

    def test_affine_cached_separately_from_linear_gap(self, service_port):
        a, b = "ACGTACGT", "ACGTCCGT"

        async def run():
            client = await AsyncAlignmentClient.connect(port=service_port)
            s1 = await client.score(a, b)
            s2, cached = await client.score_detail(a, b, gap_open=-4.0, gap_extend=-1.0)
            await client.close()
            return s1, s2, cached

        s1, s2, cached = asyncio.run(run())
        assert cached is False  # different knobs, different cache key

    def test_invalid_knob_combos_rejected_before_batching(self, service_port):
        a, b = "ACGT", "ACGA"
        with AlignmentClient(port=service_port) as client:
            with pytest.raises(ServiceError, match="linear"):
                client.align(a, b, memory="linear", gap_open=-3.0, gap_extend=-1.0)
            with pytest.raises(ServiceError, match="linear"):
                client.align(a, b, mode="banded", band=4, memory="linear")
            with pytest.raises(ServiceError, match="together"):
                client.score(a, b, gap_open=-3.0)
            with pytest.raises(ServiceError, match="<= 0"):
                client.score(a, b, gap_open=2.0, gap_extend=-1.0)
            # the connection is still healthy after rejected requests
            assert client.ping()

    def test_memory_on_score_rejected(self, service_port):
        async def run():
            client = await AsyncAlignmentClient.connect(port=service_port)
            with pytest.raises(ServiceError, match="align"):
                await client._request("score", a="AC", b="AC", memory="linear")
            await client.close()

        asyncio.run(run())

    def test_server_affine_defaults_apply(self):
        port, stop, _service = _serve_in_thread(
            ServiceConfig(port=0, gap_open=-3.0, gap_extend=-1.0, cache_size=64)
        )
        try:
            a, b = "ACGTACGTACGT", "ACGTCCGT"
            with AlignmentEngine() as eng, AlignmentClient(port=port) as client:
                assert client.score(a, b) == eng.score(
                    a, b, gap_open=-3.0, gap_extend=-1.0
                )
        finally:
            stop()


class TestClientAutoReconnect:
    """Opt-in reconnect with capped exponential backoff; fail-fast default."""

    def _restartable_config(self):
        return ServiceConfig(port=0, max_batch=8, max_delay=0.001, cache_size=64)

    def test_reconnect_after_server_restart(self):
        port, stop, _service = _serve_in_thread(self._restartable_config())
        client = AlignmentClient(
            port=port, reconnect=True, reconnect_base_delay=0.02,
            reconnect_attempts=8,
        )
        try:
            assert client.score("ACGT", "ACGA") == 2.0
            stop()  # server dies
            # restart on the same port while the client holds a dead conn
            cfg = self._restartable_config()
            cfg.port = port
            port2, stop, _service = _serve_in_thread(cfg)
            assert port2 == port
            assert client.score("ACGT", "ACGA") == 2.0  # transparent retry
            assert client.reconnects >= 1
            # batch ops survive too
            assert client.score_many([("AC", "AC"), ("GT", "GA")]) == [2.0, 0.0]
        finally:
            client.close()
            stop()

    def test_default_stays_fail_fast(self):
        port, stop, _service = _serve_in_thread(self._restartable_config())
        client = AlignmentClient(port=port)
        try:
            assert client.ping()
            stop()
            with pytest.raises((ConnectionError, OSError)):
                client.score("ACGT", "ACGT")
            assert client.reconnects == 0
        finally:
            client.close()

    def test_reconnect_gives_up_after_attempts(self):
        port, stop, _service = _serve_in_thread(self._restartable_config())
        client = AlignmentClient(
            port=port, reconnect=True, reconnect_attempts=2,
            reconnect_base_delay=0.01, reconnect_max_delay=0.02,
        )
        try:
            assert client.ping()
            stop()  # nothing ever comes back on this port
            with pytest.raises((ConnectionError, OSError)):
                client.score("ACGT", "ACGT")
        finally:
            client.close()
