"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One moderate profile for the whole suite: enough examples to matter,
# fast enough to keep `pytest tests/` snappy.
settings.register_profile(
    "repro",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def paper_instance():
    from fragalign.core import paper_example

    return paper_example()
