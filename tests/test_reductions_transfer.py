"""Theorem 3 (CSR → 1-CSR) and Lemma 1 (CSR → UCSR) transfer results."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.core.baseline import (
    concat_m_instance,
    transposed_concat_instance,
)
from fragalign.core.conjecture import identity_arrangement, score_pair
from fragalign.core.exact import exact_csr
from fragalign.core.generators import random_instance
from fragalign.core.one_csr import solve_one_csr
from fragalign.reductions.to_one_csr import blue_yellow_split, combine_one_csr
from fragalign.reductions.to_ucsr import (
    backward_score,
    csr_to_ucsr,
    forward_score,
)
from fragalign.util.errors import ReductionError

seeds = st.integers(0, 10_000)


class TestTheorem3:
    @given(seeds)
    @settings(max_examples=10)
    def test_inequality_2(self, seed):
        """Opt(H, M′) + Opt(M, H′) ≥ Opt(H, M)."""
        inst = random_instance(n_h=2, n_m=2, rng=seed)
        opt = exact_csr(inst).score
        opt_hm = exact_csr(concat_m_instance(inst)).score
        opt_mh = exact_csr(transposed_concat_instance(inst)).score
        assert opt_hm + opt_mh + 1e-9 >= opt

    @given(seeds)
    @settings(max_examples=10)
    def test_colouring_covers_every_pair(self, seed):
        inst = random_instance(n_h=2, n_m=2, rng=seed)
        res = exact_csr(inst)
        by = blue_yellow_split(inst, res.arr_h, res.arr_m)
        assert by.covers
        assert by.blue + by.yellow - by.double == pytest.approx(
            by.total, abs=1e-9
        )

    @given(seeds)
    @settings(max_examples=8)
    def test_combinator_ratio_2r(self, seed):
        # With the exact 1-CSR oracle as the solver (r = 1), A' must be
        # within ratio 2 of the CSR optimum.
        inst = random_instance(n_h=2, n_m=2, rng=seed)

        def exact_one_csr_solver(one_inst):
            from fragalign.core.exact import state_from_arrangements
            from fragalign.core.solution import CSRSolution

            res = exact_csr(one_inst)
            return CSRSolution(
                state=state_from_arrangements(one_inst, res.arr_h, res.arr_m),
                arr_h=res.arr_h,
                arr_m=res.arr_m,
                score=res.score,
                algorithm="exact",
            )

        sol = combine_one_csr(inst, exact_one_csr_solver)
        opt = exact_csr(inst).score
        assert 2.0 * sol.score + 1e-9 >= opt

    @given(seeds)
    @settings(max_examples=6)
    def test_combinator_with_tpa_ratio_four(self, seed):
        inst = random_instance(n_h=2, n_m=2, rng=seed)
        sol = combine_one_csr(inst, solve_one_csr)
        opt = exact_csr(inst).score
        assert 4.0 * sol.score + 1e-9 >= opt


class TestLemma1:
    @given(seeds)
    @settings(max_examples=6)
    def test_forward_preserves_score(self, seed):
        """Property 2: the UCSR instance realizes every original score."""
        inst = random_instance(n_h=1, n_m=1, len_lo=1, len_hi=2, rng=seed)
        gadget = csr_to_ucsr(inst, eps=0.5)
        arr_h = identity_arrangement(inst, "H")
        arr_m = identity_arrangement(inst, "M")
        original = score_pair(inst, arr_h, arr_m)
        assert forward_score(gadget, arr_h, arr_m) + 1e-9 >= original

    @given(seeds)
    @settings(max_examples=6)
    def test_backward_loses_at_most_eps(self, seed):
        """Property 3: mapping back keeps ≥ (1−ε) of the UCSR score."""
        inst = random_instance(n_h=1, n_m=1, len_lo=1, len_hi=2, rng=seed)
        eps = 0.5
        gadget = csr_to_ucsr(inst, eps=eps)
        arr_h = identity_arrangement(inst, "H")
        arr_m = identity_arrangement(inst, "M")
        fwd = forward_score(gadget, arr_h, arr_m)
        bwd = backward_score(gadget, arr_h, arr_m)
        assert bwd + 1e-9 >= (1.0 - eps) * fwd

    def test_gadget_shape(self, paper_instance):
        gadget = csr_to_ucsr(paper_instance, eps=1.0)
        assert gadget.K == 8  # 8 region occurrences
        assert gadget.s == 2 * 1 * 8
        word_len = gadget.word_length_per_occurrence()
        assert word_len == 2 * gadget.K * gadget.s
        # each UCSR fragment is its original length times word_len
        assert len(gadget.ucsr.fragment("H", 0)) == 3 * word_len

    def test_eps_validation(self, paper_instance):
        with pytest.raises(ReductionError):
            csr_to_ucsr(paper_instance, eps=0.0)

    def test_paper_example_round_trip(self, paper_instance):
        from fragalign.core.conjecture import Arrangement

        gadget = csr_to_ucsr(paper_instance, eps=1.0)
        arr_h = Arrangement("H", ((0, False), (1, True)))
        arr_m = Arrangement("M", ((0, False), (1, False)))
        fwd = forward_score(gadget, arr_h, arr_m)
        assert fwd + 1e-9 >= 11.0
        assert backward_score(gadget, arr_h, arr_m) == pytest.approx(11.0)
