"""The paper's algorithms end to end: guarantees measured against the
exact oracle.

* Corollary 1: baseline4 ≥ OPT/4.
* Theorem 4: Full_Improve ≥ OPT/3 (−ε) on Full-CSR instances.
* Lemma 9: matching_2approx ≥ OPT/2 on Border-CSR instances.
* Theorem 5: Border_Improve ≥ OPT/3 on Border-CSR instances.
* Theorem 6: CSR_Improve ≥ OPT/3 on general instances.

Hypothesis drives randomized families through each guarantee; the
bounds are checked with a small numerical slack for float noise only —
the guarantees themselves are exercised at full strength.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.core.baseline import baseline4
from fragalign.core.border_improve import border_improve, matching_2approx
from fragalign.core.consistency import check_consistent
from fragalign.core.csr_improve import csr_improve
from fragalign.core.exact import exact_csr
from fragalign.core.full_improve import full_improve
from fragalign.core.generators import (
    border_chain_instance,
    full_csr_instance,
    planted_instance,
    random_instance,
    ucsr_instance,
)
from fragalign.core.greedy import greedy_csr
from fragalign.core.one_csr import solve_one_csr
from fragalign.core.solution import CSRSolution

SLACK = 1e-6

seeds = st.integers(0, 10_000)


class TestOneCSR:
    @given(seeds)
    @settings(max_examples=12)
    def test_ratio_two_vs_exact(self, seed):
        inst = random_instance(n_h=3, n_m=1, len_lo=2, len_hi=4, rng=seed)
        sol = solve_one_csr(inst)
        opt = exact_csr(inst).score
        assert 2.0 * sol.score + SLACK >= opt
        check_consistent(sol.state)

    def test_parallel_workers_agree(self):
        inst = random_instance(n_h=3, n_m=1, len_lo=3, len_hi=5, rng=7)
        assert solve_one_csr(inst).score == pytest.approx(
            solve_one_csr(inst, workers=2).score
        )


class TestBaseline4:
    @given(seeds)
    @settings(max_examples=12)
    def test_corollary1_ratio_four(self, seed):
        inst = random_instance(n_h=3, n_m=2, rng=seed)
        sol = baseline4(inst)
        opt = exact_csr(inst).score
        assert 4.0 * sol.score + SLACK >= opt

    def test_paper_example(self, paper_instance):
        sol = baseline4(paper_instance)
        assert 4.0 * sol.score + SLACK >= 11.0
        assert sol.score <= 11.0 + SLACK


class TestFullImprove:
    @given(seeds)
    @settings(max_examples=10)
    def test_theorem4_ratio_three_on_full_instances(self, seed):
        inst = full_csr_instance(n_h=4, n_m=2, m_len=3, rng=seed)
        sol = full_improve(inst)
        opt = exact_csr(inst).score
        assert 3.0 * sol.score + SLACK >= opt
        check_consistent(sol.state)

    def test_only_full_matches_created(self):
        inst = full_csr_instance(n_h=5, n_m=2, m_len=4, rng=3)
        sol = full_improve(inst)
        assert all(m.kind == "full" for m in sol.state.matches())


class TestBorderAlgorithms:
    @given(seeds)
    @settings(max_examples=8)
    def test_lemma9_ratio_two(self, seed):
        inst = border_chain_instance(k=3, jitter=1.0, rng=seed)
        sol = matching_2approx(inst)
        opt = exact_csr(inst).score
        assert 2.0 * sol.score + SLACK >= opt
        check_consistent(sol.state)

    @given(seeds)
    @settings(max_examples=8)
    def test_theorem5_ratio_three(self, seed):
        inst = border_chain_instance(k=3, jitter=1.0, rng=seed)
        sol = border_improve(inst)
        opt = exact_csr(inst).score
        assert 3.0 * sol.score + SLACK >= opt
        check_consistent(sol.state)

    def test_border_improve_uses_border_matches(self):
        inst = border_chain_instance(k=3)
        sol = border_improve(inst)
        kinds = {m.kind for m in sol.state.matches()}
        assert kinds <= {"border"}
        assert sol.score > 0


class TestCSRImprove:
    @given(seeds)
    @settings(max_examples=10)
    def test_theorem6_ratio_three_random(self, seed):
        inst = random_instance(n_h=3, n_m=2, rng=seed)
        sol = csr_improve(inst)
        opt = exact_csr(inst).score
        assert 3.0 * sol.score + SLACK >= opt
        check_consistent(sol.state)

    @given(seeds)
    @settings(max_examples=8)
    def test_theorem6_on_ucsr(self, seed):
        inst = ucsr_instance(n_letters=6, n_h=2, n_m=2, rng=seed)
        sol = csr_improve(inst)
        opt = exact_csr(inst).score
        assert 3.0 * sol.score + SLACK >= opt

    def test_paper_example_reaches_optimum(self, paper_instance):
        sol = csr_improve(paper_instance, validate=True)
        assert sol.score == pytest.approx(11.0)

    def test_seeded_from_baseline(self, paper_instance):
        sol = csr_improve(paper_instance, seed="baseline")
        assert sol.score == pytest.approx(11.0)

    def test_bad_seed_rejected(self, paper_instance):
        with pytest.raises(ValueError):
            csr_improve(paper_instance, seed="nonsense")

    def test_planted_recovery(self):
        p = planted_instance(n_blocks=6, n_h=2, n_m=3, rng=4)
        sol = csr_improve(p.instance)
        # Local search must collect at least the planted correspondence
        # up to its (3+ε) guarantee; in practice it recovers most of it.
        assert 3.0 * sol.score + SLACK >= p.planted_score


class TestGreedyFoil:
    @given(seeds)
    @settings(max_examples=8)
    def test_greedy_is_consistent_but_unguaranteed(self, seed):
        inst = random_instance(n_h=3, n_m=2, rng=seed)
        sol = greedy_csr(inst)
        check_consistent(sol.state)
        assert sol.score <= exact_csr(inst).score + SLACK

    def test_csr_improve_beats_or_ties_greedy_on_paper(self, paper_instance):
        assert (
            csr_improve(paper_instance).score
            >= greedy_csr(paper_instance).score
        )


class TestSolutionType:
    def test_summary_format(self, paper_instance):
        sol = csr_improve(paper_instance)
        text = sol.summary()
        assert "csr_improve" in text and "score" in text
        assert isinstance(sol, CSRSolution)
