"""The static analyzer: every rule family fires on a seeded fixture,
stays quiet on a clean one, and the real tree passes.

The two ``test_real_tree_*_deletion`` tests are the acceptance
mechanics: deleting a field from the registry, or an oracle from
``align/``, must fail ``fragalign check``.
"""

from __future__ import annotations

import json
import shutil
import textwrap
from pathlib import Path

import pytest

import fragalign
from fragalign.analysis import (
    Baseline,
    BaselineError,
    CheckResult,
    Finding,
    Severity,
    format_report,
    run_check,
)
from fragalign.cli import main

REAL_ROOT = Path(fragalign.__file__).resolve().parent
REAL_TESTS = REAL_ROOT.parent.parent / "tests"
REAL_BASELINE = REAL_ROOT.parent.parent / "analysis-baseline.json"


def write(root: Path, rel: str, src: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(src))


@pytest.fixture
def pkg(tmp_path):
    root = tmp_path / "pkg"
    root.mkdir()
    return root


@pytest.fixture
def testdir(tmp_path):
    tdir = tmp_path / "tests"
    tdir.mkdir()
    return tdir


# ---------------------------------------------------------------------------
# kernel-parity
# ---------------------------------------------------------------------------


class TestKernelParity:
    def _run(self, root, tests):
        return run_check(root, tests=tests, rules=["kernel-parity"]).new

    def test_missing_oracle_fires(self, pkg, testdir):
        write(pkg, "align/k.py", "def foo_scores_batch(pairs):\n    pass\n")
        findings = self._run(pkg, testdir)
        assert [f.symbol for f in findings] == ["foo_scores_batch"]
        assert "no matching *_reference oracle" in findings[0].message

    def test_missing_parity_test_fires(self, pkg, testdir):
        write(
            pkg,
            "align/k.py",
            """
            def foo_scores_batch(pairs):
                pass

            def foo_score_reference(a, b):
                pass
            """,
        )
        findings = self._run(pkg, testdir)
        assert [f.symbol for f in findings] == ["foo_scores_batch"]
        assert "no test file references both" in findings[0].message

    def test_clean_when_oracle_and_test_exist(self, pkg, testdir):
        write(
            pkg,
            "align/k.py",
            """
            def foo_scores_batch(pairs):
                pass

            def foo_score_reference(a, b):
                pass
            """,
        )
        write(
            testdir,
            "test_k.py",
            "# parity: foo_scores_batch vs foo_score_reference\n",
        )
        assert self._run(pkg, testdir) == []

    def test_directive_names_the_oracle(self, pkg, testdir):
        write(
            pkg,
            "align/k.py",
            """
            def odd_align(x):  # parity-oracle: special_align_reference
                pass

            def special_align_reference(a, b):
                pass
            """,
        )
        write(testdir, "test_k.py", "# odd_align special_align_reference\n")
        assert self._run(pkg, testdir) == []

    def test_directive_to_missing_oracle_fires(self, pkg, testdir):
        write(
            pkg,
            "align/k.py",
            "def odd_align(x):  # parity-oracle: ghost_reference\n    pass\n",
        )
        findings = self._run(pkg, testdir)
        assert len(findings) == 1
        assert "does not exist" in findings[0].message

    def test_score_kernel_rejects_align_only_oracle(self, pkg, testdir):
        write(
            pkg,
            "align/k.py",
            """
            def foo_scores_batch(pairs):
                pass

            def foo_align_reference(a, b):
                pass
            """,
        )
        write(testdir, "test_k.py", "# foo_scores_batch foo_align_reference\n")
        findings = self._run(pkg, testdir)
        assert [f.symbol for f in findings] == ["foo_scores_batch"]


# ---------------------------------------------------------------------------
# knob-propagation
# ---------------------------------------------------------------------------


_SPEC_TEMPLATE = """
_SPECS = (
    {{"name": "mode", "kind": "str", "ops": ("score", "align"),
      "cache_key": True, "ring_key": True, "group_key": True,
      "keyset": True, "cli_flag": "--mode", "doc": "d"}},
    {{"name": "band", "kind": "int", "ops": ("score", "align"),
      "cache_key": True, "ring_key": {band_ring}, "group_key": True,
      "keyset": True, "cli_flag": "--band", "doc": "d"}},
)
"""


def _knob_tree(pkg: Path, band_ring: str = "True", cache_key_sig: str | None = None):
    write(pkg, "service/fields.py", _SPEC_TEMPLATE.format(band_ring=band_ring))
    write(
        pkg,
        "service/protocol.py",
        """
        class Request:
            id: int
            op: str
            a: str
            b: str
            mode: str
            band: int

        def parse_request(obj):
            return (obj.get("mode"), obj.get("band"))
        """,
    )
    write(
        pkg,
        "service/batcher.py",
        """
        class MicroBatcher:
            def submit(self, op, a, b, mode, band):
                pass
        """,
    )
    write(
        pkg,
        "service/server.py",
        f"""
        class Server:
            def cache_key({cache_key_sig or 'self, op, a, b, mode, band'}):
                pass
        """,
    )
    write(
        pkg,
        "cluster/ring.py",
        """
        def ring_key(op, a, b, mode=None, band=None, model_fp="", default_mode="g"):
            pass
        """,
    )
    write(
        pkg,
        "cluster/warm.py",
        """
        def generate_keyset(n, length, seed, op, mode, band):
            pass
        """,
    )
    write(
        pkg,
        "cli.py",
        """
        def build_parser():
            p = make()
            p.add_argument("--mode")
            p.add_argument("--band")
            return p
        """,
    )


class TestKnobPropagation:
    def _run(self, root):
        return run_check(root, tests=None, rules=["knob-propagation"]).new

    def test_clean_tree(self, pkg):
        _knob_tree(pkg)
        assert self._run(pkg) == []

    def test_missing_field_in_cache_key_fires(self, pkg):
        _knob_tree(pkg, cache_key_sig="self, op, a, b, mode")
        findings = self._run(pkg)
        assert any(
            "missing registered field 'band'" in f.message and f.symbol == "cache_key"
            for f in findings
        )

    def test_unregistered_extra_param_fires(self, pkg):
        _knob_tree(pkg, cache_key_sig="self, op, a, b, mode, band, gap")
        findings = self._run(pkg)
        assert any(
            "'gap'" in f.message and "not a registered request field" in f.message
            for f in findings
        )

    def test_ring_cache_mismatch_fires(self, pkg):
        _knob_tree(pkg, band_ring="False")
        findings = self._run(pkg)
        assert any("must mirror cache_key fields" in f.message for f in findings)

    def test_field_never_parsed_off_wire_fires(self, pkg):
        _knob_tree(pkg)
        write(
            pkg,
            "service/protocol.py",
            """
            class Request:
                id: int
                op: str
                a: str
                b: str
                mode: str
                band: int

            def parse_request(obj):
                return obj.get("mode")
            """,
        )
        findings = self._run(pkg)
        assert any("never read off the wire" in f.message for f in findings)

    def test_missing_cli_flag_fires(self, pkg):
        _knob_tree(pkg)
        write(pkg, "cli.py", "def build_parser():\n    p = make()\n    p.add_argument('--mode')\n    return p\n")
        findings = self._run(pkg)
        assert any("'--band'" in f.message for f in findings)

    def test_missing_registry_fires(self, pkg):
        _knob_tree(pkg)
        (pkg / "service/fields.py").write_text("SPECS = []\n")
        findings = self._run(pkg)
        assert any("pure literal" in f.message for f in findings)


# ---------------------------------------------------------------------------
# asyncio-hygiene
# ---------------------------------------------------------------------------


class TestAsyncioHygiene:
    def _run(self, root):
        return run_check(root, tests=None, rules=["asyncio-hygiene"]).new

    def test_seeded_violations_fire(self, pkg):
        write(
            pkg,
            "service/app.py",
            """
            import asyncio
            import time

            async def good():
                await asyncio.sleep(0.1)

            async def bad_sleep():
                time.sleep(1)

            async def bad_open(path):
                return open(path)

            async def bad_lock(lock, fut):
                with lock:
                    await fut

            async def bad_engine(engine, pairs):
                return engine.score_many(pairs)
            """,
        )
        by_symbol = {f.symbol: f.message for f in self._run(pkg)}
        assert "time.sleep" in by_symbol["bad_sleep"]
        assert "open()" in by_symbol["bad_open"]
        assert "lock held across an await" in by_symbol["bad_lock"]
        assert "run_in_executor" in by_symbol["bad_engine"]
        assert "good" not in by_symbol

    def test_unawaited_self_coroutine_fires_but_not_writer_close(self, pkg):
        write(
            pkg,
            "cluster/conn.py",
            """
            class Conn:
                async def close(self):
                    pass

                async def bad(self):
                    self.close()

                async def fine(self, writer):
                    writer.close()
                    await self.close()
            """,
        )
        findings = self._run(pkg)
        assert [f.symbol for f in findings] == ["Conn.bad"]
        assert "never awaited" in findings[0].message

    def test_sync_code_is_out_of_scope(self, pkg):
        write(
            pkg,
            "service/retry.py",
            """
            import time

            def backoff():
                time.sleep(0.5)
            """,
        )
        assert self._run(pkg) == []


# ---------------------------------------------------------------------------
# io-timeout
# ---------------------------------------------------------------------------


class TestIoTimeout:
    def _run(self, root):
        return run_check(root, tests=None, rules=["io-timeout"]).new

    def test_unbounded_network_awaits_fire(self, pkg):
        write(
            pkg,
            "service/conn.py",
            """
            import asyncio

            async def bad_read(reader):
                return await reader.readline()

            async def bad_connect(host, port):
                return await asyncio.open_connection(host, port)

            async def bad_drain(writer):
                await writer.drain()
            """,
        )
        by_symbol = {f.symbol: f.message for f in self._run(pkg)}
        assert set(by_symbol) == {"bad_read", "bad_connect", "bad_drain"}
        assert "...readline()" in by_symbol["bad_read"]
        assert "asyncio.open_connection()" in by_symbol["bad_connect"]
        assert "wait_for" in by_symbol["bad_drain"]

    def test_wait_for_wrapper_and_directive_pass(self, pkg):
        write(
            pkg,
            "cluster/conn.py",
            """
            import asyncio

            async def bounded(reader):
                return await asyncio.wait_for(reader.readline(), timeout=2.0)

            async def justified(reader):
                # io-timeout: the caller's request_timeout bounds this wait
                return await reader.readline()

            async def inline_justified(writer):
                await writer.drain()  # io-timeout: drain after abort is instant
            """,
        )
        assert self._run(pkg) == []

    def test_bare_directive_without_justification_fires(self, pkg):
        write(
            pkg,
            "service/conn.py",
            """
            async def lazy(reader):
                # io-timeout:
                return await reader.readline()
            """,
        )
        findings = self._run(pkg)
        assert [f.symbol for f in findings] == ["lazy"]

    def test_code_outside_serving_tiers_is_exempt(self, pkg):
        write(
            pkg,
            "engine/io.py",
            """
            async def whatever(reader):
                return await reader.readline()
            """,
        )
        assert self._run(pkg) == []

    def test_client_verbs_are_not_matched(self, pkg):
        # Higher-level calls own their timeout obligations internally;
        # the rule checks the raw stream waits they are built from.
        write(
            pkg,
            "cluster/route.py",
            """
            async def route(client, a, b):
                return await client.score(a, b)
            """,
        )
        assert self._run(pkg) == []


# ---------------------------------------------------------------------------
# hot-kernel-numpy
# ---------------------------------------------------------------------------


class TestNumpyHotLoops:
    def _run(self, root):
        return run_check(root, tests=None, rules=["hot-kernel-numpy"]).new

    def test_seeded_violations_fire(self, pkg):
        write(
            pkg,
            "align/pairwise.py",
            """
            import numpy as np

            def foo_scores_batch(pairs):
                out = np.zeros(len(pairs))  # outside the loop: fine
                for k in range(len(pairs)):
                    t = np.zeros(4)
                    out = np.concatenate([out, t])
                    w = t.astype(np.float64)
                return out
            """,
        )
        messages = [f.message for f in self._run(pkg)]
        assert len(messages) == 3
        assert any("np.zeros" in m and "allocates per iteration" in m for m in messages)
        assert any("np.concatenate" in m and "reallocates" in m for m in messages)
        assert any(".astype" in m for m in messages)

    def test_cold_functions_and_nested_defs_are_exempt(self, pkg):
        write(
            pkg,
            "align/hirschberg.py",
            """
            import numpy as np

            def helper(pairs):
                for k in pairs:
                    np.zeros(3)

            def bar_sweep(xs):
                buf = np.zeros(8)
                def inner():
                    for x in xs:
                        np.zeros(2)
                return buf
            """,
        )
        assert self._run(pkg) == []

    def test_files_outside_the_hot_list_are_exempt(self, pkg):
        write(
            pkg,
            "align/chain.py",
            """
            import numpy as np

            def foo_batch(xs):
                for x in xs:
                    np.zeros(2)
            """,
        )
        assert self._run(pkg) == []


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def _run(self, root):
        return run_check(root, tests=None, rules=["determinism"]).new

    def test_whole_file_scope(self, pkg):
        write(
            pkg,
            "cluster/ring.py",
            """
            import hashlib
            import time

            def ring_key(op):
                return hashlib.sha1(op.encode()).hexdigest() + str(hash(op))

            def helper():
                return time.time()
            """,
        )
        findings = self._run(pkg)
        messages = {f.symbol: f.message for f in findings}
        assert "hash()" in messages["ring_key"]
        assert "time.time()" in messages["helper"]
        assert not any("sha1" in m for m in messages.values())

    def test_key_function_scope(self, pkg):
        write(
            pkg,
            "service/other.py",
            """
            import random
            import time

            def cache_key(x):
                return random.random()

            def jitter():
                return time.time()
            """,
        )
        findings = self._run(pkg)
        assert [f.symbol for f in findings] == ["cache_key"]
        assert "random.random" in findings[0].message


# ---------------------------------------------------------------------------
# baseline round-trip
# ---------------------------------------------------------------------------


class TestBaseline:
    def _finding(self, line=3):
        return Finding(
            rule="r", path="p.py", line=line, symbol="s", message="m"
        )

    def test_fixme_placeholders_do_not_pass(self, tmp_path):
        path = tmp_path / "baseline.json"
        assert Baseline.write(path, [self._finding()]) == 1
        with pytest.raises(BaselineError, match="real justification"):
            Baseline.load(path)

    def test_justified_entry_suppresses_across_line_churn(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write(path, [self._finding()])
        obj = json.loads(path.read_text())
        obj["entries"][0]["justification"] = "known false positive: fixture"
        path.write_text(json.dumps(obj))
        baseline = Baseline.load(path)
        new, suppressed, stale = baseline.apply([self._finding(line=99)])
        assert (new, len(suppressed), stale) == ([], 1, [])

    def test_stale_entries_are_reported(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write(path, [self._finding()])
        obj = json.loads(path.read_text())
        obj["entries"][0]["justification"] = "was real once"
        path.write_text(json.dumps(obj))
        new, suppressed, stale = Baseline.load(path).apply([])
        assert (new, suppressed, len(stale)) == ([], [], 1)

    def test_duplicate_entries_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        entry = {"rule": "r", "path": "p.py", "symbol": "s", "justification": "x"}
        path.write_text(json.dumps({"version": 1, "entries": [entry, entry]}))
        with pytest.raises(BaselineError, match="duplicate"):
            Baseline.load(path)

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").entries == []


# ---------------------------------------------------------------------------
# runner + CLI
# ---------------------------------------------------------------------------


class TestRunnerAndCli:
    def test_unknown_rule_id_raises(self, pkg):
        with pytest.raises(ValueError, match="unknown rule"):
            run_check(pkg, rules=["no-such-rule"])

    def test_warnings_do_not_gate(self):
        warn = Finding(
            rule="r", path="p.py", line=1, symbol="s", message="m",
            severity=Severity.WARNING,
        )
        assert CheckResult(new=[warn]).exit_code == 0

    def test_stale_baseline_fails_the_run(self, pkg, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "kernel-parity",
                            "path": "gone.py",
                            "symbol": "gone",
                            "justification": "suppressed a thing that was removed",
                        }
                    ],
                }
            )
        )
        result = run_check(pkg, baseline_path=baseline)
        assert result.exit_code == 1 and len(result.stale) == 1
        assert "prune it" in format_report(result)

    def test_cli_exits_nonzero_on_seeded_violation(self, pkg, testdir, capsys):
        write(pkg, "align/k.py", "def foo_scores_batch(pairs):\n    pass\n")
        rc = main(
            ["check", "--root", str(pkg), "--tests", str(testdir), "--format", "json"]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["new"][0]["rule"] == "kernel-parity"

    def test_cli_update_baseline_writes_fixmes_and_still_fails(
        self, pkg, testdir, capsys
    ):
        write(pkg, "align/k.py", "def foo_scores_batch(pairs):\n    pass\n")
        baseline = pkg.parent / "baseline.json"
        rc = main(
            [
                "check", "--root", str(pkg), "--tests", str(testdir),
                "--baseline", str(baseline), "--update-baseline",
            ]
        )
        assert rc == 2  # FIXME placeholders are not justifications
        entries = json.loads(baseline.read_text())["entries"]
        assert entries and entries[0]["justification"].startswith("FIXME")
        capsys.readouterr()

    def test_cli_rule_filter(self, pkg, testdir, capsys):
        write(pkg, "align/k.py", "def foo_scores_batch(pairs):\n    pass\n")
        rc = main(
            [
                "check", "--root", str(pkg), "--tests", str(testdir),
                "--rule", "determinism",
            ]
        )
        assert rc == 0
        capsys.readouterr()


# ---------------------------------------------------------------------------
# the real tree
# ---------------------------------------------------------------------------


class TestRealTree:
    def test_real_tree_is_clean(self):
        result = run_check(
            REAL_ROOT, tests=REAL_TESTS, baseline_path=REAL_BASELINE
        )
        assert result.baseline_error is None
        assert [f.format() for f in result.new] == []
        assert result.exit_code == 0

    def test_cli_defaults_resolve_to_the_real_tree(self, capsys):
        assert main(["check"]) == 0
        assert "fragalign check: ok" in capsys.readouterr().out

    def _copy_tree(self, tmp_path) -> Path:
        root = tmp_path / "fragalign"
        shutil.copytree(REAL_ROOT, root)
        return root

    def test_real_tree_registry_field_deletion_fails(self, tmp_path):
        root = self._copy_tree(tmp_path)
        from fragalign.analysis.project import Project

        specs = Project(root, tests=REAL_TESTS).load_field_registry()
        pruned = [s for s in specs if s["name"] != "band"]
        (root / "service/fields.py").write_text("_SPECS = " + repr(pruned) + "\n")
        result = run_check(
            root, tests=REAL_TESTS, rules=["knob-propagation"]
        )
        assert result.exit_code == 1
        assert any("'band'" in f.message for f in result.new)

    def test_real_tree_oracle_deletion_fails(self, tmp_path):
        root = self._copy_tree(tmp_path)
        pairwise = root / "align/pairwise.py"
        pairwise.write_text(
            pairwise.read_text().replace(
                "def local_score_reference", "def _local_score_reference"
            )
        )
        result = run_check(root, tests=REAL_TESTS, rules=["kernel-parity"])
        assert result.exit_code == 1
        assert any(f.symbol == "local_scores_batch" for f in result.new)
