"""Upper bounds, ASCII rendering, and JSON serialization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.core import (
    Arrangement,
    csr_improve,
    exact_csr,
    paper_example,
    random_instance,
)
from fragalign.core.bounds import certified_ratio, matching_bound, row_max_bound
from fragalign.core.io import dumps, instance_from_dict, instance_to_dict, load, loads, save
from fragalign.core.render import render_alignment
from fragalign.util.errors import InstanceError

seeds = st.integers(0, 10_000)


class TestBounds:
    @given(seeds)
    @settings(max_examples=15)
    def test_matching_bound_dominates_opt(self, seed):
        inst = random_instance(n_h=2, n_m=2, rng=seed)
        opt = exact_csr(inst).score
        assert matching_bound(inst) + 1e-9 >= opt

    @given(seeds)
    @settings(max_examples=15)
    def test_row_max_dominates_matching(self, seed):
        inst = random_instance(n_h=2, n_m=2, rng=seed)
        assert row_max_bound(inst) + 1e-9 >= matching_bound(inst)

    def test_paper_example_bound(self, paper_instance):
        # Occurrence matching can collect a(4) + b(3) + c(5) + d(2) = 14.
        assert matching_bound(paper_instance) == pytest.approx(14.0)
        assert row_max_bound(paper_instance) == pytest.approx(14.0)

    def test_certified_ratio(self, paper_instance):
        sol = csr_improve(paper_instance)
        ratio = certified_ratio(sol)
        assert ratio >= 1.0
        assert ratio == pytest.approx(14.0 / 11.0)

    @given(seeds)
    @settings(max_examples=10)
    def test_certificate_is_sound(self, seed):
        inst = random_instance(n_h=2, n_m=2, rng=seed)
        sol = csr_improve(inst)
        opt = exact_csr(inst).score
        if sol.score > 0:
            assert certified_ratio(sol) + 1e-9 >= opt / sol.score


class TestRender:
    def test_paper_layout(self, paper_instance):
        arr_h = Arrangement("H", ((0, False), (1, True)))
        arr_m = Arrangement("M", ((0, False), (1, False)))
        text = render_alignment(paper_instance, arr_h, arr_m)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("H: [")
        assert lines[2].startswith("M: [")
        for name in ("a", "b", "c", "dᴿ"):
            assert name in lines[0]
        for name in ("s", "t", "u", "v"):
            assert name in lines[2]
        assert "|" in lines[1]  # at least one aligned pair drawn
        assert "| " in lines[0]  # fragment boundary marked

    @given(seeds)
    @settings(max_examples=10)
    def test_render_never_crashes_and_shows_all_symbols(self, seed):
        inst = random_instance(n_h=2, n_m=2, rng=seed)
        res = exact_csr(inst)
        text = render_alignment(inst, res.arr_h, res.arr_m)
        n_h = inst.total_regions("H")
        n_m = inst.total_regions("M")
        assert text.splitlines()[0].count("r") >= min(n_h, 1)
        assert text.splitlines()[2].count("r") >= min(n_m, 1)


class TestIO:
    def test_round_trip_paper(self, paper_instance):
        doc = instance_to_dict(paper_instance)
        back = instance_from_dict(doc)
        assert back.h_fragments == paper_instance.h_fragments
        assert back.m_fragments == paper_instance.m_fragments
        assert exact_csr(back).score == pytest.approx(11.0)
        assert back.region_names == paper_instance.region_names

    @given(seeds)
    @settings(max_examples=15)
    def test_round_trip_preserves_scores(self, seed):
        inst = random_instance(n_h=2, n_m=2, rng=seed)
        back = loads(dumps(inst))
        assert sorted(back.scorer.pairs()) == sorted(inst.scorer.pairs())

    def test_file_round_trip(self, tmp_path, paper_instance):
        path = tmp_path / "inst.json"
        save(paper_instance, str(path))
        back = load(str(path))
        assert back.n_h == 2 and back.n_m == 2

    def test_malformed_document(self):
        with pytest.raises(InstanceError):
            instance_from_dict({"h_fragments": "nope"})
        with pytest.raises(InstanceError):
            instance_from_dict({})


class TestCLISolve:
    def test_solve_command(self, tmp_path, capsys, paper_instance):
        from fragalign.cli import main

        path = tmp_path / "paper.json"
        save(paper_instance, str(path))
        assert main(["solve", str(path), "--render"]) == 0
        out = capsys.readouterr().out
        assert "certified within" in out
        assert "H: [" in out

    def test_solve_exact(self, tmp_path, capsys, paper_instance):
        from fragalign.cli import main

        path = tmp_path / "paper.json"
        save(paper_instance, str(path))
        assert main(["solve", str(path), "--solver", "exact"]) == 0
        assert "score=11" in capsys.readouterr().out
