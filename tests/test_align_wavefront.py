"""Wavefront-blocked DP must equal the straight kernel for every
executor, kernel and block size — the schedule is not allowed to change
the answer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.align.pairwise import global_score
from fragalign.align.scoring_matrices import transition_transversion
from fragalign.align.wavefront import nw_score_wavefront
from fragalign.genome.dna import random_dna

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


@given(dna, dna, st.integers(1, 17))
def test_serial_blocked_equals_plain(a, b, block):
    assert nw_score_wavefront(a, b, block=block) == pytest.approx(
        global_score(a, b), abs=1e-9
    )


@given(dna, dna)
@settings(max_examples=10)
def test_python_kernel_equals_numpy_kernel(a, b):
    got_py = nw_score_wavefront(a, b, block=7, kernel="python")
    got_np = nw_score_wavefront(a, b, block=7, kernel="numpy")
    assert got_py == pytest.approx(got_np, abs=1e-9)


def test_threads_executor_equals_serial(rng):
    a = random_dna(300, rng)
    b = random_dna(280, rng)
    expect = global_score(a, b)
    got = nw_score_wavefront(a, b, block=64, executor="threads", workers=4)
    assert got == pytest.approx(expect, abs=1e-9)


def test_processes_executor_equals_serial(rng):
    a = random_dna(400, rng)
    b = random_dna(380, rng)
    expect = global_score(a, b)
    got = nw_score_wavefront(a, b, block=128, executor="processes", workers=2)
    assert got == pytest.approx(expect, abs=1e-9)


def test_custom_model_supported(rng):
    model = transition_transversion()
    a = random_dna(120, rng)
    b = random_dna(100, rng)
    assert nw_score_wavefront(a, b, model, block=33) == pytest.approx(
        global_score(a, b, model), abs=1e-9
    )


def test_empty_sequences():
    assert nw_score_wavefront("", "ACG") == -3.0
    assert nw_score_wavefront("ACG", "") == -3.0


def test_bad_block_size():
    with pytest.raises(ValueError):
        nw_score_wavefront("A", "A", block=0)
