"""Theorem 2's gadget: 3-MIS ↔ CSoP ↔ UCSR, sizes and round-trips."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.core.conjecture import score_pair
from fragalign.reductions.csop import exact_csop
from fragalign.reductions.dirac import nonadjacent_ordering
from fragalign.reductions.hardness import (
    build_gadget,
    csop_solution_to_arrangements,
    gadget_to_csr_instance,
    independent_set_to_solution,
    solution_to_independent_set,
)
from fragalign.reductions.mis3 import (
    exact_mis,
    greedy_mis,
    random_cubic_graph,
)
from fragalign.util.errors import ReductionError


class TestMIS:
    @settings(max_examples=10)
    @given(st.sampled_from([8, 10, 12]), st.integers(0, 1000))
    def test_exact_mis_is_independent_and_maximal(self, n, seed):
        g = random_cubic_graph(n, rng=seed)
        W = exact_mis(g)
        for u in W:
            for v in W:
                assert u == v or not g.has_edge(u, v)
        greedy = greedy_mis(g)
        assert len(W) >= len(greedy)

    def test_petersen(self):
        g = nx.petersen_graph()
        assert len(exact_mis(g)) == 4

    def test_cubic_validation(self):
        with pytest.raises(ReductionError):
            random_cubic_graph(5)


class TestDirac:
    @settings(max_examples=10)
    @given(st.sampled_from([8, 10, 14]), st.integers(0, 1000))
    def test_ordering_has_no_adjacent_consecutive(self, n, seed):
        g = random_cubic_graph(n, rng=seed)
        order = nonadjacent_ordering(g)
        assert sorted(order) == sorted(g.nodes)
        for a, b in zip(order, order[1:]):
            assert not g.has_edge(a, b)

    def test_k4_has_no_ordering(self):
        with pytest.raises(ReductionError):
            nonadjacent_ordering(nx.complete_graph(4))

    def test_small_graph_brute_force(self):
        g = nx.cycle_graph(6)  # not cubic, but ordering still works
        order = nonadjacent_ordering(g)
        for a, b in zip(order, order[1:]):
            assert not g.has_edge(a, b)


class TestGadget:
    @settings(max_examples=8)
    @given(st.sampled_from([8, 10]), st.integers(0, 1000))
    def test_forward_size_accounting(self, n, seed):
        g = random_cubic_graph(n, rng=seed)
        gad = build_gadget(g)
        W = exact_mis(gad.graph)
        U = independent_set_to_solution(gad, W)
        assert gad.csop.is_valid(U)
        assert len(U) == gad.expected_size(len(W))

    @settings(max_examples=8)
    @given(st.sampled_from([8, 10]), st.integers(0, 1000))
    def test_backward_recovers_independent_set(self, n, seed):
        g = random_cubic_graph(n, rng=seed)
        gad = build_gadget(g)
        W = exact_mis(gad.graph)
        U = independent_set_to_solution(gad, W)
        W2, U_norm = solution_to_independent_set(gad, U)
        assert len(U_norm) == gad.expected_size(len(W2))
        assert len(W2) >= len(W)  # cannot lose size through the trip

    @settings(max_examples=4)
    @given(st.integers(0, 200))
    def test_csop_optimum_equals_5n_plus_mis(self, seed):
        g = random_cubic_graph(8, rng=seed)
        gad = build_gadget(g)
        W = exact_mis(gad.graph)
        U_opt = exact_csop(gad.csop, max_pairs=30)
        assert len(U_opt) == gad.expected_size(len(W))

    def test_forward_rejects_dependent_set(self):
        g = random_cubic_graph(8, rng=1)
        gad = build_gadget(g)
        u, v = next(iter(gad.graph.edges))
        with pytest.raises(ReductionError):
            independent_set_to_solution(gad, {u, v})

    def test_ucsr_instance_realizes_solution_score(self):
        g = random_cubic_graph(8, rng=5)
        gad = build_gadget(g)
        W = exact_mis(gad.graph)
        U = independent_set_to_solution(gad, W)
        inst = gadget_to_csr_instance(gad)
        arr_h, arr_m = csop_solution_to_arrangements(gad, U)
        assert score_pair(inst, arr_h, arr_m) + 1e-9 >= len(U)

    def test_gadget_pair_structure(self):
        g = random_cubic_graph(8, rng=2)
        gad = build_gadget(g)
        N = gad.n_nodes
        assert len(gad.node_pairs) == N
        assert len(gad.edge_pairs) == 3 * N // 2
        assert gad.csop.n == N + 3 * N // 2
