"""The sharded serving tier: ring, router, health, warm, supervisor.

Standing invariants:

* routing is an execution detail — every response through the cluster
  equals what a direct ``AlignmentEngine`` call produces, in request
  order, no matter which shard served it or whether failover rerouted
  it mid-flight;
* the ring keys on the same ``(op, pair, mode, band, model)`` tuple as
  the service result cache, so per-shard caches are disjoint;
* losing one of N shards remaps only that shard's keys (~1/N) and the
  survivors absorb its traffic with no wrong answers.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from fragalign.cluster import (
    ClusterClient,
    ClusterError,
    ClusterSupervisor,
    HashRing,
    HealthMonitor,
    ShardRouter,
    dump_keyset,
    generate_keyset,
    load_keyset,
    ring_key,
    warm_router,
)
from fragalign.engine import AlignmentEngine
from fragalign.service import AlignmentService, ServiceConfig, ServiceError


class TestHashRing:
    KEYS = [ring_key("score", f"ACGT{i}", f"AGGT{i}") for i in range(2000)]

    def test_deterministic_and_membership_order_independent(self):
        ring_a = HashRing(["s0", "s1", "s2", "s3"])
        ring_b = HashRing(["s3", "s1", "s0", "s2"])
        assert [ring_a.node_for(k) for k in self.KEYS] == [
            ring_b.node_for(k) for k in self.KEYS
        ]

    def test_balance_over_four_nodes(self):
        ring = HashRing([f"s{i}" for i in range(4)], vnodes=96)
        spread = ring.spread(self.KEYS)
        assert set(spread) == {"s0", "s1", "s2", "s3"}
        for count in spread.values():
            # Perfect balance is 25%; vnode placement keeps every node
            # within a loose band of it.
            assert 0.10 <= count / len(self.KEYS) <= 0.45

    def test_node_loss_remaps_only_that_nodes_keys(self):
        ring = HashRing([f"s{i}" for i in range(4)], vnodes=96)
        before = {k: ring.node_for(k) for k in self.KEYS}
        ring.remove_node("s1")
        after = {k: ring.node_for(k) for k in self.KEYS}
        moved = [k for k in self.KEYS if before[k] != after[k]]
        # Exactly the lost node's keys move (the consistent-hash
        # guarantee), and that's ~1/N of the keyspace.
        assert all(before[k] == "s1" for k in moved)
        assert len(moved) / len(self.KEYS) <= 0.45
        # Readmission restores the original mapping bit-for-bit.
        ring.add_node("s1")
        assert {k: ring.node_for(k) for k in self.KEYS} == before

    def test_nodes_for_walks_distinct_replicas(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        for key in self.KEYS[:50]:
            replicas = ring.nodes_for(key, 3)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            assert replicas[0] == ring.node_for(key)
        assert len(ring.nodes_for(self.KEYS[0], 10)) == 4  # capped at N

    def test_ring_key_mirrors_cache_key_fields(self):
        base = ring_key("score", "ACGT", "AGGT", "global", None, "fp")
        assert base != ring_key("align", "ACGT", "AGGT", "global", None, "fp")
        assert base != ring_key("score", "ACGT", "AGGT", "local", None, "fp")
        assert base != ring_key("score", "ACGT", "AGGT", "banded", 4, "fp")
        assert base != ring_key("score", "ACGT", "AGGT", "global", None, "other")
        assert base == ring_key("score", "ACGT", "AGGT", "global", None, "fp")

    def test_ring_key_normalizes_like_the_server_cache_key(self):
        # The server resolves mode=None to its default and drops band
        # for non-banded modes before keying its cache; the routing
        # key must normalize identically or warmed results would sit
        # on a different shard than live traffic asks.
        explicit = ring_key("score", "ACGT", "AGGT", "global", None, "fp")
        assert ring_key("score", "ACGT", "AGGT", None, None, "fp") == explicit
        assert ring_key("score", "ACGT", "AGGT", "global", 8, "fp") == explicit
        assert (
            ring_key("score", "ACGT", "AGGT", None, None, "fp", default_mode="local")
            == ring_key("score", "ACGT", "AGGT", "local", None, "fp")
        )
        # band still keys banded requests.
        assert ring_key("score", "AC", "GT", "banded", 4, "fp") != ring_key(
            "score", "AC", "GT", "banded", 6, "fp"
        )

    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(LookupError, match="empty"):
            ring.node_for("anything")
        ring.add_node("only")
        ring.remove_node("only")
        with pytest.raises(LookupError):
            ring.node_for("anything")


def _serve_in_thread(config: ServiceConfig):
    """Start one service on a daemon thread; return its control handle."""
    holder: dict = {}
    ready = threading.Event()

    def target():
        async def main():
            service = AlignmentService(config)
            await service.start()
            holder["service"] = service
            holder["port"] = service.port
            holder["loop"] = asyncio.get_running_loop()
            ready.set()
            await service.wait_closed()
            service.close()

        asyncio.run(main())

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    assert ready.wait(10), "service failed to start"
    holder["thread"] = thread
    return holder


def _stop_shard(holder) -> None:
    try:
        holder["loop"].call_soon_threadsafe(holder["service"].stop)
    except RuntimeError:
        pass  # loop already closed
    holder["thread"].join(timeout=10)
    assert not holder["thread"].is_alive()


@pytest.fixture()
def three_shards():
    holders = [
        _serve_in_thread(
            ServiceConfig(port=0, max_batch=16, max_delay=0.002, cache_size=256)
        )
        for _ in range(3)
    ]
    yield holders
    for holder in holders:
        _stop_shard(holder)


def _addresses(holders) -> list[tuple[str, int]]:
    return [("127.0.0.1", h["port"]) for h in holders]


class TestShardRouter:
    PAIRS = [("ACGTACGTAC", "ACGTAGGTAC" + "T" * k) for k in range(24)]

    def test_fan_out_merge_preserves_request_order(self, three_shards):
        async def run():
            async with ShardRouter(_addresses(three_shards)) as router:
                scores = await router.score_many(self.PAIRS, concurrency=8)
                alns = await router.align_many(self.PAIRS[:6], concurrency=4)
                return scores, alns, dict(router.routed)

        scores, alns, routed = asyncio.run(run())
        with AlignmentEngine() as eng:
            assert scores == [eng.score(a, b) for a, b in self.PAIRS]
            assert alns == eng.align_many(self.PAIRS[:6])
        # The batch actually fanned out: more than one shard served.
        assert len(routed) >= 2
        assert sum(routed.values()) == len(self.PAIRS) + 6

    def test_routing_is_deterministic_and_mode_aware(self, three_shards):
        async def run():
            async with ShardRouter(_addresses(three_shards)) as router:
                first = router.shard_for("score", "ACGTACGT", "AGGTACGT")
                again = router.shard_for("score", "ACGTACGT", "AGGTACGT")
                spread = {
                    router.shard_for(op, "ACGTACGT", "AGGTACGT", mode)
                    for op in ("score", "align")
                    for mode in ("global", "local", "overlap")
                }
                return first, again, spread

        first, again, spread = asyncio.run(run())
        assert first == again  # same request -> same shard, always
        # op/mode are part of the routing key: with 6 combinations over
        # 3 shards at least two distinct shards appear (probabilistic
        # in general, deterministic for this fixed key set).
        assert len(spread) >= 2

    def test_default_mode_routes_like_explicit_mode(self, three_shards):
        async def run():
            async with ShardRouter(_addresses(three_shards)) as router:
                return (
                    router.shard_for("score", "ACGTACGT", "AGGTACGT"),
                    router.shard_for("score", "ACGTACGT", "AGGTACGT", "global"),
                    router.shard_for("score", "ACGTACGT", "AGGTACGT", "global", 8),
                )

        implicit, explicit, with_band = asyncio.run(run())
        # A warmed default-mode entry and live explicit-global traffic
        # must land on the same shard cache.
        assert implicit == explicit == with_band

    def test_per_request_modes_route_and_verify(self, three_shards):
        pairs = [("TTTTTACGTACGT", "ACGTACGTCCCC"), ("ACGTACGT", "ACGTAGGT")]

        async def run():
            async with ShardRouter(_addresses(three_shards)) as router:
                overlap = await router.score_many(pairs, mode="overlap")
                banded = await router.score_many(pairs, mode="banded", band=4)
                return overlap, banded

        overlap, banded = asyncio.run(run())
        with AlignmentEngine() as eng:
            assert overlap == [eng.score(a, b, mode="overlap") for a, b in pairs]
            assert banded == [
                eng.score(a, b, mode="banded", band=4) for a, b in pairs
            ]

    def test_shard_kill_failover_no_wrong_answers(self, three_shards):
        with AlignmentEngine() as eng:
            expected = [eng.score(a, b) for a, b in self.PAIRS]

        async def run():
            router = ShardRouter(_addresses(three_shards), max_attempts=3)
            try:
                warm = await router.score_many(self.PAIRS, concurrency=8)
                # Kill one shard that demonstrably owns traffic, then
                # replay: every request must still answer correctly.
                victim = max(router.routed, key=router.routed.get)
                holder = three_shards[
                    [f"127.0.0.1:{h['port']}" for h in three_shards].index(victim)
                ]
                _stop_shard(holder)
                replay = await router.score_many(self.PAIRS, concurrency=8)
                return warm, replay, router.router_stats()
            finally:
                await router.close()

        warm, replay, stats = asyncio.run(run())
        assert warm == expected
        assert replay == expected  # failed requests retried, no drift
        assert stats["evictions"] >= 1
        assert stats["failovers"] >= 1
        assert stats["failed_requests"] == 0
        assert len(stats["live_shards"]) == 2

    def test_bad_request_is_not_retried_as_failover(self, three_shards):
        async def run():
            async with ShardRouter(_addresses(three_shards)) as router:
                with pytest.raises(ServiceError, match="too narrow"):
                    await router.score("ACGTACGTACGT", "AC", mode="banded", band=2)
                return router.router_stats()

        stats = asyncio.run(run())
        # The shard answered (with an error): it stays live, and the
        # router must not have burned retries on a doomed request.
        assert stats["retries"] == 0
        assert stats["evictions"] == 0
        assert len(stats["live_shards"]) == 3

    def test_all_shards_down_raises_cluster_error(self):
        holders = [_serve_in_thread(ServiceConfig(port=0)) for _ in range(2)]
        addresses = _addresses(holders)
        for holder in holders:
            _stop_shard(holder)

        async def run():
            async with ShardRouter(addresses, max_attempts=2) as router:
                with pytest.raises(ClusterError, match="no shard could serve"):
                    await router.score("ACGT", "AGGT")
                return router.router_stats()

        stats = asyncio.run(run())
        assert stats["failed_requests"] == 1
        assert stats["live_shards"] == []


class TestHealthMonitor:
    def test_eviction_and_readmission_on_same_port(self):
        holder = _serve_in_thread(ServiceConfig(port=0))
        port = holder["port"]

        async def run():
            router = ShardRouter([("127.0.0.1", port)])
            monitor = HealthMonitor(router, interval=0.05, fail_after=1)
            try:
                assert (await monitor.probe_round())[f"127.0.0.1:{port}"]
                _stop_shard(holder)
                assert not (await monitor.probe_round())[f"127.0.0.1:{port}"]
                assert router.live_shards == []
                assert router.evictions == 1
                # The shard comes back on its configured port; the next
                # probe readmits it.
                revived = _serve_in_thread(ServiceConfig(port=port))
                try:
                    assert (await monitor.probe_round())[f"127.0.0.1:{port}"]
                    assert router.live_shards == [f"127.0.0.1:{port}"]
                    assert router.readmissions == 1
                    assert await router.score("ACGT", "AGGT") == 2.0
                finally:
                    await router.close()
                    _stop_shard(revived)
            except BaseException:
                await router.close()
                raise

        asyncio.run(run())

    def test_fail_after_threshold_tolerates_one_blip(self):
        calls = {"n": 0}

        class FlakyRouter:
            configured_shards = ["s0"]

            async def probe_shard(self, shard):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise ConnectionError("one blip")
                return {}

            def mark_shard_down(self, shard):
                raise AssertionError("one blip must not evict at fail_after=2")

            def mark_shard_up(self, shard):
                pass

        async def run():
            monitor = HealthMonitor(FlakyRouter(), fail_after=2)
            assert not (await monitor.probe_round())["s0"]
            assert (await monitor.probe_round())["s0"]
            assert monitor.records["s0"].consecutive_failures == 0

        asyncio.run(run())


class TestWarm:
    def test_keyset_round_trip(self, tmp_path):
        entries = generate_keyset(12, length=24, seed=7, op="align", mode="overlap")
        path = tmp_path / "keys.jsonl"
        assert dump_keyset(path, entries) == 12
        loaded = load_keyset(path)
        assert loaded == [
            {"op": "align", "a": e["a"], "b": e["b"], "mode": "overlap"}
            for e in entries
        ]

    def test_keyset_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"op": "shutdown", "a": "A", "b": "C"}\n')
        with pytest.raises(ValueError, match="bad keyset entry"):
            load_keyset(path)

    def test_warm_then_hit(self, three_shards):
        entries = generate_keyset(30, length=32, seed=11)

        async def run():
            async with ShardRouter(_addresses(three_shards)) as router:
                report = await warm_router(router, entries, concurrency=8)
                before = (await router.cluster_stats())["aggregate"]["cache"]
                # Replay the exact keyset as live traffic: every
                # request must be answered by the owning shard's cache.
                pairs = [(e["a"], e["b"]) for e in entries]
                await router.score_many(pairs, concurrency=8)
                after = (await router.cluster_stats())["aggregate"]["cache"]
                return report, before, after

        report, before, after = asyncio.run(run())
        assert report["warmed"] == 30 and report["errors"] == 0
        # Every shard that owns keys got warmed, and the warm is what
        # makes the replay hit: >= 30 new aggregate hits.
        assert sum(report["per_shard"].values()) == 30
        assert after["hits"] - before["hits"] >= 30


class TestClusterStatsAggregation:
    def test_aggregate_sums_and_quantiles(self, three_shards):
        async def run():
            async with ShardRouter(_addresses(three_shards)) as router:
                pairs = [("ACGT" * 3, "AGGT" * 3 + "A" * k) for k in range(12)]
                await router.score_many(pairs, concurrency=6)
                await router.score_many(pairs, concurrency=6)  # cache food
                return await router.cluster_stats()

        report = asyncio.run(run())
        agg = report["aggregate"]
        assert agg["shards_reporting"] == 3
        assert agg["requests_total"] >= 24
        assert agg["cache"]["hits"] >= 12
        assert agg["cache"]["maxsize"] == 3 * 256
        assert agg["requests_by_mode"].get("global", 0) >= 24
        assert (
            agg["latency_ms"]["worst_p99"]
            >= agg["latency_ms"]["worst_p95"]
            >= agg["latency_ms"]["worst_p50"]
            >= 0
        )
        assert set(report["shards"]) == set(report["router"]["configured_shards"])


class TestProcessCluster:
    """The supervisor path: real ``fragalign serve`` child processes."""

    def test_supervisor_cluster_end_to_end(self, tmp_path):
        pairs = [("ACGTAC" * 3, "AGGTAC" * 3 + "T" * k) for k in range(10)]
        with AlignmentEngine() as eng:
            expected = [eng.score(a, b) for a, b in pairs]
        with ClusterSupervisor(
            shards=2, cache_size=128, base_dir=str(tmp_path)
        ) as sup:
            assert len(sup.addresses) == 2
            cluster_file = tmp_path / "cluster.json"
            sup.write_cluster_file(cluster_file)
            layout = json.loads(cluster_file.read_text())
            assert [s["port"] for s in layout["shards"]] == [
                p for _, p in sup.addresses
            ]
            with ClusterClient(sup.addresses, max_attempts=2) as cluster:
                assert cluster.score_many(pairs, concurrency=8) == expected
                # SIGKILL one shard mid-run: the replay must fail over
                # with no wrong answers.
                sup.kill_shard(0)
                assert cluster.score_many(pairs, concurrency=8) == expected
                stats = cluster.stats()
                assert stats["router"]["evictions"] >= 1
                assert stats["router"]["failed_requests"] == 0
                assert stats["aggregate"]["shards_reporting"] == 1
        assert sup.alive_count == 0


class TestRingKeyGapFields:
    """Routing keys mirror the widened cache key (gaps in, memory out)."""

    def test_gap_fields_partition_the_keyspace(self):
        base = ring_key("score", "ACGT", "AGGT", "global", None, "fp")
        affine = ring_key(
            "score", "ACGT", "AGGT", "global", None, "fp",
            gap_open=-4.0, gap_extend=-1.0,
        )
        assert base != affine
        assert affine == ring_key(
            "score", "ACGT", "AGGT", "global", None, "fp",
            gap_open=-4, gap_extend=-1,  # ints normalize to floats
        )
        assert affine != ring_key(
            "score", "ACGT", "AGGT", "global", None, "fp",
            gap_open=-4.0, gap_extend=-2.0,
        )

    def test_router_normalizes_gap_defaults(self):
        router = ShardRouter(
            [("127.0.0.1", 1)],
            default_gap_open=-4.0,
            default_gap_extend=-1.0,
        )
        explicit = router.key_for("score", "AC", "GT", gap_open=-4.0, gap_extend=-1.0)
        defaulted = router.key_for("score", "AC", "GT")
        assert explicit == defaulted
        other = router.key_for("score", "AC", "GT", gap_open=-2.0, gap_extend=-1.0)
        assert other != defaulted

    def test_keyset_entries_carry_gap_fields(self, tmp_path):
        entries = generate_keyset(
            4, length=16, op="score", gap_open=-3.0, gap_extend=-1.0
        )
        path = tmp_path / "keys.jsonl"
        dump_keyset(path, entries)
        loaded = load_keyset(path)
        assert all(e["gap_open"] == -3.0 and e["gap_extend"] == -1.0 for e in loaded)
        with pytest.raises(ValueError, match="together"):
            dump_keyset(path, [{"op": "score", "a": "AC", "b": "GT", "gap_open": -1}])


class TestClusterAffineEndToEnd:
    """Affine knobs through a real (in-process) shard fleet."""

    def test_affine_routes_and_matches_engine(self, three_shards):
        pairs = [("ACGTACGTAC", "ACGTAGGTAC"), ("AAAATTTT", "AAATTTT"), ("GGGG", "GGCG")]
        with AlignmentEngine() as eng, ClusterClient(_addresses(three_shards)) as cluster:
            got = cluster.score_many(pairs, gap_open=-3.0, gap_extend=-1.0)
            want = [eng.score(a, b, gap_open=-3.0, gap_extend=-1.0) for a, b in pairs]
            assert got == want
            got_al = cluster.align_many(pairs, gap_open=-3.0, gap_extend=-1.0)
            want_al = [eng.align(a, b, gap_open=-3.0, gap_extend=-1.0) for a, b in pairs]
            assert got_al == want_al
            # memory hint flows through without changing results
            assert cluster.align(
                pairs[0][0], pairs[0][1], memory="linear"
            ) == eng.align(pairs[0][0], pairs[0][1])
