"""MS — Definition 4, Figs. 7 and 8."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from fragalign.core.fragments import CSRInstance
from fragalign.core.generators import random_instance
from fragalign.core.match_score import MatchScorer
from fragalign.core.sites import Site
from fragalign.util.errors import InstanceError


@pytest.fixture
def ms(paper_instance) -> MatchScorer:
    return MatchScorer(paper_instance)


class TestPScore:
    def test_basic(self, paper_instance, ms):
        # h1 = ⟨a,b,c⟩ vs m1 = ⟨s,t⟩: σ(a,s)=4, σ(a,t)=1.
        h = Site("H", 0, 0, 3)
        m = Site("M", 0, 0, 2)
        assert ms.p_score(h, m, rev=False) == pytest.approx(4.0)

    def test_reversed_orientation(self, ms):
        # σ(b, tᴿ) = 3: aligning h1(1,2) against m1ᴿ sees t reversed.
        h = Site("H", 0, 1, 2)
        m = Site("M", 0, 1, 2)
        assert ms.p_score(h, m, rev=True) == pytest.approx(3.0)
        assert ms.p_score(h, m, rev=False) == pytest.approx(0.0)

    def test_sides_enforced(self, ms):
        with pytest.raises(InstanceError):
            ms.p_score(Site("M", 0, 0, 1), Site("M", 0, 0, 1), False)

    def test_cache_stats(self, ms):
        h = Site("H", 0, 0, 3)
        m = Site("M", 0, 0, 2)
        ms.p_score(h, m, False)
        ms.p_score(h, m, False)
        stats = ms.cache_stats()
        assert stats["p_scores"] >= 1


class TestMSFull:
    def test_picks_best_orientation(self, ms):
        # h2 = ⟨d⟩ vs full m2 = ⟨u,v⟩: σ(d, vᴿ) = 2 needs rev.
        score, rev = ms.ms_full(Site("H", 1, 0, 1), Site("M", 1, 0, 2))
        assert score == pytest.approx(2.0)
        assert rev is True

    def test_fig7_inner_vs_full(self, ms):
        # inner site of h1 (just b) against full m1: σ(b, tᴿ)=3 via rev.
        score, rev, kind = ms.ms(Site("H", 0, 1, 2), Site("M", 0, 0, 2))
        assert kind == "full"
        assert score == pytest.approx(3.0)
        assert rev is True


class TestMSBorder:
    @pytest.fixture
    def chain_inst(self) -> CSRInstance:
        # H0=⟨1,2⟩, M0=⟨3,4⟩ with σ(2,3)=5 (suffix↔prefix).
        return CSRInstance.build([(1, 2)], [(3, 4)], {(2, 3): 5.0})

    def test_opposite_ends_direct(self, chain_inst):
        ms = MatchScorer(chain_inst)
        h = Site("H", 0, 1, 2)  # suffix (R)
        m = Site("M", 0, 0, 1)  # prefix (L)
        score, rev = ms.ms_border(h, m)
        assert rev is False
        assert score == pytest.approx(5.0)

    def test_equal_ends_forced_reversal(self, chain_inst):
        ms = MatchScorer(chain_inst)
        h = Site("H", 0, 1, 2)  # suffix (R)
        m = Site("M", 0, 1, 2)  # suffix (R) → reversed content
        score, rev = ms.ms_border(h, m)
        assert rev is True
        assert score == pytest.approx(0.0)  # σ(2, 4ᴿ) unset

    def test_border_requires_border_sites(self, chain_inst):
        ms = MatchScorer(chain_inst)
        with pytest.raises(InstanceError):
            ms.ms_border(Site("H", 0, 0, 2), Site("M", 0, 0, 1))


class TestProperties:
    @given(st.integers(0, 5_000))
    def test_ms_full_monotone_in_site_extension(self, seed):
        inst = random_instance(n_h=2, n_m=2, len_lo=2, len_hi=4, rng=seed)
        ms = MatchScorer(inst)
        m_len = len(inst.fragment("M", 0))
        h_full = Site("H", 0, 0, len(inst.fragment("H", 0)))
        prev = 0.0
        for e in range(1, m_len + 1):
            score, _rev = ms.ms_full(h_full, Site("M", 0, 0, e))
            assert score >= prev - 1e-9  # padding is free
            prev = score

    @given(st.integers(0, 5_000))
    def test_ms_nonnegative(self, seed):
        inst = random_instance(rng=seed)
        ms = MatchScorer(inst)
        h = Site("H", 0, 0, len(inst.fragment("H", 0)))
        m = Site("M", 0, 0, len(inst.fragment("M", 0)))
        score, _rev, _kind = ms.ms(h, m)
        assert score >= 0.0
