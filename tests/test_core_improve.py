"""Improvement engine mechanics: TPA re-packing, attempts, transactions."""

from __future__ import annotations

import pytest

from fragalign.core.fragments import CSRInstance
from fragalign.core.improve import (
    I1Attempt,
    I2Attempt,
    candidate_zones,
    i1_attempts,
    i2_attempts,
    i3_attempts,
    run_improvement,
    tpa_repack,
)
from fragalign.core.match_score import MatchScorer
from fragalign.core.sites import Site
from fragalign.core.state import SolutionState
from fragalign.util.errors import InconsistentMatchSetError


@pytest.fixture
def inst() -> CSRInstance:
    # H0=⟨1,2⟩ H1=⟨3⟩ H2=⟨4⟩ ; M0=⟨5,6,7,8⟩ M1=⟨9⟩
    return CSRInstance.build(
        [(1, 2), (3,), (4,)],
        [(5, 6, 7, 8), (9,)],
        {
            (1, 5): 2.0,
            (2, 6): 2.0,
            (3, 7): 3.0,
            (4, 8): 4.0,
            (3, 9): 1.0,
        },
    )


@pytest.fixture
def state(inst) -> SolutionState:
    return SolutionState(inst, MatchScorer(inst))


class TestTpaRepack:
    def test_packs_free_zone(self, state):
        made = tpa_repack(state, [Site("M", 0, 0, 4)], candidate_species="H")
        assert made >= 2
        assert state.score() >= 7.0  # at least H0 (4) + one of H1/H2

    def test_profit_accounts_for_existing_contribution(self, state):
        # H1 is already earning 3 on M0; repacking M1 (worth only 1)
        # must not steal it.
        state.add_full(("H", 1), Site("M", 0, 2, 3))
        made = tpa_repack(state, [Site("M", 1, 0, 1)], candidate_species="H")
        assert made == 0
        assert state.contribution(("H", 1)) == pytest.approx(3.0)

    def test_zone_species_enforced(self, state):
        with pytest.raises(InconsistentMatchSetError):
            tpa_repack(state, [Site("M", 0, 0, 2)], candidate_species="M")

    def test_clips_to_free_territory(self, state):
        state.add_full(("H", 0), Site("M", 0, 0, 2))
        # Zone covers the occupied part; only [2,4) is really free.
        made = tpa_repack(state, [Site("M", 0, 0, 4)], candidate_species="H")
        assert made >= 1
        state.check()

    def test_empty_zone_list(self, state):
        assert tpa_repack(state, [], candidate_species="H") == 0


class TestAttempts:
    def test_i1_plugs_fragment(self, state):
        attempt = I1Attempt(("H", 0), Site("M", 0, 0, 2), Site("M", 0, 0, 2))
        attempt.run(state)
        assert state.score() == pytest.approx(4.0)
        state.check()

    def test_i1_with_zone_repack(self, state):
        # Occupy [0,3) with H0 (scores 4 via 1,2; site covers 5,6,7).
        state.add_full(("H", 0), Site("M", 0, 0, 3))
        # Plug H1 into [2,3): zone [0,4) truncates H0's match to [0,2).
        attempt = I1Attempt(("H", 1), Site("M", 0, 2, 3), Site("M", 0, 0, 4))
        before = state.score()
        attempt.run(state)
        assert state.score() >= before  # 4 + 3 + 4 achievable
        state.check()

    def test_i1_gain_rollback_in_engine(self, state):
        state.add_full(("H", 1), Site("M", 0, 2, 3))
        # A pointless move must be rolled back by the engine.
        stats = run_improvement(
            state,
            [lambda s: iter([I1Attempt(("H", 1), Site("M", 1, 0, 1), Site("M", 1, 0, 1))])],
        )
        assert state.score() == pytest.approx(3.0)
        assert stats.accepted == 0

    def test_i2_creates_border_match(self):
        inst = CSRInstance.build(
            [(1, 2)], [(3, 4)], {(2, 3): 5.0}
        )
        state = SolutionState(inst, MatchScorer(inst))
        attempt = I2Attempt(
            Site("H", 0, 1, 2),
            Site("H", 0, 1, 2),
            Site("M", 0, 0, 1),
            Site("M", 0, 0, 1),
        )
        attempt.run(state)
        assert state.score() == pytest.approx(5.0)
        state.check()


class TestGenerators:
    def test_candidate_zones_contains_target_and_fragment(self, state):
        target = Site("M", 0, 1, 2)
        zones = candidate_zones(state, target)
        assert target in zones
        assert Site("M", 0, 0, 4) in zones
        for z in zones:
            assert z.contains(target)

    def test_i1_enumeration_nonempty(self, state):
        attempts = list(i1_attempts(state))
        assert attempts
        # every attempt's zone contains its target
        for a in attempts[:50]:
            assert a.zone.contains(a.target)

    def test_i2_enumeration_filters_nonpositive(self, state):
        # No border-compatible scores here except on M0 ends.
        for a in i2_attempts(state, zoned=False):
            assert a.h_site.kind(
                len(state.instance.fragment(*a.h_site.key))
            ) == "border"

    def test_i3_requires_two_island(self, state):
        assert list(i3_attempts(state)) == []


class TestEngine:
    def test_reaches_local_optimum(self, state):
        stats = run_improvement(state, [i1_attempts], validate=True)
        assert stats.accepted >= 2
        # All four scored regions of M0 can be collected: 2+2+3+4 = 11.
        assert state.score() == pytest.approx(11.0)

    def test_threshold_blocks_small_gains(self, state):
        stats = run_improvement(state, [i1_attempts], threshold=100.0)
        assert stats.accepted == 0
        assert state.score() == 0.0

    def test_max_accepts_respected(self, state):
        stats = run_improvement(state, [i1_attempts], max_accepts=1)
        assert stats.accepted == 1
