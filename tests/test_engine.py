"""The alignment engine: backend registry, facade, cross-backend parity.

The standing invariants:

* every backend produces identical scores (exactly, for integer-valued
  models) and identical tracebacks to the transparent ``naive`` DP;
* ``align_many``/``score_many`` equal a Python loop of ``align``/
  ``score`` — batching is an execution detail, never a semantic one.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fragalign.align.pairwise import global_scores_batch
from fragalign.align.scoring_matrices import transition_transversion, unit_dna
from fragalign.engine import (
    AlignmentBackend,
    AlignmentEngine,
    NaiveBackend,
    NumpyBackend,
    available_backends,
    default_model,
    get_backend,
    register_backend,
)
from fragalign.genome.dna import random_dna
from fragalign.util.errors import SolverError

dna = st.text(alphabet="ACGT", min_size=0, max_size=32)
dna_pairs = st.lists(st.tuples(dna, dna), min_size=0, max_size=8)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"naive", "numpy", "parallel"} <= set(available_backends())

    def test_unknown_backend(self):
        with pytest.raises(SolverError, match="unknown backend"):
            get_backend("no-such-backend")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SolverError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_custom_backend_pluggable(self):
        class Doubling(NumpyBackend):
            name = "doubling"

            def score(self, p, model, mode):
                return 2.0 * super().score(p, model, mode)

        register_backend("doubling", Doubling, overwrite=True)
        try:
            eng = AlignmentEngine(backend="doubling")
            ref = AlignmentEngine(backend="numpy")
            assert eng.score("ACGT", "ACGT") == 2.0 * ref.score("ACGT", "ACGT")
        finally:
            import fragalign.engine.registry as reg

            reg._REGISTRY.pop("doubling", None)


class TestFacade:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="unknown alignment mode"):
            AlignmentEngine(mode="frobnicate")

    def test_banded_mode_needs_band(self):
        with pytest.raises(ValueError, match="needs a band"):
            AlignmentEngine(mode="banded")
        with pytest.raises(ValueError, match="band must be"):
            AlignmentEngine(mode="banded", band=-3)
        eng = AlignmentEngine(mode="banded", band=4)
        assert eng.score("ACGT", "ACGT") == 4.0
        # A global-mode engine can still serve banded per call ...
        eng = AlignmentEngine()
        assert eng.score("ACGT", "AGGT", mode="banded", band=2) == 2.0
        # ... but only with a band from somewhere.
        with pytest.raises(ValueError, match="needs a band"):
            eng.score("ACGT", "AGGT", mode="banded")

    def test_backend_instance_accepted(self):
        eng = AlignmentEngine(backend=NaiveBackend())
        assert eng.backend_name == "naive"
        with pytest.raises(ValueError, match="backend options"):
            AlignmentEngine(backend=NaiveBackend(), workers=2)

    def test_default_model_memoized(self):
        assert default_model() is default_model()

    def test_encoding_memoized_and_bounded(self):
        eng = AlignmentEngine(cache_size=2)
        p1 = eng.prepare("ACGT", "ACGT")
        assert p1.a_codes is p1.b_codes  # same string, one cached encode
        eng.prepare("TTTT", "GGGG")  # evicts the oldest entry
        assert len(eng._codes) == 2

    def test_cache_size_zero_disables_memoization(self):
        eng = AlignmentEngine(cache_size=0)
        assert eng.score("ACGT", "ACGT") == AlignmentEngine().score("ACGT", "ACGT")
        assert len(eng._codes) == 0

    def test_context_manager_closes(self):
        closed = []

        class Tracker(NaiveBackend):
            def close(self):
                closed.append(True)

        with AlignmentEngine(backend=Tracker()) as eng:
            eng.score("AC", "AG")
        assert closed == [True]


class TestCrossBackendParity:
    @settings(deadline=None)
    @given(dna_pairs)
    def test_scores_naive_equals_numpy(self, pairs):
        naive = AlignmentEngine(backend="naive")
        vec = AlignmentEngine(backend="numpy")
        assert np.array_equal(naive.score_many(pairs), vec.score_many(pairs))

    @settings(deadline=None)
    @given(dna_pairs)
    def test_local_scores_naive_equals_numpy(self, pairs):
        naive = AlignmentEngine(backend="naive", mode="local")
        vec = AlignmentEngine(backend="numpy", mode="local")
        assert np.array_equal(naive.score_many(pairs), vec.score_many(pairs))

    @settings(deadline=None)
    @given(dna_pairs)
    def test_alignments_naive_equals_numpy(self, pairs):
        # Integer-valued model: DP tables agree exactly, so identical
        # tie-breaking gives identical tracebacks, not just scores.
        naive = AlignmentEngine(backend="naive")
        vec = AlignmentEngine(backend="numpy")
        for x, y in zip(naive.align_many(pairs), vec.align_many(pairs)):
            assert x.score == y.score
            assert x.pairs == y.pairs
            assert (x.a_interval, x.b_interval) == (y.a_interval, y.b_interval)

    @settings(deadline=None, max_examples=25)
    @given(dna_pairs)
    def test_scores_parity_biological_model(self, pairs):
        model = transition_transversion()
        naive = AlignmentEngine(backend="naive", model=model)
        vec = AlignmentEngine(backend="numpy", model=model)
        assert np.allclose(
            naive.score_many(pairs), vec.score_many(pairs), atol=1e-9
        )

    @settings(deadline=None, max_examples=25)
    @given(dna_pairs)
    def test_local_alignments_naive_equals_numpy(self, pairs):
        # The stop-bit direction-code walk vs the naive float-equality
        # walk: identical windows, pairs, and scores on integer models.
        naive = AlignmentEngine(backend="naive", mode="local")
        vec = AlignmentEngine(backend="numpy", mode="local")
        for x, y in zip(naive.align_many(pairs), vec.align_many(pairs)):
            assert x == y

    @settings(deadline=None, max_examples=30)
    @given(dna_pairs)
    def test_overlap_scores_naive_equals_numpy(self, pairs):
        naive = AlignmentEngine(backend="naive", mode="overlap")
        vec = AlignmentEngine(backend="numpy", mode="overlap")
        assert np.array_equal(naive.score_many(pairs), vec.score_many(pairs))

    @settings(deadline=None, max_examples=30)
    @given(dna_pairs, st.integers(0, 5))
    def test_banded_scores_naive_equals_numpy(self, pairs, extra_band):
        band = max((abs(len(a) - len(b)) for a, b in pairs), default=0) + extra_band
        naive = AlignmentEngine(backend="naive", mode="banded", band=band)
        vec = AlignmentEngine(backend="numpy", mode="banded", band=band)
        assert np.array_equal(naive.score_many(pairs), vec.score_many(pairs))

    @settings(deadline=None, max_examples=20)
    @given(dna_pairs)
    def test_overlap_alignments_naive_equals_numpy(self, pairs):
        naive = AlignmentEngine(backend="naive", mode="overlap")
        vec = AlignmentEngine(backend="numpy", mode="overlap")
        for x, y in zip(naive.align_many(pairs), vec.align_many(pairs)):
            assert x == y

    @settings(deadline=None, max_examples=20)
    @given(dna_pairs)
    def test_banded_alignments_naive_equals_numpy(self, pairs):
        band = max((abs(len(a) - len(b)) for a, b in pairs), default=0) + 3
        naive = AlignmentEngine(backend="naive", mode="banded", band=band)
        vec = AlignmentEngine(backend="numpy", mode="banded", band=band)
        for x, y in zip(naive.align_many(pairs), vec.align_many(pairs)):
            assert x == y

    def test_parallel_matches_numpy(self):
        gen = np.random.default_rng(5)
        # Uniform lengths so the pool fan-out path actually runs.
        pairs = [(random_dna(96, gen), random_dna(96, gen)) for _ in range(40)]
        mixed = pairs + [(random_dna(31, gen), random_dna(17, gen)) for _ in range(4)]
        for mode in ("global", "local", "overlap", "banded"):
            band = 70 if mode == "banded" else None
            vec = AlignmentEngine(backend="numpy", mode=mode, band=band)
            with AlignmentEngine(
                backend="parallel", mode=mode, band=band, workers=2
            ) as par:
                assert np.array_equal(
                    par.score_many(mixed), vec.score_many(mixed)
                )
                for x, y in zip(par.align_many(mixed), vec.align_many(mixed)):
                    assert x.score == y.score and x.pairs == y.pairs


class TestBatchSemantics:
    @settings(deadline=None)
    @given(dna_pairs)
    def test_align_many_equals_loop_of_align(self, pairs):
        for backend in ("naive", "numpy"):
            eng = AlignmentEngine(backend=backend)
            batch = eng.align_many(pairs)
            loop = [eng.align(a, b) for a, b in pairs]
            assert [x.score for x in batch] == [x.score for x in loop]
            assert [x.pairs for x in batch] == [x.pairs for x in loop]

    @settings(deadline=None)
    @given(dna_pairs)
    def test_score_many_equals_loop_of_score(self, pairs):
        for backend in ("naive", "numpy"):
            for mode in ("global", "local"):
                eng = AlignmentEngine(backend=backend, mode=mode)
                batch = eng.score_many(pairs)
                loop = np.array([eng.score(a, b) for a, b in pairs])
                assert np.array_equal(batch, loop)

    def test_batch_kernel_rejects_mixed_shapes(self):
        with pytest.raises(ValueError, match="uniform lengths"):
            global_scores_batch([("AC", "GT"), ("ACG", "GT")])

    def test_engine_buckets_mixed_shapes(self):
        eng = AlignmentEngine(backend="numpy")
        pairs = [("ACGT", "ACGA"), ("AC", "A"), ("TTTT", "GGGG"), ("", "ACG")]
        got = eng.score_many(pairs)
        want = [eng.score(a, b) for a, b in pairs]
        assert list(got) == want

    def test_per_call_mode_override(self):
        # One engine serves all four modes; per-call overrides never
        # disturb the configured default.
        eng = AlignmentEngine(backend="numpy")
        pairs = [("TTTTTACGTACGT", "ACGTACGTCCCC"), ("ACGT", "AGGT")]
        for mode, band in [("global", None), ("local", None), ("overlap", None), ("banded", 9)]:
            fixed = AlignmentEngine(backend="numpy", mode=mode, band=band)
            assert np.array_equal(
                eng.score_many(pairs, mode=mode, band=band), fixed.score_many(pairs)
            )
            assert eng.align_many(pairs, mode=mode, band=band) == fixed.align_many(pairs)
        assert eng.mode == "global" and eng.band is None


class TestConsumers:
    def test_conserved_discovery_backend_invariant(self):
        from fragalign.genome.conserved import find_conserved_regions
        from fragalign.genome.evolution import evolve, make_ancestor
        from fragalign.genome.shotgun import fragment_into_contigs

        gen = np.random.default_rng(11)
        anc = make_ancestor(n_blocks=3, block_len=120, spacer_len=60, rng=gen)
        a = evolve(anc, sub_rate=0.02, rng=gen)
        b = evolve(anc, sub_rate=0.02, rng=gen)
        ca = fragment_into_contigs(a, n_contigs=1, flip_prob=0, shuffle=False, rng=gen)
        cb = fragment_into_contigs(b, n_contigs=1, flip_prob=0, shuffle=False, rng=gen)
        base = find_conserved_regions(ca, cb, min_score=40)
        assert base  # the planted homology must be found
        model = unit_dna(match=1.0, mismatch=-1.0, gap=-2.0)
        for backend in ("naive", "numpy"):
            eng = AlignmentEngine(backend=backend, model=model, mode="local")
            assert find_conserved_regions(ca, cb, min_score=40, engine=eng) == base

    def test_conserved_discovery_rejects_global_engine(self):
        from fragalign.genome.conserved import find_conserved_regions

        with pytest.raises(ValueError, match="local-mode"):
            find_conserved_regions([], [], engine=AlignmentEngine(mode="global"))


class TestBackendProtocol:
    def test_base_class_defaults_loop(self):
        calls = []

        class Counting(AlignmentBackend):
            name = "counting"

            def score(self, p, model, mode):
                calls.append(p.a)
                return 0.0

        eng = AlignmentEngine(backend=Counting())
        out = eng.score_many([("A", "C"), ("G", "T")])
        assert list(out) == [0.0, 0.0]
        assert calls == ["A", "G"]

    def test_unknown_mode_rejected_by_backends(self):
        from fragalign.engine import ParallelBackend

        p = AlignmentEngine().prepare("AC", "GT")
        for backend in (NaiveBackend(), NumpyBackend()):
            with pytest.raises(ValueError, match="unknown alignment mode"):
                backend.score(p, unit_dna(), "frobnicate")
        # The pool fan-out path must validate too (min_batch=0 forces it);
        # the check fires before any worker process is spawned.
        par = ParallelBackend(min_batch=0)
        for method in (par.score_many, par.align_many):
            with pytest.raises(ValueError, match="unknown alignment mode"):
                method([p], unit_dna(), "frobnicate")
        assert par._pool is None


class TestAffineKnobs:
    """Affine gap parameters through the facade, all backends."""

    def _pairs(self, rng, count=8, lo=6, hi=24):
        return [
            (random_dna(int(rng.integers(lo, hi)), rng),
             random_dna(int(rng.integers(lo, hi)), rng))
            for _ in range(count)
        ]

    @pytest.mark.parametrize("mode", ["global", "local", "overlap", "banded"])
    def test_cross_backend_affine_parity(self, mode, rng):
        pairs = self._pairs(rng)
        band = 30 if mode == "banded" else None
        results = {}
        for name in ("naive", "numpy"):
            with AlignmentEngine(backend=name) as eng:
                scores = eng.score_many(
                    pairs, mode=mode, band=band, gap_open=-3.0, gap_extend=-1.0
                )
                alns = eng.align_many(
                    pairs, mode=mode, band=band, gap_open=-3.0, gap_extend=-1.0
                )
            assert np.allclose(scores, [a.score for a in alns])
            results[name] = (list(scores), alns)
        assert results["naive"][0] == results["numpy"][0]
        assert results["naive"][1] == results["numpy"][1]

    def test_parallel_backend_affine_fan_out(self, rng):
        pairs = [(random_dna(16, rng), random_dna(16, rng)) for _ in range(20)]
        with AlignmentEngine(backend="numpy") as ref, AlignmentEngine(
            backend="parallel", workers=2, min_batch=4
        ) as par:
            want = ref.score_many(pairs, gap_open=-4.0, gap_extend=-1.0)
            got = par.score_many(pairs, gap_open=-4.0, gap_extend=-1.0)
            assert np.array_equal(want, got)
            assert par.align_many(
                pairs, gap_open=-4.0, gap_extend=-1.0
            ) == ref.align_many(pairs, gap_open=-4.0, gap_extend=-1.0)

    def test_engine_level_defaults(self, rng):
        a, b = random_dna(20, rng), random_dna(22, rng)
        with AlignmentEngine(gap_open=-3.0, gap_extend=-1.0) as eng_def, AlignmentEngine() as eng:
            assert eng_def.score(a, b) == eng.score(a, b, gap_open=-3.0, gap_extend=-1.0)
            assert eng_def.align(a, b) == eng.align(a, b, gap_open=-3.0, gap_extend=-1.0)

    def test_gap_validation(self):
        with pytest.raises(ValueError, match="together"):
            AlignmentEngine(gap_open=-3.0)
        with pytest.raises(ValueError, match="<= 0"):
            AlignmentEngine(gap_open=1.0, gap_extend=-1.0)
        eng = AlignmentEngine()
        with pytest.raises(ValueError, match="together"):
            eng.score("AC", "GT", gap_open=-3.0)


class TestMemoryKnob:
    """Traceback strategy: linear vs tensor identity + validation."""

    def test_linear_equals_tensor_all_supported_modes(self, rng):
        a, b = random_dna(120, rng), random_dna(110, rng)
        with AlignmentEngine() as eng:
            for mode in ("global", "local", "overlap"):
                assert eng.align(a, b, mode=mode, memory="linear") == eng.align(
                    a, b, mode=mode, memory="tensor"
                )

    def test_align_many_linear_identity(self, rng):
        pairs = [(random_dna(40, rng), random_dna(44, rng)) for _ in range(6)]
        with AlignmentEngine() as eng:
            assert eng.align_many(pairs, memory="linear") == eng.align_many(
                pairs, memory="tensor"
            )

    def test_auto_threshold_switches_strategy(self, rng):
        a, b = random_dna(64, rng), random_dna(64, rng)
        with AlignmentEngine(linear_auto_cells=100) as small, AlignmentEngine() as eng:
            # 64*64 cells > 100: auto takes the linear walker — results identical
            assert small.align(a, b) == eng.align(a, b, memory="tensor")

    def test_invalid_memory_combinations(self, rng):
        a, b = random_dna(16, rng), random_dna(16, rng)
        with AlignmentEngine() as eng:
            with pytest.raises(ValueError, match="linear"):
                eng.align(a, b, memory="linear", gap_open=-3.0, gap_extend=-1.0)
            with pytest.raises(ValueError, match="linear"):
                eng.align(a, b, mode="banded", band=4, memory="linear")
            with pytest.raises(ValueError, match="memory"):
                eng.align(a, b, memory="bogus")
            with pytest.raises(ValueError, match="memory"):
                AlignmentEngine(memory="bogus")

    def test_naive_backend_accepts_and_ignores_memory(self, rng):
        a, b = random_dna(12, rng), random_dna(12, rng)
        with AlignmentEngine(backend="naive") as naive, AlignmentEngine() as eng:
            assert naive.align(a, b, memory="linear") == eng.align(a, b, memory="linear")
