"""Scaffolding substrate and the Fig.-1 inference report."""

from __future__ import annotations

import pytest

from fragalign.core import csr_improve, paper_example
from fragalign.genome.dna import random_dna, reverse_complement
from fragalign.genome.evolution import evolve, make_ancestor
from fragalign.genome.report import format_report, infer_relations
from fragalign.genome.scaffold import (
    build_scaffolds,
    sample_mate_pairs,
    scaffold_order_accuracy,
)
from fragalign.genome.shotgun import fragment_into_contigs
from fragalign.util.errors import InstanceError
from fragalign.util.rng import as_generator


def _contigs(seed: int, n: int, flip_prob: float = 0.5):
    gen = as_generator(seed)
    anc = make_ancestor(n_blocks=4, block_len=150, spacer_len=100, rng=gen)
    sp = evolve(anc, sub_rate=0.0, rng=gen)
    contigs = fragment_into_contigs(
        sp, n_contigs=n, flip_prob=flip_prob, shuffle=False, rng=gen
    )
    return sp, contigs


class TestMatePairs:
    def test_pair_geometry(self, rng):
        g = random_dna(2000, rng)
        mates = sample_mate_pairs(g, 50, insert_len=500, read_len=60, rng=rng)
        assert len(mates) == 50
        for m in mates:
            assert len(m.left) == 60 and len(m.right) == 60
            # Left read is a forward-strand substring, right is
            # reverse-complemented.
            assert m.left in g
            assert reverse_complement(m.right) in g

    def test_insert_too_long(self, rng):
        with pytest.raises(InstanceError):
            sample_mate_pairs("ACGT" * 10, 5, insert_len=100, rng=rng)


class TestScaffolding:
    def test_links_recover_adjacency(self):
        sp, contigs = _contigs(seed=5, n=4)
        gen = as_generator(99)
        mates = sample_mate_pairs(
            sp.sequence, 600, insert_len=400, insert_std=20, read_len=50,
            rng=gen,
        )
        scaffolds, links = build_scaffolds(contigs, mates, min_support=2)
        assert links, "mate pairs spanning contig gaps must produce links"
        # Links connect genuinely adjacent contigs in the right order.
        for link in links:
            assert (
                contigs[link.a].true_start < contigs[link.b].true_start
            )
        acc = scaffold_order_accuracy(scaffolds, contigs)
        assert acc >= 0.9

    def test_orientation_flags_match_truth(self):
        sp, contigs = _contigs(seed=7, n=3, flip_prob=1.0)
        gen = as_generator(3)
        mates = sample_mate_pairs(
            sp.sequence, 500, insert_len=400, insert_std=20, read_len=50,
            rng=gen,
        )
        _scaffolds, links = build_scaffolds(contigs, mates, min_support=2)
        for link in links:
            assert link.a_flipped == contigs[link.a].true_reversed
            assert link.b_flipped == contigs[link.b].true_reversed

    def test_gap_estimates_reasonable(self):
        sp, contigs = _contigs(seed=11, n=3, flip_prob=0.0)
        gen = as_generator(4)
        mates = sample_mate_pairs(
            sp.sequence, 800, insert_len=500, insert_std=10, read_len=50,
            rng=gen,
        )
        _sc, links = build_scaffolds(contigs, mates, min_support=3)
        for link in links:
            true_gap = contigs[link.b].true_start - contigs[link.a].true_end
            assert abs(link.gap - true_gap) < 150  # insert-size noise

    def test_no_mates_no_links(self):
        _sp, contigs = _contigs(seed=13, n=2)
        scaffolds, links = build_scaffolds(contigs, [], min_support=1)
        assert links == []
        assert len(scaffolds) == len(contigs)  # singletons


class TestReport:
    def test_paper_example_report(self):
        sol = csr_improve(paper_example())
        text = format_report(sol)
        assert "island" in text
        assert "precedes" in text
        assert "no distances" in text

    def test_relations_are_same_island(self):
        sol = csr_improve(paper_example())
        islands = sol.state.islands()
        for rel in infer_relations(sol):
            island = islands[rel.island]
            assert (rel.species, rel.first) in island
            assert (rel.species, rel.second) in island

    def test_empty_solution_report(self):
        from fragalign.core import CSRInstance, MatchScorer, SolutionState
        from fragalign.core.solution import CSRSolution

        inst = CSRInstance.build([(1,)], [(2,)], {})
        state = SolutionState(inst, MatchScorer(inst))
        sol = CSRSolution.from_state(state, "empty")
        assert "no islands" in format_report(sol)
