"""Arrangements, Score, and the Definition-1 padding round-trip."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from fragalign.core.conjecture import (
    Arrangement,
    all_arrangements,
    explicit_padding,
    identity_arrangement,
    padded_column_score,
    realize,
    score_pair,
    score_sequences,
)
from fragalign.core.generators import random_instance
from fragalign.core.symbols import PAD, reverse_word
from fragalign.util.errors import InstanceError


def test_realize_identity(paper_instance):
    arr = identity_arrangement(paper_instance, "H")
    assert realize(paper_instance, arr) == (1, 2, 3, 4)  # a b c | d


def test_realize_reversed(paper_instance):
    arr = Arrangement("H", ((1, True), (0, False)))
    # h2ᴿ = ⟨dᴿ⟩ then h1 = ⟨a, b, c⟩
    assert realize(paper_instance, arr) == (-4, 1, 2, 3)


def test_arrangement_validation(paper_instance):
    with pytest.raises(InstanceError):
        realize(paper_instance, Arrangement("H", ((0, False),)))
    with pytest.raises(InstanceError):
        realize(paper_instance, Arrangement("H", ((0, False), (0, True))))


def test_all_arrangements_counts(paper_instance):
    full = list(all_arrangements(paper_instance, "H"))
    assert len(full) == 8  # 2! * 2^2
    dedup = list(all_arrangements(paper_instance, "H", dedup_mirror=True))
    assert len(dedup) == 4  # halved exactly


def test_mirror_is_involution(paper_instance):
    for arr in all_arrangements(paper_instance, "H"):
        assert arr.mirrored().mirrored() == arr


def test_paper_optimal_arrangement_scores_11(paper_instance):
    # h1 then h2ᴿ over m1 m2: the layout of Fig. 4.
    arr_h = Arrangement("H", ((0, False), (1, True)))
    arr_m = Arrangement("M", ((0, False), (1, False)))
    assert score_pair(paper_instance, arr_h, arr_m) == pytest.approx(11.0)


def test_score_pair_species_check(paper_instance):
    arr_h = identity_arrangement(paper_instance, "H")
    with pytest.raises(InstanceError):
        score_pair(paper_instance, arr_h, arr_h)


@given(st.integers(0, 10_000))
def test_mirror_invariance_of_score(seed):
    inst = random_instance(n_h=2, n_m=2, rng=seed)
    arr_h = identity_arrangement(inst, "H")
    arr_m = identity_arrangement(inst, "M")
    direct = score_pair(inst, arr_h, arr_m)
    mirrored = score_pair(inst, arr_h.mirrored(), arr_m.mirrored())
    assert direct == pytest.approx(mirrored)


@given(st.integers(0, 10_000))
def test_explicit_padding_realizes_chain_score(seed):
    inst = random_instance(n_h=2, n_m=2, rng=seed)
    h_word = realize(inst, identity_arrangement(inst, "H"))
    m_word = realize(inst, identity_arrangement(inst, "M"))
    expect = score_sequences(inst.scorer, h_word, m_word)
    ph, pm = explicit_padding(inst.scorer, h_word, m_word)
    assert len(ph) == len(pm)
    assert padded_column_score(inst.scorer, ph, pm) == pytest.approx(expect)
    # stripping pads recovers the originals
    assert tuple(x for x in ph if x != PAD) == h_word
    assert tuple(x for x in pm if x != PAD) == m_word


@given(st.integers(0, 10_000))
def test_score_reversal_invariance_of_sequences(seed):
    inst = random_instance(n_h=2, n_m=2, rng=seed)
    h_word = realize(inst, identity_arrangement(inst, "H"))
    m_word = realize(inst, identity_arrangement(inst, "M"))
    s1 = score_sequences(inst.scorer, h_word, m_word)
    s2 = score_sequences(
        inst.scorer, reverse_word(h_word), reverse_word(m_word)
    )
    assert s1 == pytest.approx(s2)


def test_padded_column_score_length_mismatch(paper_instance):
    assert padded_column_score(paper_instance.scorer, (1,), (1, 2)) == 0.0
