"""``repro`` — distribution façade for :mod:`fragalign`.

The library's import name is ``fragalign``; this module re-exports the
public API so ``import repro`` works as the task scaffold expects.
"""

from fragalign import __version__, align, core, isp, util

__all__ = ["align", "core", "isp", "util", "__version__"]
