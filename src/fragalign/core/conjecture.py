"""Conjecture sequences and the Score function (§2.1, Definition 1).

An :class:`Arrangement` fixes stage 2 and 3 of Definition 1 for one
species: an orientation per fragment and a global order.  Stage 1 (the
padding) is always chosen optimally, which — because ⊥ scores 0 — is
the max-weight chain DP of :mod:`fragalign.align.chain`.  So

    score_pair(instance, arr_h, arr_m)
        = max over paddings of Score(h, m)   per the paper.

:func:`explicit_padding` materializes the padding, producing two
equal-length words over Σ̃ ∪ {⊥} whose column score equals the DP value
(the Definition-1 ⟷ DP round-trip is a standing test).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations, product
from typing import Iterator, Sequence

from fragalign.align.chain import chain_score, chain_score_with_pairs
from fragalign.core.fragments import CSRInstance, Species
from fragalign.core.scoring import Scorer
from fragalign.core.symbols import PAD, Word, reverse_word
from fragalign.util.errors import InstanceError

__all__ = [
    "Arrangement",
    "identity_arrangement",
    "all_arrangements",
    "realize",
    "score_sequences",
    "score_pair",
    "explicit_padding",
    "padded_column_score",
]


@dataclass(frozen=True)
class Arrangement:
    """An order + orientation of one species' fragments.

    ``order`` is a tuple of (fid, reversed) covering every fragment of
    the species exactly once.
    """

    species: Species
    order: tuple[tuple[int, bool], ...]

    def validate(self, instance: CSRInstance) -> None:
        fids = sorted(f for f, _ in self.order)
        expect = list(range(len(instance.fragments(self.species))))
        if fids != expect:
            raise InstanceError(
                f"arrangement must use every {self.species}-fragment exactly once"
            )

    def mirrored(self) -> "Arrangement":
        """The globally-reversed arrangement (reverse order, flip all)."""
        return Arrangement(
            self.species, tuple((fid, not rev) for fid, rev in reversed(self.order))
        )


def identity_arrangement(instance: CSRInstance, species: Species) -> Arrangement:
    return Arrangement(
        species, tuple((i, False) for i in range(len(instance.fragments(species))))
    )


def all_arrangements(
    instance: CSRInstance, species: Species, *, dedup_mirror: bool = False
) -> Iterator[Arrangement]:
    """Every (permutation × orientation) arrangement of one species.

    With ``dedup_mirror=True`` only one representative per
    {A, A.mirrored()} pair is produced — Score is invariant under
    mirroring *both* species, so the exact solver deduplicates one side.
    """
    n = len(instance.fragments(species))
    for perm in permutations(range(n)):
        for flips in product((False, True), repeat=n):
            arr = Arrangement(species, tuple(zip(perm, flips)))
            if dedup_mirror:
                mirror = arr.mirrored()
                if mirror.order < arr.order:
                    continue
            yield arr


def realize(instance: CSRInstance, arrangement: Arrangement) -> Word:
    """Concatenate the oriented fragments into one word over Σ̃."""
    arrangement.validate(instance)
    out: list[int] = []
    for fid, rev in arrangement.order:
        regions = instance.fragment(arrangement.species, fid).regions
        out.extend(reverse_word(regions) if rev else regions)
    return tuple(out)


def score_sequences(scorer: Scorer, h_word: Sequence[int], m_word: Sequence[int]) -> float:
    """Optimal-padding Score of two realized conjecture words."""
    if not h_word or not m_word:
        return 0.0
    return chain_score(scorer.weight_matrix(h_word, m_word))


def score_pair(
    instance: CSRInstance, arr_h: Arrangement, arr_m: Arrangement
) -> float:
    """Score of a conjecture pair with optimal padding."""
    if arr_h.species != "H" or arr_m.species != "M":
        raise InstanceError("score_pair expects an H and an M arrangement")
    return score_sequences(
        instance.scorer, realize(instance, arr_h), realize(instance, arr_m)
    )


def explicit_padding(
    scorer: Scorer, h_word: Sequence[int], m_word: Sequence[int]
) -> tuple[Word, Word]:
    """Materialize an optimal padding as two equal-length padded words.

    Unmatched symbols are placed in columns against ⊥, so the padded
    column score equals the chain score exactly.
    """
    W = scorer.weight_matrix(h_word, m_word)
    _, pairs = chain_score_with_pairs(W)
    ph: list[int] = []
    pm: list[int] = []
    hi = mi = 0
    for i, j in pairs:
        while hi < i:
            ph.append(h_word[hi])
            pm.append(PAD)
            hi += 1
        while mi < j:
            ph.append(PAD)
            pm.append(m_word[mi])
            mi += 1
        ph.append(h_word[hi])
        pm.append(m_word[mi])
        hi += 1
        mi += 1
    while hi < len(h_word):
        ph.append(h_word[hi])
        pm.append(PAD)
        hi += 1
    while mi < len(m_word):
        ph.append(PAD)
        pm.append(m_word[mi])
        mi += 1
    return tuple(ph), tuple(pm)


def padded_column_score(
    scorer: Scorer, h_padded: Sequence[int], m_padded: Sequence[int]
) -> float:
    """The paper's Score: column-wise σ sum; 0 if lengths differ."""
    if len(h_padded) != len(m_padded):
        return 0.0
    return float(sum(scorer.get(a, b) for a, b in zip(h_padded, m_padded)))
