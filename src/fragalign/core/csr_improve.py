"""CSR_Improve — Theorem 6's (3+ε)-approximation for general CSR.

The full method set of §4.4: I1 (plug-in with TPA zones), I2 with
zones (border sites as I1-style targets, Fig. 15) and I3 (2-island
re-wiring).  Optionally seeds from the Corollary-1 baseline — the
analysis starts from the empty set, but any start point only helps a
local-search argument, and seeding makes large instances cheaper.
"""

from __future__ import annotations

from fragalign.core.fragments import CSRInstance
from fragalign.core.improve import (
    i1_attempts,
    i2_attempts,
    i3_attempts,
    run_improvement,
)
from fragalign.core.match_score import MatchScorer
from fragalign.core.scaling import iteration_bound, scaling_threshold
from fragalign.core.solution import CSRSolution
from fragalign.core.state import SolutionState

__all__ = ["csr_improve"]


def csr_improve(
    instance: CSRInstance,
    threshold: float = 1e-9,
    eps: float | None = None,
    baseline_score: float | None = None,
    seed: str = "empty",
    max_zones: int = 8,
    validate: bool = False,
    policy: str = "first",
) -> CSRSolution:
    """Run CSR_Improve.

    ``seed``: "empty" (paper) or "baseline" (start from the factor-4
    solution's matches).  ``eps`` enables the §4.1 scaling threshold.
    ``policy``: "first" (paper) or "best" improvement per pass.
    """
    ms = MatchScorer(instance)
    state = SolutionState(instance, ms)
    if seed == "baseline":
        from fragalign.core.baseline import baseline4

        base = baseline4(instance)
        if baseline_score is None:
            baseline_score = base.score
        for match in base.state.matches():
            state.add(match)
    elif seed != "empty":
        raise ValueError(f"unknown seed {seed!r}")
    max_accepts = 10_000
    if eps is not None:
        if baseline_score is None:
            from fragalign.core.baseline import baseline4

            baseline_score = baseline4(instance).score
        threshold = max(threshold, scaling_threshold(instance, baseline_score, eps))
        max_accepts = iteration_bound(baseline_score, threshold)
    stats = run_improvement(
        state,
        [
            lambda s: i1_attempts(s, max_zones=max_zones),
            lambda s: i2_attempts(s, zoned=True),
            lambda s: i3_attempts(s),
        ],
        threshold=threshold,
        max_accepts=max_accepts,
        validate=validate,
        policy=policy,
    )
    return CSRSolution.from_state(
        state,
        "csr_improve",
        {
            "passes": stats.passes,
            "attempts": stats.attempts,
            "accepted": stats.accepted,
            "seed": seed,
            "threshold": threshold,
        },
    )
