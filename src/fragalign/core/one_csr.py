"""1-CSR: CSR with a single m-sequence, solved via ISP (§3.4).

Every H fragment participates in at most one match, with its full site
(padding is free, so a fuller site never scores less).  A solution is
then a choice of disjoint m-intervals, one per used H fragment —
exactly the Interval Selection Problem with profits

    p(i, [d, e)) = MS(h_i, m(d, e)).

All profits come from the incremental all-intervals chain DP (both
orientations), and the two-phase algorithm picks the intervals, giving
the ratio-2 1-CSR solver that Corollary 1 doubles into a factor-4 CSR
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from fragalign.align.interval_dp import (
    all_interval_chain_scores,
    all_interval_chain_scores_parallel,
)
from fragalign.core.fragments import CSRInstance
from fragalign.core.match_score import MatchScorer
from fragalign.core.sites import Site
from fragalign.core.solution import CSRSolution
from fragalign.core.state import SolutionState
from fragalign.core.symbols import reverse_word
from fragalign.isp.exact import exact_isp
from fragalign.isp.instance import ISPInstance, ISPItem
from fragalign.isp.tpa import tpa
from fragalign.util.errors import SolverError

__all__ = ["one_csr_profits", "solve_one_csr", "solve_one_csr_exact"]


def one_csr_profits(
    instance: CSRInstance, workers: int = 1
) -> list[np.ndarray]:
    """Per-H-fragment interval profit tables.

    Returns a list P with P[i][d, e] = MS(h_i, m(d, e)) for the single
    m-fragment, computed as the elementwise max of the forward table
    and the (coordinate-flipped) reversed table.
    """
    if instance.n_m != 1:
        raise SolverError("one_csr_profits needs exactly one m-fragment")
    m_word = instance.m_fragments[0].regions
    L = len(m_word)
    compute = (
        all_interval_chain_scores
        if workers <= 1
        else lambda W: all_interval_chain_scores_parallel(W, workers=workers)
    )
    tables: list[np.ndarray] = []
    for frag in instance.h_fragments:
        W_fwd = instance.scorer.weight_matrix(frag.regions, m_word)
        W_rev = instance.scorer.weight_matrix(frag.regions, reverse_word(m_word))
        S_fwd = compute(W_fwd)
        S_rev = compute(W_rev)
        # Interval [d, e) of m maps to [L-e, L-d) of reversed m.
        S_rev_mapped = S_rev[::-1, ::-1].T
        tables.append(np.maximum(S_fwd, S_rev_mapped))
    return tables


def _one_csr_items(
    instance: CSRInstance, workers: int = 1, dominated_prune: bool = True
) -> list[ISPItem]:
    """The ISP items of §3.4's reduction.

    ``dominated_prune`` drops items whose profit does not exceed that
    of a strictly shorter nested interval for the same fragment —
    padding is free, so such items are never needed (this prunes the
    quadratic interval count substantially without touching the
    optimum or the TPA guarantee, which holds for any item subset
    containing an optimal solution's items).
    """
    profits = one_csr_profits(instance, workers=workers)
    L = len(instance.m_fragments[0])
    items: list[ISPItem] = []
    for i, table in enumerate(profits):
        for d in range(L):
            for e in range(d + 1, L + 1):
                p = float(table[d, e])
                if p <= 0:
                    continue
                if dominated_prune and e - d > 1:
                    inner = max(float(table[d + 1, e]), float(table[d, e - 1]))
                    if p <= inner:
                        continue
                items.append(ISPItem(index=i, start=d, end=e, profit=p))
    return items


def solve_one_csr(
    instance: CSRInstance, workers: int = 1, fast_tpa: bool = True
) -> CSRSolution:
    """Ratio-2 1-CSR solver: all-interval profits + TPA."""
    items = _one_csr_items(instance, workers=workers)
    chosen = tpa(ISPInstance.build(items), fast=fast_tpa)
    ms = MatchScorer(instance)
    state = SolutionState(instance, ms)
    for item in chosen:
        state.add_full(("H", item.index), Site("M", 0, item.start, item.end))
    return CSRSolution.from_state(
        state, "one_csr_tpa", {"isp_items": len(items), "chosen": len(chosen)}
    )


def solve_one_csr_exact(
    instance: CSRInstance, workers: int = 1, max_items: int = 30
) -> CSRSolution:
    """Exact 1-CSR on small instances: exact ISP over the same items.

    Plugged into Theorem 3's combinator this yields a true ratio-2 CSR
    algorithm (r = 1), the best the paper's framework offers short of
    the improvement algorithms.
    """
    items = _one_csr_items(instance, workers=workers)
    if len(items) > max_items:
        raise SolverError(
            f"exact 1-CSR limited to {max_items} ISP items (got {len(items)})"
        )
    _profit, chosen = exact_isp(ISPInstance.build(items), max_items=max_items)
    ms = MatchScorer(instance)
    state = SolutionState(instance, ms)
    for item in chosen:
        state.add_full(("H", item.index), Site("M", 0, item.start, item.end))
    return CSRSolution.from_state(
        state, "one_csr_exact", {"isp_items": len(items), "chosen": len(chosen)}
    )
