"""Fragments and CSR problem instances (§2.1).

A :class:`Fragment` is an ordered word of conserved-region symbols from
one species' contig.  A :class:`CSRInstance` bundles the two fragment
sets H and M and the score function σ; it is the input type of every
solver in :mod:`fragalign.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from fragalign.core.scoring import Scorer
from fragalign.core.symbols import Word, format_word, validate_word, word_from_names
from fragalign.util.errors import InstanceError

__all__ = ["Species", "Fragment", "CSRInstance", "paper_example"]

Species = str  # "H" | "M"

SPECIES = ("H", "M")


def other_species(species: Species) -> Species:
    if species == "H":
        return "M"
    if species == "M":
        return "H"
    raise InstanceError(f"unknown species {species!r}")


@dataclass(frozen=True)
class Fragment:
    """One contig: an ordered word of signed region symbols.

    ``fid`` is the index of the fragment within its species' list; the
    (species, fid) pair identifies a fragment throughout the library.
    """

    species: Species
    fid: int
    regions: Word
    name: str = ""

    def __post_init__(self) -> None:
        if self.species not in SPECIES:
            raise InstanceError(f"species must be 'H' or 'M', got {self.species!r}")
        object.__setattr__(self, "regions", validate_word(self.regions))
        if len(self.regions) == 0:
            raise InstanceError("fragments must contain at least one region")

    def __len__(self) -> int:
        return len(self.regions)

    def label(self) -> str:
        return self.name or f"{self.species.lower()}{self.fid + 1}"


@dataclass(frozen=True)
class CSRInstance:
    """A CSR problem: fragment sets H, M and the score function σ."""

    h_fragments: tuple[Fragment, ...]
    m_fragments: tuple[Fragment, ...]
    scorer: Scorer
    region_names: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for expect, frags in (("H", self.h_fragments), ("M", self.m_fragments)):
            for i, f in enumerate(frags):
                if f.species != expect or f.fid != i:
                    raise InstanceError(
                        f"fragment {f.label()} mis-indexed: expected ({expect}, {i}),"
                        f" got ({f.species}, {f.fid})"
                    )
        if not self.h_fragments or not self.m_fragments:
            raise InstanceError("both species need at least one fragment")

    # -- construction helpers -----------------------------------------
    @staticmethod
    def build(
        h_words: Sequence[Sequence[int]],
        m_words: Sequence[Sequence[int]],
        scores: Mapping[tuple[int, int], float] | Scorer,
        region_names: dict[int, str] | None = None,
    ) -> "CSRInstance":
        scorer = scores if isinstance(scores, Scorer) else Scorer(scores)
        h = tuple(
            Fragment("H", i, tuple(w)) for i, w in enumerate(h_words)
        )
        m = tuple(
            Fragment("M", i, tuple(w)) for i, w in enumerate(m_words)
        )
        return CSRInstance(h, m, scorer, region_names or {})

    @staticmethod
    def from_names(
        h_named: Sequence[Sequence[str]],
        m_named: Sequence[Sequence[str]],
        named_scores: Mapping[tuple[str, str], float],
    ) -> "CSRInstance":
        """Build from region *names*; ``"x'"`` denotes xᴿ in scores."""
        table: dict[str, int] = {}
        h_words = [word_from_names(w, table) for w in h_named]
        m_words = [word_from_names(w, table) for w in m_named]
        scorer = Scorer()
        for (na, nb), v in named_scores.items():
            (a,) = word_from_names([na], table)
            (b,) = word_from_names([nb], table)
            scorer.set(a, b, v)
        names = {v: k for k, v in table.items()}
        return CSRInstance.build(h_words, m_words, scorer, names)

    # -- access --------------------------------------------------------
    def fragments(self, species: Species) -> tuple[Fragment, ...]:
        if species == "H":
            return self.h_fragments
        if species == "M":
            return self.m_fragments
        raise InstanceError(f"unknown species {species!r}")

    def fragment(self, species: Species, fid: int) -> Fragment:
        return self.fragments(species)[fid]

    def all_fragments(self) -> Iterable[Fragment]:
        yield from self.h_fragments
        yield from self.m_fragments

    # -- statistics -----------------------------------------------------
    @property
    def n_h(self) -> int:
        return len(self.h_fragments)

    @property
    def n_m(self) -> int:
        return len(self.m_fragments)

    def total_regions(self, species: Species) -> int:
        return sum(len(f) for f in self.fragments(species))

    def describe(self) -> str:
        lines = [f"CSR instance: |H|={self.n_h}, |M|={self.n_m}, |σ|={len(self.scorer)}"]
        for f in self.all_fragments():
            lines.append(f"  {f.label()}: {format_word(f.regions, self.region_names)}")
        return "\n".join(lines)


def paper_example() -> CSRInstance:
    """The running example of §1 (Figs. 2, 4, 5).

    Contigs h1=⟨a,b,c⟩, h2=⟨d⟩, m1=⟨s,t⟩, m2=⟨u,v⟩ with σ(a,s)=4,
    σ(a,t)=1, σ(b,tᴿ)=3, σ(c,u)=5, σ(d,t)=σ(d,vᴿ)=2.  The optimal
    solution deletes b and t, reverses h2 and places it after h1,
    scoring σ(a,s)+σ(c,u)+σ(dᴿ,v) = 4+5+2 = 11.
    """
    return CSRInstance.from_names(
        h_named=[["a", "b", "c"], ["d"]],
        m_named=[["s", "t"], ["u", "v"]],
        named_scores={
            ("a", "s"): 4.0,
            ("a", "t"): 1.0,
            ("b", "t'"): 3.0,
            ("c", "u"): 5.0,
            ("d", "t"): 2.0,
            ("d", "v'"): 2.0,
        },
    )
