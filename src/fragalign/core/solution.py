"""Uniform solver result type.

Every CSR algorithm in the library returns a :class:`CSRSolution`:
the solution state (consistent match set), the explicit conjecture
pair realizing it, and the *realized* Score of that pair — the honest
number the paper's objective assigns.  ``realized ≥ state.score()``
always (the layout can pick up incidental cross-island pairs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from fragalign.core.conjecture import Arrangement, score_pair
from fragalign.core.state import SolutionState

__all__ = ["CSRSolution"]


@dataclass
class CSRSolution:
    state: SolutionState
    arr_h: Arrangement
    arr_m: Arrangement
    score: float
    algorithm: str
    stats: dict = field(default_factory=dict)

    @staticmethod
    def from_state(
        state: SolutionState, algorithm: str, stats: dict | None = None
    ) -> "CSRSolution":
        from fragalign.core.consistency import layout

        arr_h, arr_m = layout(state)
        realized = score_pair(state.instance, arr_h, arr_m)
        return CSRSolution(
            state=state,
            arr_h=arr_h,
            arr_m=arr_m,
            score=realized,
            algorithm=algorithm,
            stats=dict(stats or {}),
        )

    def summary(self) -> str:
        return (
            f"{self.algorithm}: score={self.score:g} "
            f"({len(self.state)} matches, {len(self.state.islands())} islands)"
        )
