"""Border CSR algorithms: Lemma 9's 2-approximation and Border_Improve.

* :func:`matching_2approx` — Lemma 9: the optimum of a Border-CSR
  instance induces a degree-≤2 bipartite solution graph, which splits
  into two matchings; the better one is a plain maximum-weight
  bipartite matching on full-site match scores.  We solve that
  matching exactly (scipy's ``linear_sum_assignment``) for a clean
  ratio-2 guarantee.
* :func:`border_improve` — Theorem 5: iterative improvement with the
  border-match methods I2 (plain sites, no zones — §4.3's variant) and
  I3 (2-island re-wiring).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from fragalign.core.fragments import CSRInstance
from fragalign.core.improve import i2_attempts, i3_attempts, run_improvement
from fragalign.core.match_score import MatchScorer
from fragalign.core.scaling import iteration_bound, scaling_threshold
from fragalign.core.sites import Site, full_site
from fragalign.core.solution import CSRSolution
from fragalign.core.state import SolutionState

__all__ = ["matching_2approx", "border_improve"]


def matching_2approx(instance: CSRInstance) -> CSRSolution:
    """Lemma 9: maximum-weight matching on full-full match scores."""
    ms = MatchScorer(instance)
    nh, nm = instance.n_h, instance.n_m
    R = np.zeros((nh, nm))
    for i, f in enumerate(instance.h_fragments):
        for j, g in enumerate(instance.m_fragments):
            score, _rev = ms.ms_full(full_site(f), full_site(g))
            R[i, j] = max(score, 0.0)
    rows, cols = linear_sum_assignment(R, maximize=True)
    state = SolutionState(instance, ms)
    for i, j in zip(rows, cols):
        if R[i, j] > 0:
            state.add_full(("H", int(i)), Site("M", int(j), 0, len(instance.m_fragments[int(j)])))
    return CSRSolution.from_state(state, "matching_2approx")


def border_improve(
    instance: CSRInstance,
    threshold: float = 1e-9,
    eps: float | None = None,
    baseline_score: float | None = None,
    validate: bool = False,
) -> CSRSolution:
    """Theorem 5's Border_Improve (methods I2 and I3, site-only zones)."""
    ms = MatchScorer(instance)
    state = SolutionState(instance, ms)
    max_accepts = 10_000
    if eps is not None:
        if baseline_score is None:
            from fragalign.core.baseline import baseline4

            baseline_score = baseline4(instance).score
        threshold = max(threshold, scaling_threshold(instance, baseline_score, eps))
        max_accepts = iteration_bound(baseline_score, threshold)
    stats = run_improvement(
        state,
        [
            lambda s: i2_attempts(s, zoned=False),
            lambda s: i3_attempts(s),
        ],
        threshold=threshold,
        max_accepts=max_accepts,
        validate=validate,
    )
    return CSRSolution.from_state(
        state,
        "border_improve",
        {
            "passes": stats.passes,
            "attempts": stats.attempts,
            "accepted": stats.accepted,
            "threshold": threshold,
        },
    )
