"""Random and structured CSR instance generators.

Benchmarks and property tests draw from several families:

* :func:`random_instance` — unstructured noise: random fragments and a
  random sparse σ.  Exercises robustness, not biology.
* :func:`planted_instance` — a ground-truth ancestor order of
  conserved blocks, cut into fragments per species with orientation
  flips; σ rewards recovering the planted correspondence.  The planted
  score is a known lower bound on OPT, so large instances (beyond the
  exact solver) still support ratio *lower-bound* measurements.
* :func:`full_csr_instance` — every H fragment is a single region, so
  every match is a full match: exact Full-CSR oracle territory
  (Theorem 4 benches).
* :func:`border_chain_instance` — staggered two-region fragments whose
  optimum is a chain of border matches: Border-CSR territory (Lemma 9
  / Theorem 5 benches).
* :func:`ucsr_instance` — the UCSR restriction of §3.1: σ(a, b) = 0
  for a ≠ b and every letter occurs exactly once per species.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from fragalign.core.fragments import CSRInstance
from fragalign.core.scoring import Scorer
from fragalign.util.errors import InstanceError
from fragalign.util.rng import RngLike, as_generator

__all__ = [
    "random_instance",
    "planted_instance",
    "PlantedInstance",
    "full_csr_instance",
    "border_chain_instance",
    "ucsr_instance",
]


def random_instance(
    n_h: int = 3,
    n_m: int = 3,
    len_lo: int = 1,
    len_hi: int = 4,
    score_density: float = 1.0,
    score_hi: float = 10.0,
    rng: RngLike = None,
) -> CSRInstance:
    """Random fragments with a sparse random σ.

    Every region occurrence gets a globally-unique id; σ assigns each
    (h-region, m-region) pair a positive score with probability
    ``score_density / (#h regions)`` and a random orientation, so the
    expected number of positive pairs per m-region is ``score_density``.
    """
    gen = as_generator(rng)
    next_id = 1

    def make_words(count: int) -> list[tuple[int, ...]]:
        nonlocal next_id
        words = []
        for _ in range(count):
            length = int(gen.integers(len_lo, len_hi + 1))
            words.append(tuple(range(next_id, next_id + length)))
            next_id += length
        return words

    h_words = make_words(n_h)
    m_words = make_words(n_m)
    h_regions = [r for w in h_words for r in w]
    m_regions = [r for w in m_words for r in w]
    scorer = Scorer()
    p = min(1.0, score_density / max(1, len(h_regions)))
    for a in h_regions:
        for b in m_regions:
            if gen.random() < p:
                sign = -1 if gen.random() < 0.5 else 1
                scorer.set(a, sign * b, float(gen.uniform(1.0, score_hi)))
    return CSRInstance.build(h_words, m_words, scorer)


@dataclass(frozen=True)
class PlantedInstance:
    """An instance with a known high-scoring planted solution."""

    instance: CSRInstance
    planted_score: float
    n_blocks: int


def planted_instance(
    n_blocks: int = 8,
    n_h: int = 3,
    n_m: int = 3,
    block_score: float = 5.0,
    inversion_prob: float = 0.3,
    decoy_pairs: int = 4,
    decoy_score: float = 1.0,
    rng: RngLike = None,
) -> PlantedInstance:
    """Two species sharing ``n_blocks`` conserved blocks.

    The H side carries blocks 1..n in ancestral order, cut into ``n_h``
    fragments.  The M side carries the same blocks (each with its own
    occurrence id), some individually inverted, cut into ``n_m``
    fragments.  σ scores each block against its orthologue with
    ``block_score`` (orientation-aware), plus a few low-score decoys.
    The planted solution — identity order on both sides — scores
    ``n_blocks * block_score``, a lower bound on OPT.
    """
    if n_blocks < max(n_h, n_m):
        raise InstanceError("need at least one block per fragment")
    gen = as_generator(rng)
    h_ids = list(range(1, n_blocks + 1))
    m_ids = list(range(n_blocks + 1, 2 * n_blocks + 1))
    inverted = [gen.random() < inversion_prob for _ in range(n_blocks)]
    m_signed = [-m if inv else m for m, inv in zip(m_ids, inverted)]

    def cut(seq: list[int], pieces: int) -> list[tuple[int, ...]]:
        cuts = sorted(gen.choice(np.arange(1, len(seq)), size=pieces - 1, replace=False)) if pieces > 1 else []
        out = []
        prev = 0
        for c in list(cuts) + [len(seq)]:
            out.append(tuple(seq[prev:int(c)]))
            prev = int(c)
        return [w for w in out if w]

    h_words = cut(h_ids, n_h)
    m_words = cut(m_signed, n_m)
    scorer = Scorer()
    for h, m, inv in zip(h_ids, m_ids, inverted):
        scorer.set(h, -m if inv else m, block_score)
    for _ in range(decoy_pairs):
        a = int(gen.choice(h_ids))
        b = int(gen.choice(m_ids))
        sign = -1 if gen.random() < 0.5 else 1
        if scorer.get(a, sign * b) == 0.0:
            scorer.set(a, sign * b, decoy_score)
    inst = CSRInstance.build(h_words, m_words, scorer)
    return PlantedInstance(inst, n_blocks * block_score, n_blocks)


def full_csr_instance(
    n_h: int = 5,
    n_m: int = 2,
    m_len: int = 4,
    score_density: float = 2.0,
    score_hi: float = 10.0,
    rng: RngLike = None,
) -> CSRInstance:
    """Full-CSR family: single-region H fragments ⇒ only full matches."""
    gen = as_generator(rng)
    h_words = [(i + 1,) for i in range(n_h)]
    base = n_h + 1
    m_words = []
    for j in range(n_m):
        m_words.append(tuple(range(base, base + m_len)))
        base += m_len
    scorer = Scorer()
    m_regions = [r for w in m_words for r in w]
    p = min(1.0, score_density / max(1, n_h))
    for a in range(1, n_h + 1):
        for b in m_regions:
            if gen.random() < p:
                sign = -1 if gen.random() < 0.5 else 1
                scorer.set(a, sign * b, float(gen.uniform(1.0, score_hi)))
    return CSRInstance.build(h_words, m_words, scorer)


def border_chain_instance(
    k: int = 3,
    w: float = 5.0,
    jitter: float = 0.0,
    rng: RngLike = None,
) -> CSRInstance:
    """Staggered chain whose optimum uses border matches only.

    H_i = ⟨a_i, b_i⟩ and M_i = ⟨c_i, d_i⟩ with σ(b_i, c_i) = w and
    σ(a_{i+1}, d_i) = w: laying the fragments out alternately pairs
    each fragment's ends with two different partners (suffix↔prefix
    border matches), collecting all 2k−1 scores.
    """
    gen = as_generator(rng)
    h_words = []
    m_words = []
    nid = 1
    ab = []
    cd = []
    for _ in range(k):
        ab.append((nid, nid + 1))
        h_words.append((nid, nid + 1))
        nid += 2
    for _ in range(k):
        cd.append((nid, nid + 1))
        m_words.append((nid, nid + 1))
        nid += 2
    scorer = Scorer()
    for i in range(k):
        b_i = ab[i][1]
        c_i = cd[i][0]
        scorer.set(b_i, c_i, w + (float(gen.uniform(-jitter, jitter)) if jitter else 0.0))
    for i in range(k - 1):
        a_next = ab[i + 1][0]
        d_i = cd[i][1]
        scorer.set(a_next, d_i, w + (float(gen.uniform(-jitter, jitter)) if jitter else 0.0))
    return CSRInstance.build(h_words, m_words, scorer)


def ucsr_instance(
    n_letters: int = 8,
    n_h: int = 3,
    n_m: int = 3,
    score_hi: float = 10.0,
    rev_prob: float = 0.3,
    rng: RngLike = None,
) -> CSRInstance:
    """UCSR restriction (§3.1): σ(a, b) = 0 for a ≠ b, each letter once
    per species (M occurrences may be reversed)."""
    if n_letters < max(n_h, n_m):
        raise InstanceError("need at least one letter per fragment")
    gen = as_generator(rng)
    letters = list(range(1, n_letters + 1))
    h_perm = list(gen.permutation(letters))
    m_perm = list(gen.permutation(letters))
    m_signed = [-x if gen.random() < rev_prob else x for x in m_perm]

    def cut(seq: list[int], pieces: int) -> list[tuple[int, ...]]:
        if pieces <= 1:
            return [tuple(seq)]
        cuts = sorted(
            gen.choice(np.arange(1, len(seq)), size=pieces - 1, replace=False)
        )
        out = []
        prev = 0
        for c in list(cuts) + [len(seq)]:
            out.append(tuple(seq[prev:int(c)]))
            prev = int(c)
        return [w for w in out if w]

    h_words = cut([int(x) for x in h_perm], n_h)
    m_words = cut([int(x) for x in m_signed], n_m)
    scorer = Scorer()
    for a in letters:
        scorer.set(a, a, float(gen.uniform(1.0, score_hi)))
    return CSRInstance.build(h_words, m_words, scorer)
