"""The paper's contribution: the CSR problem and its algorithms.

The batched alignment engine and the serving layer on top of it are
re-exported here so CSR-level callers (pipelines, services) can pick
an execution backend — or stand up / call a traffic-serving instance —
without importing those packages directly.
"""

from fragalign.engine import (
    AlignmentEngine,
    available_backends,
    register_backend,
)
from fragalign.service import (
    AlignmentClient,
    AlignmentService,
    ServiceConfig,
)
from fragalign.core.baseline import (
    baseline4,
    concat_m_instance,
    transposed_concat_instance,
)
from fragalign.core.border_improve import border_improve, matching_2approx
from fragalign.core.bounds import certified_ratio, matching_bound, row_max_bound
from fragalign.core.conjecture import (
    Arrangement,
    all_arrangements,
    explicit_padding,
    identity_arrangement,
    padded_column_score,
    realize,
    score_pair,
    score_sequences,
)
from fragalign.core.consistency import (
    check_consistent,
    find_inconsistency,
    layout,
    layout_score,
)
from fragalign.core.csr_improve import csr_improve
from fragalign.core.exact import (
    ExactResult,
    derive_matches,
    exact_csr,
    state_from_arrangements,
)
from fragalign.core.fragments import CSRInstance, Fragment, other_species, paper_example
from fragalign.core.full_improve import full_improve
from fragalign.core.generators import (
    PlantedInstance,
    border_chain_instance,
    full_csr_instance,
    planted_instance,
    random_instance,
    ucsr_instance,
)
from fragalign.core.greedy import greedy_csr
from fragalign.core.io import (
    dumps,
    instance_from_dict,
    instance_to_dict,
    load,
    loads,
    save,
)
from fragalign.core.improve import (
    I1Attempt,
    I2Attempt,
    I3Attempt,
    ImproveStats,
    candidate_zones,
    i1_attempts,
    i2_attempts,
    i3_attempts,
    run_improvement,
    tpa_repack,
)
from fragalign.core.match_score import MatchScorer
from fragalign.core.matches import Match, islands, solution_graph
from fragalign.core.one_csr import (
    one_csr_profits,
    solve_one_csr,
    solve_one_csr_exact,
)
from fragalign.core.scaling import (
    iteration_bound,
    match_count_bound,
    scaling_threshold,
)
from fragalign.core.render import render_alignment
from fragalign.core.scoring import Scorer
from fragalign.core.sites import Site, full_site
from fragalign.core.solution import CSRSolution
from fragalign.core.state import PrepareResult, SolutionState
from fragalign.core.symbols import (
    PAD,
    format_word,
    reverse_symbol,
    reverse_word,
    word_from_names,
)

__all__ = [
    "AlignmentEngine",
    "AlignmentClient",
    "AlignmentService",
    "ServiceConfig",
    "available_backends",
    "register_backend",
    "baseline4",
    "concat_m_instance",
    "transposed_concat_instance",
    "border_improve",
    "matching_2approx",
    "certified_ratio",
    "matching_bound",
    "row_max_bound",
    "dumps",
    "instance_from_dict",
    "instance_to_dict",
    "load",
    "loads",
    "save",
    "render_alignment",
    "Arrangement",
    "all_arrangements",
    "explicit_padding",
    "identity_arrangement",
    "padded_column_score",
    "realize",
    "score_pair",
    "score_sequences",
    "check_consistent",
    "find_inconsistency",
    "layout",
    "layout_score",
    "csr_improve",
    "ExactResult",
    "derive_matches",
    "exact_csr",
    "state_from_arrangements",
    "CSRInstance",
    "Fragment",
    "other_species",
    "paper_example",
    "full_improve",
    "PlantedInstance",
    "border_chain_instance",
    "full_csr_instance",
    "planted_instance",
    "random_instance",
    "ucsr_instance",
    "greedy_csr",
    "I1Attempt",
    "I2Attempt",
    "I3Attempt",
    "ImproveStats",
    "candidate_zones",
    "i1_attempts",
    "i2_attempts",
    "i3_attempts",
    "run_improvement",
    "tpa_repack",
    "MatchScorer",
    "Match",
    "islands",
    "solution_graph",
    "one_csr_profits",
    "solve_one_csr",
    "solve_one_csr_exact",
    "iteration_bound",
    "match_count_bound",
    "scaling_threshold",
    "Scorer",
    "Site",
    "full_site",
    "CSRSolution",
    "PrepareResult",
    "SolutionState",
    "PAD",
    "format_word",
    "reverse_symbol",
    "reverse_word",
    "word_from_names",
]
