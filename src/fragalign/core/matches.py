"""Matches, match sets, the solution graph and islands (§2.2, §4.1).

A :class:`Match` pairs an H site with an M site plus the relative
orientation of the aligned content.  Match *kind* follows Fig. 6: a
match involving at least one full site is a **full match**; a match
between two proper border sites is a **border match**.

The *solution graph* of a match set is the bipartite graph on fragments
with an edge per matched fragment pair; its connected components are
the paper's **islands**.  A fragment is **simple** if it participates
in at most one match and its own site in that match is full (it is
"plugged in" somewhere); otherwise it is **multiple** (it hosts sites
or shares a border match).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Literal

from fragalign.core.fragments import CSRInstance
from fragalign.core.sites import Site
from fragalign.util.errors import InstanceError

__all__ = ["Match", "MatchKind", "solution_graph", "islands", "island_of"]

MatchKind = Literal["full", "border"]

FragKey = tuple[str, int]  # (species, fid)


@dataclass(frozen=True)
class Match:
    """One match: (h site, m site, relative orientation, kind, score).

    ``rev`` is True when the m-site content is aligned against the
    h-site content in reversed orientation.
    """

    h_site: Site
    m_site: Site
    rev: bool
    kind: MatchKind
    score: float

    def __post_init__(self) -> None:
        if self.h_site.species != "H" or self.m_site.species != "M":
            raise InstanceError("a match pairs an H site with an M site")

    def site_on(self, key: FragKey) -> Site:
        if self.h_site.key == key:
            return self.h_site
        if self.m_site.key == key:
            return self.m_site
        raise InstanceError(f"match {self} does not touch fragment {key}")

    def partner_key(self, key: FragKey) -> FragKey:
        if self.h_site.key == key:
            return self.m_site.key
        if self.m_site.key == key:
            return self.h_site.key
        raise InstanceError(f"match {self} does not touch fragment {key}")

    def keys(self) -> tuple[FragKey, FragKey]:
        return (self.h_site.key, self.m_site.key)

    def validate_against(self, instance: CSRInstance) -> None:
        """Structural checks: site bounds, kind consistent with sites."""
        h_len = len(instance.fragment("H", self.h_site.fid))
        m_len = len(instance.fragment("M", self.m_site.fid))
        if self.h_site.end > h_len or self.m_site.end > m_len:
            raise InstanceError(f"match {self} exceeds fragment bounds")
        h_kind = self.h_site.kind(h_len)
        m_kind = self.m_site.kind(m_len)
        if self.kind == "full":
            if h_kind != "full" and m_kind != "full":
                raise InstanceError(f"full match {self} has no full site")
        elif self.kind == "border":
            if h_kind != "border" or m_kind != "border":
                raise InstanceError(f"border match {self} needs two border sites")
        else:
            raise InstanceError(f"unknown match kind {self.kind!r}")

    def __repr__(self) -> str:
        arrow = "↔R" if self.rev else "↔"
        return f"Match({self.h_site}{arrow}{self.m_site}, {self.kind}, {self.score:g})"


def solution_graph(matches: Iterable[Match]) -> dict[FragKey, set[FragKey]]:
    """Adjacency of the bipartite solution graph (fragments as nodes)."""
    adj: dict[FragKey, set[FragKey]] = defaultdict(set)
    for m in matches:
        hk, mk = m.keys()
        adj[hk].add(mk)
        adj[mk].add(hk)
    return dict(adj)


def islands(matches: Iterable[Match]) -> list[set[FragKey]]:
    """Connected components of the solution graph."""
    adj = solution_graph(matches)
    seen: set[FragKey] = set()
    comps: list[set[FragKey]] = []
    for node in adj:
        if node in seen:
            continue
        comp: set[FragKey] = set()
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur in comp:
                continue
            comp.add(cur)
            stack.extend(adj[cur] - comp)
        seen |= comp
        comps.append(comp)
    return comps


def island_of(matches: Iterable[Match], key: FragKey) -> set[FragKey]:
    """The island containing ``key`` (singleton if unmatched)."""
    adj = solution_graph(matches)
    if key not in adj:
        return {key}
    comp: set[FragKey] = set()
    stack = [key]
    while stack:
        cur = stack.pop()
        if cur in comp:
            continue
        comp.add(cur)
        stack.extend(adj[cur] - comp)
    return comp
