"""Corollary 1: the factor-4 baseline via Theorem 3's combinator A′.

A′ runs a 1-CSR solver twice — on (H, M′) and on (M, H′), where X′ is
the concatenation of X's fragments in their given order — and keeps the
better solution.  Inequality (2), Opt(H,M′) + Opt(M,H′) ≥ Opt(H,M),
makes the better run lose at most a factor 2 on top of the 1-CSR
solver's own ratio (2 for TPA), hence 4 overall.

The baseline also supplies the score X that the scaling rule of §4.1
(see :mod:`fragalign.core.scaling`) feeds on.
"""

from __future__ import annotations

from fragalign.core.conjecture import Arrangement, identity_arrangement, score_pair
from fragalign.core.exact import state_from_arrangements
from fragalign.core.fragments import CSRInstance, Fragment
from fragalign.core.one_csr import solve_one_csr
from fragalign.core.scoring import Scorer
from fragalign.core.solution import CSRSolution

__all__ = [
    "concat_m_instance",
    "transposed_concat_instance",
    "baseline4",
]


def _concat_regions(frags: tuple[Fragment, ...]) -> tuple[int, ...]:
    out: list[int] = []
    for f in frags:
        out.extend(f.regions)
    return tuple(out)


def concat_m_instance(instance: CSRInstance) -> CSRInstance:
    """(H, M′): fuse all m-fragments into one, fixing their order."""
    return CSRInstance.build(
        [f.regions for f in instance.h_fragments],
        [_concat_regions(instance.m_fragments)],
        instance.scorer.copy(),
        dict(instance.region_names),
    )


def _transpose_scorer(scorer: Scorer) -> Scorer:
    out = Scorer()
    for a, b, v in scorer.pairs():
        out.set(b, a, v)
    return out


def transposed_concat_instance(instance: CSRInstance) -> CSRInstance:
    """(M, H′) with species roles swapped so 1-CSR machinery applies.

    The new H fragments are the original M fragments; the single new M
    fragment is the concatenation of the original H fragments; σ is
    transposed (σ′(a, b) = σ(b, a)), which preserves all chain scores.
    """
    return CSRInstance.build(
        [f.regions for f in instance.m_fragments],
        [_concat_regions(instance.h_fragments)],
        _transpose_scorer(instance.scorer),
        dict(instance.region_names),
    )


def _unconcat_moving(moving: Arrangement, frozen: Arrangement) -> Arrangement:
    """If the solver reversed the concatenated (frozen) fragment, mirror
    the moving side instead — Score is invariant under mirroring both."""
    return moving.mirrored() if frozen.order[0][1] else moving


def baseline4(instance: CSRInstance, workers: int = 1) -> CSRSolution:
    """Theorem 3's A′ with the TPA 1-CSR solver: ratio 4 (Corollary 1)."""
    # Run 1: H fragments move, M is frozen in concatenation order.
    sol_hm = solve_one_csr(concat_m_instance(instance), workers=workers)
    arr_h1 = Arrangement(
        "H", _unconcat_moving(sol_hm.arr_h, sol_hm.arr_m).order
    )
    arr_m1 = identity_arrangement(instance, "M")
    score1 = score_pair(instance, arr_h1, arr_m1)

    # Run 2: M fragments move, H is frozen.
    sol_mh = solve_one_csr(transposed_concat_instance(instance), workers=workers)
    arr_h2 = identity_arrangement(instance, "H")
    arr_m2 = Arrangement(
        "M", _unconcat_moving(sol_mh.arr_h, sol_mh.arr_m).order
    )
    score2 = score_pair(instance, arr_h2, arr_m2)

    if score1 >= score2:
        arr_h, arr_m, score = arr_h1, arr_m1, score1
    else:
        arr_h, arr_m, score = arr_h2, arr_m2, score2
    state = state_from_arrangements(instance, arr_h, arr_m)
    return CSRSolution(
        state=state,
        arr_h=arr_h,
        arr_m=arr_m,
        score=score,
        algorithm="baseline4",
        stats={"score_hm": score1, "score_mh": score2},
    )
