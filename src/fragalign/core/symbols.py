"""The duplicated alphabet Σ̃ = Σ ∪ Σᴿ and its reversal algebra (§2.1).

A *region* occurrence is a nonzero signed integer: ``+k`` is region k in
normal orientation, ``-k`` is its reversal kᴿ.  The padding symbol ⊥ is
``PAD = 0`` (it is its own reversal and scores 0 with everything).

The paper's axioms, all enforced/tested here:

* Σ ∩ Σᴿ = ∅                      (positive vs negative ints)
* aᴿᴿ = a                          (double negation)
* (uv)ᴿ = vᴿ uᴿ                    (:func:`reverse_word`)
* σ(a, b) = σ(aᴿ, bᴿ)              (canonicalization in ``scoring``)
"""

from __future__ import annotations

from typing import Iterable, Sequence

from fragalign.util.errors import InstanceError

__all__ = [
    "PAD",
    "Region",
    "Word",
    "reverse_symbol",
    "reverse_word",
    "validate_word",
    "word_from_names",
    "format_word",
]

PAD = 0

Region = int
Word = tuple[int, ...]


def reverse_symbol(a: Region) -> Region:
    """aᴿ.  PAD is self-reverse."""
    return -a


def reverse_word(word: Sequence[Region]) -> Word:
    """(a₁ … aₙ)ᴿ = aₙᴿ … a₁ᴿ."""
    return tuple(-a for a in reversed(word))


def validate_word(word: Sequence[Region]) -> Word:
    """Check a word contains region symbols only (no ⊥) and tuple-ify."""
    w = tuple(int(a) for a in word)
    if any(a == PAD for a in w):
        raise InstanceError("fragment words may not contain the padding symbol")
    return w


def word_from_names(
    names: Iterable[str], table: dict[str, int]
) -> Word:
    """Build a word from human-readable names.

    A trailing ``'``/``^R``/``R`` suffix marks reversal, e.g.
    ``["a", "t'"]`` with table {"a": 1, "t": 2} gives ``(1, -2)``.
    New names are assigned the next free id and recorded in ``table``.
    """
    word = []
    for raw in names:
        name = raw
        rev = False
        for suffix in ("^R", "'", "R"):
            if len(name) > 1 and name.endswith(suffix):
                name = name[: -len(suffix)]
                rev = True
                break
        if name not in table:
            table[name] = len(table) + 1
        rid = table[name]
        word.append(-rid if rev else rid)
    return tuple(word)


def format_word(word: Sequence[Region], names: dict[int, str] | None = None) -> str:
    """Human-readable rendering, e.g. ``⟨a, bᴿ, c⟩``."""
    parts = []
    for a in word:
        base = names.get(abs(a)) if names else None
        if base is None:
            base = f"r{abs(a)}"
        parts.append(base + ("ᴿ" if a < 0 else ""))
    return "⟨" + ", ".join(parts) + "⟩"
