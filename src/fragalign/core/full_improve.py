"""Full_Improve — Theorem 4's (3+ε)-approximation for Full CSR.

One improvement method (I1: plug a fragment into a target site, TPA
the zone leftovers), first-improvement until no positive gain.  Only
full matches are ever created, so islands stay 1-islands.
"""

from __future__ import annotations

from fragalign.core.fragments import CSRInstance
from fragalign.core.improve import i1_attempts, run_improvement
from fragalign.core.match_score import MatchScorer
from fragalign.core.scaling import iteration_bound, scaling_threshold
from fragalign.core.solution import CSRSolution
from fragalign.core.state import SolutionState

__all__ = ["full_improve"]


def full_improve(
    instance: CSRInstance,
    threshold: float = 1e-9,
    eps: float | None = None,
    baseline_score: float | None = None,
    max_zones: int = 8,
    validate: bool = False,
) -> CSRSolution:
    """Run Full_Improve from the empty solution.

    ``eps`` switches on the §4.1 scaling rule: the acceptance threshold
    becomes ε·X/k² with X = ``baseline_score`` (computed by the
    Corollary-1 baseline when not supplied), bounding iterations
    polynomially at the cost of the (3+ε) ratio.
    """
    ms = MatchScorer(instance)
    state = SolutionState(instance, ms)
    max_accepts = 10_000
    if eps is not None:
        if baseline_score is None:
            from fragalign.core.baseline import baseline4

            baseline_score = baseline4(instance).score
        threshold = max(threshold, scaling_threshold(instance, baseline_score, eps))
        max_accepts = iteration_bound(baseline_score, threshold)
    stats = run_improvement(
        state,
        [lambda s: i1_attempts(s, max_zones=max_zones)],
        threshold=threshold,
        max_accepts=max_accepts,
        validate=validate,
    )
    return CSRSolution.from_state(
        state,
        "full_improve",
        {
            "passes": stats.passes,
            "attempts": stats.attempts,
            "accepted": stats.accepted,
            "threshold": threshold,
        },
    )
