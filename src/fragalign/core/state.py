"""Mutable solution state for the improvement algorithms (§4).

A :class:`SolutionState` holds a consistent match set with the
structural invariant the paper's algorithms maintain: every island is a
**1-island** (at most one multiple fragment) or a **2-island** (exactly
two multiple fragments, one per species, sharing one border match).

The state supports the paper's primitive operations:

* adding/removing matches;
* *restricting* a hosted match to a sub-site (used by preparation);
* **preparing** a site (§4.2, extended in §4.3 to break 2-islands),
  returning the holes torn open so the caller can re-pack them with
  TPA;
* contribution ``Cb``, hidden-site tests, free intervals;
* O(size) snapshot/restore so improvement attempts are transactional.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from fragalign.core.fragments import CSRInstance
from fragalign.core.match_score import MatchScorer
from fragalign.core.matches import FragKey, Match, islands
from fragalign.core.sites import Site, full_site
from fragalign.util.errors import InconsistentMatchSetError

__all__ = ["SolutionState", "PrepareResult"]


@dataclass
class PrepareResult:
    """Outcome of preparing a site.

    ``ok`` is False when the site is hidden on a multiple fragment (the
    improvement attempt cannot proceed).  ``holes`` lists sites freed on
    *other* fragments (where a detached simple fragment used to be
    plugged) — the paper re-packs these with TPA (I1 step 4, I2 steps
    3–4).
    """

    ok: bool
    holes: list[Site] = field(default_factory=list)
    detached: list[FragKey] = field(default_factory=list)


class SolutionState:
    """A consistent match set with 1-island/2-island structure."""

    def __init__(self, instance: CSRInstance, scorer: MatchScorer | None = None):
        self.instance = instance
        self.ms = scorer or MatchScorer(instance)
        self._matches: dict[int, Match] = {}
        self._by_frag: dict[FragKey, set[int]] = defaultdict(set)
        self._next_id = 0

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def matches(self) -> list[Match]:
        return list(self._matches.values())

    def match_items(self) -> list[tuple[int, Match]]:
        return list(self._matches.items())

    def __len__(self) -> int:
        return len(self._matches)

    def score(self) -> float:
        return float(sum(m.score for m in self._matches.values()))

    def contribution(self, key: FragKey) -> float:
        """Cb(f, S): total score of matches involving fragment ``key``."""
        return float(
            sum(self._matches[mid].score for mid in self._by_frag.get(key, ()))
        )

    def matches_on(self, key: FragKey) -> list[tuple[int, Match]]:
        return [(mid, self._matches[mid]) for mid in sorted(self._by_frag.get(key, ()))]

    def sites_on(self, key: FragKey) -> list[tuple[Site, int]]:
        """Matched sites on a fragment, sorted by start."""
        out = [
            (self._matches[mid].site_on(key), mid)
            for mid in self._by_frag.get(key, ())
        ]
        out.sort(key=lambda t: (t[0].start, t[0].end))
        return out

    def n_matches_on(self, key: FragKey) -> int:
        return len(self._by_frag.get(key, ()))

    def is_multiple(self, key: FragKey) -> bool:
        """Multiple = hosts sites or shares a border match (see
        matches.py docstring for the exact convention)."""
        mids = self._by_frag.get(key, ())
        if len(mids) >= 2:
            return True
        if len(mids) == 0:
            return False
        (mid,) = mids
        m = self._matches[mid]
        own = m.site_on(key)
        frag_len = len(self.instance.fragment(*key))
        return own.kind(frag_len) != "full"

    def is_simple(self, key: FragKey) -> bool:
        return not self.is_multiple(key)

    def border_match_of(self, key: FragKey) -> Optional[int]:
        """The id of the (unique) border match on ``key``, if any."""
        for mid in self._by_frag.get(key, ()):
            if self._matches[mid].kind == "border":
                return mid
        return None

    def hidden(self, site: Site) -> bool:
        """Is ``site`` hidden by the current solution (Def. 5)?"""
        for other, _mid in self.sites_on(site.key):
            if site.hidden_by(other):
                return True
        return False

    def free_intervals(self, key: FragKey) -> list[Site]:
        """Maximal unmatched intervals of a fragment."""
        frag_len = len(self.instance.fragment(*key))
        out: list[Site] = []
        cursor = 0
        for site, _mid in self.sites_on(key):
            if site.start > cursor:
                out.append(Site(key[0], key[1], cursor, site.start))
            cursor = max(cursor, site.end)
        if cursor < frag_len:
            out.append(Site(key[0], key[1], cursor, frag_len))
        return out

    def islands(self) -> list[set[FragKey]]:
        return islands(self._matches.values())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, match: Match) -> int:
        """Insert a match; rejects overlaps with existing sites."""
        match.validate_against(self.instance)
        for site in (match.h_site, match.m_site):
            for existing, _mid in self.sites_on(site.key):
                if site.overlaps(existing):
                    raise InconsistentMatchSetError(
                        f"site {site} overlaps existing matched site {existing}"
                    )
        mid = self._next_id
        self._next_id += 1
        self._matches[mid] = match
        self._by_frag[match.h_site.key].add(mid)
        self._by_frag[match.m_site.key].add(mid)
        return mid

    def add_full(self, plugged: FragKey, host_site: Site) -> int:
        """Plug fragment ``plugged`` (as a full site) into ``host_site``.

        The two keys must be from opposite species; orientation is
        chosen to maximize MS (Fig. 7).
        """
        frag = self.instance.fragment(*plugged)
        own = full_site(frag)
        if plugged[0] == "H":
            h_site, m_site = own, host_site
        else:
            h_site, m_site = host_site, own
        score, rev = self.ms.ms_full(h_site, m_site)
        return self.add(Match(h_site, m_site, rev, "full", score))

    def add_border(self, h_site: Site, m_site: Site) -> int:
        """Create a border-border match (orientation forced by ends)."""
        score, rev = self.ms.ms_border(h_site, m_site)
        return self.add(Match(h_site, m_site, rev, "border", score))

    def remove(self, mid: int) -> Match:
        match = self._matches.pop(mid)
        self._by_frag[match.h_site.key].discard(mid)
        self._by_frag[match.m_site.key].discard(mid)
        return match

    def detach_fragment(self, key: FragKey) -> list[Site]:
        """Remove all matches touching ``key``; return partner holes."""
        holes = []
        for mid in list(self._by_frag.get(key, ())):
            match = self.remove(mid)
            holes.append(match.site_on(match.partner_key(key)))
        return holes

    def restrict(self, mid: int, key: FragKey, new_site: Optional[Site]) -> None:
        """Shrink the hosted side of full match ``mid`` on fragment
        ``key`` to ``new_site`` (None removes the match).

        The partner keeps its full site; the score and orientation are
        recomputed for the reduced site.
        """
        match = self._matches[mid]
        if match.kind != "full":
            raise InconsistentMatchSetError("only full matches can be restricted")
        if new_site is None:
            self.remove(mid)
            return
        if key == match.h_site.key:
            h_site, m_site = new_site, match.m_site
        else:
            h_site, m_site = match.h_site, new_site
        score, rev = self.ms.ms_full(h_site, m_site)
        self.remove(mid)
        self.add(Match(h_site, m_site, rev, "full", score))

    # ------------------------------------------------------------------
    # preparation (§4.2, §4.3)
    # ------------------------------------------------------------------
    def prepare(self, site: Site) -> PrepareResult:
        """Make ``site`` available for a new match.

        * simple fragment → detach it entirely, reporting the hole
          where it used to be plugged;
        * multiple fragment → impossible if the site is hidden;
          otherwise break the fragment's 2-island border match (if
          any), then truncate every hosted match overlapping the site
          (partners whose sites vanish are detached).
        """
        key = site.key
        result = PrepareResult(ok=True)
        if not self._by_frag.get(key):
            return result
        if self.is_simple(key):
            result.holes.extend(self.detach_fragment(key))
            result.detached.append(key)
            return result
        # Multiple fragment: break a 2-island first (§4.3).
        border_mid = self.border_match_of(key)
        if border_mid is not None:
            self.remove(border_mid)
        if self.hidden(site):
            result.ok = False
            return result
        for own_site, mid in self.sites_on(key):
            if not own_site.overlaps(site):
                continue
            parts = own_site.minus(site)
            if not parts:
                match = self._matches[mid]
                partner = match.partner_key(key)
                self.remove(mid)
                result.detached.append(partner)
            else:
                # ``site`` is not hidden, so at most one piece remains.
                self.restrict(mid, key, parts[0])
        return result

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def snapshot(self) -> tuple:
        return (
            dict(self._matches),
            {k: set(v) for k, v in self._by_frag.items() if v},
            self._next_id,
        )

    def restore(self, snap: tuple) -> None:
        matches, by_frag, next_id = snap
        self._matches = dict(matches)
        self._by_frag = defaultdict(set, {k: set(v) for k, v in by_frag.items()})
        self._next_id = next_id

    def copy(self) -> "SolutionState":
        clone = SolutionState(self.instance, self.ms)
        clone.restore(self.snapshot())
        return clone

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Raise if any structural invariant is violated."""
        for mid, match in self._matches.items():
            match.validate_against(self.instance)
            # Score/orientation must agree with the scorer.
            if match.kind == "border":
                expect_rev = self.ms.border_orientation(match.h_site, match.m_site)
                if match.rev != expect_rev:
                    raise InconsistentMatchSetError(
                        f"border match {match} has the impossible orientation"
                    )
                expect = self.ms.p_score(match.h_site, match.m_site, match.rev)
            else:
                expect = self.ms.p_score(match.h_site, match.m_site, match.rev)
            if abs(expect - match.score) > 1e-9:
                raise InconsistentMatchSetError(
                    f"match {match} score drifted (expected {expect})"
                )
        for key, mids in self._by_frag.items():
            sites = sorted(
                (self._matches[mid].site_on(key) for mid in mids),
                key=lambda s: s.start,
            )
            for a, b in zip(sites, sites[1:]):
                if a.overlaps(b):
                    raise InconsistentMatchSetError(
                        f"overlapping matched sites {a}, {b} on {key}"
                    )
            n_border = sum(
                1 for mid in mids if self._matches[mid].kind == "border"
            )
            if n_border > 1:
                raise InconsistentMatchSetError(
                    f"fragment {key} has {n_border} border matches"
                )
        for island in self.islands():
            multiples = [k for k in island if self.is_multiple(k)]
            if len(multiples) > 2:
                raise InconsistentMatchSetError(
                    f"island {island} has {len(multiples)} multiple fragments"
                )
            if len(multiples) == 2:
                a, b = multiples
                if a[0] == b[0]:
                    raise InconsistentMatchSetError(
                        f"2-island multiples {a}, {b} are same-species"
                    )
                shared = [
                    mid
                    for mid in self._by_frag[a]
                    if mid in self._by_frag[b]
                    and self._matches[mid].kind == "border"
                ]
                if len(shared) != 1:
                    raise InconsistentMatchSetError(
                        f"2-island {a},{b} lacks its single border match"
                    )
