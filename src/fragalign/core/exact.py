"""Exact CSR solving by arrangement enumeration (small instances).

CSR is MAX-SNP hard (Theorem 2), so the exact solver is exponential by
necessity: it enumerates (permutation × orientation) arrangements of
both species and scores each pair with the optimal-padding DP.  The
mirror symmetry Score(h, m) = Score(hᴿ, mᴿ) halves the H-side
enumeration.  Used as the oracle in every approximation-ratio test and
benchmark.

Also here: :func:`derive_matches` — Definition 2 made executable: the
match set a conjecture pair produces, with the paper's guarantee
Score(S) = Score(h, m) (a standing test).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import factorial

from fragalign.align.chain import chain_score_with_pairs
from fragalign.core.conjecture import Arrangement, all_arrangements, realize
from fragalign.core.fragments import CSRInstance
from fragalign.core.match_score import MatchScorer
from fragalign.core.matches import Match
from fragalign.core.sites import Site
from fragalign.core.state import SolutionState
from fragalign.util.errors import InconsistentMatchSetError, SolverError

__all__ = ["ExactResult", "exact_csr", "derive_matches", "state_from_arrangements"]


@dataclass(frozen=True)
class ExactResult:
    score: float
    arr_h: Arrangement
    arr_m: Arrangement
    pairs_evaluated: int


def _search_size(instance: CSRInstance) -> int:
    # Mirroring (reverse order, flip all orientations) is a fixed-point
    # free involution on arrangements, so deduplication halves exactly.
    nh, nm = instance.n_h, instance.n_m
    h_count = (factorial(nh) * 2**nh) // 2
    m_count = factorial(nm) * 2**nm
    return max(1, h_count) * m_count


def exact_csr(instance: CSRInstance, max_pairs: int = 3_000_000) -> ExactResult:
    """Optimal conjecture pair by exhaustive search.

    Raises :class:`SolverError` when the arrangement space exceeds
    ``max_pairs`` — the caller should be using an approximation
    algorithm at that size (that is the paper's whole point).
    """
    size = _search_size(instance)
    if size > max_pairs:
        raise SolverError(
            f"exact search space {size} exceeds max_pairs={max_pairs}"
        )
    scorer = instance.scorer
    m_words = [
        (arr, realize(instance, arr))
        for arr in all_arrangements(instance, "M")
    ]
    best_score = -1.0
    best: tuple[Arrangement, Arrangement] | None = None
    evaluated = 0
    from fragalign.align.chain import chain_score

    for arr_h in all_arrangements(instance, "H", dedup_mirror=True):
        h_word = realize(instance, arr_h)
        for arr_m, m_word in m_words:
            evaluated += 1
            s = chain_score(scorer.weight_matrix(h_word, m_word))
            if s > best_score:
                best_score = s
                best = (arr_h, arr_m)
    assert best is not None
    return ExactResult(best_score, best[0], best[1], evaluated)


def _position_map(
    instance: CSRInstance, arrangement: Arrangement
) -> list[tuple[int, bool, int]]:
    """Per concatenated position: (fid, reversed, local position).

    Local positions are in the fragment's *native* coordinates, so a
    reversed occurrence maps position p of the realized word back to
    ``len - 1 - p_within``.
    """
    out: list[tuple[int, bool, int]] = []
    for fid, rev in arrangement.order:
        n = len(instance.fragment(arrangement.species, fid))
        for p in range(n):
            local = n - 1 - p if rev else p
            out.append((fid, rev, local))
    return out


def _occupancy(instance: CSRInstance, arrangement: Arrangement) -> list[int]:
    """Per realized-word position: index of the fragment occurrence."""
    out: list[int] = []
    for slot, (fid, _rev) in enumerate(arrangement.order):
        out.extend([slot] * len(instance.fragment(arrangement.species, fid)))
    return out


def derive_matches(
    instance: CSRInstance,
    arr_h: Arrangement,
    arr_m: Arrangement,
    scorer: MatchScorer | None = None,
) -> list[Match]:
    """The match set produced by a conjecture pair (Definition 2).

    The optimally-padded pair is materialized as explicit columns, cut
    after the last symbol of every fragment occurrence (the "split w at
    ends of sᵢ's and tⱼ's" step), and each resulting window becomes a
    match whose sites span *all* symbols falling in the window — so
    unmatched flanks count toward site extents and the full/border
    classification of Fig. 6 comes out right.  Zero-score windows are
    omitted, as in the paper's figures.  The total match score equals
    the pair's Score — Remark 1, enforced by tests.
    """
    ms = scorer or MatchScorer(instance)
    h_word = realize(instance, arr_h)
    m_word = realize(instance, arr_m)
    W = instance.scorer.weight_matrix(h_word, m_word)
    total, chain = chain_score_with_pairs(W)
    h_map = _position_map(instance, arr_h)
    m_map = _position_map(instance, arr_m)
    h_occ = _occupancy(instance, arr_h)
    m_occ = _occupancy(instance, arr_m)

    # Explicit columns: (h position | None, m position | None).
    cols: list[tuple[int | None, int | None]] = []
    hi = mi = 0
    for i, j in chain:
        while hi < i:
            cols.append((hi, None))
            hi += 1
        while mi < j:
            cols.append((None, mi))
            mi += 1
        cols.append((i, j))
        hi, mi = i + 1, j + 1
    while hi < len(h_word):
        cols.append((hi, None))
        hi += 1
    while mi < len(m_word):
        cols.append((None, mi))
        mi += 1

    # Cut after every column holding the last symbol of an occurrence.
    cuts: list[int] = []
    for c, (ih, im) in enumerate(cols):
        if ih is not None and (ih + 1 == len(h_word) or h_occ[ih + 1] != h_occ[ih]):
            cuts.append(c)
        elif im is not None and (im + 1 == len(m_word) or m_occ[im + 1] != m_occ[im]):
            cuts.append(c)
    cuts = sorted(set(cuts))

    matches: list[Match] = []
    start = 0
    boundaries = cuts if cuts and cuts[-1] == len(cols) - 1 else cuts + [len(cols) - 1]
    for cut in boundaries:
        window = cols[start : cut + 1]
        start = cut + 1
        h_positions = [ih for ih, _ in window if ih is not None]
        m_positions = [im for _, im in window if im is not None]
        if not h_positions or not m_positions:
            continue
        h_fid, h_rev, _ = h_map[h_positions[0]]
        m_fid, m_rev, _ = m_map[m_positions[0]]
        h_locals = [h_map[i][2] for i in h_positions]
        m_locals = [m_map[j][2] for j in m_positions]
        h_site = Site("H", h_fid, min(h_locals), max(h_locals) + 1)
        m_site = Site("M", m_fid, min(m_locals), max(m_locals) + 1)
        rev = h_rev ^ m_rev
        score = ms.p_score(h_site, m_site, rev)
        if score <= 0:
            continue
        h_len = len(instance.fragment("H", h_fid))
        m_len = len(instance.fragment("M", m_fid))
        kind = (
            "full"
            if h_site.kind(h_len) == "full" or m_site.kind(m_len) == "full"
            else "border"
        )
        matches.append(Match(h_site, m_site, rev, kind, score))
    # Sanity: Remark 1's equality.
    got = sum(m.score for m in matches)
    if abs(got - total) > 1e-6:
        raise SolverError(
            f"derive_matches lost score: chain {total}, matches {got}"
        )
    return matches


def state_from_arrangements(
    instance: CSRInstance,
    arr_h: Arrangement,
    arr_m: Arrangement,
    scorer: MatchScorer | None = None,
) -> SolutionState:
    """Solution state holding the matches a conjecture pair derives.

    Definition-2 sets are more general than the 1-island/2-island
    structure the improvement algorithms maintain: islands can be
    chains of border matches, a fragment can carry two border matches
    (one per end), and a terminal border match may carry the
    orientation opposite to the 2-island rule.  Since this function
    builds *seed* states for the improvement engine, it greedily keeps
    the highest-scoring structurally-valid subset: at most one border
    match per fragment, forced border orientations (re-scored, dropped
    at 0).  The seed may therefore score less than the arrangement
    pair — the engine recovers the rest.
    """
    ms = scorer or MatchScorer(instance)
    state = SolutionState(instance, ms)
    derived = sorted(
        derive_matches(instance, arr_h, arr_m, ms),
        key=lambda m: -m.score,
    )
    for match in derived:
        if match.score <= 0:
            continue
        if match.kind == "border":
            if (
                state.border_match_of(match.h_site.key) is not None
                or state.border_match_of(match.m_site.key) is not None
            ):
                continue
            forced = ms.border_orientation(match.h_site, match.m_site)
            if forced != match.rev:
                score = ms.p_score(match.h_site, match.m_site, forced)
                if score <= 0:
                    continue
                match = Match(match.h_site, match.m_site, forced, "border", score)
        try:
            state.add(match)
        except InconsistentMatchSetError:
            continue  # overlaps a better match already kept
    return state
