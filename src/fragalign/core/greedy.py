"""Greedy CSR heuristic — the foil the paper argues against.

Repeatedly takes the single highest-MS placement of a free fragment
into a free interval of the opposite species.  Simple, fast, and — as
the MAX-SNP hardness discussion predicts — foolable: benches pit it
against the approximation algorithms on adversarial families.
"""

from __future__ import annotations

from fragalign.core.fragments import CSRInstance
from fragalign.core.match_score import MatchScorer
from fragalign.core.sites import Site
from fragalign.core.solution import CSRSolution
from fragalign.core.state import SolutionState

__all__ = ["greedy_csr"]


def greedy_csr(instance: CSRInstance) -> CSRSolution:
    ms = MatchScorer(instance)
    state = SolutionState(instance, ms)
    used: set[tuple[str, int]] = set()  # fragments already plugged
    steps = 0
    while True:
        best: tuple[float, tuple[str, int], Site] | None = None
        for species, other in (("H", "M"), ("M", "H")):
            for frag in instance.fragments(species):
                key = (species, frag.fid)
                if key in used or state.n_matches_on(key) > 0:
                    continue
                own = Site(species, frag.fid, 0, len(frag))
                for host in instance.fragments(other):
                    host_key = (other, host.fid)
                    if host_key in used:
                        continue
                    for free in state.free_intervals(host_key):
                        for d in range(free.start, free.end):
                            for e in range(d + 1, free.end + 1):
                                site = Site(other, host.fid, d, e)
                                if species == "H":
                                    score, _rev = ms.ms_full(own, site)
                                else:
                                    score, _rev = ms.ms_full(site, own)
                                if score > 0 and (
                                    best is None or score > best[0]
                                ):
                                    best = (score, key, site)
        if best is None:
            break
        _score, key, site = best
        state.add_full(key, site)
        used.add(key)
        steps += 1
    return CSRSolution.from_state(state, "greedy", {"steps": steps})
