"""Sites — contiguous subfragments f(i, j) — and their taxonomy.

Definition 3 classifies the sites of a fragment of length n (written
here with 0-based half-open coordinates):

* full:   [0, n)
* border: [0, j) or [i, n) proper (touches exactly one end)
* inner:  everything else

Definition 5's containment / adjacency / hidden predicates also live
here; they drive site preparation in the improvement algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from fragalign.core.fragments import CSRInstance, Fragment, Species
from fragalign.core.symbols import Word
from fragalign.util.errors import InstanceError

__all__ = ["Site", "SiteKind", "full_site"]

SiteKind = Literal["full", "border", "inner"]


@dataclass(frozen=True, order=True)
class Site:
    """The site fragment(start, end), 0-based half-open."""

    species: Species
    fid: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if not (0 <= self.start < self.end):
            raise InstanceError(
                f"invalid site [{self.start}, {self.end}) — need 0 <= start < end"
            )

    def __len__(self) -> int:
        return self.end - self.start

    # -- identity ------------------------------------------------------
    @property
    def key(self) -> tuple[Species, int]:
        return (self.species, self.fid)

    def same_fragment(self, other: "Site") -> bool:
        return self.key == other.key

    # -- classification (Definition 3) ----------------------------------
    def kind(self, fragment_len: int) -> SiteKind:
        if self.end > fragment_len:
            raise InstanceError("site exceeds fragment length")
        touches_left = self.start == 0
        touches_right = self.end == fragment_len
        if touches_left and touches_right:
            return "full"
        if touches_left or touches_right:
            return "border"
        return "inner"

    def touched_end(self, fragment_len: int) -> Literal["L", "R"] | None:
        """Which single end a border site touches; None for full/inner."""
        kind = self.kind(fragment_len)
        if kind != "border":
            return None
        return "L" if self.start == 0 else "R"

    # -- relations (Definition 5) ----------------------------------------
    def contains(self, other: "Site") -> bool:
        """other ⊆ self on the same fragment."""
        return (
            self.same_fragment(other)
            and self.start <= other.start
            and other.end <= self.end
        )

    def adjacent(self, other: "Site") -> bool:
        """The two sites abut with no gap."""
        return self.same_fragment(other) and (
            self.end == other.start or other.end == self.start
        )

    def overlaps(self, other: "Site") -> bool:
        return (
            self.same_fragment(other)
            and self.start < other.end
            and other.start < self.end
        )

    def hidden_by(self, other: "Site") -> bool:
        """Strict two-sided containment: other.start < start ≤ end < other.end."""
        return (
            self.same_fragment(other)
            and other.start < self.start
            and self.end < other.end
        )

    # -- arithmetic -------------------------------------------------------
    def minus(self, other: "Site") -> list["Site"]:
        """Set difference self − other as 0, 1 or 2 sites."""
        if not self.overlaps(other):
            return [self]
        out = []
        if self.start < other.start:
            out.append(Site(self.species, self.fid, self.start, other.start))
        if other.end < self.end:
            out.append(Site(self.species, self.fid, other.end, self.end))
        return out

    def intersect(self, other: "Site") -> "Site | None":
        if not self.overlaps(other):
            return None
        return Site(
            self.species,
            self.fid,
            max(self.start, other.start),
            min(self.end, other.end),
        )

    # -- content ------------------------------------------------------------
    def content(self, instance: CSRInstance) -> Word:
        frag = instance.fragment(self.species, self.fid)
        return frag.regions[self.start : self.end]

    def fragment(self, instance: CSRInstance) -> Fragment:
        return instance.fragment(self.species, self.fid)

    def __repr__(self) -> str:
        return f"{self.species}{self.fid}({self.start},{self.end})"


def full_site(fragment: Fragment) -> Site:
    """The full site of a fragment."""
    return Site(fragment.species, fragment.fid, 0, len(fragment))
