"""Instance serialization: CSR instances as JSON documents.

Exchange format so instances can be saved, shared, and fed to the CLI
(``python -m fragalign solve instance.json``).  Schema::

    {
      "h_fragments": [[1, 2, 3], [4]],
      "m_fragments": [[5, 6], [7, 8]],
      "scores": [[1, 5, 4.0], [2, -6, 3.0], ...],   # [a, b, σ(a,b)]
      "region_names": {"1": "a", ...}               # optional
    }

Reversed symbols are negative integers, as everywhere in the library.
"""

from __future__ import annotations

import json
from typing import Any

from fragalign.core.fragments import CSRInstance
from fragalign.core.scoring import Scorer
from fragalign.util.errors import InstanceError

__all__ = ["instance_to_dict", "instance_from_dict", "dumps", "loads", "save", "load"]


def instance_to_dict(instance: CSRInstance) -> dict[str, Any]:
    return {
        "h_fragments": [list(f.regions) for f in instance.h_fragments],
        "m_fragments": [list(f.regions) for f in instance.m_fragments],
        "scores": [[a, b, v] for a, b, v in instance.scorer.pairs()],
        "region_names": {str(k): v for k, v in instance.region_names.items()},
    }


def instance_from_dict(doc: dict[str, Any]) -> CSRInstance:
    try:
        h_words = [tuple(int(x) for x in w) for w in doc["h_fragments"]]
        m_words = [tuple(int(x) for x in w) for w in doc["m_fragments"]]
        scorer = Scorer()
        for a, b, v in doc.get("scores", []):
            scorer.set(int(a), int(b), float(v))
        names = {int(k): str(v) for k, v in doc.get("region_names", {}).items()}
    except (KeyError, TypeError, ValueError) as exc:
        raise InstanceError(f"malformed instance document: {exc}") from exc
    return CSRInstance.build(h_words, m_words, scorer, names)


def dumps(instance: CSRInstance, indent: int | None = 2) -> str:
    return json.dumps(instance_to_dict(instance), indent=indent)


def loads(text: str) -> CSRInstance:
    return instance_from_dict(json.loads(text))


def save(instance: CSRInstance, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(instance))


def load(path: str) -> CSRInstance:
    with open(path, "r", encoding="utf-8") as fh:
        return loads(fh.read())
