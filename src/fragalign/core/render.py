"""ASCII rendering of conjecture pairs — Figs. 4/5 as text.

``render_alignment`` lays out the two conjecture words column by
column under the optimal padding, with fragment boundaries marked and
aligned pairs connected, e.g. for the paper's optimum::

    H: [ a  b  c | dᴿ ]
        |     |    |
    M: [ s  t | u  v ]

Used by the examples and the CLI; also handy in tests as a
human-checkable artifact.
"""

from __future__ import annotations

from fragalign.align.chain import chain_score_with_pairs
from fragalign.core.conjecture import Arrangement, realize
from fragalign.core.fragments import CSRInstance

__all__ = ["render_alignment"]


def _symbol_names(instance: CSRInstance, word: tuple[int, ...]) -> list[str]:
    names = instance.region_names
    out = []
    for sym in word:
        base = names.get(abs(sym), f"r{abs(sym)}")
        out.append(base + ("ᴿ" if sym < 0 else ""))
    return out


def _boundaries(instance: CSRInstance, arrangement: Arrangement) -> set[int]:
    """Word positions where a new fragment starts (excluding 0)."""
    cuts: set[int] = set()
    pos = 0
    for fid, _rev in arrangement.order:
        pos += len(instance.fragment(arrangement.species, fid))
        cuts.add(pos)
    cuts.discard(0)
    cuts.discard(pos)  # no separator after the final fragment
    return cuts


def render_alignment(
    instance: CSRInstance, arr_h: Arrangement, arr_m: Arrangement
) -> str:
    """Three-line rendering: H word, connector line, M word."""
    h_word = realize(instance, arr_h)
    m_word = realize(instance, arr_m)
    _score, chain = chain_score_with_pairs(
        instance.scorer.weight_matrix(h_word, m_word)
    )
    matched_h = {i: j for i, j in chain}
    h_names = _symbol_names(instance, h_word)
    m_names = _symbol_names(instance, m_word)
    h_cuts = _boundaries(instance, arr_h)
    m_cuts = _boundaries(instance, arr_m)

    # Column layout: interleave unmatched symbols, pair matched ones.
    # Fragment boundaries get their own columns so the three lines stay
    # vertically aligned.
    columns: list[tuple[str, str, str]] = []  # (h, link, m)
    hi = mi = 0
    pending_h_cut = pending_m_cut = False

    while hi < len(h_word) or mi < len(m_word):
        if hi in h_cuts and not pending_h_cut:
            h_cuts.discard(hi)
            pending_h_cut = True
        if mi in m_cuts and not pending_m_cut:
            m_cuts.discard(mi)
            pending_m_cut = True
        if pending_h_cut or pending_m_cut:
            columns.append(
                ("|" if pending_h_cut else "", "", "|" if pending_m_cut else "")
            )
            pending_h_cut = pending_m_cut = False
        if hi < len(h_word) and matched_h.get(hi) == mi:
            columns.append((h_names[hi], "|", m_names[mi]))
            hi += 1
            mi += 1
        elif hi < len(h_word) and (hi not in matched_h or mi >= len(m_word)):
            columns.append((h_names[hi], "", ""))
            hi += 1
        else:
            columns.append(("", "", m_names[mi]))
            mi += 1

    widths = [max(len(h), len(m), len(link), 1) for h, link, m in columns]

    def row(select) -> str:
        return " ".join(
            select(col).ljust(w) for col, w in zip(columns, widths)
        ).rstrip()

    return "\n".join(
        [
            "H: [ " + row(lambda c: c[0]) + " ]",
            "     " + row(lambda c: c[1]),
            "M: [ " + row(lambda c: c[2]) + " ]",
        ]
    )
