"""The Chandra–Halldórsson scaling step (§4.1) as a gain threshold.

The paper truncates match scores to integer multiples of u = X/k² (X =
the Corollary-1 baseline score, k an upper bound on the number of
matches) so every accepted improvement gains at least u and the number
of iterations is at most 4k².

We implement the *equivalent* formulation as an acceptance threshold:
accepting only gains > u bounds the iteration count by OPT/u ≤ 4X/u
(the solution score is monotone and capped by OPT ≤ 4X), and each
forgone attempt loses at most u, inflating the ratio by the same
(1 + ε)-style factor the paper's truncation does.  This avoids
mutating scores while giving the same polynomial bound — documented as
a faithful re-expression, not a change of algorithm.
"""

from __future__ import annotations

from math import ceil

from fragalign.core.fragments import CSRInstance

__all__ = ["match_count_bound", "scaling_threshold", "iteration_bound"]


def match_count_bound(instance: CSRInstance) -> int:
    """Upper bound k on matches in any solution: every match consumes
    at least one region on each side, so k ≤ min(|H regions|, |M regions|)."""
    return max(
        1, min(instance.total_regions("H"), instance.total_regions("M"))
    )


def scaling_threshold(
    instance: CSRInstance, baseline_score: float, eps: float = 0.05
) -> float:
    """The acceptance threshold u = ε·X/k² (0 when the baseline is 0 —
    then OPT is 0 too and the loop ends immediately anyway)."""
    if baseline_score <= 0:
        return 0.0
    k = match_count_bound(instance)
    return eps * baseline_score / (k * k)


def iteration_bound(baseline_score: float, threshold: float) -> int:
    """Max accepted improvements: OPT ≤ 4X and each gain exceeds u."""
    if threshold <= 0 or baseline_score <= 0:
        return 10_000
    return ceil(4.0 * baseline_score / threshold)
