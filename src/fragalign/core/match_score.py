"""Match scores MS(h̄, m̄) — Definition 4 and Figs. 7–8.

* ``P_score(h̄, m̄)`` — optimal score over all paddings of the two
  sites: the max-weight chain DP on the σ weight matrix.
* One site full (Fig. 7): the plugged fragment may be flipped freely,
  so MS = max(P(h̄, m̄), P(h̄, m̄ᴿ)).
* Both sites border (Fig. 8): a border match joins one end of each
  fragment; the realizable relative orientation is forced by *which*
  ends meet — equal ends (L/L or R/R) require flipping one fragment
  (reversed content), opposite ends (L/R or R/L) align directly.  The
  scan of Fig. 8 is unreadable, and the paper notes its algorithms do
  not depend on MS's exact definition; this geometric rule is our
  documented substitution (DESIGN.md §5).

All scores are cached per (site, site, orientation) — MS is consulted
millions of times by the improvement enumeration.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from fragalign.align.chain import chain_score
from fragalign.core.fragments import CSRInstance
from fragalign.core.sites import Site
from fragalign.core.symbols import reverse_word
from fragalign.util.errors import InstanceError

__all__ = ["MatchScorer"]

End = Literal["L", "R"]


class MatchScorer:
    """Caching MS evaluator bound to one instance.

    Builds the full σ weight matrix per (H fragment, M fragment,
    orientation) once; every site-pair score is then a chain DP on a
    submatrix view.
    """

    def __init__(self, instance: CSRInstance):
        self.instance = instance
        self._matrices: dict[tuple[int, int, bool], np.ndarray] = {}
        self._pcache: dict[tuple, float] = {}

    # -- internals -----------------------------------------------------
    def _matrix(self, h_fid: int, m_fid: int, rev: bool) -> np.ndarray:
        key = (h_fid, m_fid, rev)
        W = self._matrices.get(key)
        if W is None:
            h_word = self.instance.fragment("H", h_fid).regions
            m_word = self.instance.fragment("M", m_fid).regions
            if rev:
                m_word = reverse_word(m_word)
            W = self.instance.scorer.weight_matrix(h_word, m_word)
            self._matrices[key] = W
        return W

    def _check_sides(self, h_site: Site, m_site: Site) -> None:
        if h_site.species != "H" or m_site.species != "M":
            raise InstanceError("MS expects (H site, M site)")

    def p_score(self, h_site: Site, m_site: Site, rev: bool) -> float:
        """P_score of the two sites, m-content reversed iff ``rev``."""
        self._check_sides(h_site, m_site)
        key = (h_site.fid, h_site.start, h_site.end, m_site.fid, m_site.start, m_site.end, rev)
        cached = self._pcache.get(key)
        if cached is not None:
            return cached
        W = self._matrix(h_site.fid, m_site.fid, rev)
        m_len = W.shape[1]
        if rev:
            cols = slice(m_len - m_site.end, m_len - m_site.start)
        else:
            cols = slice(m_site.start, m_site.end)
        value = chain_score(W[h_site.start : h_site.end, cols])
        self._pcache[key] = value
        return value

    # -- public MS -------------------------------------------------------
    def ms_full(self, h_site: Site, m_site: Site) -> tuple[float, bool]:
        """MS when at least one site is full: free orientation.

        Returns (score, rev) with the maximizing orientation.
        """
        fwd = self.p_score(h_site, m_site, rev=False)
        bwd = self.p_score(h_site, m_site, rev=True)
        return (fwd, False) if fwd >= bwd else (bwd, True)

    def border_orientation(self, h_site: Site, m_site: Site) -> bool:
        """The forced relative orientation of a border-border match."""
        h_len = len(self.instance.fragment("H", h_site.fid))
        m_len = len(self.instance.fragment("M", m_site.fid))
        h_end = h_site.touched_end(h_len)
        m_end = m_site.touched_end(m_len)
        if h_end is None or m_end is None:
            raise InstanceError("border MS needs two border sites")
        return h_end == m_end

    def ms_border(self, h_site: Site, m_site: Site) -> tuple[float, bool]:
        """MS for a border-border match (both sites proper borders)."""
        rev = self.border_orientation(h_site, m_site)
        return self.p_score(h_site, m_site, rev), rev

    def ms(self, h_site: Site, m_site: Site) -> tuple[float, bool, str]:
        """Dispatch on site kinds; returns (score, rev, match kind)."""
        self._check_sides(h_site, m_site)
        h_len = len(self.instance.fragment("H", h_site.fid))
        m_len = len(self.instance.fragment("M", m_site.fid))
        h_kind = h_site.kind(h_len)
        m_kind = m_site.kind(m_len)
        if h_kind == "full" or m_kind == "full":
            score, rev = self.ms_full(h_site, m_site)
            return score, rev, "full"
        if h_kind == "border" and m_kind == "border":
            score, rev = self.ms_border(h_site, m_site)
            return score, rev, "border"
        # Inner-inner / inner-border pairs never arise in solutions
        # (Definition 3's remark); score them as unconstrained pairs so
        # exploratory callers still get a number.
        score, rev = self.ms_full(h_site, m_site)
        return score, rev, "full"

    def cache_stats(self) -> dict[str, int]:
        return {"matrices": len(self._matrices), "p_scores": len(self._pcache)}
