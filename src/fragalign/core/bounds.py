"""Combinatorial upper bounds on the CSR optimum.

The exact solver caps out around 4–5 fragments per side; beyond that
the benches still need something to compare algorithms against.  Any
conjecture pair's score is a sum of σ over aligned region-occurrence
pairs in which every occurrence participates at most once — i.e. a
matching in the bipartite occurrence graph.  Hence:

* :func:`matching_bound` — the max-weight bipartite matching over
  occurrence pairs weighted max(σ(a,b), σ(a,bᴿ), 0): a true upper
  bound on OPT (ignores ordering constraints only);
* :func:`row_max_bound` — Σ per H-occurrence of its best positive
  partner score: looser, O(|σ|), useful as a sanity cap.

``certified_ratio(solution)`` = bound / score ≥ OPT / score: a sound
certificate that the solution is within that factor of optimal, at any
instance size.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from fragalign.core.fragments import CSRInstance
from fragalign.core.solution import CSRSolution

__all__ = ["matching_bound", "row_max_bound", "certified_ratio"]


def _occurrence_symbols(instance: CSRInstance, species: str) -> list[int]:
    out: list[int] = []
    for frag in instance.fragments(species):
        out.extend(frag.regions)
    return out


def matching_bound(instance: CSRInstance) -> float:
    """Max-weight bipartite matching over region occurrences ≥ OPT.

    Every aligned column of any conjecture pair consumes one H and one
    M occurrence, so the multiset of aligned pairs is a matching; the
    bound drops only the order/orientation consistency constraints.
    """
    h_occ = _occurrence_symbols(instance, "H")
    m_occ = _occurrence_symbols(instance, "M")
    if not h_occ or not m_occ:
        return 0.0
    scorer = instance.scorer
    W = np.zeros((len(h_occ), len(m_occ)))
    for i, a in enumerate(h_occ):
        for j, b in enumerate(m_occ):
            W[i, j] = max(scorer.get(a, b), scorer.get(a, -b), 0.0)
    rows, cols = linear_sum_assignment(W, maximize=True)
    return float(W[rows, cols].sum())


def row_max_bound(instance: CSRInstance) -> float:
    """Σ over H occurrences of the best positive partner score ≥ OPT."""
    m_occ = _occurrence_symbols(instance, "M")
    scorer = instance.scorer
    total = 0.0
    for a in _occurrence_symbols(instance, "H"):
        best = 0.0
        for b in m_occ:
            best = max(best, scorer.get(a, b), scorer.get(a, -b))
        total += best
    return total


def certified_ratio(solution: CSRSolution) -> float:
    """A sound upper bound on OPT / solution.score (∞ for score 0)."""
    bound = matching_bound(solution.state.instance)
    if solution.score <= 0:
        return float("inf") if bound > 0 else 1.0
    return max(1.0, bound / solution.score)
