"""Consistency of match sets (Definition 2) via constructive layout.

A match set is *consistent* iff some conjecture pair produces it.  For
the structured states the algorithms maintain (1-islands / 2-islands)
we prove consistency constructively: :func:`layout` emits an explicit
arrangement pair whose optimally-padded Score is at least the state's
score (Remark 1; the layout can only gain from incidental cross-island
pairs, never lose).

:func:`check_consistent` combines the structural invariants with the
layout round-trip; :func:`find_inconsistency` explains cheap structural
violations for arbitrary match collections (the Fig. 3 patterns).
"""

from __future__ import annotations

from typing import Iterable, Optional

from fragalign.core.conjecture import Arrangement, score_pair
from fragalign.core.matches import FragKey, Match, islands
from fragalign.core.sites import Site
from fragalign.core.state import SolutionState
from fragalign.util.errors import InconsistentMatchSetError

__all__ = ["layout", "layout_score", "check_consistent", "find_inconsistency"]


def _host_blocks(
    state: SolutionState, host: FragKey, host_rev: bool, skip_mid: Optional[int]
) -> list[tuple[int, bool]]:
    """Order/orient the partners plugged into ``host``.

    Partners are emitted in the order their sites appear along the
    *oriented* host; a partner aligned reversed relative to the host
    flips with it.  ``skip_mid`` omits the 2-island border match.
    """
    match_by_id = dict(state.match_items())
    entries = [
        (site, mid)
        for site, mid in state.sites_on(host)
        if mid != skip_mid
    ]
    if host_rev:
        entries.reverse()
    out: list[tuple[int, bool]] = []
    for _site, mid in entries:
        match = match_by_id[mid]
        partner = match.partner_key(host)
        out.append((partner[1], match.rev ^ host_rev))
    return out


def layout(state: SolutionState) -> tuple[Arrangement, Arrangement]:
    """Arrangement pair realizing the state's match set (Remark 1)."""
    inst = state.instance
    match_by_id = dict(state.match_items())
    h_order: list[tuple[int, bool]] = []
    m_order: list[tuple[int, bool]] = []
    placed_h: set[int] = set()
    placed_m: set[int] = set()

    def emit(species: str, fid: int, rev: bool) -> None:
        if species == "H":
            if fid not in placed_h:
                h_order.append((fid, rev))
                placed_h.add(fid)
        else:
            if fid not in placed_m:
                m_order.append((fid, rev))
                placed_m.add(fid)

    for island in state.islands():
        multiples = [k for k in island if state.is_multiple(k)]
        if len(multiples) == 0:
            # Two simple fragments joined by one full-full match.
            (match,) = [
                m
                for m in match_by_id.values()
                if m.h_site.key in island and m.m_site.key in island
            ]
            emit("H", match.h_site.fid, False)
            emit("M", match.m_site.fid, match.rev)
        elif len(multiples) == 1:
            host = multiples[0]
            for partner_fid, rev in _host_blocks(state, host, False, None):
                emit("M" if host[0] == "H" else "H", partner_fid, rev)
            emit(host[0], host[1], False)
        else:
            # 2-island: orient the H host with its junction to the
            # right and the M host with its junction to the left; each
            # host's plugged partners fill the other species' row on
            # the far side of the junction.
            h_host = next(k for k in multiples if k[0] == "H")
            m_host = next(k for k in multiples if k[0] == "M")
            border_mid = state.border_match_of(h_host)
            if border_mid is None or border_mid != state.border_match_of(m_host):
                raise InconsistentMatchSetError(
                    f"2-island {multiples} without a shared border match"
                )
            border = match_by_id[border_mid]
            h_len = len(inst.fragment(*h_host))
            m_len = len(inst.fragment(*m_host))
            h_end = border.h_site.touched_end(h_len)
            m_end = border.m_site.touched_end(m_len)
            rev_f = h_end == "L"
            rev_g = m_end == "R"
            # m-row: partners of the H host, then the M host.
            for partner_fid, rev in _host_blocks(state, h_host, rev_f, border_mid):
                emit("M", partner_fid, rev)
            emit("M", m_host[1], rev_g)
            # h-row: the H host, then partners of the M host.
            emit("H", h_host[1], rev_f)
            for partner_fid, rev in _host_blocks(state, m_host, rev_g, border_mid):
                emit("H", partner_fid, rev)

    # Unmatched fragments go at the end in native orientation.
    for fid in range(inst.n_h):
        emit("H", fid, False)
    for fid in range(inst.n_m):
        emit("M", fid, False)
    return (
        Arrangement("H", tuple(h_order)),
        Arrangement("M", tuple(m_order)),
    )


def layout_score(state: SolutionState) -> float:
    """Score of the constructive layout (≥ state.score())."""
    arr_h, arr_m = layout(state)
    return score_pair(state.instance, arr_h, arr_m)


def check_consistent(state: SolutionState, tol: float = 1e-9) -> None:
    """Raise unless the state is structurally sound *and* its layout
    realizes at least the claimed score."""
    state.check()
    realized = layout_score(state)
    if realized + tol < state.score():
        raise InconsistentMatchSetError(
            f"layout realizes {realized}, state claims {state.score()}"
        )


def find_inconsistency(matches: Iterable[Match]) -> Optional[str]:
    """Cheap structural screen for arbitrary match collections.

    Detects the Fig. 3 patterns between any two fragments h, m:

    * *orientation conflict* — one match supports the current relative
      orientation while another demands a reversal;
    * *order violation* — two direct (or two reversed) matches whose
      sites appear in opposite orders along h and m;
    * *site overlap* — two matches claim overlapping territory.

    Returns a description of the first violation found, or None.  This
    is a necessary-condition screen, not a full consistency decision
    (which :func:`check_consistent` performs for structured states).
    """
    by_pair: dict[tuple[FragKey, FragKey], list[Match]] = {}
    all_matches = list(matches)
    for m in all_matches:
        by_pair.setdefault((m.h_site.key, m.m_site.key), []).append(m)
    # Overlaps on any single fragment
    by_frag: dict[FragKey, list[Site]] = {}
    for m in all_matches:
        for site in (m.h_site, m.m_site):
            by_frag.setdefault(site.key, []).append(site)
    for key, sites in by_frag.items():
        sites.sort(key=lambda s: (s.start, s.end))
        for a, b in zip(sites, sites[1:]):
            if a.overlaps(b):
                return f"overlapping sites {a} and {b} on fragment {key}"
    for (hk, mk), group in by_pair.items():
        if len(group) < 2:
            continue
        orientations = {m.rev for m in group}
        if len(orientations) > 1:
            return (
                f"orientation conflict between fragments {hk} and {mk}: "
                "one match supports the given orientation, another "
                "requires a reversal (Fig. 3, first example)"
            )
        (rev,) = orientations
        ordered = sorted(group, key=lambda m: m.h_site.start)
        for a, b in zip(ordered, ordered[1:]):
            if rev:
                good = b.m_site.end <= a.m_site.start
            else:
                good = a.m_site.end <= b.m_site.start
            if not good:
                return (
                    f"order violation between fragments {hk} and {mk}: "
                    "aligned regions appear in different orders "
                    "(Fig. 3, second example)"
                )
    return None
