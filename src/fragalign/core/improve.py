"""The iterative-improvement engine (§4.1) and methods I1, I2, I3.

The engine repeatedly enumerates *improvement attempts*, applies each
one transactionally (snapshot → mutate → measure gain → commit or roll
back), and stops when a full pass yields no gain above the acceptance
threshold (0 for the textbook algorithm; the scaling threshold of
§4.1 / :mod:`fragalign.core.scaling` for the polynomial-time variant).

Attempts mirror the paper exactly:

* **I1(f, ḡ, g̃)** (§4.2, Fig. 9) — plug fragment ``f`` into target
  site ḡ of a zone g̃, re-packing the zone leftovers and any hole the
  preparation tore open with TPA.
* **I2(f̄₁⊆f̄₂, ḡ₁⊆ḡ₂)** (§4.3/§4.4, Fig. 15) — create a border match
  between border sites, TPA-re-packing both zones' leftovers and holes.
* **I3** (Fig. 13) — re-wire a 2-island: break its border match and
  form two new border matches to outside fragments.

The combined I1+I2/I3 attempts of Fig. 16 are an artifact of the
*analysis* (they cap how often one match can be charged); operationally
the plain attempts already explore those states, so they are not
separate code paths.

TPA re-packing uses the ISP substrate: every free sub-interval of the
zones is an ISP interval, every opposite-species fragment an index,
profit = MS − Cb (Lemma 2's profit function).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol, Sequence

from fragalign.core.fragments import CSRInstance, other_species
from fragalign.core.sites import Site, full_site
from fragalign.core.state import SolutionState
from fragalign.isp.instance import ISPInstance, ISPItem
from fragalign.isp.tpa import tpa
from fragalign.util.errors import InconsistentMatchSetError

__all__ = [
    "tpa_repack",
    "I1Attempt",
    "I2Attempt",
    "I3Attempt",
    "i1_attempts",
    "i2_attempts",
    "i3_attempts",
    "ImproveStats",
    "run_improvement",
    "candidate_zones",
]


# ---------------------------------------------------------------------------
# TPA re-packing (the paper's TPA(B, S))
# ---------------------------------------------------------------------------


def _clip_to_free(state: SolutionState, zones: Sequence[Site]) -> list[Site]:
    """Intersect zones with currently-free territory and merge them."""
    by_frag: dict[tuple[str, int], list[tuple[int, int]]] = {}
    for z in zones:
        for free in state.free_intervals(z.key):
            inter = z.intersect(free)
            if inter is not None:
                by_frag.setdefault(z.key, []).append((inter.start, inter.end))
    merged: list[Site] = []
    for key, spans in by_frag.items():
        spans.sort()
        cur_s, cur_e = spans[0]
        for s, e in spans[1:]:
            if s <= cur_e:
                cur_e = max(cur_e, e)
            else:
                merged.append(Site(key[0], key[1], cur_s, cur_e))
                cur_s, cur_e = s, e
        merged.append(Site(key[0], key[1], cur_s, cur_e))
    return merged


def tpa_repack(
    state: SolutionState, zones: Sequence[Site], candidate_species: str
) -> int:
    """Run TPA(B, S): pack candidate fragments into free zone territory.

    ``zones`` must lie on fragments of the species opposite to
    ``candidate_species``.  Selected candidates are detached from their
    current matches (their profit already paid for that: MS − Cb) and
    plugged in as full matches.  Returns the number of matches made.
    """
    zones = _clip_to_free(state, zones)
    if not zones:
        return 0
    host_species = other_species(candidate_species)
    for z in zones:
        if z.species != host_species:
            raise InconsistentMatchSetError(
                f"zone {z} is not on the {host_species} side"
            )
    inst = state.instance
    ms = state.ms
    # Pack every fragment's coordinates into a private range so
    # intervals on different fragments never collide in ISP space.
    offsets: dict[tuple[str, int], int] = {}
    next_off = 0
    items: list[ISPItem] = []
    candidates = inst.fragments(candidate_species)
    cb = {
        (candidate_species, x.fid): state.contribution((candidate_species, x.fid))
        for x in candidates
    }
    for z in zones:
        off = offsets.get(z.key)
        if off is None:
            off = next_off
            offsets[z.key] = off
            next_off += len(inst.fragment(*z.key)) + 1
        for d in range(z.start, z.end):
            for e in range(d + 1, z.end + 1):
                site = Site(z.species, z.fid, d, e)
                for x in candidates:
                    xkey = (candidate_species, x.fid)
                    own = full_site(x)
                    if candidate_species == "H":
                        score, _rev = ms.ms_full(own, site)
                    else:
                        score, _rev = ms.ms_full(site, own)
                    profit = score - cb[xkey]
                    if profit > 0:
                        items.append(
                            ISPItem(
                                index=x.fid,
                                start=off + d,
                                end=off + e,
                                profit=profit,
                            )
                        )
    if not items:
        return 0
    chosen = tpa(ISPInstance.build(items))
    rev_offsets = {v: k for k, v in offsets.items()}
    made = 0
    for item in chosen:
        # Recover the fragment whose range the interval lives in.
        base = max(o for o in rev_offsets if o <= item.start)
        key = rev_offsets[base]
        site = Site(key[0], key[1], item.start - base, item.end - base)
        xkey = (candidate_species, item.index)
        state.detach_fragment(xkey)
        state.add_full(xkey, site)
        made += 1
    return made


# ---------------------------------------------------------------------------
# Attempts
# ---------------------------------------------------------------------------


class Attempt(Protocol):
    def run(self, state: SolutionState) -> None: ...


@dataclass(frozen=True)
class I1Attempt:
    """Plug fragment ``f_key`` into ``target`` ⊆ ``zone`` (Fig. 9)."""

    f_key: tuple[str, int]
    target: Site
    zone: Site

    def run(self, state: SolutionState) -> None:
        inst = state.instance
        f_frag = inst.fragment(*self.f_key)
        state.prepare(full_site(f_frag))
        prep = state.prepare(self.zone)
        if not prep.ok:
            raise InconsistentMatchSetError("I1 zone is hidden")
        state.add_full(self.f_key, self.target)
        leftovers = self.zone.minus(self.target)
        if leftovers:
            tpa_repack(state, leftovers, candidate_species=self.f_key[0])
        if prep.holes:
            # The zone's fragment was simple and got detached: refill
            # the hole it left with fragments of the zone's species.
            tpa_repack(state, prep.holes, candidate_species=self.zone.species)


@dataclass(frozen=True)
class I2Attempt:
    """Border match (h_site, m_site) with zones (Figs. 13, 15)."""

    h_site: Site
    h_zone: Site
    m_site: Site
    m_zone: Site

    def run(self, state: SolutionState) -> None:
        prep_h = state.prepare(self.h_zone)
        if not prep_h.ok:
            raise InconsistentMatchSetError("I2 H-zone is hidden")
        prep_m = state.prepare(self.m_zone)
        if not prep_m.ok:
            raise InconsistentMatchSetError("I2 M-zone is hidden")
        state.add_border(self.h_site, self.m_site)
        m_side = list(self.m_zone.minus(self.m_site)) + prep_h.holes
        if m_side:
            tpa_repack(state, m_side, candidate_species="H")
        h_side = list(self.h_zone.minus(self.h_site)) + prep_m.holes
        if h_side:
            tpa_repack(state, h_side, candidate_species="M")


@dataclass(frozen=True)
class I3Attempt:
    """Re-wire a 2-island: new matches (h1, m2) and (h2, m1) (Fig. 13)."""

    h1: Site  # border site on the island's H fragment
    m1: Site  # border site on the island's M fragment
    h2: Site  # border site on another H fragment
    m2: Site  # border site on another M fragment

    def run(self, state: SolutionState) -> None:
        for zone in (self.h1, self.m1, self.h2, self.m2):
            prep = state.prepare(zone)
            if not prep.ok:
                raise InconsistentMatchSetError("I3 site is hidden")
            if prep.holes:
                tpa_repack(
                    state,
                    prep.holes,
                    candidate_species=zone.species,
                )
        state.add_border(self.h1, self.m2)
        state.add_border(self.h2, self.m1)


# ---------------------------------------------------------------------------
# Attempt generators
# ---------------------------------------------------------------------------


def candidate_zones(
    state: SolutionState, target: Site, max_zones: int = 8
) -> list[Site]:
    """Zones g̃ ⊇ ḡ worth trying: endpoints snap to the boundaries of
    currently-matched sites (preparation truncates at those), plus the
    minimal (target itself) and maximal (whole fragment) zones."""
    key = target.key
    frag_len = len(state.instance.fragment(*key))
    cuts = {0, frag_len, target.start, target.end}
    for site, _mid in state.sites_on(key):
        cuts.add(site.start)
        cuts.add(site.end)
    starts = sorted(c for c in cuts if c <= target.start)
    ends = sorted(c for c in cuts if c >= target.end)
    zones = []
    seen = set()
    for a in starts:
        for b in ends:
            if (a, b) in seen:
                continue
            seen.add((a, b))
            zones.append(Site(key[0], key[1], a, b))
    zones.sort(key=lambda z: (len(z), z.start))
    if len(zones) > max_zones:
        zones = zones[: max_zones - 1] + [zones[-1]]
    return zones


def _border_sites(frag_len: int, species: str, fid: int) -> list[Site]:
    out = []
    for j in range(1, frag_len):
        out.append(Site(species, fid, 0, j))  # prefixes
    for i in range(1, frag_len):
        out.append(Site(species, fid, i, frag_len))  # suffixes
    return out


def i1_attempts(
    state: SolutionState, max_zones: int = 8
) -> Iterator[I1Attempt]:
    """All plug-in attempts with positive prospective MS."""
    inst = state.instance
    ms = state.ms
    for host in inst.all_fragments():
        host_key = (host.species, host.fid)
        f_species = other_species(host.species)
        frag_len = len(host)
        for d in range(frag_len):
            for e in range(d + 1, frag_len + 1):
                target = Site(host.species, host.fid, d, e)
                if state.hidden(target):
                    continue
                zones = candidate_zones(state, target, max_zones)
                for f in inst.fragments(f_species):
                    f_key = (f_species, f.fid)
                    own = full_site(f)
                    if f_species == "H":
                        score, _rev = ms.ms_full(own, target)
                    else:
                        score, _rev = ms.ms_full(target, own)
                    if score <= 0:
                        continue
                    # Skip the exact no-op: f already plugged there.
                    skip = False
                    for _mid, m in state.matches_on(f_key):
                        if m.kind != "full":
                            continue
                        if host_key not in (m.h_site.key, m.m_site.key):
                            continue
                        if m.site_on(host_key) == target and m.site_on(f_key) == own:
                            skip = True
                            break
                    if skip:
                        continue
                    for zone in zones:
                        yield I1Attempt(f_key, target, zone)


def i2_attempts(
    state: SolutionState, zoned: bool = True, max_zones: int = 3
) -> Iterator[I2Attempt]:
    """All border-match attempts (zones optional: §4.3 vs §4.4)."""
    inst = state.instance
    ms = state.ms
    for f in inst.h_fragments:
        hs = _border_sites(len(f), "H", f.fid)
        for g in inst.m_fragments:
            mss = _border_sites(len(g), "M", g.fid)
            for h_site in hs:
                for m_site in mss:
                    score, _rev = ms.ms_border(h_site, m_site)
                    if score <= 0:
                        continue
                    existing = False
                    for _mid, m in state.matches_on(("H", f.fid)):
                        if (
                            m.kind == "border"
                            and m.h_site == h_site
                            and m.m_site == m_site
                        ):
                            existing = True
                            break
                    if existing:
                        continue
                    if zoned:
                        hz = candidate_zones(state, h_site, max_zones)
                        mz = candidate_zones(state, m_site, max_zones)
                    else:
                        hz = [h_site]
                        mz = [m_site]
                    for zh in hz:
                        for zm in mz:
                            yield I2Attempt(h_site, zh, m_site, zm)


def i3_attempts(
    state: SolutionState, top_k: int = 3
) -> Iterator[I3Attempt]:
    """Re-wiring attempts for every current 2-island."""
    inst = state.instance
    ms = state.ms
    border_matches = [m for m in state.matches() if m.kind == "border"]
    for bm in border_matches:
        f_key = bm.h_site.key
        g_key = bm.m_site.key
        f_len = len(inst.fragment(*f_key))
        g_len = len(inst.fragment(*g_key))
        f_sites = _border_sites(f_len, "H", f_key[1])
        g_sites = _border_sites(g_len, "M", g_key[1])
        for h1 in f_sites:
            # Best outside M partners for h1.
            m2_cands: list[tuple[float, Site]] = []
            for g2 in inst.m_fragments:
                if g2.fid == g_key[1]:
                    continue
                for m2 in _border_sites(len(g2), "M", g2.fid):
                    s, _ = ms.ms_border(h1, m2)
                    if s > 0:
                        m2_cands.append((s, m2))
            m2_cands.sort(key=lambda t: -t[0])
            for m1 in g_sites:
                h2_cands: list[tuple[float, Site]] = []
                for f2 in inst.h_fragments:
                    if f2.fid == f_key[1]:
                        continue
                    for h2 in _border_sites(len(f2), "H", f2.fid):
                        s, _ = ms.ms_border(h2, m1)
                        if s > 0:
                            h2_cands.append((s, h2))
                h2_cands.sort(key=lambda t: -t[0])
                for _s2, m2 in m2_cands[:top_k]:
                    for _s3, h2 in h2_cands[:top_k]:
                        yield I3Attempt(h1, m1, h2, m2)


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


@dataclass
class ImproveStats:
    attempts: int = 0
    accepted: int = 0
    passes: int = 0
    aborted: int = 0
    final_score: float = 0.0
    history: list[float] = field(default_factory=list)


GeneratorFn = Callable[[SolutionState], Iterator[Attempt]]


def run_improvement(
    state: SolutionState,
    generators: Sequence[GeneratorFn],
    threshold: float = 1e-9,
    max_accepts: int = 10_000,
    validate: bool = False,
    policy: str = "first",
) -> ImproveStats:
    """Local search until no attempt gains > threshold.

    ``policy="first"`` (the paper's "until none exists" loop) commits
    the first positive-gain attempt and restarts the pass — the
    enumeration is stale once the state mutates.  ``policy="best"``
    evaluates the whole pass and commits the single largest gain —
    fewer, larger steps, at quadratically more evaluation work (the
    ablation bench compares them).  ``validate=True`` checks the full
    state invariants after each acceptance — slow, for tests.
    """
    if policy not in ("first", "best"):
        raise ValueError(f"unknown policy {policy!r}")
    stats = ImproveStats()
    improved = True
    while improved and stats.accepted < max_accepts:
        improved = False
        stats.passes += 1
        best_gain = threshold
        best_attempt: Attempt | None = None
        for gen in generators:
            for attempt in gen(state):
                stats.attempts += 1
                snap = state.snapshot()
                before = state.score()
                try:
                    attempt.run(state)
                except InconsistentMatchSetError:
                    stats.aborted += 1
                    state.restore(snap)
                    continue
                gain = state.score() - before
                if policy == "first":
                    if gain > threshold:
                        stats.accepted += 1
                        stats.history.append(state.score())
                        if validate:
                            state.check()
                        improved = True
                        break
                    state.restore(snap)
                else:
                    if gain > best_gain:
                        best_gain = gain
                        best_attempt = attempt
                    state.restore(snap)
            if improved:
                break
        if policy == "best" and best_attempt is not None:
            best_attempt.run(state)
            stats.accepted += 1
            stats.history.append(state.score())
            if validate:
                state.check()
            improved = True
    stats.final_score = state.score()
    return stats
