"""Region score functions σ : Σ̃ × Σ̃ → ℝ (§2.1).

The reversal axiom σ(a, b) = σ(aᴿ, bᴿ) is enforced structurally: pairs
are stored under a canonical key whose first element is positive, so
both orientations of a pair always read the same value.  ⊥ (``PAD``)
scores 0 against everything, per the paper's extension of σ.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from fragalign.core.symbols import PAD, Region, Word, reverse_word
from fragalign.util.errors import InstanceError

__all__ = ["Scorer"]


def _canonical(a: Region, b: Region) -> tuple[Region, Region]:
    return (a, b) if a > 0 else (-a, -b)


class Scorer:
    """A sparse σ over signed-region symbols.

    Unspecified pairs score 0 (they can always be realized by padding,
    so 0 is the natural default).  Values may be any float; algorithms
    only ever *choose* pairs with positive σ, but negative entries are
    legal and exercise the DP's skip logic.
    """

    __slots__ = ("_table",)

    def __init__(self, pairs: Mapping[tuple[Region, Region], float] | None = None):
        self._table: dict[tuple[Region, Region], float] = {}
        if pairs:
            for (a, b), value in pairs.items():
                self.set(a, b, value)

    # -- mutation -----------------------------------------------------
    def set(self, a: Region, b: Region, value: float) -> None:
        if a == PAD or b == PAD:
            raise InstanceError("σ(⊥, ·) is fixed at 0 and cannot be set")
        key = _canonical(a, b)
        if value == 0.0:
            self._table.pop(key, None)
        else:
            self._table[key] = float(value)

    # -- queries ------------------------------------------------------
    def get(self, a: Region, b: Region) -> float:
        """σ(a, b); 0 for unspecified pairs and any pair involving ⊥."""
        if a == PAD or b == PAD:
            return 0.0
        return self._table.get(_canonical(a, b), 0.0)

    def pairs(self) -> Iterable[tuple[Region, Region, float]]:
        """Iterate canonical (a, b, σ) triples with σ ≠ 0."""
        for (a, b), v in sorted(self._table.items()):
            yield a, b, v

    def max_abs(self) -> float:
        return max((abs(v) for v in self._table.values()), default=0.0)

    def positive_total(self) -> float:
        """Sum of positive σ values — a crude upper bound on any score
        when no region symbol repeats (used for sanity checks)."""
        return sum(v for v in self._table.values() if v > 0)

    # -- matrices -----------------------------------------------------
    def weight_matrix(self, left: Sequence[Region], right: Sequence[Region]) -> np.ndarray:
        """W[i, j] = σ(left[i], right[j])."""
        W = np.zeros((len(left), len(right)))
        for i, a in enumerate(left):
            for j, b in enumerate(right):
                if a != PAD and b != PAD:
                    key = (a, b) if a > 0 else (-a, -b)
                    v = self._table.get(key)
                    if v is not None:
                        W[i, j] = v
        return W

    def weight_matrix_reversed(self, left: Sequence[Region], right: Sequence[Region]) -> np.ndarray:
        """W for left vs rightᴿ — convenience for orientation probes."""
        return self.weight_matrix(left, reverse_word(right))

    # -- dunder -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scorer({len(self._table)} pairs)"

    def copy(self) -> "Scorer":
        s = Scorer()
        s._table = dict(self._table)
        return s
