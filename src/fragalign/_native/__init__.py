"""Optional C kernels: import gate + numpy marshalling.

The extension (``fragalign._native._kernels``) is built by
``python setup.py build_ext --inplace`` and is deliberately optional:
this package imports cleanly without it, exporting ``HAVE_NATIVE =
False`` so :mod:`fragalign.engine.native` can fall back to the pure
numpy uint64 kernels in :mod:`fragalign.align.bitparallel`.

The wrappers here are intentionally low-level — uint8 code matrices in,
int64 scores out.  Model/mode resolution (flat-family detection, N
handling, empty pairs, score scaling) lives in the backend; these only
marshal contiguous buffers into the extension's buffer-protocol entry
points and size-check the output.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised via the native-build CI job
    from fragalign._native import _kernels as _K

    HAVE_NATIVE = True
    NATIVE_ERROR = None
except ImportError as exc:  # no compiler / extension not built
    _K = None
    HAVE_NATIVE = False
    NATIVE_ERROR = str(exc)

_FAMILIES = {"unit": 0, "lev": 1}
_MODES = {"global": 0, "overlap": 1}


def _as_codes(arr: np.ndarray, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(arr, dtype=np.uint8)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a (B, len) uint8 code matrix")
    return arr


def bitparallel_scores_native(
    acodes: np.ndarray,
    bcodes: np.ndarray,
    family: str,
    mode: str = "global",
) -> np.ndarray:
    """Batch Myers/BitPAl scores via the C kernel, in units of ``c``.

    ``acodes``/``bcodes`` are (B, n)/(B, m) uint8 matrices with codes
    0..3 (no N — the backend routes N-carrying pairs to numpy), n and
    m both positive.  Raises :class:`RuntimeError` when the extension
    is unavailable; callers gate on :data:`HAVE_NATIVE`.
    """
    if not HAVE_NATIVE:
        raise RuntimeError(f"native kernels unavailable: {NATIVE_ERROR}")
    acodes = _as_codes(acodes, "acodes")
    bcodes = _as_codes(bcodes, "bcodes")
    B, n = acodes.shape
    Bb, m = bcodes.shape
    if B != Bb:
        raise ValueError("acodes and bcodes batch sizes differ")
    if n == 0 or m == 0:
        raise ValueError("native kernel requires non-empty sequences")
    out = np.zeros(B, dtype=np.int64)
    _K.bitparallel_scores(
        acodes, bcodes, out, B, n, m, _FAMILIES[family], _MODES[mode]
    )
    return out


def striped_local_scores_native(
    acodes: np.ndarray,
    bcodes: np.ndarray,
    matrix: np.ndarray,
    pen: int,
) -> np.ndarray:
    """Batch striped Smith-Waterman local scores via the C kernel.

    ``matrix`` is the 5x5 integer substitution matrix (codes 0..4
    incl. N), ``pen`` the positive linear gap penalty (``-model.gap``).
    Returns int64 scores; the caller converts to float.
    """
    if not HAVE_NATIVE:
        raise RuntimeError(f"native kernels unavailable: {NATIVE_ERROR}")
    acodes = _as_codes(acodes, "acodes")
    bcodes = _as_codes(bcodes, "bcodes")
    B, n = acodes.shape
    Bb, m = bcodes.shape
    if B != Bb:
        raise ValueError("acodes and bcodes batch sizes differ")
    if n == 0 or m == 0:
        raise ValueError("native kernel requires non-empty sequences")
    mat = np.ascontiguousarray(matrix, dtype=np.int32)
    if mat.shape != (5, 5):
        raise ValueError("matrix must be 5x5")
    out = np.zeros(B, dtype=np.int64)
    _K.striped_local_scores(acodes, bcodes, out, B, n, m, mat, int(pen))
    return out
