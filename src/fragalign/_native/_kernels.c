/* Native score-only alignment kernels.
 *
 * Two kernel families, both exposed through the plain Python buffer
 * protocol (no numpy C API — the numpy side marshals contiguous
 * arrays in `fragalign/_native/__init__.py`):
 *
 *   bitparallel_scores(a, b, out, B, n, m, family, mode)
 *     Myers-style bit-parallel DP over uint64 words, 64 query rows
 *     per word.  family 0 = "unit" ((c,-c,-c) models, the BitPAl-
 *     flavoured 4-value delta algorithm), family 1 = "lev"
 *     ((0,-c,-c) models, classic Myers/Hyyro).  mode 0 = global,
 *     mode 1 = overlap (free a-suffix start, max over last row).
 *     Scores land in `out` (int64, units of c; the caller scales).
 *
 *   striped_local_scores(a, b, out, B, n, m, matrix, pen)
 *     Farrar striped Smith-Waterman, score-only, 8 x int32 lanes,
 *     linear gap (`pen` = -gap, a positive integer) and a general
 *     5x5 integer substitution matrix (A/C/G/T/N codes 0..4).
 *
 * The lane arithmetic is written as fixed-8 per-lane loops over a
 * struct of int32 — every hot loop has a compile-time trip count, so
 * -O3 auto-vectorizes it to whatever SIMD width the host has without
 * tying the source to a specific vector extension.
 *
 * Both entry points release the GIL around the whole batch.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ---------------- bit-parallel (Myers / BitPAl) ------------------- */

/* X[i] = S[i] | (R[i] & X[i-1]) along the bit chain, multiword.  The
 * carry of R + (S << 1) rides exactly the runs of R sitting on top of
 * a seed; OR-ing the shifted seed back in covers the empty-run case
 * the adder's carry-in misses. */
static inline void propagate(
    int W, const uint64_t *S, const uint64_t *R, uint64_t *X)
{
    uint64_t shc = 0, addc = 0;
    for (int w = 0; w < W; w++) {
        uint64_t s = S[w], r = R[w];
        uint64_t sh = (s << 1) | shc;
        shc = s >> 63;
        uint64_t u = r + sh + addc;
        addc = ((r & sh) | ((r | sh) & ~u)) >> 63;
        uint64_t c = (u ^ r ^ sh) | sh;
        X[w] = s | (r & c);
    }
}

static inline void shl1(int W, const uint64_t *x, uint64_t *out)
{
    uint64_t c = 0;
    for (int w = 0; w < W; w++) {
        uint64_t v = x[w];
        out[w] = (v << 1) | c;
        c = v >> 63;
    }
}

/* One pair, unit family ((c,-c,-c)): vertical deltas DV in
 * {-1,0,1,2} tracked as four disjoint indicators Vm/V0/V1/V2;
 * horizontal-delta thresholds A_t = [DH >= t] per text char. */
static int64_t unit_pair(
    const uint8_t *a, int n, const uint8_t *b, int m, int mode,
    uint64_t *work /* (4 eq + 4 state + 1 valid + 8 scratch) * W */)
{
    int W = (n + 63) >> 6;
    uint64_t *eq = work;            /* 4 * W */
    uint64_t *Vm = eq + 4 * W, *V0 = Vm + W, *V1 = V0 + W, *V2 = V1 + W;
    uint64_t *valid = V2 + W;
    uint64_t *S = valid + W, *R = S + W, *A2 = R + W, *A2s = A2 + W;
    uint64_t *A1 = A2s + W, *A1s = A1 + W, *A0 = A1s + W, *B0 = A0 + W;

    memset(eq, 0, (size_t)4 * W * sizeof(uint64_t));
    for (int i = 0; i < n; i++)
        eq[(size_t)a[i] * W + (i >> 6)] |= (uint64_t)1 << (i & 63);
    for (int w = 0; w < W; w++)
        valid[w] = ~(uint64_t)0;
    if (n & 63)
        valid[W - 1] = (((uint64_t)1 << (n & 63)) - 1);

    /* global: H[i][0] = -i, every DV = -1; overlap: H[i][0] = 0. */
    memset(Vm, 0, (size_t)4 * W * sizeof(uint64_t));
    memcpy(mode == 0 ? Vm : V0, valid, (size_t)W * sizeof(uint64_t));

    int wn = (n - 1) >> 6, bn = (n - 1) & 63;
    int64_t run = mode == 0 ? -(int64_t)n : 0, best = 0;

    for (int j = 0; j < m; j++) {
        const uint64_t *e = eq + (size_t)b[j] * W;
        for (int w = 0; w < W; w++) {
            R[w] = ~e[w] & Vm[w];
            S[w] = e[w] & Vm[w];
        }
        propagate(W, S, R, A2);
        shl1(W, A2, A2s);
        for (int w = 0; w < W; w++)
            S[w] = (e[w] & (Vm[w] | V0[w])) | (~e[w] & V0[w] & A2s[w]);
        propagate(W, S, R, A1);
        shl1(W, A1, A1s);
        for (int w = 0; w < W; w++)
            A0[w] = (e[w] & ~V2[w]) | R[w] | (~e[w] & V0[w] & A1s[w])
                  | (~e[w] & V1[w] & A2s[w]);

        run += (int64_t)((A0[wn] >> bn) & 1) + (int64_t)((A1[wn] >> bn) & 1)
             + (int64_t)((A2[wn] >> bn) & 1) - 1;
        if (mode == 1 && run > best)
            best = run;

        shl1(W, A0, B0);
        for (int w = 0; w < W; w++) {
            uint64_t ew = e[w], nw = ~ew;
            uint64_t v12 = V1[w] | V2[w];
            uint64_t nv2 = ~B0[w] & (ew | V2[w]);
            uint64_t nv1 = (ew & ~A1s[w])
                | (nw & ((~B0[w] & v12) | (B0[w] & ~A1s[w] & V2[w])));
            uint64_t nv0 = (ew & ~A2s[w])
                | (nw & (~B0[w] | (B0[w] & ~A1s[w] & v12)
                          | (A1s[w] & ~A2s[w] & V2[w])));
            Vm[w] = ~nv0 & valid[w];
            V0[w] = nv0 & ~nv1;
            V1[w] = nv1 & ~nv2;
            V2[w] = nv2;
        }
    }
    return mode == 1 ? best : run;
}

/* One pair, lev family ((0,-c,-c)): classic Myers, returns -distance.
 * Overlap under this family is identically 0; the caller never asks. */
static int64_t lev_pair(
    const uint8_t *a, int n, const uint8_t *b, int m,
    uint64_t *work /* (4 eq + 2 state + 1 valid) * W */)
{
    int W = (n + 63) >> 6;
    uint64_t *eq = work;
    uint64_t *Pv = eq + 4 * W, *Mv = Pv + W, *valid = Mv + W;

    memset(eq, 0, (size_t)4 * W * sizeof(uint64_t));
    for (int i = 0; i < n; i++)
        eq[(size_t)a[i] * W + (i >> 6)] |= (uint64_t)1 << (i & 63);
    for (int w = 0; w < W; w++) {
        valid[w] = ~(uint64_t)0;
        Mv[w] = 0;
    }
    if (n & 63)
        valid[W - 1] = (((uint64_t)1 << (n & 63)) - 1);
    memcpy(Pv, valid, (size_t)W * sizeof(uint64_t));

    int wn = (n - 1) >> 6, bn = (n - 1) & 63;
    int64_t dist = n;

    for (int j = 0; j < m; j++) {
        const uint64_t *e = eq + (size_t)b[j] * W;
        uint64_t addc = 0, phc = 1, mhc = 0;
        for (int w = 0; w < W; w++) {
            uint64_t ew = e[w], pv = Pv[w], mv = Mv[w];
            uint64_t x = ew & pv;
            uint64_t u = x + pv + addc;
            addc = ((x & pv) | ((x | pv) & ~u)) >> 63;
            uint64_t xh = (u ^ pv) | ew;
            uint64_t xv = ew | mv;
            uint64_t ph = mv | ~(xh | pv);
            uint64_t mh = pv & xh;
            if (w == wn) {
                dist += (int64_t)((ph >> bn) & 1) - (int64_t)((mh >> bn) & 1);
            }
            uint64_t phs = (ph << 1) | phc;
            phc = ph >> 63;
            uint64_t mhs = (mh << 1) | mhc;
            mhc = mh >> 63;
            Pv[w] = (mhs | ~(xv | phs)) & valid[w];
            Mv[w] = phs & xv;
        }
    }
    return -dist;
}

static PyObject *bitparallel_scores(PyObject *self, PyObject *args)
{
    Py_buffer a, b, out;
    int B, n, m, family, mode;
    if (!PyArg_ParseTuple(args, "y*y*w*iiiii",
                          &a, &b, &out, &B, &n, &m, &family, &mode))
        return NULL;
    int ok = B >= 0 && n > 0 && m > 0
        && a.len >= (Py_ssize_t)B * n && b.len >= (Py_ssize_t)B * m
        && out.len >= (Py_ssize_t)B * (Py_ssize_t)sizeof(int64_t)
        && (family == 0 || family == 1) && (mode == 0 || mode == 1)
        && !(family == 1 && mode == 1);
    if (!ok) {
        PyBuffer_Release(&a);
        PyBuffer_Release(&b);
        PyBuffer_Release(&out);
        PyErr_SetString(PyExc_ValueError, "bad bitparallel_scores arguments");
        return NULL;
    }
    int W = (n + 63) >> 6;
    uint64_t *work = malloc((size_t)17 * W * sizeof(uint64_t));
    if (work == NULL) {
        PyBuffer_Release(&a);
        PyBuffer_Release(&b);
        PyBuffer_Release(&out);
        return PyErr_NoMemory();
    }
    const uint8_t *ap = a.buf, *bp = b.buf;
    int64_t *op = out.buf;
    int badcode = 0;
    Py_BEGIN_ALLOW_THREADS
    /* Codes above 3 would index past the 4-row eq table. */
    for (Py_ssize_t i = 0; i < (Py_ssize_t)B * n; i++)
        badcode |= ap[i] > 3;
    for (Py_ssize_t i = 0; i < (Py_ssize_t)B * m; i++)
        badcode |= bp[i] > 3;
    if (!badcode) {
        for (int k = 0; k < B; k++) {
            const uint8_t *ak = ap + (size_t)k * n;
            const uint8_t *bk = bp + (size_t)k * m;
            op[k] = family == 0 ? unit_pair(ak, n, bk, m, mode, work)
                                : lev_pair(ak, n, bk, m, work);
        }
    }
    Py_END_ALLOW_THREADS
    free(work);
    if (badcode) {
        PyBuffer_Release(&a);
        PyBuffer_Release(&b);
        PyBuffer_Release(&out);
        PyErr_SetString(PyExc_ValueError,
                        "bitparallel_scores: sequence code above 3");
        return NULL;
    }
    PyBuffer_Release(&a);
    PyBuffer_Release(&b);
    PyBuffer_Release(&out);
    Py_RETURN_NONE;
}

/* ---------------- striped Smith-Waterman (Farrar) ----------------- */

#define LANES 8
#define NEG_I32 (INT32_MIN / 4)

typedef struct {
    int32_t v[LANES];
} vec;

/* One pair: striped query profile over codes 0..4, linear gap `pen`,
 * local score-only.  Query position for (vector v, lane l) is
 * v + l * L; tail padding positions get NEG profile scores, and any
 * F leakage into them stays strictly below the real cell it chained
 * from, so the running max never reads a phantom cell. */
static int64_t striped_local_one(
    const uint8_t *a, int n, const uint8_t *b, int m,
    const int32_t *matrix, int32_t pen,
    vec *profile /* 5 * L */, vec *Hs, vec *Hl, vec *E)
{
    int L = (n + LANES - 1) / LANES;
    for (int code = 0; code < 5; code++) {
        for (int v = 0; v < L; v++) {
            vec p;
            for (int l = 0; l < LANES; l++) {
                int pos = v + l * L;
                p.v[l] = pos < n ? matrix[(size_t)a[pos] * 5 + code] : NEG_I32;
            }
            profile[(size_t)code * L + v] = p;
        }
    }
    for (int v = 0; v < L; v++)
        for (int l = 0; l < LANES; l++) {
            Hs[v].v[l] = 0;
            Hl[v].v[l] = 0;
            E[v].v[l] = NEG_I32;
        }

    vec vmax;
    for (int l = 0; l < LANES; l++)
        vmax.v[l] = 0;

    for (int j = 0; j < m; j++) {
        const vec *prof = profile + (size_t)b[j] * L;
        vec vH, vF;
        /* diagonal feed: previous column's last vector, lanes shifted
         * up one, lane 0 = H[0][j-1] = 0 */
        for (int l = LANES - 1; l > 0; l--)
            vH.v[l] = Hs[L - 1].v[l - 1];
        vH.v[0] = 0;
        for (int l = 0; l < LANES; l++)
            vF.v[l] = NEG_I32;
        { vec *t = Hl; Hl = Hs; Hs = t; }

        for (int v = 0; v < L; v++) {
            vec e = E[v], h = vH, p = prof[v];
            for (int l = 0; l < LANES; l++) {
                int32_t x = h.v[l] + p.v[l];
                if (x < e.v[l]) x = e.v[l];
                if (x < vF.v[l]) x = vF.v[l];
                if (x < 0) x = 0;
                h.v[l] = x;
                if (x > vmax.v[l]) vmax.v[l] = x;
            }
            Hs[v] = h;
            for (int l = 0; l < LANES; l++) {
                int32_t ne = e.v[l] > h.v[l] ? e.v[l] : h.v[l];
                E[v].v[l] = ne - pen;
                int32_t nf = vF.v[l] > h.v[l] ? vF.v[l] : h.v[l];
                vF.v[l] = nf - pen;
            }
            vH = Hl[v];
        }

        /* Lazy-F: chase gap-in-b chains across lane boundaries.  E is
         * deliberately not refreshed — a down-then-right corner costs
         * the same as right-then-down under a linear gap, so the
         * reordered path is already computed. */
        for (int wrap = 0; wrap < LANES; wrap++) {
            for (int l = LANES - 1; l > 0; l--)
                vF.v[l] = vF.v[l - 1];
            vF.v[0] = NEG_I32;
            /* A sweep that raises nothing cannot seed later sweeps: the
             * main pass guarantees H[i+1] >= H[i] - pen within a lane,
             * each applied update preserves it, and the first wrap
             * extends it across lane boundaries, so once vF <= H at a
             * cell it stays <= H for the rest of the chain. */
            int updated = 0, dead = 0;
            for (int v = 0; v < L; v++) {
                vec h = Hs[v];
                for (int l = 0; l < LANES; l++) {
                    if (vF.v[l] > h.v[l]) {
                        h.v[l] = vF.v[l];
                        if (h.v[l] > vmax.v[l]) vmax.v[l] = h.v[l];
                        updated = 1;
                    }
                }
                Hs[v] = h;
                int alive = 0;
                for (int l = 0; l < LANES; l++) {
                    vF.v[l] -= pen;
                    if (vF.v[l] > 0) alive = 1;
                }
                /* H >= 0 everywhere, and vF only decays from here. */
                if (!alive) { dead = 1; break; }
            }
            if (dead || !updated) break;
        }
    }
    int32_t best = 0;
    for (int l = 0; l < LANES; l++)
        if (vmax.v[l] > best) best = vmax.v[l];
    return (int64_t)best;
}

static PyObject *striped_local_scores(PyObject *self, PyObject *args)
{
    Py_buffer a, b, out, mat;
    int B, n, m;
    int32_t pen;
    if (!PyArg_ParseTuple(args, "y*y*w*iiiy*i",
                          &a, &b, &out, &B, &n, &m, &mat, &pen))
        return NULL;
    int ok = B >= 0 && n > 0 && m > 0 && pen > 0
        && a.len >= (Py_ssize_t)B * n && b.len >= (Py_ssize_t)B * m
        && out.len >= (Py_ssize_t)B * (Py_ssize_t)sizeof(int64_t)
        && mat.len >= (Py_ssize_t)(25 * sizeof(int32_t));
    if (ok) {
        /* int32 headroom: positive scores stay < 2^27, and the lazy-F
         * per-column decay stays < 2^30 above NEG_I32's gap to
         * INT32_MIN, so neither direction can wrap. */
        const int32_t *mp0 = mat.buf;
        int64_t maxabs = 0;
        for (int i = 0; i < 25; i++) {
            int64_t v = mp0[i] < 0 ? -(int64_t)mp0[i] : (int64_t)mp0[i];
            if (v > maxabs) maxabs = v;
        }
        int64_t mn = m < n ? m : n;
        ok = (mn + 1) * maxabs < ((int64_t)1 << 27)
            && ((int64_t)n + LANES) * pen < ((int64_t)1 << 29);
    }
    if (!ok) {
        PyBuffer_Release(&a);
        PyBuffer_Release(&b);
        PyBuffer_Release(&out);
        PyBuffer_Release(&mat);
        PyErr_SetString(PyExc_ValueError, "bad striped_local_scores arguments");
        return NULL;
    }
    int L = (n + LANES - 1) / LANES;
    vec *work = malloc((size_t)(5 * L + 3 * L) * sizeof(vec));
    if (work == NULL) {
        PyBuffer_Release(&a);
        PyBuffer_Release(&b);
        PyBuffer_Release(&out);
        PyBuffer_Release(&mat);
        return PyErr_NoMemory();
    }
    const uint8_t *ap = a.buf, *bp = b.buf;
    const int32_t *mp = mat.buf;
    int64_t *op = out.buf;
    int badcode = 0;
    Py_BEGIN_ALLOW_THREADS
    /* Codes above 4 would index past the 5x5 matrix / 5-row profile. */
    for (Py_ssize_t i = 0; i < (Py_ssize_t)B * n; i++)
        badcode |= ap[i] > 4;
    for (Py_ssize_t i = 0; i < (Py_ssize_t)B * m; i++)
        badcode |= bp[i] > 4;
    if (!badcode) {
        for (int k = 0; k < B; k++) {
            op[k] = striped_local_one(
                ap + (size_t)k * n, n, bp + (size_t)k * m, m, mp, pen,
                work, work + 5 * L, work + 6 * L, work + 7 * L);
        }
    }
    Py_END_ALLOW_THREADS
    free(work);
    if (badcode) {
        PyBuffer_Release(&a);
        PyBuffer_Release(&b);
        PyBuffer_Release(&out);
        PyBuffer_Release(&mat);
        PyErr_SetString(PyExc_ValueError,
                        "striped_local_scores: sequence code above 4");
        return NULL;
    }
    PyBuffer_Release(&a);
    PyBuffer_Release(&b);
    PyBuffer_Release(&out);
    PyBuffer_Release(&mat);
    Py_RETURN_NONE;
}

/* ---------------- module ----------------------------------------- */

static PyMethodDef methods[] = {
    {"bitparallel_scores", bitparallel_scores, METH_VARARGS,
     "Myers bit-parallel batch scores (unit/lev family, global/overlap)."},
    {"striped_local_scores", striped_local_scores, METH_VARARGS,
     "Farrar striped Smith-Waterman batch scores (linear gap, local)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef moduledef = {
    PyModuleDef_HEAD_INIT, "_kernels",
    "Native bit-parallel and striped-SIMD alignment score kernels.",
    -1, methods,
};

PyMODINIT_FUNC PyInit__kernels(void)
{
    return PyModule_Create(&moduledef);
}
