"""``python -m fragalign`` entry point."""

import sys

from fragalign.cli import main

if __name__ == "__main__":
    sys.exit(main())
