"""Two-species evolution with annotated conserved blocks.

An *ancestor* is a sequence of conserved blocks separated by neutral
spacer DNA.  Each descendant species keeps every surviving block (with
per-block substitutions), may invert blocks (reverse complement), may
lose blocks, and may shuffle the block order (translocations); the
spacers are regenerated, so only blocks remain alignable.  All block
placements carry ground-truth annotations — the quantity the paper's
orient/order inference is ultimately judged against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from fragalign.genome.dna import mutate, random_dna, reverse_complement
from fragalign.util.errors import InstanceError
from fragalign.util.rng import RngLike, as_generator

__all__ = ["Ancestor", "PlacedBlock", "SpeciesGenome", "make_ancestor", "evolve"]


@dataclass(frozen=True)
class Ancestor:
    """Blocks in ancestral order; block ids are 0..n-1."""

    blocks: tuple[str, ...]
    spacer_len: int

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)


@dataclass(frozen=True)
class PlacedBlock:
    """One conserved block as it appears in a species genome."""

    block_id: int
    start: int
    end: int
    reversed: bool


@dataclass(frozen=True)
class SpeciesGenome:
    """A genome string plus its ground-truth block placements."""

    sequence: str
    blocks: tuple[PlacedBlock, ...] = field(default_factory=tuple)

    def block_order(self) -> list[int]:
        return [b.block_id for b in sorted(self.blocks, key=lambda b: b.start)]

    def placement(self, block_id: int) -> PlacedBlock | None:
        for b in self.blocks:
            if b.block_id == block_id:
                return b
        return None


def make_ancestor(
    n_blocks: int = 10,
    block_len: int = 300,
    spacer_len: int = 120,
    rng: RngLike = None,
) -> Ancestor:
    if n_blocks < 1 or block_len < 1:
        raise InstanceError("need at least one block of positive length")
    gen = as_generator(rng)
    blocks = tuple(random_dna(block_len, gen) for _ in range(n_blocks))
    return Ancestor(blocks=blocks, spacer_len=spacer_len)


def evolve(
    ancestor: Ancestor,
    sub_rate: float = 0.05,
    inversion_prob: float = 0.0,
    loss_prob: float = 0.0,
    shuffle: bool = False,
    rng: RngLike = None,
) -> SpeciesGenome:
    """One descendant species.

    ``shuffle=True`` permutes the surviving block order (whole-block
    translocations); ``inversion_prob`` flips individual blocks to the
    reverse-complement strand; ``loss_prob`` drops blocks entirely.
    """
    gen = as_generator(rng)
    survivors = [
        i for i in range(ancestor.n_blocks) if gen.random() >= loss_prob
    ]
    order = list(survivors)
    if shuffle and len(order) > 1:
        order = [int(x) for x in gen.permutation(order)]
    parts: list[str] = []
    placed: list[PlacedBlock] = []
    cursor = 0

    def add_spacer() -> None:
        # Spacer lengths vary per species (neutral DNA drifts freely);
        # this also keeps distinct blocks off a single shared diagonal,
        # as in real genomes.
        nonlocal cursor
        lo = max(1, ancestor.spacer_len // 2)
        hi = ancestor.spacer_len * 3 // 2 + 1
        spacer = random_dna(int(gen.integers(lo, hi)), gen)
        parts.append(spacer)
        cursor += len(spacer)

    add_spacer()
    for bid in order:
        seq = mutate(ancestor.blocks[bid], sub_rate=sub_rate, rng=gen)
        inverted = gen.random() < inversion_prob
        if inverted:
            seq = reverse_complement(seq)
        placed.append(
            PlacedBlock(
                block_id=bid,
                start=cursor,
                end=cursor + len(seq),
                reversed=inverted,
            )
        )
        parts.append(seq)
        cursor += len(seq)
        add_spacer()
    return SpeciesGenome(sequence="".join(parts), blocks=tuple(placed))
