"""Conserved-region discovery between two contig sets.

Seed-and-extend homology search: shared k-mers between a contig pair
(both strands) are clustered by diagonal; each cluster seeds a window
that is scored with local alignment.  Detected regions that overlap on
a contig are reduced to a best-scoring non-overlapping subset, because
the paper's model assumes regions are "identical or completely
distinct" — no partial overlap (§1).

All candidate windows are collected first and scored in one
``align_many`` batch through the alignment engine, so discovery can be
pointed at any registered backend (vectorized, multiprocessing, …).
On the numpy backend the whole batch of same-shape windows shares one
forward sweep that emits packed direction codes, and each window's
alignment is recovered by the table-free O(n+m) code walk — discovery
no longer pays for per-window float DP tables.

The result feeds :func:`build_csr_instance`: regions become symbols,
alignment scores become σ, and the contigs become CSR fragments.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from fragalign.align.scoring_matrices import SubstitutionModel, unit_dna
from fragalign.engine import AlignmentEngine
from fragalign.core.fragments import CSRInstance
from fragalign.core.scoring import Scorer
from fragalign.genome.dna import reverse_complement
from fragalign.genome.shotgun import Contig

__all__ = ["RegionHit", "find_conserved_regions", "build_csr_instance"]


@dataclass(frozen=True)
class RegionHit:
    """One conserved region pair between an H and an M contig."""

    h_contig: int
    h_start: int
    h_end: int
    m_contig: int
    m_start: int
    m_end: int
    reversed: bool  # m side on the minus strand relative to h
    score: float


def _kmers(seq: str, k: int) -> dict[str, list[int]]:
    index: dict[str, list[int]] = defaultdict(list)
    for i in range(len(seq) - k + 1):
        index[seq[i : i + k]].append(i)
    return index


def _diagonal_clusters(
    index: dict[str, list[int]], m_seq: str, k: int, min_seeds: int
) -> list[tuple[int, int, int, int]]:
    """Cluster shared k-mers by diagonal; return merged windows
    (h_start, h_end, m_start, m_end).

    ``index`` is the H contig's k-mer index from :func:`_kmers`, built
    once per H contig and reused across every M contig and strand.
    """
    by_diag: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for j in range(len(m_seq) - k + 1):
        for i in index.get(m_seq[j : j + k], ()):
            by_diag[i - j].append((i, j))
    windows: list[tuple[int, int, int, int]] = []
    # Merge neighbouring diagonals (indels shift the diagonal slightly).
    merged: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for d, seeds in by_diag.items():
        merged[d // 8].extend(seeds)
    for seeds in merged.values():
        if len(seeds) < min_seeds:
            continue
        hs = min(i for i, _ in seeds)
        he = max(i for i, _ in seeds) + k
        ms = min(j for _, j in seeds)
        me = max(j for _, j in seeds) + k
        windows.append((hs, he, ms, me))
    return windows


def find_conserved_regions(
    h_contigs: list[Contig],
    m_contigs: list[Contig],
    k: int = 12,
    min_seeds: int = 3,
    min_score: float = 20.0,
    model: SubstitutionModel | None = None,
    pad: int = 25,
    engine: AlignmentEngine | None = None,
) -> list[RegionHit]:
    """All conserved region pairs above ``min_score``.

    ``engine`` selects the execution backend for window scoring (must
    be in ``local`` mode; its model takes precedence over ``model``).
    By default a vectorized in-process engine is used.
    """
    if engine is None:
        model = model or unit_dna(match=1.0, mismatch=-1.0, gap=-2.0)
        engine = AlignmentEngine(backend="numpy", model=model, mode="local")
    elif engine.mode != "local":
        raise ValueError("conserved-region discovery needs a local-mode engine")
    jobs: list[tuple[int, int, bool, int, int, int]] = []
    windows: list[tuple[str, str]] = []
    for hi, hc in enumerate(h_contigs):
        h_index = _kmers(hc.sequence, k)
        for mi, mc in enumerate(m_contigs):
            for rev in (False, True):
                m_seq = reverse_complement(mc.sequence) if rev else mc.sequence
                for hs, he, ms, me in _diagonal_clusters(
                    h_index, m_seq, k, min_seeds
                ):
                    hs = max(0, hs - pad)
                    he = min(len(hc.sequence), he + pad)
                    ms = max(0, ms - pad)
                    me = min(len(m_seq), me + pad)
                    jobs.append((hi, mi, rev, hs, ms, len(mc.sequence)))
                    windows.append((hc.sequence[hs:he], m_seq[ms:me]))
    hits: list[RegionHit] = []
    for (hi, mi, rev, hs, ms, L), aln in zip(jobs, engine.align_many(windows)):
        if aln.score < min_score or not aln.pairs:
            continue
        h0 = hs + aln.a_interval[0]
        h1 = hs + aln.a_interval[1]
        m0 = ms + aln.b_interval[0]
        m1 = ms + aln.b_interval[1]
        if rev:
            # Map back to plus-strand coordinates of m.
            m0, m1 = L - m1, L - m0
        hits.append(
            RegionHit(
                h_contig=hi,
                h_start=h0,
                h_end=h1,
                m_contig=mi,
                m_start=m0,
                m_end=m1,
                reversed=rev,
                score=float(aln.score),
            )
        )
    return hits


def _select_disjoint(hits: list[RegionHit]) -> list[RegionHit]:
    """Greedy best-score selection of hits that do not overlap any
    already-kept hit on either contig (the paper's no-partial-overlap
    assumption)."""
    kept: list[RegionHit] = []

    def clashes(a: RegionHit, b: RegionHit) -> bool:
        if a.h_contig == b.h_contig and a.h_start < b.h_end and b.h_start < a.h_end:
            return True
        if a.m_contig == b.m_contig and a.m_start < b.m_end and b.m_start < a.m_end:
            return True
        return False

    for hit in sorted(hits, key=lambda h: -h.score):
        if not any(clashes(hit, kk) for kk in kept):
            kept.append(hit)
    return kept


def build_csr_instance(
    h_contigs: list[Contig],
    m_contigs: list[Contig],
    hits: list[RegionHit],
) -> tuple[CSRInstance, list[RegionHit]]:
    """Turn contigs + conserved regions into a CSR instance.

    Each selected hit becomes a fresh (h-region, m-region) symbol pair
    with σ = its alignment score (orientation-aware); contigs become
    fragments listing their region symbols in sequence order.  Contigs
    with no region still appear (as a harmless one-region fragment with
    no scores) so arrangements stay total.
    """
    selected = _select_disjoint(hits)
    scorer = Scorer()
    next_sym = 1
    h_regions: dict[int, list[tuple[int, int]]] = defaultdict(list)  # start→sym
    m_regions: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for hit in selected:
        h_sym = next_sym
        m_sym = next_sym + 1
        next_sym += 2
        h_regions[hit.h_contig].append((hit.h_start, h_sym))
        m_regions[hit.m_contig].append((hit.m_start, m_sym))
        scorer.set(h_sym, -m_sym if hit.reversed else m_sym, hit.score)
    h_words = []
    for i in range(len(h_contigs)):
        regs = sorted(h_regions.get(i, []))
        if not regs:
            regs = [(0, next_sym)]
            next_sym += 1
        h_words.append(tuple(sym for _pos, sym in regs))
    m_words = []
    for j in range(len(m_contigs)):
        regs = sorted(m_regions.get(j, []))
        if not regs:
            regs = [(0, next_sym)]
            next_sym += 1
        m_words.append(tuple(sym for _pos, sym in regs))
    return CSRInstance.build(h_words, m_words, scorer), selected
