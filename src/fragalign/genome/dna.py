"""DNA sequence primitives for the genome simulator.

The paper's data — contig banks from two related species — is
simulated from an ancestor (DESIGN.md §5); this module provides the
sequence-level operations: random genomes, reverse complement, and the
point-substitution / indel mutation processes used to diverge species.
"""

from __future__ import annotations

import numpy as np

from fragalign.util.rng import RngLike, as_generator

__all__ = ["random_dna", "reverse_complement", "mutate", "gc_content"]

_BASES = np.array(list("ACGT"))
_COMP = {"A": "T", "T": "A", "C": "G", "G": "C", "N": "N"}


def random_dna(length: int, rng: RngLike = None, gc: float = 0.5) -> str:
    """Random DNA with the given GC fraction."""
    gen = as_generator(rng)
    p_gc = gc / 2.0
    p_at = (1.0 - gc) / 2.0
    return "".join(
        gen.choice(_BASES, size=length, p=[p_at, p_gc, p_gc, p_at])
    )


def reverse_complement(seq: str) -> str:
    """The reverse complement (the paper's hᴿ at nucleotide level)."""
    return "".join(_COMP.get(c, "N") for c in reversed(seq.upper()))


def mutate(
    seq: str,
    sub_rate: float = 0.0,
    indel_rate: float = 0.0,
    rng: RngLike = None,
) -> str:
    """Apply per-base substitutions and single-base indels.

    Substitutions draw uniformly from the three alternative bases;
    indels insert a random base before, or delete, the current base
    with equal probability.
    """
    gen = as_generator(rng)
    out: list[str] = []
    for c in seq:
        if indel_rate > 0 and gen.random() < indel_rate:
            if gen.random() < 0.5:
                out.append(str(gen.choice(_BASES)))
                out.append(c)
            # else: deletion — drop the base
            continue
        if sub_rate > 0 and gen.random() < sub_rate:
            alternatives = [b for b in "ACGT" if b != c]
            out.append(str(gen.choice(alternatives)))
        else:
            out.append(c)
    return "".join(out)


def gc_content(seq: str) -> float:
    if not seq:
        return 0.0
    gc = sum(1 for c in seq.upper() if c in "GC")
    return gc / len(seq)
