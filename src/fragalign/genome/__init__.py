"""Genome/contig simulation substrate and the Fig.-1 inference pipeline."""

from fragalign.genome.assembly import exact_overlap, greedy_assemble
from fragalign.genome.conserved import (
    RegionHit,
    build_csr_instance,
    find_conserved_regions,
)
from fragalign.genome.dna import gc_content, mutate, random_dna, reverse_complement
from fragalign.genome.evolution import (
    Ancestor,
    PlacedBlock,
    SpeciesGenome,
    evolve,
    make_ancestor,
)
from fragalign.genome.metrics import OrientOrderReport, evaluate_solution
from fragalign.genome.pipeline import (
    PipelineConfig,
    PipelineResult,
    run_pipeline,
    truth_hits,
)
from fragalign.genome.report import Inference, format_report, infer_relations
from fragalign.genome.scaffold import (
    MatePair,
    Scaffold,
    ScaffoldLink,
    build_scaffolds,
    sample_mate_pairs,
    scaffold_order_accuracy,
)
from fragalign.genome.shotgun import (
    Contig,
    Read,
    fragment_into_contigs,
    sample_reads,
)

__all__ = [
    "exact_overlap",
    "greedy_assemble",
    "RegionHit",
    "build_csr_instance",
    "find_conserved_regions",
    "gc_content",
    "mutate",
    "random_dna",
    "reverse_complement",
    "Ancestor",
    "PlacedBlock",
    "SpeciesGenome",
    "evolve",
    "make_ancestor",
    "OrientOrderReport",
    "evaluate_solution",
    "PipelineConfig",
    "PipelineResult",
    "run_pipeline",
    "truth_hits",
    "Contig",
    "Read",
    "fragment_into_contigs",
    "sample_reads",
    "Inference",
    "format_report",
    "infer_relations",
    "MatePair",
    "Scaffold",
    "ScaffoldLink",
    "build_scaffolds",
    "sample_mate_pairs",
    "scaffold_order_accuracy",
]
