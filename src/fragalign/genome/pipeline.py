"""End-to-end pipeline: ancestor → species → contigs → CSR → inference.

This is the executable version of the paper's motivating scenario
(Fig. 1): two incompletely sequenced genomes, conserved regions found
by alignment, and the CSR solver recovering contig order/orientation.

Two discovery modes:

* ``"alignment"`` — honest seed-and-extend homology search on the raw
  contig sequences (slow but fully self-contained);
* ``"truth"`` — regions taken from the simulator's block annotations
  and *scored* by real local alignment of the region sequences; this
  skips only the search, not the scoring, and keeps benches fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from fragalign.align.scoring_matrices import SubstitutionModel, unit_dna
from fragalign.engine import AlignmentEngine
from fragalign.core.baseline import baseline4
from fragalign.core.csr_improve import csr_improve
from fragalign.core.fragments import CSRInstance
from fragalign.core.greedy import greedy_csr
from fragalign.core.solution import CSRSolution
from fragalign.genome.conserved import (
    RegionHit,
    build_csr_instance,
    find_conserved_regions,
)
from fragalign.genome.dna import reverse_complement
from fragalign.genome.evolution import Ancestor, evolve, make_ancestor
from fragalign.genome.metrics import OrientOrderReport, evaluate_solution
from fragalign.genome.shotgun import Contig, fragment_into_contigs
from fragalign.util.errors import InstanceError
from fragalign.util.rng import RngLike, as_generator

__all__ = ["PipelineConfig", "PipelineResult", "run_pipeline", "truth_hits"]


@dataclass(frozen=True)
class PipelineConfig:
    n_blocks: int = 8
    block_len: int = 200
    spacer_len: int = 80
    sub_rate: float = 0.05
    inversion_prob: float = 0.3
    loss_prob: float = 0.0
    shuffle_m: bool = True
    n_h_contigs: int = 3
    n_m_contigs: int = 4
    discovery: str = "truth"  # "truth" | "alignment"
    solver: str = "csr_improve"  # "csr_improve" | "baseline4" | "greedy"
    min_score: float = 20.0
    backend: str = "numpy"  # alignment-engine backend for discovery/scoring


@dataclass
class PipelineResult:
    config: PipelineConfig
    ancestor: Ancestor
    h_contigs: list[Contig]
    m_contigs: list[Contig]
    hits: list[RegionHit]
    instance: CSRInstance
    solution: CSRSolution
    report: OrientOrderReport
    stats: dict = field(default_factory=dict)


def truth_hits(
    h_contigs: list[Contig],
    m_contigs: list[Contig],
    model: SubstitutionModel | None = None,
    engine: AlignmentEngine | None = None,
) -> list[RegionHit]:
    """Region hits from ground-truth annotations, scored by alignment.

    All block-pair probes are scored in one engine batch; ``engine``
    picks the execution backend (local mode; overrides ``model``).
    """
    if engine is None:
        model = model or unit_dna(match=1.0, mismatch=-1.0, gap=-2.0)
        engine = AlignmentEngine(backend="numpy", model=model, mode="local")
    elif engine.mode != "local":
        raise ValueError("truth_hits needs a local-mode engine")
    jobs: list[tuple[int, object, int, object, bool]] = []
    probes: list[tuple[str, str]] = []
    for hi, hc in enumerate(h_contigs):
        for hb in hc.blocks:
            h_seq = hc.sequence[hb.start : hb.end]
            for mi, mc in enumerate(m_contigs):
                for mb in mc.blocks:
                    if mb.block_id != hb.block_id:
                        continue
                    # The two copies align directly iff their strands
                    # (relative to the ancestor) agree.
                    rev = hb.reversed ^ mb.reversed
                    m_seq = mc.sequence[mb.start : mb.end]
                    probe = reverse_complement(m_seq) if rev else m_seq
                    jobs.append((hi, hb, mi, mb, rev))
                    probes.append((h_seq, probe))
    hits: list[RegionHit] = []
    for (hi, hb, mi, mb, rev), score in zip(jobs, engine.score_many(probes)):
        if score <= 0:
            continue
        hits.append(
            RegionHit(
                h_contig=hi,
                h_start=hb.start,
                h_end=hb.end,
                m_contig=mi,
                m_start=mb.start,
                m_end=mb.end,
                reversed=rev,
                score=float(score),
            )
        )
    return hits


def run_pipeline(
    config: PipelineConfig | None = None, rng: RngLike = None
) -> PipelineResult:
    config = config or PipelineConfig()
    gen = as_generator(rng)
    ancestor = make_ancestor(
        n_blocks=config.n_blocks,
        block_len=config.block_len,
        spacer_len=config.spacer_len,
        rng=gen,
    )
    species_h = evolve(ancestor, sub_rate=config.sub_rate / 2, rng=gen)
    species_m = evolve(
        ancestor,
        sub_rate=config.sub_rate / 2,
        inversion_prob=config.inversion_prob,
        loss_prob=config.loss_prob,
        shuffle=config.shuffle_m,
        rng=gen,
    )
    h_contigs = fragment_into_contigs(
        species_h, n_contigs=config.n_h_contigs, rng=gen, name_prefix="h"
    )
    m_contigs = fragment_into_contigs(
        species_m, n_contigs=config.n_m_contigs, rng=gen, name_prefix="m"
    )
    model = unit_dna(match=1.0, mismatch=-1.0, gap=-2.0)
    with AlignmentEngine(backend=config.backend, model=model, mode="local") as eng:
        if config.discovery == "alignment":
            hits = find_conserved_regions(
                h_contigs, m_contigs, min_score=config.min_score, engine=eng
            )
        elif config.discovery == "truth":
            hits = truth_hits(h_contigs, m_contigs, engine=eng)
        else:
            raise InstanceError(f"unknown discovery mode {config.discovery!r}")
    instance, selected = build_csr_instance(h_contigs, m_contigs, hits)
    if config.solver == "csr_improve":
        solution = csr_improve(instance)
    elif config.solver == "baseline4":
        solution = baseline4(instance)
    elif config.solver == "greedy":
        solution = greedy_csr(instance)
    else:
        raise InstanceError(f"unknown solver {config.solver!r}")
    report = evaluate_solution(solution, h_contigs, m_contigs)
    return PipelineResult(
        config=config,
        ancestor=ancestor,
        h_contigs=h_contigs,
        m_contigs=m_contigs,
        hits=selected,
        instance=instance,
        solution=solution,
        report=report,
        stats={"raw_hits": len(hits), "selected_hits": len(selected)},
    )
