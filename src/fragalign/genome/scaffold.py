"""Mate pairs and scaffolding (§1's whole-genome-shotgun approach).

The paper contrasts its cross-species *islands* with same-species
*scaffolds* built from mate pairs (footnote 1: islands involve two
species and imply no distances; scaffolds order/orient one species'
contigs *with* approximate distances).  This module supplies the
scaffold side so the comparison is executable:

* :func:`sample_mate_pairs` — paired reads from the two ends of
  fixed-size inserts, inner-facing strands, as in Weber–Myers [11];
* :func:`build_scaffolds` — map mate ends onto contigs, accumulate
  orientation/order/gap votes per contig pair, and chain contigs
  greedily by link weight.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from fragalign.genome.dna import reverse_complement
from fragalign.genome.shotgun import Contig
from fragalign.util.errors import InstanceError
from fragalign.util.rng import RngLike, as_generator

__all__ = [
    "MatePair",
    "ScaffoldLink",
    "Scaffold",
    "sample_mate_pairs",
    "build_scaffolds",
    "scaffold_order_accuracy",
]


@dataclass(frozen=True)
class MatePair:
    """Two reads from the ends of one insert.

    ``left`` reads the forward strand at the insert's start; ``right``
    reads the reverse strand at the insert's end (inner-facing pairs).
    ``insert_len`` is the *nominal* library size, not the exact one.
    """

    left: str
    right: str
    insert_len: int


@dataclass(frozen=True)
class ScaffoldLink:
    """An inferred relation between two contigs."""

    a: int
    b: int
    a_flipped: bool
    b_flipped: bool
    gap: float
    support: int


@dataclass(frozen=True)
class Scaffold:
    """Ordered, oriented, gapped contig chain (one per component)."""

    entries: tuple[tuple[int, bool], ...]  # (contig index, flipped)
    gaps: tuple[float, ...]  # between consecutive entries

    def __len__(self) -> int:
        return len(self.entries)


def sample_mate_pairs(
    genome: str,
    n_pairs: int,
    insert_len: int = 600,
    insert_std: int = 40,
    read_len: int = 60,
    rng: RngLike = None,
) -> list[MatePair]:
    if insert_len >= len(genome):
        raise InstanceError("insert longer than the genome")
    gen = as_generator(rng)
    pairs: list[MatePair] = []
    for _ in range(n_pairs):
        size = max(2 * read_len, int(gen.normal(insert_len, insert_std)))
        start = int(gen.integers(0, max(1, len(genome) - size)))
        left = genome[start : start + read_len]
        right_start = start + size - read_len
        right = reverse_complement(
            genome[right_start : right_start + read_len]
        )
        pairs.append(MatePair(left=left, right=right, insert_len=insert_len))
    return pairs


def _locate(read: str, contigs: list[Contig]) -> tuple[int, int, bool] | None:
    """Map a read to (contig index, position, flipped) by exact search.

    Error-free mates keep the substrate simple; the assembler module
    handles erroneous reads.  Multi-mapping reads are discarded.
    """
    hits: list[tuple[int, int, bool]] = []
    rc = reverse_complement(read)
    for idx, c in enumerate(contigs):
        pos = c.sequence.find(read)
        if pos >= 0:
            hits.append((idx, pos, False))
        pos = c.sequence.find(rc)
        if pos >= 0:
            hits.append((idx, pos, True))
        if len(hits) > 1:
            return None
    return hits[0] if len(hits) == 1 else None


def build_scaffolds(
    contigs: list[Contig],
    mates: list[MatePair],
    min_support: int = 2,
) -> tuple[list[Scaffold], list[ScaffoldLink]]:
    """Scaffold contigs from mate pairs.

    For every mate whose two ends land in *different* contigs, the pair
    votes for a relative orientation and a gap estimate (insert length
    minus the two anchored stretches).  Links with ≥ ``min_support``
    consistent votes order the contigs; chains are grown greedily from
    the strongest links, one in/out edge per contig end.
    """
    votes: dict[tuple[int, int, bool, bool], list[float]] = defaultdict(list)
    read_len = len(mates[0].left) if mates else 0
    for mate in mates:
        left_hit = _locate(mate.left, contigs)
        right_hit = _locate(mate.right, contigs)
        if left_hit is None or right_hit is None:
            continue
        (ci, pi, fi) = left_hit
        (cj, pj, fj) = right_hit
        if ci == cj:
            continue
        # The left read sits earlier on the genome than the right read
        # by construction, so contig ci precedes cj.  Strands: the left
        # read is a forward-strand copy, so mapping it *flipped* means
        # contig ci stores the minus strand; the right read is already
        # reverse-complemented, so the logic inverts for cj.
        a_flip = fi
        b_flip = not fj
        # Genome-oriented offsets of the read starts inside each contig.
        la = len(contigs[ci])
        lb = len(contigs[cj])
        off_a = (la - pi - read_len) if fi else pi
        off_b = pj if fj else (lb - pj - read_len)
        used_a = la - off_a  # left-read start → contig ci's genome end
        used_b = off_b + read_len  # contig cj's genome start → right-read end
        gap = mate.insert_len - used_a - used_b
        votes[(ci, cj, a_flip, b_flip)].append(float(gap))

    links: list[ScaffoldLink] = []
    for (a, b, fa, fb), gaps in votes.items():
        if len(gaps) >= min_support:
            links.append(
                ScaffoldLink(
                    a=a,
                    b=b,
                    a_flipped=fa,
                    b_flipped=fb,
                    gap=float(sum(gaps) / len(gaps)),
                    support=len(gaps),
                )
            )
    links.sort(key=lambda l: -l.support)

    # Greedy chaining: each contig gets at most one successor and one
    # predecessor; cycles are refused.
    succ: dict[int, ScaffoldLink] = {}
    pred: dict[int, ScaffoldLink] = {}

    def reaches(start: int, goal: int) -> bool:
        cur = start
        while cur in succ:
            cur = succ[cur].b
            if cur == goal:
                return True
        return False

    for link in links:
        if link.a in succ or link.b in pred:
            continue
        if reaches(link.b, link.a):
            continue
        succ[link.a] = link
        pred[link.b] = link

    scaffolds: list[Scaffold] = []
    placed: set[int] = set()
    for idx in range(len(contigs)):
        if idx in placed or idx in pred:
            continue
        entries: list[tuple[int, bool]] = [(idx, False)]
        gaps: list[float] = []
        placed.add(idx)
        cur = idx
        while cur in succ:
            link = succ[cur]
            entries.append((link.b, link.b_flipped))
            gaps.append(link.gap)
            placed.add(link.b)
            cur = link.b
        scaffolds.append(Scaffold(entries=tuple(entries), gaps=tuple(gaps)))
    return scaffolds, links


def scaffold_order_accuracy(
    scaffolds: list[Scaffold], contigs: list[Contig]
) -> float:
    """Fraction of consecutive scaffold pairs whose order matches the
    contigs' true genome coordinates, mirror symmetry modded out per
    scaffold (a scaffold and its reversal are the same object)."""
    correct = total = 0
    for sc in scaffolds:
        pair_truth = [
            contigs[a].true_start < contigs[b].true_start
            for (a, _fa), (b, _fb) in zip(sc.entries, sc.entries[1:])
        ]
        if not pair_truth:
            continue
        hits = sum(pair_truth)
        correct += max(hits, len(pair_truth) - hits)
        total += len(pair_truth)
    return correct / total if total else 0.0
