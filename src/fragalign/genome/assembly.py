"""Greedy overlap-layout assembly (the paper's shotgun phase).

A deliberately classical assembler: index read prefixes by k-mer,
repeatedly merge the pair with the longest exact suffix–prefix overlap
(≥ ``min_overlap``), normalizing read strands greedily.  It is a
substrate, not a contribution — enough to turn error-free (or lightly
erroneous) simulated reads into contigs so the full pipeline
genome → reads → contigs → CSR instance is exercised end to end.
"""

from __future__ import annotations

from collections import defaultdict

from fragalign.genome.dna import reverse_complement
from fragalign.genome.shotgun import Read
from fragalign.util.errors import InstanceError

__all__ = ["greedy_assemble", "exact_overlap"]


def exact_overlap(a: str, b: str, min_overlap: int) -> int:
    """Length of the longest suffix of ``a`` equal to a prefix of ``b``
    (0 when shorter than ``min_overlap``)."""
    max_olap = min(len(a), len(b))
    for olap in range(max_olap, min_overlap - 1, -1):
        if a[-olap:] == b[:olap]:
            return olap
    return 0


def _dedupe_contained(seqs: list[str]) -> list[str]:
    """Drop sequences contained in another (or its reverse complement)."""
    seqs = sorted(set(seqs), key=len, reverse=True)
    kept: list[str] = []
    for s in seqs:
        rc = reverse_complement(s)
        if any(s in k or rc in k for k in kept):
            continue
        kept.append(s)
    return kept


def greedy_assemble(
    reads: list[Read],
    min_overlap: int = 20,
    k: int = 16,
    max_rounds: int | None = None,
) -> list[str]:
    """Assemble reads into contigs by greedy exact-overlap merging.

    Both strands are considered: each merge may reverse-complement a
    sequence to fit.  k-mer seeding keeps candidate pairs near-linear
    for realistic coverage.
    """
    if min_overlap < 4:
        raise InstanceError("min_overlap too small to be meaningful")
    k = min(k, min_overlap)
    seqs = _dedupe_contained([r.sequence for r in reads])
    rounds = 0
    while len(seqs) > 1:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            break
        # Index: k-mer at prefix of each sequence (both strands).
        prefix_index: dict[str, list[tuple[int, bool]]] = defaultdict(list)
        oriented: list[tuple[str, str]] = []  # (fwd, rc)
        for idx, s in enumerate(seqs):
            rc = reverse_complement(s)
            oriented.append((s, rc))
            prefix_index[s[:k]].append((idx, False))
            prefix_index[rc[:k]].append((idx, True))
        best: tuple[int, int, bool, int, bool] | None = None
        # (overlap, i, i_rev, j, j_rev): suffix of i-oriented onto
        # prefix of j-oriented.
        for i, (fwd, rc) in enumerate(oriented):
            for i_rev, s in ((False, fwd), (True, rc)):
                if len(s) < k:
                    continue
                # candidate js whose prefix k-mer occurs in s
                seen: set[tuple[int, bool]] = set()
                for pos in range(0, len(s) - k + 1):
                    kmer = s[pos : pos + k]
                    for j, j_rev in prefix_index.get(kmer, ()):
                        if j == i or (j, j_rev) in seen:
                            continue
                        seen.add((j, j_rev))
                        t = oriented[j][1] if j_rev else oriented[j][0]
                        olap = exact_overlap(s, t, min_overlap)
                        if olap and (best is None or olap > best[0]):
                            best = (olap, i, i_rev, j, j_rev)
        if best is None:
            break
        olap, i, i_rev, j, j_rev = best
        s = oriented[i][1] if i_rev else oriented[i][0]
        t = oriented[j][1] if j_rev else oriented[j][0]
        merged = s + t[olap:]
        keep = [x for idx, x in enumerate(seqs) if idx not in (i, j)]
        keep.append(merged)
        seqs = _dedupe_contained(keep)
    return sorted(seqs, key=len, reverse=True)
