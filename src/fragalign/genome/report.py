"""Human-readable orient/order inference reports (the Fig.-1 output).

Turns a CSR solution back into the statements the paper's introduction
draws by hand: *"we infer that m1 precedes m2ᴿ, relative to the
orientation in which h is given"* — per island, with the explicit
caveat that distances cannot be inferred (footnote 1: unlike
scaffolds, islands carry no distance information).
"""

from __future__ import annotations

from dataclasses import dataclass

from fragalign.core.solution import CSRSolution

__all__ = ["Inference", "infer_relations", "format_report"]


@dataclass(frozen=True)
class Inference:
    """One inferred relation between two same-species fragments."""

    species: str
    first: int  # fid
    first_flipped: bool
    second: int
    second_flipped: bool
    island: int

    def render(self, names: dict[tuple[str, int], str] | None = None) -> str:
        def nm(fid: int, flipped: bool) -> str:
            base = (
                names.get((self.species, fid))
                if names
                else f"{self.species.lower()}{fid + 1}"
            ) or f"{self.species.lower()}{fid + 1}"
            return base + ("ᴿ" if flipped else "")

        return (
            f"{nm(self.first, self.first_flipped)} precedes "
            f"{nm(self.second, self.second_flipped)}"
        )


def infer_relations(solution: CSRSolution) -> list[Inference]:
    """All pairwise order/orient inferences the solution supports.

    Only *same-island* relations are reported — across islands the
    alignments say nothing (that is the paper's island definition).
    Consecutive (not all transitive) pairs are emitted, per species.
    """
    inferences: list[Inference] = []
    pos = {
        "H": {fid: (slot, rev) for slot, (fid, rev) in enumerate(solution.arr_h.order)},
        "M": {fid: (slot, rev) for slot, (fid, rev) in enumerate(solution.arr_m.order)},
    }
    for island_idx, island in enumerate(solution.state.islands()):
        for species in ("H", "M"):
            members = sorted(
                (fid for sp, fid in island if sp == species),
                key=lambda f: pos[species][f][0],
            )
            for a, b in zip(members, members[1:]):
                inferences.append(
                    Inference(
                        species=species,
                        first=a,
                        first_flipped=pos[species][a][1],
                        second=b,
                        second_flipped=pos[species][b][1],
                        island=island_idx,
                    )
                )
    return inferences


def format_report(
    solution: CSRSolution,
    names: dict[tuple[str, int], str] | None = None,
) -> str:
    """The full textual report, island by island."""
    lines = [
        f"Orient/order inference ({solution.algorithm}, "
        f"score {solution.score:g})",
    ]
    islands = solution.state.islands()
    if not islands:
        lines.append("  no islands — the alignments support no inference")
        return "\n".join(lines)
    relations = infer_relations(solution)
    for idx, island in enumerate(islands):
        members = ", ".join(
            f"{sp.lower()}{fid + 1}" for sp, fid in sorted(island)
        )
        lines.append(f"  island {idx + 1}: {{{members}}}")
        here = [r for r in relations if r.island == idx]
        if not here:
            lines.append("    (single cross-species link; no ordering inside)")
        for rel in here:
            lines.append(f"    {rel.render(names)}")
    lines.append(
        "  note: islands imply no distances between fragments (paper fn. 1)"
    )
    return "\n".join(lines)
