"""Orient/order accuracy metrics against simulation ground truth.

The paper's payoff (Fig. 1) is inferring order and orientation of
contigs from cross-species alignments.  The simulator knows the truth,
so we can score the inference:

* **orientation agreement** — for every (h-contig, m-contig) pair that
  shares a conserved block and sits in one island of the solution, the
  predicted relative orientation (XOR of the arrangement flags) is
  compared with the true one (XOR of the block strands within the two
  contigs);
* **pairwise order accuracy** — for every pair of same-island
  m-contigs, the predicted relative order (positions in the M
  arrangement) is compared with the true ancestral order of their
  blocks; the global mirror symmetry (a conjecture and its reversal
  are equivalent) is modded out by taking the better of the two
  readings.
"""

from __future__ import annotations

from dataclasses import dataclass

from fragalign.core.conjecture import Arrangement
from fragalign.core.solution import CSRSolution
from fragalign.genome.shotgun import Contig

__all__ = ["OrientOrderReport", "evaluate_solution"]


@dataclass(frozen=True)
class OrientOrderReport:
    orientation_accuracy: float
    order_accuracy: float
    n_orientation_checks: int
    n_order_checks: int
    n_islands: int

    def summary(self) -> str:
        return (
            f"orientation {self.orientation_accuracy:.2%} "
            f"({self.n_orientation_checks} checks), "
            f"order {self.order_accuracy:.2%} "
            f"({self.n_order_checks} pairs), "
            f"{self.n_islands} islands"
        )


def _arrangement_info(arr: Arrangement) -> tuple[dict[int, int], dict[int, bool]]:
    pos = {}
    flip = {}
    for slot, (fid, rev) in enumerate(arr.order):
        pos[fid] = slot
        flip[fid] = rev
    return pos, flip


def evaluate_solution(
    solution: CSRSolution,
    h_contigs: list[Contig],
    m_contigs: list[Contig],
) -> OrientOrderReport:
    h_pos, h_flip = _arrangement_info(solution.arr_h)
    m_pos, m_flip = _arrangement_info(solution.arr_m)
    islands = solution.state.islands()

    # Block lookup per contig.
    h_blocks = {i: {b.block_id: b for b in c.blocks} for i, c in enumerate(h_contigs)}
    m_blocks = {j: {b.block_id: b for b in c.blocks} for j, c in enumerate(m_contigs)}

    orient_ok = orient_total = 0
    for island in islands:
        hs = [fid for sp, fid in island if sp == "H"]
        ms = [fid for sp, fid in island if sp == "M"]
        for hi in hs:
            for mj in ms:
                shared = set(h_blocks.get(hi, {})) & set(m_blocks.get(mj, {}))
                for bid in shared:
                    true_rel = (
                        h_blocks[hi][bid].reversed ^ m_blocks[mj][bid].reversed
                    )
                    pred_rel = h_flip[hi] ^ m_flip[mj]
                    orient_total += 1
                    if true_rel == pred_rel:
                        orient_ok += 1

    # Order: ancestral position of an m-contig = mean block id it holds.
    def anchor(mj: int) -> float | None:
        blocks = m_blocks.get(mj, {})
        if not blocks:
            return None
        return sum(blocks) / len(blocks)

    order_votes = []
    for island in islands:
        ms = sorted(
            (fid for sp, fid in island if sp == "M"), key=lambda f: m_pos[f]
        )
        for a_idx in range(len(ms)):
            for b_idx in range(a_idx + 1, len(ms)):
                a, b = ms[a_idx], ms[b_idx]
                ka, kb = anchor(a), anchor(b)
                if ka is None or kb is None or ka == kb:
                    continue
                order_votes.append(ka < kb)
    if order_votes:
        direct = sum(order_votes) / len(order_votes)
        order_acc = max(direct, 1.0 - direct)  # mirror symmetry
    else:
        order_acc = 0.0

    return OrientOrderReport(
        orientation_accuracy=orient_ok / orient_total if orient_total else 0.0,
        order_accuracy=order_acc,
        n_orientation_checks=orient_total,
        n_order_checks=len(order_votes),
        n_islands=len(islands),
    )
