"""Shotgun sequencing and contig models (§1's assembly phase).

Two entry points:

* :func:`sample_reads` — random reads at a target coverage with a
  per-base error rate, for the greedy assembler
  (:mod:`fragalign.genome.assembly`);
* :func:`fragment_into_contigs` — the *incomplete sequencing* model
  the paper's introduction describes: the genome is covered by contigs
  separated by unsequenced holes, with the order and orientation of
  the contigs then deliberately forgotten (that is the problem input).
"""

from __future__ import annotations

from dataclasses import dataclass

from fragalign.genome.dna import mutate, reverse_complement
from fragalign.genome.evolution import PlacedBlock, SpeciesGenome
from fragalign.util.errors import InstanceError
from fragalign.util.rng import RngLike, as_generator

__all__ = ["Read", "Contig", "sample_reads", "fragment_into_contigs"]


@dataclass(frozen=True)
class Read:
    """One shotgun read with its (ground-truth) origin."""

    sequence: str
    start: int
    reversed: bool


@dataclass(frozen=True)
class Contig:
    """A contig with ground truth: source interval, orientation, and
    the conserved blocks it (partially) contains."""

    name: str
    sequence: str
    true_start: int
    true_end: int
    true_reversed: bool
    blocks: tuple[PlacedBlock, ...]  # block coords relative to contig

    def __len__(self) -> int:
        return len(self.sequence)


def sample_reads(
    genome: str,
    read_len: int = 100,
    coverage: float = 5.0,
    error_rate: float = 0.0,
    rng: RngLike = None,
    both_strands: bool = True,
) -> list[Read]:
    """Uniform shotgun reads at the requested coverage."""
    if read_len > len(genome):
        raise InstanceError("read length exceeds genome length")
    gen = as_generator(rng)
    n_reads = int(coverage * len(genome) / read_len)
    reads: list[Read] = []
    for _ in range(n_reads):
        start = int(gen.integers(0, len(genome) - read_len + 1))
        seq = genome[start : start + read_len]
        if error_rate > 0:
            seq = mutate(seq, sub_rate=error_rate, rng=gen)
        rev = both_strands and gen.random() < 0.5
        if rev:
            seq = reverse_complement(seq)
        reads.append(Read(sequence=seq, start=start, reversed=rev))
    return reads


def fragment_into_contigs(
    species: SpeciesGenome,
    n_contigs: int = 4,
    hole_fraction: float = 0.1,
    flip_prob: float = 0.5,
    shuffle: bool = True,
    rng: RngLike = None,
    name_prefix: str = "c",
) -> list[Contig]:
    """Cut a genome into contigs with unsequenced holes between them,
    then forget order/orientation (flip and shuffle).

    Ground truth (source interval, strand, contained blocks) rides
    along on each contig for the evaluation metrics.
    """
    genome = species.sequence
    L = len(genome)
    if n_contigs < 1 or n_contigs > L:
        raise InstanceError("bad contig count")
    gen = as_generator(rng)
    hole = int(hole_fraction * L / max(1, n_contigs))
    # Cut points: n_contigs segments of roughly equal length.
    bounds = [round(i * L / n_contigs) for i in range(n_contigs + 1)]
    contigs: list[Contig] = []
    for idx in range(n_contigs):
        s = bounds[idx] + (hole // 2 if idx > 0 else 0)
        e = bounds[idx + 1] - (hole // 2 if idx + 1 < n_contigs else 0)
        if e - s < 1:
            continue
        seq = genome[s:e]
        rev = gen.random() < flip_prob
        inner_blocks = []
        for b in species.blocks:
            # Keep blocks mostly inside the contig (the paper's model
            # has no partial regions — trim strays at the boundary).
            bs, be = max(b.start, s), min(b.end, e)
            if be - bs < max(20, (b.end - b.start) // 2):
                continue
            if rev:
                cs = e - be
                ce = e - bs
                brev = not b.reversed
            else:
                cs = bs - s
                ce = be - s
                brev = b.reversed
            inner_blocks.append(
                PlacedBlock(block_id=b.block_id, start=cs, end=ce, reversed=brev)
            )
        if rev:
            seq = reverse_complement(seq)
        inner_blocks.sort(key=lambda b: b.start)
        contigs.append(
            Contig(
                name=f"{name_prefix}{idx}",
                sequence=seq,
                true_start=s,
                true_end=e,
                true_reversed=rev,
                blocks=tuple(inner_blocks),
            )
        )
    if shuffle and len(contigs) > 1:
        perm = [int(x) for x in as_generator(rng).permutation(len(contigs))]
        contigs = [contigs[i] for i in perm]
    return contigs
