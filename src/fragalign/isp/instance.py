"""Interval Selection Problem (ISP) instances.

The paper (§3.4) reduces 1-CSR to ISP: given a set A of integer
intervals and a profit function p(k, I) ≥ 0, select at most one
interval per index k so that selected intervals are pairwise disjoint
and total profit is maximal.  Here an instance is a flat list of
*items* (index, interval, profit); an index may carry many candidate
intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from fragalign.util.errors import InstanceError
from fragalign.util.rng import RngLike, as_generator

__all__ = [
    "ISPItem",
    "ISPInstance",
    "random_instance",
    "staircase_instance",
    "clustered_instance",
]


@dataclass(frozen=True, order=True)
class ISPItem:
    """One selectable (index, interval, profit) triple.

    Intervals are half-open ``[start, end)`` over the integers; two
    items conflict if their intervals overlap or their indices match.
    """

    index: int
    start: int
    end: int
    profit: float

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise InstanceError(f"empty interval [{self.start}, {self.end})")
        if self.profit < 0:
            raise InstanceError("ISP profits must be non-negative")

    def overlaps(self, other: "ISPItem") -> bool:
        return self.start < other.end and other.start < self.end

    def conflicts(self, other: "ISPItem") -> bool:
        return self.index == other.index or self.overlaps(other)


@dataclass(frozen=True)
class ISPInstance:
    """An immutable bag of :class:`ISPItem` plus convenience queries."""

    items: tuple[ISPItem, ...]

    @staticmethod
    def build(items: Iterable[ISPItem]) -> "ISPInstance":
        return ISPInstance(tuple(items))

    @property
    def indices(self) -> set[int]:
        return {it.index for it in self.items}

    def total_profit(self, chosen: Sequence[ISPItem]) -> float:
        return float(sum(it.profit for it in chosen))

    def is_feasible(self, chosen: Sequence[ISPItem]) -> bool:
        """Pairwise-disjoint intervals and at most one item per index."""
        seen_idx: set[int] = set()
        ordered = sorted(chosen, key=lambda it: it.start)
        prev_end = None
        for it in ordered:
            if it.index in seen_idx:
                return False
            seen_idx.add(it.index)
            if prev_end is not None and it.start < prev_end:
                return False
            prev_end = it.end
        return True


def random_instance(
    n_items: int,
    n_indices: int,
    horizon: int = 100,
    max_len: int = 20,
    max_profit: float = 10.0,
    rng: RngLike = None,
) -> ISPInstance:
    """Uniform random items: the bread-and-butter test distribution."""
    gen = as_generator(rng)
    items = []
    for _ in range(n_items):
        start = int(gen.integers(0, max(1, horizon - 1)))
        length = int(gen.integers(1, max_len + 1))
        end = min(horizon, start + length)
        if end <= start:
            end = start + 1
        items.append(
            ISPItem(
                index=int(gen.integers(0, n_indices)),
                start=start,
                end=end,
                profit=float(gen.uniform(0.0, max_profit)),
            )
        )
    return ISPInstance.build(items)


def staircase_instance(k: int, eps: float = 0.01) -> ISPInstance:
    """Greedy's nightmare: one long interval barely out-earns each of
    the ``k`` disjoint unit intervals it blocks.

    Profit-greedy takes the long interval (profit 1+eps) while the
    optimum takes the k unit intervals (profit k); TPA recovers ≥ k/2.
    Used by the benches as the "heuristics can be fooled" exhibit the
    paper's introduction argues from.
    """
    if k < 1:
        raise InstanceError("need k >= 1 steps")
    items = [ISPItem(index=0, start=0, end=k, profit=1.0 + eps)]
    for i in range(k):
        items.append(ISPItem(index=i + 1, start=i, end=i + 1, profit=1.0))
    return ISPInstance.build(items)


def clustered_instance(
    n_clusters: int,
    items_per_cluster: int,
    n_indices: int,
    rng: RngLike = None,
) -> ISPInstance:
    """Items piled into narrow time windows: stresses conflict handling
    (many overlaps, repeated indices) rather than packing geometry."""
    gen = as_generator(rng)
    items = []
    for c in range(n_clusters):
        base = c * 10
        for _ in range(items_per_cluster):
            start = base + int(gen.integers(0, 4))
            end = start + 1 + int(gen.integers(0, 5))
            items.append(
                ISPItem(
                    index=int(gen.integers(0, n_indices)),
                    start=start,
                    end=end,
                    profit=float(gen.uniform(0.5, 5.0)),
                )
            )
    return ISPInstance.build(items)
