"""Exact ISP solvers (small instances) — the oracle for ratio tests.

Two regimes:

* all indices distinct → classic weighted interval scheduling DP,
  O(n log n), exact at any size;
* general instances → depth-first branch and bound over items sorted
  by start, pruning with suffix-profit upper bounds.  Exponential in
  the worst case; intended for the ≤ ~30-item instances the tests and
  ratio benchmarks use.
"""

from __future__ import annotations

from bisect import bisect_right

from fragalign.isp.instance import ISPInstance, ISPItem
from fragalign.util.errors import SolverError

__all__ = ["exact_isp", "exact_isp_distinct"]


def exact_isp_distinct(instance: ISPInstance) -> tuple[float, list[ISPItem]]:
    """Weighted interval scheduling; requires pairwise-distinct indices."""
    items = sorted(instance.items, key=lambda it: it.end)
    indices = [it.index for it in items]
    if len(set(indices)) != len(indices):
        raise SolverError("exact_isp_distinct needs distinct indices")
    n = len(items)
    ends = [it.end for it in items]
    # pred[i]: number of items ending at or before items[i].start
    dp = [0.0] * (n + 1)
    take: list[bool] = [False] * n
    pred = [bisect_right(ends, it.start) for it in items]
    for i in range(1, n + 1):
        skip = dp[i - 1]
        grab = items[i - 1].profit + dp[pred[i - 1]]
        if grab > skip:
            dp[i] = grab
            take[i - 1] = True
        else:
            dp[i] = skip
    chosen: list[ISPItem] = []
    i = n
    while i > 0:
        if take[i - 1]:
            chosen.append(items[i - 1])
            i = pred[i - 1]
        else:
            i -= 1
    chosen.reverse()
    return dp[n], chosen


def exact_isp(
    instance: ISPInstance, max_items: int = 40
) -> tuple[float, list[ISPItem]]:
    """Exact optimum via branch and bound.

    Items are processed in start order; the state is (next item,
    selection end time, used indices).  The bound is the total profit
    of items not yet considered — loose but cheap, and adequate at
    oracle sizes.  ``max_items`` guards against accidental misuse on
    large instances.
    """
    items = sorted(instance.items, key=lambda it: (it.start, it.end))
    n = len(items)
    if n > max_items:
        raise SolverError(
            f"exact_isp is for small instances (n={n} > max_items={max_items})"
        )
    indices = [it.index for it in items]
    if len(set(indices)) == n:
        return exact_isp_distinct(instance)
    suffix = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix[i] = suffix[i + 1] + items[i].profit

    best_profit = 0.0
    best_set: list[ISPItem] = []
    current: list[ISPItem] = []

    def dfs(i: int, free_from: int, used: frozenset[int], profit: float) -> None:
        nonlocal best_profit, best_set
        if profit > best_profit:
            best_profit = profit
            best_set = list(current)
        if i >= n or profit + suffix[i] <= best_profit:
            return
        item = items[i]
        # Branch 1: take item i (if feasible).
        if item.start >= free_from and item.index not in used:
            current.append(item)
            dfs(i + 1, item.end, used | {item.index}, profit + item.profit)
            current.pop()
        # Branch 2: skip item i.
        dfs(i + 1, free_from, used, profit)

    dfs(0, -(10**18), frozenset(), 0.0)
    return best_profit, best_set
