"""Profit-greedy ISP baseline.

The "existing heuristic" foil: repeatedly take the most profitable
remaining item compatible with the selection.  No worst-case guarantee
(the staircase family drives its ratio to k); benchmarked against TPA
to illustrate the paper's argument for principled approximation.
"""

from __future__ import annotations

from fragalign.isp.instance import ISPInstance, ISPItem

__all__ = ["greedy_isp"]


def greedy_isp(instance: ISPInstance) -> tuple[float, list[ISPItem]]:
    chosen: list[ISPItem] = []
    used_idx: set[int] = set()
    for item in sorted(
        instance.items, key=lambda it: (-it.profit, it.start, it.end, it.index)
    ):
        if item.index in used_idx:
            continue
        if any(item.overlaps(c) for c in chosen):
            continue
        chosen.append(item)
        used_idx.add(item.index)
    chosen.sort(key=lambda it: it.start)
    return instance.total_profit(chosen), chosen
