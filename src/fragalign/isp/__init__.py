"""Interval Selection Problem substrate (paper §3.4)."""

from fragalign.isp.exact import exact_isp, exact_isp_distinct
from fragalign.isp.greedy import greedy_isp
from fragalign.isp.instance import (
    ISPInstance,
    ISPItem,
    clustered_instance,
    random_instance,
    staircase_instance,
)
from fragalign.isp.tpa import tpa, tpa_select

__all__ = [
    "exact_isp",
    "exact_isp_distinct",
    "greedy_isp",
    "ISPInstance",
    "ISPItem",
    "clustered_instance",
    "random_instance",
    "staircase_instance",
    "tpa",
    "tpa_select",
]
