"""The Berman–DasGupta two-phase algorithm (TPA) for ISP.

Reference: P. Berman, B. DasGupta, "Multi-phase algorithms for
throughput maximization for real-time scheduling", J. Comb. Optim.
4(3):307–323, 2000 — cited by the paper as the ratio-2, O(n log n)
algorithm its TPA(B, S) subroutine runs.

Phase 1 (evaluation): process items by non-decreasing right endpoint,
assign each item the *value* v(J) = p(J) − Σ v(I) over already-stacked
conflicting items I, and push J iff v(J) > 0.

Phase 2 (selection): pop the stack (non-increasing right endpoint) and
greedily keep every item compatible with the current selection.

The selection is feasible and its profit is at least half the optimum.
Two implementations share phase 2: a quadratic transparent one and an
O(n log n) one using a Fenwick tree over *reversed* right-endpoint
ranks, so the overlap sum Σ v(I) over stacked I with I.end > J.start
is a single suffix query that adds exactly the conflicting stacked
values — never a subtraction of near-equal totals, which would
catastrophically cancel tiny values (e.g. a 2.22e-16 profit pushed
after a 2.0 one would vanish from ``pushed_total - prefix``).  A
per-index ledger supplies the same-index, non-overlapping sums; the
two implementations are equal by construction (and by test).
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from fragalign.isp.instance import ISPInstance, ISPItem

__all__ = ["tpa", "tpa_select"]


class _SuffixFenwick:
    """Fenwick tree answering suffix sums over compressed coordinates.

    Values are stored at *reversed* positions so ``suffix(pos)`` — the
    sum of values at positions [pos, size) — is an ordinary prefix
    query.  Summing the wanted values directly (instead of subtracting
    a prefix from a running total) keeps tiny summands exact.
    """

    def __init__(self, size: int) -> None:
        self._size = size
        self._tree = np.zeros(size + 1)

    def add(self, pos: int, value: float) -> None:
        i = self._size - pos  # 1-based rank in reversed order
        while i <= self._size:
            self._tree[i] += value
            i += i & (-i)

    def suffix(self, pos: int) -> float:
        """Sum of values at positions [pos, size)."""
        total = 0.0
        i = self._size - pos
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return float(total)


def _phase1_naive(items: list[ISPItem]) -> list[tuple[ISPItem, float]]:
    stack: list[tuple[ISPItem, float]] = []
    for j in items:
        total = sum(v for i, v in stack if i.conflicts(j))
        value = j.profit - total
        if value > 0:
            stack.append((j, value))
    return stack


def _phase1_fast(items: list[ISPItem]) -> list[tuple[ISPItem, float]]:
    # Compress right endpoints for the Fenwick tree.
    ends = sorted({it.end for it in items})
    rank = {e: r for r, e in enumerate(ends)}
    fen = _SuffixFenwick(len(ends))
    # Per-index ledger: sorted ends + cumulative values, so the sum of
    # *non-overlapping* same-index stacked items (end <= start) is a
    # bisect plus one subtraction.  Overlapping same-index items are
    # already counted by the Fenwick overlap query.
    ledger_ends: dict[int, list[int]] = {}
    ledger_cum: dict[int, list[float]] = {}
    stack: list[tuple[ISPItem, float]] = []
    for j in items:
        # Stacked I all have I.end <= j.end, so I overlaps j iff
        # I.end > j.start: a suffix query over end-ranks > j.start.
        overlap_sum = fen.suffix(bisect_right(ends, j.start))
        le = ledger_ends.get(j.index)
        same_idx_sum = 0.0
        if le:
            k = bisect_right(le, j.start)
            if k > 0:
                same_idx_sum = ledger_cum[j.index][k - 1]
        value = j.profit - overlap_sum - same_idx_sum
        if value > 0:
            stack.append((j, value))
            fen.add(rank[j.end], value)
            if le is None:
                ledger_ends[j.index] = [j.end]
                ledger_cum[j.index] = [value]
            else:
                # ends arrive non-decreasing, so append keeps order
                le.append(j.end)
                cum = ledger_cum[j.index]
                cum.append(cum[-1] + value)
    return stack


def _phase2(stack: list[tuple[ISPItem, float]]) -> list[ISPItem]:
    chosen: list[ISPItem] = []
    min_start = None
    used_idx: set[int] = set()
    for item, _v in reversed(stack):
        # item.end <= end of everything already chosen, so it overlaps
        # the selection iff it sticks past the leftmost chosen start.
        if item.index in used_idx:
            continue
        if min_start is not None and item.end > min_start:
            continue
        chosen.append(item)
        used_idx.add(item.index)
        min_start = item.start if min_start is None else min(min_start, item.start)
    chosen.reverse()
    return chosen


def tpa(instance: ISPInstance, fast: bool = True) -> list[ISPItem]:
    """Run the two-phase algorithm; returns the selected items.

    Guarantees (tested): the selection is feasible, and its profit is
    ≥ OPT/2.  ``fast=False`` switches to the transparent quadratic
    phase 1 (identical output).
    """
    items = sorted(
        instance.items, key=lambda it: (it.end, it.start, it.index, -it.profit)
    )
    stack = _phase1_fast(items) if fast else _phase1_naive(items)
    return _phase2(stack)


def tpa_select(instance: ISPInstance, fast: bool = True) -> tuple[float, list[ISPItem]]:
    """Convenience wrapper returning (profit, items)."""
    chosen = tpa(instance, fast=fast)
    return instance.total_profit(chosen), chosen
