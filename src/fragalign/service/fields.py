"""The request-field registry: one source of truth for the knob schema.

Every per-request knob the serving stack understands — ``mode``,
``band``, ``gap_open``, ``gap_extend``, ``memory`` — used to be
re-enumerated by hand in five places: the wire protocol's request
parser, the micro-batcher's group key, the server's result-cache key,
the cluster ring's routing key, and the warm-keyset file format.  Any
new knob had to be threaded through all of them identically, and
nothing checked that it was.

This module is now the single registry those layers consume.  Each
:class:`FieldSpec` says where its field participates:

``cache_key``
    Part of the server's LRU result-cache key — fields that change
    the *result*.  ``memory`` is deliberately not one of them: the
    linear walker returns byte-identical alignments, so one cached
    entry serves every memory strategy.
``ring_key``
    Part of the cluster routing key.  **Invariant:** identical to the
    cache-key set (asserted below) — routing must agree with caching
    or per-shard caches stop being disjoint.
``group_key``
    Part of the micro-batcher's dispatch-group key — fields that
    change how a batch is *executed* (``memory`` is one: a group is
    dispatched as a single engine call, which takes one memory
    strategy).
``keyset``
    Allowed in warm-keyset files (:mod:`fragalign.cluster.warm`).
``cli_flag``
    The command-line spelling on the serving verbs.

The static analyzer (:mod:`fragalign.analysis`, rule family
``knob-propagation``) parses ``_SPECS`` out of this file's AST and
verifies every consumer site covers exactly the registered fields —
so a knob added here without being wired through, or wired somewhere
without being registered, fails ``fragalign check`` (and CI).

NOTE: ``_SPECS`` must stay a **pure literal** (no computed values) so
the analyzer can read it without importing anything.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FieldSpec",
    "REQUEST_FIELDS",
    "FIELD_NAMES",
    "cache_key_fields",
    "ring_key_fields",
    "group_key_fields",
    "keyset_fields",
    "cli_flags",
    "coerce",
]


@dataclass(frozen=True)
class FieldSpec:
    """One registered request knob and where it participates."""

    name: str
    kind: str  # wire type: "str" | "int" | "float"
    ops: tuple[str, ...]  # pair ops the field applies to
    cache_key: bool
    ring_key: bool
    group_key: bool
    keyset: bool
    cli_flag: str
    doc: str


# Pure literal — parsed out of the AST by fragalign.analysis.
_SPECS = (
    {
        "name": "mode",
        "kind": "str",
        "ops": ("score", "align"),
        "cache_key": True,
        "ring_key": True,
        "group_key": True,
        "keyset": True,
        "cli_flag": "--mode",
        "doc": "alignment mode: global, local, overlap or banded",
    },
    {
        "name": "band",
        "kind": "int",
        "ops": ("score", "align"),
        "cache_key": True,
        "ring_key": True,
        "group_key": True,
        "keyset": True,
        "cli_flag": "--band",
        "doc": "banded-mode half-width (>= abs(len(a) - len(b)))",
    },
    {
        "name": "gap_open",
        "kind": "float",
        "ops": ("score", "align"),
        "cache_key": True,
        "ring_key": True,
        "group_key": True,
        "keyset": True,
        "cli_flag": "--gap-open",
        "doc": "affine (Gotoh) gap-open cost; requires gap_extend",
    },
    {
        "name": "gap_extend",
        "kind": "float",
        "ops": ("score", "align"),
        "cache_key": True,
        "ring_key": True,
        "group_key": True,
        "keyset": True,
        "cli_flag": "--gap-extend",
        "doc": "affine (Gotoh) gap-extend cost; requires gap_open",
    },
    {
        "name": "memory",
        "kind": "str",
        "ops": ("align",),
        "cache_key": False,  # byte-identical results: cache entries are shared
        "ring_key": False,  # ...and routing mirrors the cache key
        "group_key": True,  # but one engine batch runs one strategy
        "keyset": True,
        "cli_flag": "--memory",
        "doc": "align traceback strategy: auto, tensor or linear",
    },
    {
        "name": "backend",
        "kind": "str",
        "ops": ("score", "align"),
        "cache_key": False,  # backends are parity-tested: same scores,
        "ring_key": False,  # ...so cache entries and routing are shared
        "group_key": True,  # but one engine batch runs on one backend
        "keyset": True,
        "cli_flag": "--backend",
        "doc": "engine backend for this request: numpy, native, naive or parallel",
    },
    # Trace context (fragalign.obs.trace) rides the wire as
    # *non-semantic* fields: every participation flag is off, so the
    # knob-propagation rule proves tracing can never split a batch,
    # enter a cache or routing key, or appear in a warm keyset —
    # observability only annotates, it never changes identity.
    {
        "name": "trace_id",
        "kind": "str",
        "ops": ("score", "align"),
        "cache_key": False,  # non-semantic: never part of result identity
        "ring_key": False,  # ...nor of routing
        "group_key": False,  # ...and never splits an engine batch
        "keyset": False,
        "cli_flag": "--trace",
        "doc": "distributed-trace id (non-semantic; see fragalign.obs)",
    },
    {
        "name": "span_id",
        "kind": "str",
        "ops": ("score", "align"),
        "cache_key": False,
        "ring_key": False,
        "group_key": False,
        "keyset": False,
        "cli_flag": "--trace",  # one flag turns both wire fields on
        "doc": "caller's span id — becomes the server span's parent",
    },
    # The end-to-end deadline (fragalign.resilience) is likewise
    # non-semantic: the remaining budget changes *whether* a request is
    # answered, never *what* the answer is, so every participation flag
    # is off — the analyzer proves a deadline can't split a batch or
    # poison a cache/ring key.
    {
        "name": "deadline_ms",
        "kind": "float",
        "ops": ("score", "align"),
        "cache_key": False,  # non-semantic: budget never changes the result
        "ring_key": False,  # ...nor where it is computed
        "group_key": False,  # ...and never splits an engine batch
        "keyset": False,
        "cli_flag": "--deadline-ms",
        "doc": "remaining end-to-end budget in ms (non-semantic; see fragalign.resilience)",
    },
)

REQUEST_FIELDS: tuple[FieldSpec, ...] = tuple(FieldSpec(**spec) for spec in _SPECS)
FIELD_NAMES: tuple[str, ...] = tuple(f.name for f in REQUEST_FIELDS)

_COERCE = {"str": str, "int": int, "float": float}


def cache_key_fields() -> tuple[str, ...]:
    """Fields of the server result-cache key, in registry order."""
    return tuple(f.name for f in REQUEST_FIELDS if f.cache_key)


def ring_key_fields() -> tuple[str, ...]:
    """Fields of the cluster routing key, in registry order."""
    return tuple(f.name for f in REQUEST_FIELDS if f.ring_key)


def group_key_fields() -> tuple[str, ...]:
    """Fields of the micro-batcher dispatch-group key, in registry order."""
    return tuple(f.name for f in REQUEST_FIELDS if f.group_key)


def keyset_fields() -> tuple[str, ...]:
    """Fields a warm-keyset entry may carry, in registry order."""
    return tuple(f.name for f in REQUEST_FIELDS if f.keyset)


def cli_flags() -> tuple[str, ...]:
    """The registered command-line flag spellings, in registry order."""
    return tuple(f.cli_flag for f in REQUEST_FIELDS)


def coerce(spec: FieldSpec, value):
    """Coerce a wire/keyset value to the field's registered kind."""
    return _COERCE[spec.kind](value)


# Routing must agree with caching, or the per-shard LRU caches stop
# being disjoint partitions of the keyspace (see cluster/ring.py).
assert cache_key_fields() == ring_key_fields(), (
    "ring-key fields must mirror cache-key fields"
)
