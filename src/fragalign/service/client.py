"""Client library for the alignment service (async and sync).

:class:`AsyncAlignmentClient` speaks the JSON-lines protocol over one
connection and **pipelines**: many requests can be in flight at once,
and a reader task routes each response back to its awaiting caller by
``id``.  Firing requests concurrently from one client is exactly what
lets the server's micro-batcher fill batches.

:class:`AlignmentClient` is the blocking wrapper: it runs a private
event loop on a background thread and exposes plain methods, plus
``score_many``/``align_many`` batch helpers that fan out with a
concurrency bound (the CLI load generator is built on these).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Sequence

from fragalign.align.pairwise import Alignment
from fragalign.obs.trace import TraceContext
from fragalign.service.protocol import (
    MAX_LINE,
    alignment_from_dict,
    decode_line,
    encode_line,
    service_error_from,
)

__all__ = ["AsyncAlignmentClient", "AlignmentClient"]


class AsyncAlignmentClient:
    """One pipelined connection to a running alignment service."""

    # Bound on a response-write drain: a server that stops reading for
    # this long is treated as a connection failure, not waited on.
    WRITE_TIMEOUT = 30.0

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._waiting: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._conn_error: Exception | None = None
        self.degraded_responses = 0  # answers flagged degraded by the server
        self._reader_task = asyncio.create_task(self._read_responses())

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 8765,
        connect_timeout: float = 10.0,
    ) -> "AsyncAlignmentClient":
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port, limit=MAX_LINE),
            timeout=connect_timeout,
        )
        return cls(reader, writer)

    @property
    def closed(self) -> bool:
        """True once the connection is unusable (reader task finished:
        server closed the stream, or :meth:`close` ran)."""
        return self._reader_task.done()

    # -- response routing ---------------------------------------------

    async def _read_responses(self) -> None:
        error: Exception = ConnectionError("connection closed by server")
        try:
            while True:
                # io-timeout: response arrival is unbounded by design; per-request bounds live in the router
                line = await self._reader.readline()
                if not line:
                    break
                obj = decode_line(line)
                fut = self._waiting.pop(obj.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(obj)
        except Exception as exc:  # feed the failure to every waiter
            error = exc
        finally:
            # Runs even when the task is *cancelled* (close() racing
            # in-flight requests): every waiter must be released, or a
            # request sharing this client would hang forever.  The
            # stored error also makes requests issued after the close
            # fail fast instead of writing into a dead socket.
            self._conn_error = error
            for fut in self._waiting.values():
                if not fut.done():
                    fut.set_exception(error)
            self._waiting.clear()

    async def _request(self, op: str, **fields: Any) -> dict:
        if self._reader_task.done():
            # The connection is gone (server closed mid-stream, or we
            # closed): surface a clean error instead of writing into a
            # dead socket and awaiting a response nobody will route.
            raise self._conn_error or ConnectionError("client connection closed")
        rid = self._next_id
        self._next_id += 1
        fut = asyncio.get_running_loop().create_future()
        self._waiting[rid] = fut
        payload = {k: v for k, v in fields.items() if v is not None}
        try:
            self._writer.write(encode_line({"id": rid, "op": op, **payload}))
            # Bounded: a server that stopped reading must fail this
            # request, not pin it forever.
            await asyncio.wait_for(self._writer.drain(), timeout=self.WRITE_TIMEOUT)
            response = await fut
        except BaseException:
            # Any exit — send failure, cancellation of a timed-out or
            # abandoned attempt — must clear the slot and observe the
            # future: a connection error set later on an unobserved
            # future would warn "exception was never retrieved" at GC.
            self._waiting.pop(rid, None)
            if fut.done() and not fut.cancelled():
                fut.exception()
            else:
                fut.cancel()
            raise
        if not response.get("ok"):
            raise service_error_from(response)
        if response.get("degraded"):
            self.degraded_responses += 1
        return response

    # -- operations ---------------------------------------------------
    # mode/band/gap_open/gap_extend (and memory, for align) select the
    # per-request knobs (None = server default); see
    # fragalign.service.protocol for the wire fields.  `trace` is a
    # TraceContext whose trace_id/span_id ride along as non-semantic
    # fields — the server's span tree parents under it.

    async def score(
        self,
        a: str,
        b: str,
        mode: str | None = None,
        band: int | None = None,
        gap_open: float | None = None,
        gap_extend: float | None = None,
        backend: str | None = None,
        trace: TraceContext | None = None,
        deadline_ms: float | None = None,
    ) -> float:
        response = await self._request(
            "score", a=a, b=b, mode=mode, band=band,
            gap_open=gap_open, gap_extend=gap_extend, backend=backend,
            trace_id=trace.trace_id if trace is not None else None,
            span_id=trace.span_id if trace is not None else None,
            deadline_ms=deadline_ms,
        )
        return float(response["result"])

    async def score_detail(
        self,
        a: str,
        b: str,
        mode: str | None = None,
        band: int | None = None,
        gap_open: float | None = None,
        gap_extend: float | None = None,
        backend: str | None = None,
        trace: TraceContext | None = None,
        deadline_ms: float | None = None,
    ) -> tuple[float, bool]:
        """Score plus whether the server answered from its cache."""
        response = await self._request(
            "score", a=a, b=b, mode=mode, band=band,
            gap_open=gap_open, gap_extend=gap_extend, backend=backend,
            trace_id=trace.trace_id if trace is not None else None,
            span_id=trace.span_id if trace is not None else None,
            deadline_ms=deadline_ms,
        )
        return float(response["result"]), bool(response.get("cached"))

    async def align(
        self,
        a: str,
        b: str,
        mode: str | None = None,
        band: int | None = None,
        gap_open: float | None = None,
        gap_extend: float | None = None,
        memory: str | None = None,
        backend: str | None = None,
        trace: TraceContext | None = None,
        deadline_ms: float | None = None,
    ) -> Alignment:
        response = await self._request(
            "align", a=a, b=b, mode=mode, band=band,
            gap_open=gap_open, gap_extend=gap_extend, memory=memory,
            backend=backend,
            trace_id=trace.trace_id if trace is not None else None,
            span_id=trace.span_id if trace is not None else None,
            deadline_ms=deadline_ms,
        )
        return alignment_from_dict(response["result"])

    async def align_detail(
        self,
        a: str,
        b: str,
        mode: str | None = None,
        band: int | None = None,
        gap_open: float | None = None,
        gap_extend: float | None = None,
        memory: str | None = None,
        backend: str | None = None,
        trace: TraceContext | None = None,
        deadline_ms: float | None = None,
    ) -> tuple[Alignment, bool]:
        """Alignment plus whether the server answered from its cache."""
        response = await self._request(
            "align", a=a, b=b, mode=mode, band=band,
            gap_open=gap_open, gap_extend=gap_extend, memory=memory,
            backend=backend,
            trace_id=trace.trace_id if trace is not None else None,
            span_id=trace.span_id if trace is not None else None,
            deadline_ms=deadline_ms,
        )
        return alignment_from_dict(response["result"]), bool(response.get("cached"))

    async def stats(self) -> dict:
        return (await self._request("stats"))["result"]

    async def metrics(self) -> str:
        """The server's Prometheus text exposition (``metrics`` op)."""
        return (await self._request("metrics"))["result"]

    async def slo(self) -> dict:
        """The server's SLO burn-rate evaluation (``slo`` op)."""
        return (await self._request("slo"))["result"]

    async def trace_spans(self, trace_id: str | None = None) -> dict:
        """Drain the server's span ring buffer (``trace`` op).

        With ``trace_id``, only that trace's spans are drained (others
        stay buffered).  Returns ``{"spans": [...], "dropped": n}``.
        """
        return (await self._request("trace", trace_id=trace_id))["result"]

    async def ping(self) -> bool:
        return (await self._request("ping"))["result"] == "pong"

    async def shutdown(self) -> None:
        """Ask the server to stop (it answers, then winds down)."""
        await self._request("shutdown")

    # -- lifecycle ----------------------------------------------------

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        # The close waiter is retrieved via a done-callback rather than
        # only by the await below: if this coroutine is cancelled (or
        # times out) before a broken peer's flush error lands on the
        # waiter, the un-retrieved exception would warn at GC.
        waiter = asyncio.ensure_future(self._writer.wait_closed())
        waiter.add_done_callback(
            lambda t: None if t.cancelled() else t.exception()
        )
        try:
            # Bounded: closing must never hang on a wedged peer.
            await asyncio.wait_for(asyncio.shield(waiter), timeout=5.0)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass

    async def __aenter__(self) -> "AsyncAlignmentClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


class AlignmentClient:
    """Blocking facade over :class:`AsyncAlignmentClient`.

    Runs its own event loop on a daemon thread, so it works from plain
    synchronous code (scripts, the CLI) while still pipelining batch
    calls::

        with AlignmentClient(port=8765) as client:
            s = client.score("ACGT", "AGGT")
            scores = client.score_many(pairs, concurrency=64)

    ``reconnect=True`` opts into transparent recovery from connection
    loss: an operation that fails with a connection-level error
    reconnects (capped exponential backoff, ``reconnect_attempts``
    tries) and retries.  The default stays **fail-fast** — a dead
    connection raises a clean :class:`ConnectionError` — so failover
    logic layered on top (the cluster router, the failover drills)
    keeps seeing failures immediately.  Retried batch operations are
    replayed whole; the server's result cache and in-flight dedup make
    the replayed prefix cheap.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        reconnect: bool = False,
        reconnect_attempts: int = 5,
        reconnect_base_delay: float = 0.05,
        reconnect_max_delay: float = 2.0,
    ) -> None:
        self._host = host
        self._port = port
        self._reconnect = reconnect
        self._reconnect_attempts = reconnect_attempts
        self._reconnect_base_delay = reconnect_base_delay
        self._reconnect_max_delay = reconnect_max_delay
        self.reconnects = 0  # successful transparent reconnections
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="fragalign-client", daemon=True
        )
        self._thread.start()
        try:
            self._client: AsyncAlignmentClient = self._call(
                AsyncAlignmentClient.connect(host, port)
            )
        except BaseException:
            # Connect failed: release the loop thread before re-raising.
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5)
            self._loop.close()
            raise

    def _call(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    @property
    def degraded_responses(self) -> int:
        """Answers the server flagged degraded (resets on reconnect)."""
        return self._client.degraded_responses

    def _with_retry(self, make_coro):
        """Run ``make_coro()`` on the loop; on connection loss, either
        fail fast (default) or reconnect with capped exponential
        backoff and retry the whole operation."""
        import time

        attempts = 0
        delay = self._reconnect_base_delay
        while True:
            try:
                return self._call(make_coro())
            except (ConnectionError, OSError):
                if not self._reconnect or attempts >= self._reconnect_attempts:
                    raise
                attempts += 1
                time.sleep(delay)
                delay = min(delay * 2, self._reconnect_max_delay)
                try:
                    fresh = self._call(
                        AsyncAlignmentClient.connect(self._host, self._port)
                    )
                except (ConnectionError, OSError):
                    continue  # server still down; next attempt backs off more
                old, self._client = self._client, fresh
                self.reconnects += 1
                try:
                    self._call(old.close())
                except Exception:
                    pass

    # -- operations ---------------------------------------------------

    def score(
        self, a, b, mode=None, band=None, gap_open=None, gap_extend=None,
        backend=None, trace=None, deadline_ms=None,
    ) -> float:
        return self._with_retry(
            lambda: self._client.score(
                a, b, mode=mode, band=band, gap_open=gap_open,
                gap_extend=gap_extend, backend=backend, trace=trace,
                deadline_ms=deadline_ms,
            )
        )

    def align(
        self, a, b, mode=None, band=None, gap_open=None, gap_extend=None,
        memory=None, backend=None, trace=None, deadline_ms=None,
    ) -> Alignment:
        return self._with_retry(
            lambda: self._client.align(
                a, b, mode=mode, band=band, gap_open=gap_open,
                gap_extend=gap_extend, memory=memory, backend=backend,
                trace=trace, deadline_ms=deadline_ms,
            )
        )

    def score_detail(
        self, a, b, mode=None, band=None, gap_open=None, gap_extend=None,
        backend=None, trace=None, deadline_ms=None,
    ) -> tuple[float, bool]:
        return self._with_retry(
            lambda: self._client.score_detail(
                a, b, mode=mode, band=band, gap_open=gap_open,
                gap_extend=gap_extend, backend=backend, trace=trace,
                deadline_ms=deadline_ms,
            )
        )

    def align_detail(
        self, a, b, mode=None, band=None, gap_open=None, gap_extend=None,
        memory=None, backend=None, trace=None, deadline_ms=None,
    ) -> tuple[Alignment, bool]:
        return self._with_retry(
            lambda: self._client.align_detail(
                a, b, mode=mode, band=band, gap_open=gap_open,
                gap_extend=gap_extend, memory=memory, backend=backend,
                trace=trace, deadline_ms=deadline_ms,
            )
        )

    def stats(self) -> dict:
        return self._with_retry(lambda: self._client.stats())

    def metrics(self) -> str:
        return self._with_retry(lambda: self._client.metrics())

    def slo(self) -> dict:
        return self._with_retry(lambda: self._client.slo())

    def trace_spans(self, trace_id: str | None = None) -> dict:
        return self._with_retry(lambda: self._client.trace_spans(trace_id=trace_id))

    def ping(self) -> bool:
        return self._with_retry(lambda: self._client.ping())

    def shutdown(self) -> None:
        self._with_retry(lambda: self._client.shutdown())

    def _map(
        self,
        op_name: str,
        pairs: Sequence[tuple[str, str]],
        concurrency: int,
        trace_ctxs: Sequence[TraceContext] | None = None,
        **kwargs,
    ):
        async def fan_out():
            semaphore = asyncio.Semaphore(max(1, concurrency))
            op = getattr(self._client, op_name)

            async def one(k, pair):
                async with semaphore:
                    ctx = trace_ctxs[k] if trace_ctxs is not None else None
                    return await op(*pair, trace=ctx, **kwargs)

            return await asyncio.gather(*(one(k, p) for k, p in enumerate(pairs)))

        return self._with_retry(fan_out)

    def score_many(
        self,
        pairs: Sequence[tuple[str, str]],
        concurrency: int = 32,
        mode: str | None = None,
        band: int | None = None,
        gap_open: float | None = None,
        gap_extend: float | None = None,
        backend: str | None = None,
        trace_ctxs: Sequence[TraceContext] | None = None,
        deadline_ms: float | None = None,
    ) -> list[float]:
        """Scores for all pairs, pipelined ``concurrency`` at a time.

        ``trace_ctxs`` (optional, one per pair) sends each request
        under its own trace context.
        """
        return self._map(
            "score", pairs, concurrency, trace_ctxs=trace_ctxs, mode=mode,
            band=band, gap_open=gap_open, gap_extend=gap_extend,
            backend=backend, deadline_ms=deadline_ms,
        )

    def align_many(
        self,
        pairs: Sequence[tuple[str, str]],
        concurrency: int = 32,
        mode: str | None = None,
        band: int | None = None,
        gap_open: float | None = None,
        gap_extend: float | None = None,
        memory: str | None = None,
        backend: str | None = None,
        trace_ctxs: Sequence[TraceContext] | None = None,
        deadline_ms: float | None = None,
    ) -> list[Alignment]:
        """Alignments for all pairs, pipelined ``concurrency`` at a time."""
        return self._map(
            "align", pairs, concurrency, trace_ctxs=trace_ctxs, mode=mode,
            band=band, gap_open=gap_open, gap_extend=gap_extend, memory=memory,
            backend=backend, deadline_ms=deadline_ms,
        )

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        try:
            self._call(self._client.close())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5)
            self._loop.close()

    def __enter__(self) -> "AlignmentClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
