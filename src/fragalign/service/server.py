"""The asyncio JSON-lines alignment server.

Request flow for ``score``/``align``::

    line → parse → result cache (LRU, keyed on pair+op+mode+model)
         → hit:  answer immediately (cached: true)
         → miss: MicroBatcher.submit → coalesced batch on the engine
                 → cache the wire-form result → answer

Everything runs on one event loop; each connection reads lines and
spawns one task per request, so a single pipelined connection still
fills batches.  Responses are written under a per-connection lock
(they can complete out of order — the protocol's ``id`` field exists
for exactly that).
"""

from __future__ import annotations

import asyncio
import hashlib
import math
import os
import sys
import time
from dataclasses import dataclass, field

from fragalign.align.scoring_matrices import SubstitutionModel
from fragalign.engine.backends import linear_memory_conflict
from fragalign.engine.facade import AlignmentEngine
from fragalign.engine.registry import available_backends
from fragalign.obs.journal import JournalWriter, build_record
from fragalign.obs.kprof import KernelProfiler
from fragalign.obs.logs import get_logger
from fragalign.obs.metrics import MetricsRegistry, parse_exposition
from fragalign.obs.sampling import TailSampler
from fragalign.obs.slo import SLOEngine
from fragalign.obs.trace import (
    Span,
    TraceBuffer,
    Tracer,
    child_context,
    leaf_entry,
    new_trace_context,
)
from fragalign.service.batcher import MicroBatcher
from fragalign.service.fields import cache_key_fields
from fragalign.service.protocol import (
    MAX_LINE,
    ProtocolError,
    alignment_to_dict,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    parse_request,
)
from fragalign.service.stats import ServiceStats
from fragalign.resilience.admission import AdmissionController, estimate_cost
from fragalign.resilience.deadline import deadline_from_budget_ms, expired
from fragalign.util.errors import DeadlineExceeded, Overloaded
from fragalign.util.lru import LRUCache

__all__ = [
    "ServiceConfig",
    "AlignmentService",
    "model_fingerprint",
    "run_server",
    "write_port_file",
    "wait_for_port_file",
]

# Knob fields of the result-cache key, from the shared registry.
# ``memory`` is absent by registration: the linear walker returns
# byte-identical alignments, so one cached entry serves every strategy.
_CACHE_FIELDS = cache_key_fields()  # ("mode", "band", "gap_open", "gap_extend")

_log = get_logger("service")


def write_port_file(path: str, port: int) -> None:
    """Atomically publish the bound port: write a sibling tmp file,
    then ``os.replace`` it into place.

    Readers polling the path can therefore never observe a half-written
    file — they either see nothing (keep polling) or the complete port
    line.  This is what lets ``ClusterSupervisor`` and CI scripts spin
    on the file without a startup race.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        fh.write(f"{port}\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def wait_for_port_file(
    path: str,
    timeout: float = 30.0,
    poll: float = 0.05,
    alive=None,
) -> int:
    """Poll ``path`` until a port appears (written by
    :func:`write_port_file`); return it as an int.

    ``alive`` is an optional zero-argument callable checked each poll
    (e.g. ``process.poll() is None``): when it goes false the wait
    aborts immediately instead of burning the whole timeout on a
    server that already died.

    The timeout is a **hard bound**: a non-positive or non-finite value
    is rejected outright, so no boot path can ever turn this poll into
    an unbounded wait (the supervisor's auto-heal loop depends on every
    respawn attempt terminating).
    """
    if not (isinstance(timeout, (int, float)) and math.isfinite(timeout) and timeout > 0):
        raise ValueError(f"timeout must be a positive finite number, got {timeout!r}")
    if not (isinstance(poll, (int, float)) and math.isfinite(poll) and poll > 0):
        raise ValueError(f"poll must be a positive finite number, got {poll!r}")
    deadline = time.monotonic() + timeout
    while True:
        try:
            with open(path) as fh:
                text = fh.read().strip()
            if text:
                return int(text)
        except (FileNotFoundError, ValueError):
            pass
        if alive is not None and not alive():
            raise RuntimeError(f"server exited before publishing its port to {path}")
        if time.monotonic() >= deadline:
            raise TimeoutError(f"no port appeared in {path} within {timeout:.1f}s")
        time.sleep(poll)


def model_fingerprint(model: SubstitutionModel) -> str:
    """A short stable digest of a substitution model's parameters.

    Part of every result-cache key, so results computed under one
    model can never satisfy a lookup under another.
    """
    digest = hashlib.sha1()
    digest.update(model.matrix.tobytes())
    digest.update(repr(float(model.gap)).encode())
    return digest.hexdigest()[:12]


@dataclass
class ServiceConfig:
    """Server knobs (CLI flags map onto these one-to-one)."""

    host: str = "127.0.0.1"
    port: int = 8765  # 0 = bind an ephemeral port (see AlignmentService.port)
    backend: str = "numpy"
    mode: str = "global"  # default mode; requests may override per call
    band: int | None = None  # default band for banded-mode requests
    gap_open: float | None = None  # default affine gap open (None = linear)
    gap_extend: float | None = None  # default affine gap extend
    memory: str = "auto"  # default align traceback strategy
    max_batch: int = 64  # flush a batch at this many queued jobs
    max_delay: float = 0.002  # seconds to wait for a batch to fill
    cache_size: int = 4096  # LRU result-cache entries (0 disables)
    trace_buffer: int = 4096  # span ring-buffer capacity (see obs.trace)
    # Admission control (fragalign.resilience): bounded inflight
    # compute in estimated DP cells plus an optional job-count bound.
    # 0 disables either bound (the default — admission is opt-in).
    max_inflight_cells: int = 0
    max_inflight_jobs: int = 0
    # Degradation policy past the load watermark: "none", "widen"
    # (scale the micro-batch flush window up by degrade_widen_factor)
    # or "score" (answer align requests with a score-only result).
    degrade: str = "none"
    degrade_watermark: float = 0.75  # engage degraded mode at this cell load
    degrade_recover: float = 0.5  # ...and disengage below this (hysteresis)
    degrade_widen_factor: float = 8.0
    drain_timeout: float = 30.0  # seconds before a wedged client is dropped
    # Tail-based trace sampling (fragalign.obs.sampling): head-sample
    # server-initiated traces at this rate, always retaining errored
    # and slow ones.  None = off (only client-requested traces exist).
    trace_sample: float | None = None
    slow_trace_factor: float = 3.0  # "slow" = this many x the op's EWMA mean
    # SLO targets (fragalign.obs.slo spec strings); () = the defaults.
    slo: tuple = ()
    # Workload flight recorder (fragalign.obs.journal): opt-in via a
    # journal path; sequences stay out of the journal unless opted in.
    journal: str | None = None
    journal_sequences: bool = False
    journal_max_mb: float = 64.0
    journal_segments: int = 4
    backend_options: dict = field(default_factory=dict)


class AlignmentService:
    """One server: engine + micro-batcher + result cache + stats.

    Lifecycle::

        service = AlignmentService(ServiceConfig(port=0))
        await service.start()          # binds; service.port is real now
        await service.wait_closed()    # until a shutdown request/stop()
        service.close()                # release engine + worker thread
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        engine: AlignmentEngine | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.engine = engine or AlignmentEngine(
            backend=self.config.backend,
            mode=self.config.mode,
            band=self.config.band,
            gap_open=self.config.gap_open,
            gap_extend=self.config.gap_extend,
            memory=self.config.memory,
            **self.config.backend_options,
        )
        # One registry backs the stats snapshot, the Prometheus
        # exposition, and the kernel profiler — they cannot disagree.
        self.registry = MetricsRegistry()
        self.stats = ServiceStats(registry=self.registry)
        self.tracer = Tracer(TraceBuffer(self.config.trace_buffer))
        self.profiler = KernelProfiler(self.registry)
        self.engine.profiler = self.profiler
        self.cache = LRUCache(self.config.cache_size)
        self.batcher = MicroBatcher(
            self.engine,
            max_batch=self.config.max_batch,
            max_delay=self.config.max_delay,
            stats=self.stats,
            tracer=self.tracer,
        )
        if self.config.degrade not in ("none", "widen", "score"):
            raise ValueError(
                f"degrade must be 'none', 'widen' or 'score', got {self.config.degrade!r}"
            )
        self.admission = AdmissionController(
            max_cells=self.config.max_inflight_cells,
            max_jobs=self.config.max_inflight_jobs,
            degrade_watermark=self.config.degrade_watermark,
            recover_watermark=self.config.degrade_recover,
        )
        self.sampler = (
            TailSampler(
                head_rate=self.config.trace_sample,
                slow_factor=self.config.slow_trace_factor,
                registry=self.registry,
            )
            if self.config.trace_sample is not None
            else None
        )
        self.slo_engine = SLOEngine.from_specs(self.config.slo or None)
        self.journal = (
            JournalWriter(
                self.config.journal,
                max_bytes=int(self.config.journal_max_mb * 1024 * 1024),
                segments=self.config.journal_segments,
            )
            if self.config.journal
            else None
        )
        self._model_fp = model_fingerprint(self.engine.model)
        self._server: asyncio.AbstractServer | None = None
        self._stopped: asyncio.Event | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self._inflight: dict[tuple, asyncio.Future] = {}
        self.port: int | None = None  # actual bound port, set by start()

    # -- cache keying -------------------------------------------------

    def cache_key(
        self,
        op: str,
        a: str,
        b: str,
        mode: str,
        band: int | None,
        gap_open: float | None = None,
        gap_extend: float | None = None,
    ) -> tuple:
        """Result-cache key: the pair *and* op, model identity, plus
        every knob the registry marks ``cache_key`` — a result computed
        under one knob set can never satisfy a lookup under another.
        ``memory`` is deliberately absent: the linear walker returns
        byte-identical alignments, so one cached result serves both
        strategies."""
        knobs = {
            "mode": mode,
            "band": band,
            "gap_open": gap_open,
            "gap_extend": gap_extend,
        }
        return (op, a, b, *(knobs[name] for name in _CACHE_FIELDS), self._model_fp)

    def _resolve_request(
        self, request
    ) -> tuple[str, int | None, float | None, float | None, str | None, str]:
        """Per-request knobs with the server's defaults applied.

        Raises :class:`ProtocolError` for requests that are unservable
        (no band anywhere, a band too narrow for the pair,
        ``memory="linear"`` with banded mode / affine gaps, or an
        unregistered backend name) *before* they reach the batcher, so
        a bad request can only ever fail itself, never the batch it
        would have joined.
        """
        mode = request.mode or self.engine.mode
        if request.gap_open is not None:
            gap_open, gap_extend = request.gap_open, request.gap_extend
        else:
            gap_open, gap_extend = self.engine.gap_open, self.engine.gap_extend
        # Resolve memory fully here (request field or server default):
        # validation then covers defaulted combinations too, and the
        # batcher groups "memory omitted" with "memory sent explicitly
        # as the default" instead of splitting the batch.
        memory = None
        if request.op == "align":
            memory = request.memory if request.memory is not None else self.engine.memory
        if memory == "linear":
            conflict = linear_memory_conflict(mode, gap_open is not None)
            if conflict is not None:
                raise ProtocolError(
                    f"memory='linear' is not supported with {conflict}"
                )
        # Backend resolves fully too (same batching rationale): the
        # engine facade handles capability fallthrough, the server only
        # rejects names the registry has never heard of.
        backend = request.backend if request.backend is not None else self.engine.backend_name
        if backend not in available_backends():
            raise ProtocolError(
                f"unknown backend {backend!r} "
                f"(registered: {', '.join(available_backends())})"
            )
        if mode != "banded":
            return mode, None, gap_open, gap_extend, memory, backend
        band = request.band if request.band is not None else self.engine.band
        if band is None:
            raise ProtocolError(
                "mode 'banded' needs a band (request field or server default)"
            )
        if band < abs(len(request.a) - len(request.b)):
            raise ProtocolError(
                f"band {band} too narrow for lengths "
                f"{len(request.a)}/{len(request.b)}"
            )
        return mode, band, gap_open, gap_extend, memory, backend

    # -- metrics exposition -------------------------------------------

    def render_metrics(self) -> str:
        """The Prometheus text exposition served by the ``metrics`` op.

        Pull-model values (cache counters, uptime, trace-buffer drops)
        are copied into gauges at render time; everything push-model
        (requests, latency histogram, kernel profile) is already live
        in the registry.
        """
        cache = self.cache.stats()
        gauge = self.registry.gauge
        gauge("fragalign_cache_hits", "Result-cache hits.").set(cache["hits"])
        gauge("fragalign_cache_misses", "Result-cache misses.").set(cache["misses"])
        gauge("fragalign_cache_evictions", "Result-cache evictions.").set(
            cache["evictions"]
        )
        gauge("fragalign_cache_entries", "Result-cache entries resident.").set(
            cache["size"]
        )
        gauge(
            "fragalign_trace_spans_dropped",
            "Spans evicted from the trace ring buffer.",
        ).set(self.tracer.buffer.dropped)
        gauge("fragalign_uptime_seconds", "Seconds since server start.").set(
            time.monotonic() - self.stats.started
        )
        if self.journal is not None:
            gauge(
                "fragalign_journal_records", "Journal records written since start."
            ).set(self.journal.written)
        self.stats.set_inflight_cells(self.admission.inflight_cells)
        if self.sampler is not None:
            # Retention tallies batch on the hot path; flush them into
            # the exposition counters now (same pull-model pattern as
            # the cache and trace-drop gauges above).
            self.sampler.publish()
        # Feed the SLO engine a fresh (good, total) snapshot and publish
        # the burn-rate gauges into the same exposition being rendered.
        self._sample_slo()
        self.slo_engine.export_gauges(self.registry)
        return self.registry.render()

    def _sample_slo(self) -> None:
        self.slo_engine.sample(parse_exposition(self.registry.render()))

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"{self.config.host}:{self.port}"

    def stop(self) -> None:
        """Stop accepting and release waiters (idempotent)."""
        if self._server is not None:
            self._server.close()
        if self._stopped is not None:
            self._stopped.set()

    async def wait_closed(self) -> None:
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()
        # io-timeout: batcher drain awaits local engine compute, not a peer
        await self.batcher.drain()
        # Drop any connection still open (an idle client would block
        # shutdown forever), then wait for every handler to finish —
        # nothing may outlive the event loop.
        await asyncio.sleep(0)
        for writer in list(self._connections):
            writer.close()
        while self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)
        if self._server is not None:
            # io-timeout: completes as soon as close() (already called) lands
            await self._server.wait_closed()

    def close(self) -> None:
        """Release the batcher worker thread and the engine's backend."""
        self.batcher.close()
        self.engine.close()
        if self.journal is not None:
            self.journal.close()

    # -- connection handling ------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.observe_connection(+1)
        self._connections.add(writer)
        handler = asyncio.current_task()
        if handler is not None:
            self._handlers.add(handler)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                read_start = time.perf_counter()
                try:
                    # io-timeout: idle clients legitimately hold connections open; shutdown closes them
                    line = await reader.readline()
                except (ConnectionError, ValueError):
                    # ValueError: a line over MAX_LINE (readline re-raises
                    # LimitOverrunError as ValueError).  Drop the connection.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # Wire-read wait for this line; attributed to the
                # request's trace (if any) once the line is parsed.
                read_s = time.perf_counter() - read_start
                task = asyncio.create_task(
                    self._serve_line(line, writer, write_lock, read_s)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self.stats.observe_connection(-1)
            self._connections.discard(writer)
            if handler is not None:
                self._handlers.discard(handler)
            # Plain close (no wait_closed): the handler must not outlive
            # the loop, and the transport flushes what's buffered anyway.
            writer.close()

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        read_s: float = 0.0,
    ) -> None:
        t0 = time.perf_counter()
        request_id = None
        request = None
        ctx = None
        tlog: list | None = None
        server_sampled = False  # trace exists only by the tail sampler's grace
        jrec: dict | None = None  # journal disposition, filled by _dispatch
        try:
            obj = decode_line(line)
            request_id = obj.get("id")
            request = parse_request(obj)
            # The server-side span for this request: parented under the
            # caller's span, children are the per-stage spans below.
            ctx = child_context(request.trace_id, request.span_id)
            if (
                ctx is None
                and self.sampler is not None
                and request.op in ("score", "align")
            ):
                # Tail sampling: trace every pair request in full and
                # decide retention when the outcome is known.  Only
                # server-initiated traces are the sampler's to drop —
                # a client that sent a trace_id gets its trace kept.
                ctx = new_trace_context()
                server_sampled = True
            # Traced requests accumulate deferred span entries in a
            # plain list and buffer them in ONE call at response-write
            # time — per-span Tracer calls were the dominant tracing
            # cost at full sampling.
            if ctx is not None:
                tlog = []
                if request.op in ("score", "align"):
                    tlog.append(
                        leaf_entry(ctx, "server.read", time.time() - read_s, read_s)
                    )
            if self.journal is not None and request.op in ("score", "align"):
                jrec = {}
            # The wire deadline is a *relative* budget; pin it to an
            # absolute monotonic instant the moment the request is
            # parsed — every later stage (admission, batcher) spends
            # from this one deadline.
            deadline = deadline_from_budget_ms(request.deadline_ms)
            response = await self._dispatch(request, ctx, tlog, deadline, jrec)
        except ProtocolError as exc:
            self.stats.observe_error(op=request.op if request is not None else None)
            response = error_response(request_id, str(exc))
        except DeadlineExceeded as exc:
            self.stats.observe_error(op=request.op if request is not None else None)
            response = error_response(request_id, str(exc), code="DEADLINE_EXCEEDED")
        except Overloaded as exc:
            self.stats.observe_error(op=request.op if request is not None else None)
            response = error_response(request_id, str(exc), code="OVERLOADED")
        except Exception as exc:  # engine/backend failure: report, keep serving
            self.stats.observe_error(op=request.op if request is not None else None)
            response = error_response(request_id, f"{type(exc).__name__}: {exc}")
        duration = time.perf_counter() - t0
        # Retention is decided *before* the latency observation so the
        # kept trace id lands as the exemplar on the very bucket this
        # request fills — "p99 spiked" points at an actual trace.
        retained = ctx is not None
        if server_sampled:
            retained = self.sampler.decide(
                request.op, duration, bool(response.get("ok"))
            ).retain
        exemplar = ctx.trace_id if retained else None
        self.stats.observe_latency(
            duration,
            op=request.op if request is not None else None,
            exemplar=exemplar,
        )
        if request is not None and jrec is not None:
            self.journal.write(
                build_record(
                    request.op, request.a, request.b, jrec.get("knobs", {}),
                    ok=bool(response.get("ok")),
                    code=response.get("code"),
                    cached=jrec.get("cached"),
                    disposition=jrec.get("disposition"),
                    degraded=jrec.get("degraded"),
                    duration_s=duration,
                    deadline_ms=request.deadline_ms,
                    include_sequences=self.config.journal_sequences,
                )
            )
        async with write_lock:
            write_start = time.perf_counter()
            writer.write(encode_line(response))
            if ctx is not None and tlog is not None and retained:
                # Buffered *before* any bytes flush, so a trace drain
                # fired on response receipt always sees the full tree.
                now = time.time()
                write_s = time.perf_counter() - write_start
                tlog.append(leaf_entry(ctx, "server.write", now - write_s, write_s))
                tlog.append(
                    Span(
                        ctx.trace_id, ctx.span_id, ctx.parent_id,
                        "server.request", now - duration, duration,
                        {"op": request.op if request is not None else None,
                         "ok": bool(response.get("ok"))},
                    )
                )
                self.tracer.extend(tlog)
            # Sampled out: nothing to undo.  Every span for this
            # request — including the batcher's, routed through the
            # tlog sink — only ever lived in the per-request list,
            # so dropping the trace is just not extending the buffer.
            try:
                # Bounded: a client that stops reading must not pin this
                # handler (and its response buffers) forever.
                await asyncio.wait_for(writer.drain(), timeout=self.config.drain_timeout)
            except asyncio.TimeoutError:
                writer.transport.abort()  # wedged peer: drop the connection
            except (ConnectionError, OSError):
                pass
        if request is not None and request.op == "shutdown":
            # Only after the answer is on the wire: stop accepting and
            # release wait_closed() to wind the service down.
            self.stop()

    async def _dispatch(
        self, request, ctx=None, tlog=None, deadline=None, jrec=None
    ) -> dict:
        self.stats.observe_request(request.op)
        if request.op == "ping":
            return ok_response(request.id, "pong")
        if request.op == "slo":
            # Snapshot-then-evaluate: the op both feeds the engine's
            # burn-rate history and reads it back.
            self._sample_slo()
            return ok_response(request.id, {"slos": self.slo_engine.evaluate()})
        if request.op == "stats":
            return ok_response(
                request.id,
                self.stats.snapshot(
                    cache_stats=self.cache.stats(),
                    engine={
                        "backend": self.engine.backend_name,
                        "mode": self.engine.mode,
                    },
                    admission=self.admission.snapshot(),
                ),
            )
        if request.op == "metrics":
            return ok_response(request.id, self.render_metrics())
        if request.op == "trace":
            # Drain buffered spans — all of them, or one trace's (the
            # request's own trace_id doubles as the filter).
            spans = self.tracer.buffer.drain(request.trace_id)
            return ok_response(
                request.id,
                {
                    "spans": [span.to_dict() for span in spans],
                    "dropped": self.tracer.buffer.dropped,
                },
            )
        if request.op == "shutdown":
            return ok_response(request.id, "bye")  # _serve_line stops after
        # score / align
        mode, band, gap_open, gap_extend, memory, backend = self._resolve_request(
            request
        )
        # Already-expired work is rejected before it can touch the
        # cache or join a batch: the caller has given up, so any cycles
        # spent on it are stolen from live requests.
        if expired(deadline):
            self.stats.observe_deadline_exceeded()
            raise DeadlineExceeded("deadline expired before the request was scheduled")
        self.stats.observe_mode(mode)
        key = self.cache_key(
            request.op, request.a, request.b, mode, band, gap_open, gap_extend
        )
        cache_start = time.perf_counter()
        result = self.cache.get(key)
        if tlog is not None:
            cache_s = time.perf_counter() - cache_start
            tlog.append(
                leaf_entry(
                    ctx, "server.cache", time.time() - cache_s, cache_s,
                    {"hit": result is not None},
                )
            )
        if jrec is not None:
            jrec["knobs"] = {
                "mode": mode, "band": band, "gap_open": gap_open,
                "gap_extend": gap_extend, "memory": memory,
                "backend": backend,
            }
        if result is not None:
            if jrec is not None:
                jrec["cached"] = True
                jrec["disposition"] = "cache_hit"
            return ok_response(request.id, result, cached=True)
        inflight = self._inflight.get(key)
        if inflight is not None:
            # A twin request is already computing; share its result.
            # (The batcher also coalesces, but only until its batch is
            # dispatched — this closes the dispatch→cache-put window.)
            self.stats.observe_coalesced()
            if jrec is not None:
                jrec["cached"] = False
                jrec["disposition"] = "coalesced"
            if tlog is not None:
                join_start = time.perf_counter()
                value = await inflight
                join_s = time.perf_counter() - join_start
                tlog.append(
                    leaf_entry(ctx, "server.join", time.time() - join_s, join_s)
                )
                return ok_response(request.id, value, cached=False)
            return ok_response(request.id, await inflight, cached=False)
        # Cost-aware admission: only genuinely new compute is charged —
        # cache hits and coalesced twins above ride for free.
        cost = estimate_cost(request.op, request.a, request.b, mode, band)
        try:
            self.admission.try_admit(cost)
        except Overloaded:
            self.stats.observe_shed()
            raise
        self._apply_degrade()
        knobs = {
            "mode": mode, "band": band, "gap_open": gap_open,
            "gap_extend": gap_extend, "memory": memory, "backend": backend,
        }
        if (
            self.admission.degraded
            and self.config.degrade == "score"
            and request.op == "align"
        ):
            # Degraded mode: answer align with the (exact) score and no
            # pairs.  The response is flagged, never cached, and never
            # registered inflight — a degraded answer must not poison
            # the result cache or satisfy a twin's full-align await.
            try:
                score_knobs = dict(knobs, memory=None)
                if deadline is not None:
                    self.batcher.note_deadline(
                        "score", request.a, request.b, score_knobs, deadline
                    )
                value = await self.batcher.submit(
                    "score", request.a, request.b, mode, band,
                    gap_open=gap_open, gap_extend=gap_extend, memory=None,
                    backend=backend,
                )
            finally:
                self.admission.release(cost)
                self._apply_degrade()
            self.stats.observe_degraded_response()
            if jrec is not None:
                jrec["cached"] = False
                jrec["disposition"] = "degraded"
                jrec["degraded"] = True
            result = {
                "score": float(value), "pairs": [],
                "a_interval": [0, 0], "b_interval": [0, 0],
            }
            return ok_response(request.id, result, cached=False, degraded=True)
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            # Trace interest is registered beside submit (same args →
            # same job key) so the batcher can report coalesce-wait and
            # worker-thread compute without tracing touching its
            # analyzer-checked submit signature.  The deadline rides the
            # same side-channel: it clamps the flush window but is not a
            # batching knob.
            if ctx is not None:
                # tlog rides along as the span sink: batcher spans join
                # the request's deferred log instead of the shared
                # buffer, so a sampled-out trace costs zero buffer
                # traffic — no write, no discard scan.
                self.batcher.trace_job(
                    request.op, request.a, request.b, knobs, ctx, sink=tlog
                )
            if deadline is not None:
                self.batcher.note_deadline(
                    request.op, request.a, request.b, knobs, deadline
                )
            value = await self.batcher.submit(
                request.op,
                request.a,
                request.b,
                mode,
                band,
                gap_open=gap_open,
                gap_extend=gap_extend,
                memory=memory,
                backend=backend,
            )
            # Cache the wire form, so warm hits skip serialization too.
            result = (
                float(value) if request.op == "score" else alignment_to_dict(value)
            )
            self.cache.put(key, result)
            future.set_result(result)
        except Exception as exc:
            future.set_exception(exc)
            future.exception()  # mark retrieved: twins may not exist
            raise
        finally:
            self.admission.release(cost)
            self._apply_degrade()
            self._inflight.pop(key, None)
        if jrec is not None:
            jrec["cached"] = False
            jrec["disposition"] = "computed"
        return ok_response(request.id, result, cached=False)

    def _apply_degrade(self) -> None:
        """Map the admission controller's degrade state onto the
        configured policy (batch-window widening) and the gauge."""
        degraded = self.admission.degraded and self.config.degrade != "none"
        self.batcher.delay_scale = (
            self.config.degrade_widen_factor
            if degraded and self.config.degrade == "widen"
            else 1.0
        )
        self.stats.set_degraded_mode(degraded)


def run_server(config: ServiceConfig, port_file: str | None = None) -> int:
    """Blocking entrypoint for ``fragalign serve``.

    Binds, announces the address on stdout (and optionally writes the
    bound port to ``port_file`` for scripted callers), then serves
    until a ``shutdown`` request or Ctrl-C.  Returns a process exit
    code; both stop paths are clean exits.
    """

    async def _main() -> None:
        service = AlignmentService(config)
        await service.start()
        print(f"fragalign.service listening on {service.address}", flush=True)
        _log.info(
            "server started",
            extra={
                "port": service.port,
                "backend": config.backend,
                "mode": config.mode,
                "max_batch": config.max_batch,
            },
        )
        if port_file:
            write_port_file(port_file, service.port)
        try:
            # io-timeout: the serve-forever wait — runs until shutdown/Ctrl-C
            await service.wait_closed()
        finally:
            service.close()
            snap = service.stats.snapshot(cache_stats=service.cache.stats())
            print(
                "fragalign.service stopped: "
                f"{snap['requests']['total']} requests, "
                f"{snap['batches']['dispatched']} batches, "
                f"cache hit rate {snap['cache']['hit_rate']:.2f}",
                flush=True,
            )
            _log.info(
                "server stopped",
                extra={
                    "requests": snap["requests"]["total"],
                    "errors": snap["requests"]["errors"],
                    "batches": snap["batches"]["dispatched"],
                    "cache_hit_rate": snap["cache"]["hit_rate"],
                },
            )

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        print("fragalign.service interrupted", file=sys.stderr)
    return 0
