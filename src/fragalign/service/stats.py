"""Service observability: request counters, batch shapes, latency.

One :class:`ServiceStats` instance lives on the server; the batcher
and connection handlers feed it, and the ``stats`` request type
returns :meth:`ServiceStats.snapshot`.  Latency keeps a bounded
reservoir of the most recent request service times and reports p50/p95
over it, so the surface stays O(1) memory under unbounded traffic.
"""

from __future__ import annotations

import time
from collections import Counter, deque

__all__ = ["ServiceStats"]

_RESERVOIR = 4096  # most recent latency samples kept for quantiles


def _quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample."""
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


class ServiceStats:
    """Mutable counters for one server instance (single-threaded owner)."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.requests: Counter[str] = Counter()
        self.modes: Counter[str] = Counter()  # resolved mode per pair op
        self.errors = 0
        self.connections_open = 0
        self.connections_total = 0
        self.batches = 0
        self.batched_pairs = 0
        self.max_batch_size = 0
        self.coalesced = 0  # requests folded into an identical in-flight job
        self._latency: deque[float] = deque(maxlen=_RESERVOIR)

    # -- feeders ------------------------------------------------------

    def observe_request(self, op: str) -> None:
        self.requests[op] += 1

    def observe_mode(self, mode: str) -> None:
        """Count one pair-op request under its *resolved* alignment
        mode (the server's default already substituted), so cluster
        aggregation can break traffic down by mode."""
        self.modes[mode] += 1

    def observe_error(self) -> None:
        self.errors += 1

    def observe_connection(self, delta: int) -> None:
        self.connections_open += delta
        if delta > 0:
            self.connections_total += delta

    def observe_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_pairs += size
        self.max_batch_size = max(self.max_batch_size, size)

    def observe_coalesced(self) -> None:
        self.coalesced += 1

    def observe_latency(self, seconds: float) -> None:
        self._latency.append(seconds)

    # -- surface ------------------------------------------------------

    def snapshot(self, cache_stats: dict | None = None, engine: dict | None = None) -> dict:
        """The JSON-able stats object served by the ``stats`` op."""
        ordered = sorted(self._latency)
        total = sum(self.requests.values())
        out = {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "connections": {
                "open": self.connections_open,
                "total": self.connections_total,
            },
            "requests": {
                "total": total,
                "errors": self.errors,
                **self.requests,
                # Additive key (older clients ignore it): pair-op
                # traffic by resolved alignment mode.
                "by_mode": dict(self.modes),
            },
            "batches": {
                "dispatched": self.batches,
                "pairs": self.batched_pairs,
                "mean_size": round(self.batched_pairs / self.batches, 2)
                if self.batches
                else 0.0,
                "max_size": self.max_batch_size,
                "coalesced": self.coalesced,
            },
            "latency_ms": {
                "samples": len(ordered),
                "p50": round(_quantile(ordered, 0.50) * 1e3, 3),
                "p95": round(_quantile(ordered, 0.95) * 1e3, 3),
                "p99": round(_quantile(ordered, 0.99) * 1e3, 3),
                "mean": round(sum(ordered) / len(ordered) * 1e3, 3) if ordered else 0.0,
            },
        }
        if cache_stats is not None:
            out["cache"] = cache_stats
        if engine is not None:
            out["engine"] = engine
        return out
