"""Service observability: request counters, batch shapes, latency.

One :class:`ServiceStats` instance lives on the server; the batcher
and connection handlers feed it, and the ``stats`` request type
returns :meth:`ServiceStats.snapshot`.  Since the obs subsystem
landed, the counters and the latency distribution are backed by a
:class:`~fragalign.obs.metrics.MetricsRegistry` — the same instruments
the ``metrics`` op renders as Prometheus text — so the ``stats`` JSON
surface and the exposition can never disagree.

The latency quantiles come from a **fixed-bucket log-spaced
histogram**, not a sample reservoir.  The old implementation kept the
most recent 4096 samples in a deque and took nearest-rank quantiles
over them; once traffic exceeds the reservoir that estimator only
sees the newest window, so a latency regression that happened
*earlier* in the run vanishes from p95/p99 (recency bias — the
regression test in ``tests/test_obs.py`` demonstrates the
under-report).  The histogram keeps every observation since boot in
O(#buckets) memory and its quantile estimate is exact to within one
bucket width (bounds ratio ~1.33).
"""

from __future__ import annotations

import time
from collections import Counter as _TallyCounter

from fragalign.obs.metrics import MetricsRegistry

__all__ = ["ServiceStats"]


class ServiceStats:
    """Mutable counters for one server instance.

    ``registry`` is the shared metrics registry the instruments live
    in (the server passes its own so the kernel profiler and the
    ``metrics`` op see one coherent set); omitted, a private registry
    is created — the standalone behaviour tests rely on.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.started = time.monotonic()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter(
            "fragalign_requests_total", "Requests received, by op.", labels=("op",)
        )
        self._modes = self.registry.counter(
            "fragalign_requests_by_mode_total",
            "Pair-op requests by resolved alignment mode.",
            labels=("mode",),
        )
        self._errors = self.registry.counter(
            "fragalign_errors_total", "Requests answered with ok=false."
        )
        # Per-op error split: the availability SLO's bad-event counter
        # (fragalign.obs.slo reads it out of the exposition).
        self._errors_by_op = self.registry.counter(
            "fragalign_errors_by_op_total",
            "Requests answered with ok=false, by op.",
            labels=("op",),
        )
        self._conn_open = self.registry.gauge(
            "fragalign_connections_open", "Currently open client connections."
        )
        self._conn_total = self.registry.counter(
            "fragalign_connections_total", "Client connections ever accepted."
        )
        self._batches = self.registry.counter(
            "fragalign_batches_total", "Micro-batches dispatched to the engine."
        )
        self._batched_pairs = self.registry.counter(
            "fragalign_batched_pairs_total", "Jobs dispatched inside micro-batches."
        )
        self._max_batch = self.registry.gauge(
            "fragalign_batch_max_size", "Largest micro-batch dispatched."
        )
        self._coalesced = self.registry.counter(
            "fragalign_coalesced_total",
            "Requests folded into an identical in-flight job.",
        )
        self._latency = self.registry.histogram(
            "fragalign_request_latency_seconds",
            "Request service time, parse to response-ready.",
        )
        # Per-op latency lives in separate histograms (histograms are
        # unlabeled): the latency SLOs read their good/total counts
        # from these, one per pair op.
        self._op_latency = {
            "score": self.registry.histogram(
                "fragalign_score_latency_seconds",
                "score request service time, parse to response-ready.",
            ),
            "align": self.registry.histogram(
                "fragalign_align_latency_seconds",
                "align request service time, parse to response-ready.",
            ),
        }
        # Resilience counters (fragalign.resilience): the chaos drill
        # asserts on these names in the merged cluster exposition.
        self._shed = self.registry.counter(
            "fragalign_shed_total", "Requests shed at admission (OVERLOADED)."
        )
        self._deadline_exceeded = self.registry.counter(
            "fragalign_deadline_exceeded_total",
            "Requests rejected or dropped because their deadline expired.",
        )
        self._degraded_responses = self.registry.counter(
            "fragalign_degraded_responses_total",
            "Align requests answered in degraded (score-only) form.",
        )
        self._degraded_mode = self.registry.gauge(
            "fragalign_degraded_mode",
            "1 while the server is past its load watermark, else 0.",
        )
        self._inflight_cells = self.registry.gauge(
            "fragalign_inflight_cells",
            "Estimated DP cells currently admitted to compute.",
        )

    # -- feeders ------------------------------------------------------

    def observe_request(self, op: str) -> None:
        self._requests.inc(op=op)

    def observe_mode(self, mode: str) -> None:
        """Count one pair-op request under its *resolved* alignment
        mode (the server's default already substituted), so cluster
        aggregation can break traffic down by mode."""
        self._modes.inc(mode=mode)

    def observe_error(self, op: str | None = None) -> None:
        self._errors.inc()
        if op is not None:
            self._errors_by_op.inc(op=op)

    def observe_connection(self, delta: int) -> None:
        self._conn_open.add(delta)
        if delta > 0:
            self._conn_total.inc(delta)

    def observe_batch(self, size: int) -> None:
        self._batches.inc()
        self._batched_pairs.inc(size)
        self._max_batch.set_max(size)

    def observe_coalesced(self) -> None:
        self._coalesced.inc()

    def observe_latency(
        self, seconds: float, op: str | None = None, exemplar: str | None = None
    ) -> None:
        """Record one request's service time.  ``exemplar`` is a
        retained trace id attached to the histogram bucket the
        observation lands in — the p99-to-trace jump."""
        self._latency.observe(seconds, exemplar=exemplar)
        per_op = self._op_latency.get(op)
        if per_op is not None:
            per_op.observe(seconds, exemplar=exemplar)

    def observe_shed(self) -> None:
        self._shed.inc()

    def observe_deadline_exceeded(self) -> None:
        self._deadline_exceeded.inc()

    def observe_degraded_response(self) -> None:
        self._degraded_responses.inc()

    def set_degraded_mode(self, degraded: bool) -> None:
        self._degraded_mode.set(1 if degraded else 0)

    def set_inflight_cells(self, cells: int) -> None:
        self._inflight_cells.set(cells)

    # -- surface ------------------------------------------------------

    def snapshot(self, cache_stats: dict | None = None, engine: dict | None = None,
                 admission: dict | None = None) -> dict:
        """The JSON-able stats object served by the ``stats`` op.

        Schema-compatible with the pre-obs surface (additive only):
        ``latency_ms`` quantiles are now histogram-derived, and the
        additive ``latency_ms.estimator`` key says so.
        """
        requests = _TallyCounter(
            {dict(key)["op"]: int(value) for key, value in self._requests.values().items()}
        )
        modes = {dict(key)["mode"]: int(value) for key, value in self._modes.values().items()}
        batches = int(self._batches.value())
        batched_pairs = int(self._batched_pairs.value())
        samples = self._latency.count
        out = {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "connections": {
                "open": int(self._conn_open.value()),
                "total": int(self._conn_total.value()),
            },
            "requests": {
                "total": sum(requests.values()),
                "errors": int(self._errors.value()),
                **requests,
                # Additive key (older clients ignore it): pair-op
                # traffic by resolved alignment mode.
                "by_mode": modes,
            },
            "batches": {
                "dispatched": batches,
                "pairs": batched_pairs,
                "mean_size": round(batched_pairs / batches, 2) if batches else 0.0,
                "max_size": int(self._max_batch.value()),
                "coalesced": int(self._coalesced.value()),
            },
            "latency_ms": {
                "samples": samples,
                "p50": round(self._latency.quantile(0.50) * 1e3, 3),
                "p95": round(self._latency.quantile(0.95) * 1e3, 3),
                "p99": round(self._latency.quantile(0.99) * 1e3, 3),
                "mean": round(self._latency.mean() * 1e3, 3),
                "estimator": "histogram",  # additive: was a 4096-sample deque
            },
        }
        # Additive block (older clients ignore it): resilience counters
        # plus the admission controller's view when the server has one.
        out["resilience"] = {
            "shed": int(self._shed.value()),
            "deadline_exceeded": int(self._deadline_exceeded.value()),
            "degraded_responses": int(self._degraded_responses.value()),
            "degraded_mode": bool(self._degraded_mode.value()),
        }
        if admission is not None:
            out["resilience"]["admission"] = admission
        if cache_stats is not None:
            out["cache"] = cache_stats
        if engine is not None:
            out["engine"] = engine
        return out
