"""The ``fragalign.service`` wire protocol: JSON lines over a stream.

Every request and response is one UTF-8 JSON object on one
``\\n``-terminated line.  Responses may arrive **out of order** (the
server answers cache hits immediately while batched misses are still
computing), so every request carries a client-chosen ``id`` that the
server echoes back.

Requests::

    {"id": 1, "op": "score", "a": "ACGT", "b": "AGGT"}
    {"id": 2, "op": "align", "a": "ACGT", "b": "AGGT"}
    {"id": 3, "op": "score", "a": "ACGT", "b": "AGGT", "mode": "overlap"}
    {"id": 4, "op": "align", "a": "ACGT", "b": "AGGT", "mode": "banded", "band": 8}
    {"id": 5, "op": "score", "a": "ACGT", "b": "AGGT",
              "gap_open": -4, "gap_extend": -1}
    {"id": 6, "op": "align", "a": "ACGT", "b": "AGGT", "memory": "linear"}
    {"id": 7, "op": "stats"}     # service counters / latency / cache
    {"id": 8, "op": "ping"}
    {"id": 9, "op": "shutdown"}  # answered, then the server stops
    {"id": 10, "op": "metrics"}  # Prometheus text exposition (string)
    {"id": 11, "op": "trace", "trace_id": "..."}  # drain buffered spans
    {"id": 12, "op": "slo"}      # SLO burn-rate evaluation (fragalign.obs.slo)

``mode`` selects the alignment mode per request (``global``,
``local``, ``overlap`` or ``banded``); omitted, the server's
configured default applies.  ``band`` is the banded half-width —
required for ``mode="banded"`` unless the server was started with a
default band, and it must satisfy ``band >= abs(len(a) - len(b))``
(validated before the request joins a batch, so one bad request can
never poison a batch of good ones).

``gap_open``/``gap_extend`` switch the request to affine (Gotoh) gap
costs — both together, both non-positive; omitted, the server's
configured defaults apply (linear gaps unless the server was started
with affine defaults).  ``memory`` (align requests only) selects the
traceback strategy: ``"auto"``, ``"tensor"`` or ``"linear"`` — it
never changes the result (the linear walker returns byte-identical
alignments), so it is *not* part of the result-cache key, but
``memory="linear"`` with banded mode or affine gaps is rejected
before batching.

``backend`` (pair ops) selects the engine backend for the request
(``numpy``, ``native``, ``naive``, ``parallel``); omitted, the
server's configured backend applies.  Backends are parity-tested to
return identical scores, so the field is *not* part of the
result-cache or routing keys — but it is part of the batch group key,
because one engine batch dispatches to one backend.  Unknown names are
rejected before the request joins a batch.

``trace_id``/``span_id`` are the **non-semantic** trace-context
fields (:mod:`fragalign.obs.trace`): any request may carry them, the
server records per-stage spans under the given trace with the
caller's ``span_id`` as parent, and the ``trace`` op drains the span
ring buffer (optionally filtered to one ``trace_id``).  They are
registered in :mod:`fragalign.service.fields` with every
participation flag off — tracing can never split a batch or enter a
cache/routing key, and the static analyzer enforces that.

``deadline_ms`` (pair ops) is the request's **remaining end-to-end
budget** in milliseconds — relative, gRPC-style, so it survives hops
without synchronized clocks.  The server converts it to an absolute
monotonic deadline on receipt, rejects already-expired work before it
joins a batch (error code ``DEADLINE_EXCEEDED``), and the batcher
clamps its flush window to the tightest deadline in the group.  Like
the trace fields it is registered with every participation flag off:
a deadline can never split a batch or enter a cache/routing key.

Error responses may carry a machine-readable ``code``
(``DEADLINE_EXCEEDED``, ``OVERLOADED``); clients raise the matching
typed exception (:func:`service_error_from`) so retry policy is an
``isinstance`` check against the :mod:`fragalign.util.errors`
taxonomy, never a string match.

Responses::

    {"id": 1, "ok": true, "result": 2.0, "cached": false}
    {"id": 2, "ok": true, "result": {"score": 2.0, "pairs": [[0, 0], ...],
                                     "a_interval": [0, 4], "b_interval": [0, 4]}}
    {"id": 9, "ok": false, "error": "unknown op 'frobnicate'"}

``cached`` is only present on ``score``/``align`` responses and says
whether the result came from the server's LRU result cache.  Lines are
capped at :data:`MAX_LINE` bytes (both sides configure their stream
reader with it), which bounds sequence length to roughly half a
megabyte per request.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from typing import Any

from fragalign.align.pairwise import Alignment, check_affine_gaps
from fragalign.engine.backends import MEMORY_MODES, MODES
from fragalign.service.fields import FIELD_NAMES
from fragalign.util.errors import DeadlineExceeded, FragalignError, Overloaded

__all__ = [
    "MAX_LINE",
    "MEMORY_MODES",
    "MODES",
    "OPS",
    "PAIR_OPS",
    "FIELD_NAMES",
    "ProtocolError",
    "ServiceError",
    "DeadlineExceededError",
    "OverloadedError",
    "service_error_from",
    "Request",
    "parse_request",
    "encode_line",
    "decode_line",
    "ok_response",
    "error_response",
    "alignment_to_dict",
    "alignment_from_dict",
]

MAX_LINE = 1 << 20  # 1 MiB per protocol line (reader buffer limit)

OPS = ("score", "align", "stats", "metrics", "trace", "slo", "ping", "shutdown")
PAIR_OPS = ("score", "align")


class ProtocolError(FragalignError):
    """A malformed protocol line or request object."""


class ServiceError(FragalignError):
    """The server answered ``ok: false`` (raised client-side).

    ``code`` carries the machine-readable error code when the server
    sent one (``DEADLINE_EXCEEDED``, ``OVERLOADED``) — clients and the
    router branch on the *exception type*, never on the message text.
    """

    def __init__(self, message: str, code: str | None = None) -> None:
        super().__init__(message)
        self.code = code


class DeadlineExceededError(ServiceError, DeadlineExceeded):
    """Server-reported ``DEADLINE_EXCEEDED`` — non-retryable."""


class OverloadedError(ServiceError, Overloaded):
    """Server-reported ``OVERLOADED`` shed — retryable on another replica."""


# Wire error code -> client-side exception class.  The typed classes
# multiply inherit from the fragalign.util.errors taxonomy so retry
# policy is an isinstance check against RetryableError/NonRetryableError.
ERROR_CODES: dict[str, type[ServiceError]] = {
    "DEADLINE_EXCEEDED": DeadlineExceededError,
    "OVERLOADED": OverloadedError,
}


def service_error_from(response: dict) -> ServiceError:
    """Typed client-side exception for an ``ok: false`` response."""
    message = response.get("error", "unknown service error")
    code = response.get("code")
    cls = ERROR_CODES.get(code, ServiceError) if isinstance(code, str) else ServiceError
    return cls(message, code=code if isinstance(code, str) else None)


@dataclass(frozen=True)
class Request:
    """One validated request: an op plus (for pair ops) the sequences.

    ``mode``/``band``/``gap_open``/``gap_extend``/``memory`` are
    ``None`` when the request didn't set them — the server substitutes
    its configured defaults.
    """

    id: Any
    op: str
    a: str = ""
    b: str = ""
    mode: str | None = None
    band: int | None = None
    gap_open: float | None = None
    gap_extend: float | None = None
    memory: str | None = None
    backend: str | None = None  # engine backend override for this request
    trace_id: str | None = None  # non-semantic: tracing only annotates
    span_id: str | None = None  # caller's span — the server span's parent
    deadline_ms: float | None = None  # remaining budget (non-semantic)


# The wire request must carry exactly the registered knobs (plus the
# structural id/op/a/b).  The static analyzer enforces this at check
# time; this guard keeps an import of a drifted copy from even loading.
assert {f.name for f in dataclasses.fields(Request)} == {"id", "op", "a", "b", *FIELD_NAMES}, (
    "Request fields out of sync with the service.fields registry"
)


def encode_line(obj: dict) -> bytes:
    """Serialize one protocol object to a compact JSON line."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes | str) -> dict:
    """Parse one protocol line; raise :class:`ProtocolError` if broken."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"invalid JSON line: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"protocol line must be a JSON object, got {type(obj).__name__}")
    return obj


def parse_request(obj: dict) -> Request:
    """Validate a decoded request object."""
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})")
    # Trace context is accepted on *every* op: pair ops propagate it,
    # and the trace op uses trace_id as its drain filter.
    trace_id, span_id = obj.get("trace_id"), obj.get("span_id")
    if trace_id is not None and not isinstance(trace_id, str):
        raise ProtocolError(f"trace_id must be a string, got {trace_id!r}")
    if span_id is not None and not isinstance(span_id, str):
        raise ProtocolError(f"span_id must be a string, got {span_id!r}")
    if op in PAIR_OPS:
        a, b = obj.get("a"), obj.get("b")
        if not isinstance(a, str) or not isinstance(b, str):
            raise ProtocolError(f"op {op!r} needs string fields 'a' and 'b'")
        mode = obj.get("mode")
        if mode is not None and mode not in MODES:
            raise ProtocolError(f"unknown mode {mode!r} (expected one of {MODES})")
        band = obj.get("band")
        if band is not None and (
            isinstance(band, bool) or not isinstance(band, int) or band < 0
        ):
            raise ProtocolError(f"band must be a non-negative integer, got {band!r}")
        gap_open, gap_extend = obj.get("gap_open"), obj.get("gap_extend")
        if gap_open is not None or gap_extend is not None:
            try:
                # One source of truth for the gap rules (and the float
                # coercion that makes 4 and 4.0 key identically).
                gap_open, gap_extend = check_affine_gaps(gap_open, gap_extend)
            except ValueError as exc:
                raise ProtocolError(str(exc)) from exc
        memory = obj.get("memory")
        if memory is not None:
            if memory not in MEMORY_MODES:
                raise ProtocolError(
                    f"unknown memory mode {memory!r} (expected one of {MEMORY_MODES})"
                )
            if op != "align":
                raise ProtocolError("memory only applies to align requests")
        backend = obj.get("backend")
        if backend is not None and not isinstance(backend, str):
            # Membership in the registry is validated server-side
            # (available_backends() is a runtime set, not a wire constant).
            raise ProtocolError(f"backend must be a string, got {backend!r}")
        deadline_ms = obj.get("deadline_ms")
        if deadline_ms is not None:
            if (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or not math.isfinite(deadline_ms)
                or deadline_ms <= 0
            ):
                raise ProtocolError(
                    f"deadline_ms must be a positive finite number, got {deadline_ms!r}"
                )
            deadline_ms = float(deadline_ms)
        return Request(
            id=obj.get("id"), op=op, a=a, b=b, mode=mode, band=band,
            gap_open=gap_open, gap_extend=gap_extend, memory=memory,
            backend=backend, trace_id=trace_id, span_id=span_id,
            deadline_ms=deadline_ms,
        )
    return Request(id=obj.get("id"), op=op, trace_id=trace_id, span_id=span_id)


def ok_response(request_id: Any, result: Any, cached: bool | None = None,
                degraded: bool | None = None) -> dict:
    obj: dict = {"id": request_id, "ok": True, "result": result}
    if cached is not None:
        obj["cached"] = cached
    if degraded:
        obj["degraded"] = True
    return obj


def error_response(request_id: Any, message: str, code: str | None = None) -> dict:
    obj: dict = {"id": request_id, "ok": False, "error": message}
    if code is not None:
        obj["code"] = code
    return obj


def alignment_to_dict(aln: Alignment) -> dict:
    """JSON-able form of an :class:`Alignment` (plain ints/floats)."""
    return {
        "score": float(aln.score),
        "pairs": [[int(i), int(j)] for i, j in aln.pairs],
        "a_interval": [int(aln.a_interval[0]), int(aln.a_interval[1])],
        "b_interval": [int(aln.b_interval[0]), int(aln.b_interval[1])],
    }


def alignment_from_dict(obj: dict) -> Alignment:
    """Rebuild an :class:`Alignment` from its wire form."""
    return Alignment(
        score=float(obj["score"]),
        pairs=tuple((int(i), int(j)) for i, j in obj["pairs"]),
        a_interval=(int(obj["a_interval"][0]), int(obj["a_interval"][1])),
        b_interval=(int(obj["b_interval"][0]), int(obj["b_interval"][1])),
    )
