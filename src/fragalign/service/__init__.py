"""fragalign.service — the traffic-serving layer over the engine.

An asyncio JSON-lines alignment server whose core is a
**micro-batcher**: concurrent ``score``/``align`` requests are
coalesced over a short window, deduplicated, and dispatched as single
``score_many``/``align_many`` calls on a configurable
:class:`~fragalign.engine.AlignmentEngine` backend, with results
fanned back out to the awaiting clients.  In front of the batcher sits
a bounded LRU result cache keyed on ``(op, pair, mode, model)``, and a
stats surface (request counters, batch sizes, cache hit rate, p50/p95
latency) served by the ``stats`` request type.

Serve::

    $ fragalign serve --port 8765 --backend numpy --max-batch 64

Call (blocking client)::

    from fragalign.service import AlignmentClient

    with AlignmentClient(port=8765) as client:
        score  = client.score("ACGT", "AGGT")
        scores = client.score_many(pairs, concurrency=64)  # fills batches

or in-process / async::

    from fragalign.service import AlignmentService, ServiceConfig

    service = AlignmentService(ServiceConfig(port=0))
    await service.start()          # service.port is the bound port

Protocol details live in :mod:`fragalign.service.protocol`; the README
"Serving" section has an example session and the knob reference.
"""

from fragalign.service.batcher import MicroBatcher
from fragalign.service.client import AlignmentClient, AsyncAlignmentClient
from fragalign.service.protocol import (
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    Request,
    ServiceError,
    alignment_from_dict,
    alignment_to_dict,
)
from fragalign.service.server import (
    AlignmentService,
    ServiceConfig,
    model_fingerprint,
    run_server,
    wait_for_port_file,
    write_port_file,
)
from fragalign.service.stats import ServiceStats
from fragalign.util.lru import LRUCache

__all__ = [
    "AlignmentClient",
    "AlignmentService",
    "AsyncAlignmentClient",
    "DeadlineExceededError",
    "LRUCache",
    "MicroBatcher",
    "OverloadedError",
    "ProtocolError",
    "Request",
    "ServiceConfig",
    "ServiceError",
    "ServiceStats",
    "alignment_from_dict",
    "alignment_to_dict",
    "model_fingerprint",
    "run_server",
    "wait_for_port_file",
    "write_port_file",
]
