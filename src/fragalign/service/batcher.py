"""The micro-batcher: coalesce concurrent requests into engine batches.

Concurrent ``score``/``align`` submissions are queued for at most
``max_delay`` seconds (or until ``max_batch`` jobs are waiting — the
flush-by-size path), then dispatched as *one* ``score_many`` /
``align_many`` call on the engine, whose batch kernels amortize the
per-row Python sweep across the whole batch.  Results fan back out to
the awaiting tasks through per-job futures.

Identical in-flight jobs are deduplicated: N concurrent requests for
the same ``(op, a, b)`` share one future and cost one backend slot
(the ``coalesced`` stat counts the N-1 free riders).

Engine calls are CPU-bound, so they run on a dedicated single worker
thread: the event loop keeps accepting (and queueing) the *next* batch
while the current one computes — exactly the overlap that makes
micro-batching pay off under sustained load.  The single worker also
serializes engine access, so the engine's memoized prep needs no lock.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from operator import itemgetter
from typing import Any

from fragalign.engine.facade import AlignmentEngine
from fragalign.obs.trace import TraceContext, Tracer
from fragalign.service.fields import group_key_fields
from fragalign.util.errors import DeadlineExceeded

__all__ = ["MicroBatcher", "GROUP_FIELDS"]

# One dispatch group = one engine batch call.  The knob fields that
# split groups come from the shared request-field registry — adding a
# knob there extends every group key here automatically.
GROUP_FIELDS = group_key_fields()  # ("mode", "band", "gap_open", "gap_extend", "memory", "backend")

Key = tuple  # (op, *GROUP_FIELDS values, a, b)
_GROUP = 1 + len(GROUP_FIELDS)  # leading key fields that define one engine batch
# C-speed knob extraction for the per-request side channels (trace_job,
# note_deadline) — a genexpr over GROUP_FIELDS costs ~1us per call.
_GROUP_VALUES = itemgetter(*GROUP_FIELDS)


class MicroBatcher:
    """Coalesce awaitable ``score``/``align`` jobs into batch calls.

    Parameters
    ----------
    engine:
        Any object with ``score_many(pairs)`` / ``align_many(pairs)``
        (normally an :class:`AlignmentEngine`; tests substitute
        counting wrappers).
    max_batch:
        Flush as soon as this many distinct jobs are queued.
    max_delay:
        Flush at most this many seconds after the first queued job;
        ``<= 0`` flushes after every submission (per-request serving,
        the foil the benchmark measures against).
    stats:
        Optional :class:`~fragalign.service.stats.ServiceStats` feeder.
    """

    def __init__(
        self,
        engine: AlignmentEngine,
        max_batch: int = 64,
        max_delay: float = 0.002,
        stats=None,
        tracer: Tracer | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.engine = engine
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._stats = stats
        self._tracer = tracer
        # Trace interest registered out-of-band (trace_job) so the
        # analyzer-checked submit signature stays exactly the group-key
        # fields: tracing must not look like a batching knob.
        self._trace_interest: dict[
            Key, list[tuple[TraceContext, list | None, float]]
        ] = {}
        # Deadlines likewise ride a side-channel (note_deadline), keyed
        # like trace interest: a deadline is not a batching knob.
        self._deadlines: dict[Key, float] = {}  # key -> absolute monotonic deadline
        # Degraded-mode widening: the server scales the flush window up
        # under load so batches amortize better (trading latency for
        # throughput).  Multiplies max_delay; 1.0 = no widening.
        self.delay_scale: float = 1.0
        self._pending: dict[Key, asyncio.Future] = {}  # queued and in-flight
        self._queue: list[Key] = []  # queued, not yet dispatched
        self._timer: asyncio.TimerHandle | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="fragalign-batch"
        )

    # -- submission ---------------------------------------------------

    async def submit(
        self,
        op: str,
        a: str,
        b: str,
        mode: str | None = None,
        band: int | None = None,
        gap_open: float | None = None,
        gap_extend: float | None = None,
        memory: str | None = None,
        backend: str | None = None,
    ) -> Any:
        """Queue one job; await its batched result.

        Returns a float for ``op="score"`` and an
        :class:`~fragalign.align.pairwise.Alignment` for ``op="align"``.
        ``mode``/``band``/``gap_open``/``gap_extend``/``memory``/
        ``backend`` select the per-job knobs (``None`` means the
        engine's default); one flush dispatches each distinct ``(op,
        mode, band, gaps, memory, backend)`` group as its own engine
        batch — in particular a batch never mixes backends.
        """
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        knobs = {
            "mode": mode,
            "band": band,
            "gap_open": gap_open,
            "gap_extend": gap_extend,
            "memory": memory,
            "backend": backend,
        }
        key = (op, *(knobs[name] for name in GROUP_FIELDS), a, b)
        fut = self._pending.get(key)
        if fut is not None:
            # Identical job already queued or computing: share its future.
            if self._stats is not None:
                self._stats.observe_coalesced()
            return await fut
        fut = self._loop.create_future()
        self._pending[key] = fut
        self._queue.append(key)
        # The flush window is the configured delay (widened under
        # degraded mode) clamped to the tightest registered deadline —
        # a job must not sit in the queue past its budget.
        delay = self.max_delay * self.delay_scale
        deadline = self._deadlines.get(key)
        if deadline is not None:
            # Clamp to *half* the remaining budget, not the deadline
            # itself: a timer that fires on the deadline hands
            # ``_run_batch`` an already-expired job, so a lone request
            # tighter than the flush window could never succeed.  Half
            # leaves the engine the other half to actually compute.
            delay = min(delay, (deadline - time.monotonic()) / 2.0)
        if len(self._queue) >= self.max_batch or delay <= 0:
            self.flush()
        elif self._timer is None or self._loop.time() + delay < self._timer.when():
            if self._timer is not None:
                self._timer.cancel()
            self._timer = self._loop.call_later(delay, self.flush)
        return await fut

    def trace_job(
        self,
        op: str,
        a: str,
        b: str,
        knobs: dict,
        ctx: TraceContext | None,
        sink: list | None = None,
    ) -> None:
        """Register trace interest for the job an imminent ``submit``
        with the same arguments will queue (``knobs`` maps every
        ``GROUP_FIELDS`` name).  A side-channel, not a knob: the job's
        identity and batching are completely unaffected.  Interest is
        consumed — spans recorded under ``ctx`` — when the job's batch
        runs; a job that never reaches ``submit`` after an interest
        registration would leak it, so callers pair the two calls
        (the server does, right next to each other).

        ``sink``, when given, receives the deferred span entries
        instead of the shared trace buffer.  The batch resolves every
        job future *after* recording its spans, so by the time the
        submitter's await returns the sink is complete — the caller
        can then buffer or drop the whole trace atomically.  Without a
        sink the entries go straight to the tracer (standalone use).
        """
        if ctx is None or self._tracer is None:
            return
        key = (op, *_GROUP_VALUES(knobs), a, b)
        self._trace_interest.setdefault(key, []).append(
            (ctx, sink, time.perf_counter())
        )

    def note_deadline(
        self,
        op: str,
        a: str,
        b: str,
        knobs: dict,
        deadline: float,
    ) -> None:
        """Register an absolute monotonic deadline for the job an
        imminent ``submit`` with the same arguments will queue.  Same
        side-channel contract as :meth:`trace_job`: a deadline never
        changes the job's identity or batching; callers pair the call
        with ``submit``.  If coalesced jobs carry different deadlines,
        the tightest one governs the shared dispatch.
        """
        key = (op, *_GROUP_VALUES(knobs), a, b)
        current = self._deadlines.get(key)
        self._deadlines[key] = deadline if current is None else min(current, deadline)

    def flush(self) -> None:
        """Dispatch everything queued right now as one batch."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._queue:
            return
        batch, self._queue = self._queue, []
        assert self._loop is not None
        self._loop.create_task(self._run_batch(batch))

    # -- dispatch -----------------------------------------------------

    async def _run_batch(self, keys: list[Key]) -> None:
        # Jobs whose deadline expired while queued are dropped before
        # the engine sees them: computing an answer nobody is waiting
        # for only steals worker time from live requests.
        now_mono = time.monotonic()
        live: list[Key] = []
        for key in keys:
            key_deadline = self._deadlines.pop(key, None)
            if key_deadline is not None and now_mono >= key_deadline:
                self._trace_interest.pop(key, None)
                fut = self._pending.pop(key, None)
                if self._stats is not None:
                    self._stats.observe_deadline_exceeded()
                if fut is not None and not fut.done():
                    fut.set_exception(
                        DeadlineExceeded("deadline expired while queued for batch dispatch")
                    )
                continue
            live.append(key)
        keys = live
        if not keys:
            return
        if self._stats is not None:
            self._stats.observe_batch(len(keys))
        # Consume trace interest up front: "batcher.wait" is the
        # coalesce delay (trace_job → dispatch), recorded even when the
        # engine call below fails.
        dispatched = time.perf_counter()
        interest = {
            key: self._trace_interest.pop(key)
            for key in keys
            if key in self._trace_interest
        }
        if self._tracer is not None and interest:
            now = time.time()
            n_keys = len(keys)
            shared: list = []
            for key, watchers in interest.items():
                # One tags dict per job, shared by its watchers — the
                # entries are read-only downstream (leaf_entry's "takes
                # ownership" contract), so aliasing is safe.
                tags = {"op": key[0], "batch": n_keys}
                for ctx, sink, enqueued in watchers:
                    wait = dispatched - enqueued
                    entry = (
                        ctx.trace_id, ctx.span_id, "batcher.wait",
                        now - wait, wait, tags,
                    )
                    (shared if sink is None else sink).append(entry)
            if shared:
                self._tracer.extend(shared)
        groups: dict[tuple, list[Key]] = {}
        for key in keys:
            groups.setdefault(key[:_GROUP], []).append(key)
        results: dict[Key, Any] = {}
        try:
            for group_key, group in groups.items():
                op = group_key[0]
                # Registry field names match the engine verbs' keyword
                # arguments one-to-one (a knob-propagation invariant).
                knobs = dict(zip(GROUP_FIELDS, group_key[1:]))
                pairs = [key[_GROUP:] for key in group]
                if op == "score":
                    knobs.pop("memory", None)  # execution hint: align only
                    call = partial(self.engine.score_many, pairs, **knobs)
                else:
                    call = partial(self.engine.align_many, pairs, **knobs)
                compute_start = time.perf_counter()
                values = await self._loop.run_in_executor(self._executor, call)
                if self._tracer is not None and interest:
                    compute_s = time.perf_counter() - compute_start
                    start = time.time() - compute_s
                    # Worker-thread engine call for this job's whole
                    # dispatch group (queue + kernels); one shared tags
                    # dict for the group — read-only downstream.
                    tags = {
                        "op": op, "group": len(group), "mode": knobs.get("mode")
                    }
                    shared = []
                    for key in group:
                        for ctx, sink, _ in interest.get(key, ()):
                            entry = (
                                ctx.trace_id, ctx.span_id, "batcher.compute",
                                start, compute_s, tags,
                            )
                            (shared if sink is None else sink).append(entry)
                    if shared:
                        self._tracer.extend(shared)
                if op == "score":
                    values = [float(v) for v in values]
                results.update(zip(group, values))
        except Exception as exc:
            for key in keys:
                fut = self._pending.pop(key, None)
                if fut is not None and not fut.done():
                    fut.set_exception(exc)
            return
        for key in keys:
            fut = self._pending.pop(key, None)
            if fut is not None and not fut.done():
                fut.set_result(results[key])

    # -- lifecycle ----------------------------------------------------

    async def drain(self) -> None:
        """Flush and wait for every in-flight job (shutdown path)."""
        self.flush()
        pending = list(self._pending.values())
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    def close(self) -> None:
        """Release the worker thread (does not close the engine)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._executor.shutdown(wait=True)
