"""A small bounded LRU mapping with hit/miss/eviction counters.

This is *the* cache primitive of the system: the engine facade's
sequence-encode memo, the service layer's result cache, and the
cluster tier's warmers are all instances of :class:`LRUCache`, so
every bounded cache evicts the same way (least-recently-used) and
reports the same stats shape.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Bounded least-recently-used mapping with observability counters.

    ``get`` promotes the entry to most-recently-used and counts a hit
    or a miss; ``put`` inserts (or refreshes) and evicts the least
    recently used entry once ``maxsize`` is exceeded.  ``maxsize <= 0``
    disables storage entirely — every lookup misses, every ``put`` is
    a no-op — so callers can switch caching off without branching.

    Thread-safe: every operation (lookup, insert, eviction, counter
    update) holds one internal lock, because the same instance is now
    shared across threads — the engine's encode memo is touched from
    the batcher worker thread, the service result cache from the event
    loop, and cluster cache warmers replay keysets from their own
    threads.  The lock is held only for O(1) OrderedDict work, never
    while computing values.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = int(maxsize)
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- mapping operations ------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.maxsize <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        # Peek: neither promotes nor counts as a hit/miss.
        with self._lock:
            return key in self._data

    def keys(self) -> list:
        """Current keys in eviction order (least → most recently used)."""
        with self._lock:
            return list(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    # -- observability -----------------------------------------------

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"LRUCache(size={len(self._data)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
