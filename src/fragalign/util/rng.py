"""Seeded random-number plumbing.

Every stochastic entry point in fragalign accepts ``rng`` (a
:class:`numpy.random.Generator`), an integer seed, or ``None``.  This
module centralizes the coercion so experiments are reproducible from a
single integer and tests can share fixtures.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a freshly seeded generator, an ``int`` seeds a new
    generator deterministically, and an existing generator is returned
    unchanged (so callers can thread one generator through a pipeline).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    if isinstance(rng, np.random.Generator):
        return rng
    raise TypeError(f"cannot interpret {rng!r} as a random generator")


def spawn(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used when fanning work out to worker processes so each worker gets
    a decorrelated stream while the whole run stays reproducible.
    """
    gen = as_generator(rng)
    seeds = gen.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
