"""Exception hierarchy for fragalign.

Keeping a single root exception lets callers distinguish library errors
from programming errors (``ValueError``/``TypeError`` are still raised
for plain bad arguments at API boundaries).
"""

from __future__ import annotations


class FragalignError(Exception):
    """Root of all fragalign-specific errors."""


class InstanceError(FragalignError):
    """An instance (CSR, ISP, graph, ...) violates its invariants."""


class InconsistentMatchSetError(FragalignError):
    """A match set is not realizable by any conjecture pair.

    Raised by the consistency validator and by the solution-state layer
    when an operation would create an unrealizable configuration.
    """


class SolverError(FragalignError):
    """A solver could not produce a solution (bad configuration, size
    limits for exact solvers, ...)."""


class ReductionError(FragalignError):
    """A reduction gadget was handed input outside its preconditions
    (e.g. a non-3-regular graph for the Theorem 2 construction)."""
