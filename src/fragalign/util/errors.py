"""Exception hierarchy for fragalign.

Keeping a single root exception lets callers distinguish library errors
from programming errors (``ValueError``/``TypeError`` are still raised
for plain bad arguments at API boundaries).
"""

from __future__ import annotations


class FragalignError(Exception):
    """Root of all fragalign-specific errors."""


class InstanceError(FragalignError):
    """An instance (CSR, ISP, graph, ...) violates its invariants."""


class InconsistentMatchSetError(FragalignError):
    """A match set is not realizable by any conjecture pair.

    Raised by the consistency validator and by the solution-state layer
    when an operation would create an unrealizable configuration.
    """


class SolverError(FragalignError):
    """A solver could not produce a solution (bad configuration, size
    limits for exact solvers, ...)."""


class ReductionError(FragalignError):
    """A reduction gadget was handed input outside its preconditions
    (e.g. a non-3-regular graph for the Theorem 2 construction)."""


# --- Serving-error taxonomy (fragalign.resilience) -------------------
#
# The cluster router decides whether to try another replica by
# *isinstance* against these two branches — not by matching error
# strings.  Retryable means "the request itself is fine, a different
# replica (or a later moment) may serve it"; non-retryable means
# "retrying cannot help" (the request is invalid, or its budget is
# spent).


class RetryableError(FragalignError):
    """A transient serving failure: another replica may succeed."""


class NonRetryableError(FragalignError):
    """A terminal serving failure: retrying cannot change the outcome."""


class DeadlineExceeded(NonRetryableError):
    """The request's end-to-end deadline expired.

    Non-retryable by definition: once the budget is gone, any retry
    would also exceed it.  Raised server-side when a request is already
    expired before batching (wire code ``DEADLINE_EXCEEDED``) and
    router-side when the remaining budget cannot cover another attempt.
    """


class Overloaded(RetryableError):
    """The server shed the request at admission (wire code ``OVERLOADED``).

    The shard is healthy but full — a different replica may have
    capacity, so the router retries elsewhere *without* evicting the
    shard from the ring.
    """


class CircuitOpen(RetryableError):
    """Every eligible replica's circuit breaker refused the request.

    The shards are quarantined, not the request — a later attempt (after
    a breaker's recovery window) may succeed.
    """
