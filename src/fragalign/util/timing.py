"""Small timing helpers used by benchmarks and examples.

pytest-benchmark drives the official numbers; these helpers exist for
examples and for quick scaling studies inside benchmark fixtures
(strong-scaling sweeps need manual timing across pool sizes).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator


@dataclass
class Stopwatch:
    """Accumulating stopwatch: ``with sw.measure(): ...`` adds a lap."""

    laps: list[float] = field(default_factory=list)

    @contextmanager
    def measure(self) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.laps.append(time.perf_counter() - t0)

    @property
    def total(self) -> float:
        return sum(self.laps)

    @property
    def best(self) -> float:
        if not self.laps:
            raise ValueError("no laps recorded")
        return min(self.laps)


def time_call(fn: Callable, *args, repeat: int = 3, **kwargs) -> tuple[float, object]:
    """Run ``fn`` ``repeat`` times; return (best wall time, last result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result
