"""Shared utilities: RNG plumbing, timing, error hierarchy."""

from fragalign.util.errors import (
    FragalignError,
    InconsistentMatchSetError,
    InstanceError,
    ReductionError,
    SolverError,
)
from fragalign.util.rng import RngLike, as_generator, spawn
from fragalign.util.timing import Stopwatch, time_call

__all__ = [
    "FragalignError",
    "InconsistentMatchSetError",
    "InstanceError",
    "ReductionError",
    "SolverError",
    "RngLike",
    "as_generator",
    "spawn",
    "Stopwatch",
    "time_call",
]
