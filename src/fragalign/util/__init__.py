"""Shared utilities: RNG plumbing, timing, LRU cache, error hierarchy."""

from fragalign.util.errors import (
    FragalignError,
    InconsistentMatchSetError,
    InstanceError,
    ReductionError,
    SolverError,
)
from fragalign.util.lru import LRUCache
from fragalign.util.rng import RngLike, as_generator, spawn
from fragalign.util.timing import Stopwatch, time_call

__all__ = [
    "LRUCache",
    "FragalignError",
    "InconsistentMatchSetError",
    "InstanceError",
    "ReductionError",
    "SolverError",
    "RngLike",
    "as_generator",
    "spawn",
    "Stopwatch",
    "time_call",
]
