"""The live cluster dashboard: one terminal frame per poll.

``fragalign dash`` polls cluster-merged metrics, SLO state, router
health, and the kernel-profile top table on an interval and redraws a
single ANSI frame.  This module is the *pure* half: ``build_state``
distills the polled blobs into one plain dict, ``render_frame`` turns
that dict into a string.  No terminal I/O, no clocks, no sockets —
the CLI owns the poll loop and the screen, and tests render frames
from fixture state without a TTY (the ``--once`` CI mode does the
same: one poll, one frame, exit).
"""

from __future__ import annotations

from fragalign.obs.kprof import top_rows_from_exposition
from fragalign.obs.metrics import histogram_quantile_from_samples, parse_exposition
from fragalign.obs.slo import format_slo_report

__all__ = ["build_state", "render_frame", "CLEAR"]

# ANSI: clear screen + home.  The CLI prepends this between frames.
CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_YELLOW = "\x1b[33m"
_GREEN = "\x1b[32m"
_RESET = "\x1b[0m"


def build_state(
    cluster_stats: dict | None = None,
    slo_reports: list | None = None,
    metrics_text: str | None = None,
    label: str = "",
) -> dict:
    """Distill one poll's raw blobs into the frame-ready state dict.

    ``cluster_stats`` is the router's aggregate (``{"router", "shards",
    "aggregate"}``) or a single server's ``stats`` snapshot wrapped as
    one pseudo-shard; ``metrics_text`` is the (merged) exposition.
    Every argument is optional — the frame renders whatever arrived
    and marks the rest absent, so one dead endpoint never blanks the
    whole dashboard.
    """
    state: dict = {"label": label, "shards": [], "slo": slo_reports, "top": None}
    if cluster_stats is not None:
        router = cluster_stats.get("router") or {}
        breakers = router.get("breakers", {})
        if router:  # absent for a single server's pseudo-cluster
            live = router.get("live_shards")
            configured = router.get("configured_shards")
            state["router"] = {
                "live": len(live) if isinstance(live, (list, tuple)) else live,
                "configured": len(configured)
                if isinstance(configured, (list, tuple))
                else configured,
                "failovers": router.get("failovers", 0),
                "retries": router.get("retries", 0),
                "hedges": router.get("hedges", 0),
                "breaker_fast_fails": router.get("breaker_fast_fails", 0),
            }
        for shard, snap in sorted(cluster_stats.get("shards", {}).items()):
            row = {"shard": shard, "breaker": breakers.get(shard, "closed")}
            if "error" in snap:
                row["error"] = snap["error"]
            else:
                resilience = snap.get("resilience", {})
                cache = snap.get("cache", {})
                row.update(
                    {
                        "requests": snap.get("requests", {}).get("total", 0),
                        "errors": snap.get("requests", {}).get("errors", 0),
                        "p99_ms": snap.get("latency_ms", {}).get("p99", 0.0),
                        "hit_rate": cache.get("hit_rate"),
                        "degraded": resilience.get("degraded_mode", False),
                        "shed": resilience.get("shed", 0),
                        "deadline_exceeded": resilience.get("deadline_exceeded", 0),
                    }
                )
            state["shards"].append(row)
    if metrics_text:
        parsed = parse_exposition(metrics_text)
        samples = parsed["samples"]
        state["totals"] = {
            "requests": _labeled_sum(samples, "fragalign_requests_total"),
            "errors": samples.get(("fragalign_errors_total", ()), 0.0),
            "coalesced": samples.get(("fragalign_coalesced_total", ()), 0.0),
            "p50_ms": 1e3
            * histogram_quantile_from_samples(
                samples, "fragalign_request_latency_seconds", 0.50
            ),
            "p99_ms": 1e3
            * histogram_quantile_from_samples(
                samples, "fragalign_request_latency_seconds", 0.99
            ),
        }
        state["top"] = top_rows_from_exposition(metrics_text)[:6]
    return state


def _labeled_sum(samples: dict, name: str) -> float:
    return sum(value for (n, _), value in samples.items() if n == name)


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def _breaker_cell(state: str, color: bool) -> str:
    code = {"closed": _GREEN, "half-open": _YELLOW, "open": _RED}.get(state, _DIM)
    return _paint(f"{state:<9}", code, color)


def render_frame(state: dict, color: bool = True) -> str:
    """One full dashboard frame as a string (no trailing clear)."""
    lines: list[str] = []
    title = f"fragalign dash · {state.get('label', '')}".rstrip(" ·")
    lines.append(_paint(title, _BOLD, color))
    totals = state.get("totals")
    router = state.get("router")
    if totals:
        summary = (
            f"requests {int(totals['requests'])}  "
            f"errors {int(totals['errors'])}  "
            f"coalesced {int(totals['coalesced'])}  "
            f"p50 {totals['p50_ms']:.2f}ms  p99 {totals['p99_ms']:.2f}ms"
        )
        lines.append(summary)
    if router:
        lines.append(
            f"shards {router['live']}/{router['configured']}  "
            f"failovers {router['failovers']}  retries {router['retries']}  "
            f"hedges {router['hedges']}  breaker-fast-fails "
            f"{router['breaker_fast_fails']}"
        )
    if state.get("shards"):
        lines.append("")
        lines.append(
            _paint(
                f"{'SHARD':<22} {'BREAKER':<9} {'REQS':>8} {'ERRS':>6} "
                f"{'P99MS':>8} {'HIT%':>6} {'SHED':>6} {'DDLX':>6}  STATE",
                _BOLD,
                color,
            )
        )
        for row in state["shards"]:
            if "error" in row:
                cells = (
                    f"{row['shard']:<22} {_breaker_cell(row['breaker'], color)} "
                    + _paint(f"DOWN: {row['error']}", _RED, color)
                )
                lines.append(cells)
                continue
            hit = "-" if row["hit_rate"] is None else f"{100 * row['hit_rate']:.1f}"
            mode = "degraded" if row["degraded"] else "ok"
            mode_cell = _paint(mode, _YELLOW if row["degraded"] else _GREEN, color)
            lines.append(
                f"{row['shard']:<22} {_breaker_cell(row['breaker'], color)} "
                f"{int(row['requests']):>8} {int(row['errors']):>6} "
                f"{row['p99_ms']:>8.2f} {hit:>6} {int(row['shed']):>6} "
                f"{int(row['deadline_exceeded']):>6}  {mode_cell}"
            )
    if state.get("slo"):
        lines.append("")
        report = format_slo_report(state["slo"]).rstrip("\n")
        if color:
            painted = []
            for line in report.splitlines():
                if line.endswith(" page"):
                    painted.append(_paint(line, _RED, color))
                elif line.endswith(" ticket"):
                    painted.append(_paint(line, _YELLOW, color))
                else:
                    painted.append(line)
            report = "\n".join(painted)
        lines.append(report)
    if state.get("top"):
        lines.append("")
        lines.append(_paint("top kernels (by seconds)", _BOLD, color))
        for r in state["top"]:
            lines.append(
                f"  {r['family']:<12} {r['backend']:<10} {r['mode']:<8} "
                f"{int(r['calls']):>7} calls {r['seconds']:>8.3f}s "
                f"{r['mcells_per_s']:>8.1f} mcells/s"
            )
    if len(lines) <= 1:
        lines.append(_paint("no data yet", _DIM, color))
    return "\n".join(lines) + "\n"
