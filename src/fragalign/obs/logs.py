"""Structured logging for the serving tiers.

One stdlib :mod:`logging` hierarchy rooted at ``fragalign``; servers
and supervisors call :func:`configure_logging` once at process start
(the ``--log-level`` / ``--log-json`` CLI flags).  The JSON formatter
emits one object per line — the same shape the protocol uses — so
shard logs are machine-parseable with the same tooling as the wire.

Library code only ever calls ``logging.getLogger("fragalign.<tier>")``
and logs; whether anything is emitted, and in what format, is the
entrypoint's decision.  Extra structured context goes through the
standard ``extra={...}`` mechanism and lands as top-level JSON keys.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

__all__ = ["JsonFormatter", "configure_logging", "get_logger"]

# logging.LogRecord's own attributes — anything else on a record came
# in via extra={} and belongs in the JSON object.
_RECORD_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per log line: ts, level, logger, event, extras."""

    def format(self, record: logging.LogRecord) -> str:
        obj: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RECORD_FIELDS and not key.startswith("_"):
                obj[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            obj["exc"] = self.formatException(record.exc_info)
        return json.dumps(obj, separators=(",", ":"), default=str)


class TextFormatter(logging.Formatter):
    """Human-readable lines with extras appended as key=value."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        base = f"{stamp} {record.levelname:<7} {record.name} {record.getMessage()}"
        extras = " ".join(
            f"{key}={value}"
            for key, value in record.__dict__.items()
            if key not in _RECORD_FIELDS and not key.startswith("_")
        )
        if extras:
            base = f"{base} [{extras}]"
        if record.exc_info and record.exc_info[0] is not None:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def configure_logging(
    level: str = "info", json_format: bool = False, stream: IO | None = None
) -> logging.Logger:
    """Configure the ``fragalign`` logger tree; idempotent per process.

    Returns the root ``fragalign`` logger.  Re-invocation replaces the
    handler (so tests can re-point the stream) instead of stacking.
    """
    logger = logging.getLogger("fragalign")
    logger.setLevel(getattr(logging, level.upper(), logging.INFO))
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_format else TextFormatter())
    for old in list(logger.handlers):
        logger.removeHandler(old)
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_logger(tier: str) -> logging.Logger:
    """The logger for one serving tier (``service``, ``cluster``...)."""
    return logging.getLogger(f"fragalign.{tier}")
