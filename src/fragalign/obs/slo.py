"""SLO engine: declarative targets evaluated as multi-window burn rates.

An SLO is a spec string per op::

    score p99 < 50ms @ 99.9%      # latency: 99.9% of scores under 50ms
    align availability @ 99.9%    # availability: 99.9% of aligns succeed

Both reduce to the same service-level indicator shape — a cumulative
(good, total) event pair readable from the Prometheus exposition:

* latency: good = requests that landed at or under the threshold
  (read from the per-op latency histogram's cumulative bucket counts,
  with the threshold snapped to the nearest bucket bound above it);
* availability: good = ``requests_total{op}`` minus
  ``errors_by_op_total{op}``.

The engine snapshots (good, total) per target on every :meth:`sample`
call and evaluates **burn rate** over four windows — the error-budget
spend speed, where burn 1.0 means "spending exactly the budget the
objective allows".  Alerting follows the multi-window multi-burn-rate
recipe from the Google SRE workbook: *page* when the fast pair (5m and
1h) both burn at >= 14.4x, *ticket* when the slow pair (30m and 6h)
both burn at >= 6x.  The short window in each pair makes the alert
reset quickly once the burn stops; the long window keeps one bad
second from paging.

Windows longer than the engine's uptime clamp to the oldest snapshot,
so a freshly booted server reports burn over min(window, uptime)
rather than pretending it has 6h of history.

The engine is deliberately source-agnostic: it reads parsed exposition
dicts (:func:`fragalign.obs.metrics.parse_exposition`), so the same
class serves a single server (sampling its own registry) and the
cluster router (sampling the shard-merged scrape).
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque

from fragalign.obs.metrics import MetricsRegistry

__all__ = [
    "SLOTarget",
    "SLOEngine",
    "parse_slo",
    "DEFAULT_SLOS",
    "WINDOWS",
    "format_slo_report",
]

# The evaluation windows, paired fast (page) / slow (ticket).
WINDOWS: dict[str, float] = {"5m": 300.0, "1h": 3600.0, "30m": 1800.0, "6h": 21600.0}
_PAGE_PAIR = ("5m", "1h")
_TICKET_PAIR = ("30m", "6h")
PAGE_BURN = 14.4
TICKET_BURN = 6.0

# Out-of-the-box targets used when the operator passes none.
DEFAULT_SLOS = (
    "score p99 < 50ms @ 99.9%",
    "align p99 < 250ms @ 99.9%",
    "score availability @ 99.9%",
    "align availability @ 99.9%",
)

_LATENCY_RE = re.compile(
    r"^(?P<op>\w+)\s+p(?P<q>\d+(?:\.\d+)?)\s*<\s*"
    r"(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>us|ms|s)"
    r"(?:\s*@\s*(?P<obj>\d+(?:\.\d+)?)\s*%?)?$"
)
_AVAIL_RE = re.compile(
    r"^(?P<op>\w+)\s+avail(?:ability)?\s*@\s*(?P<obj>\d+(?:\.\d+)?)\s*%?$"
)
_UNIT_S = {"us": 1e-6, "ms": 1e-3, "s": 1.0}


class SLOTarget:
    """One parsed target; identity is its (immutable) ``name``."""

    __slots__ = ("name", "op", "kind", "objective", "threshold_s")

    def __init__(
        self,
        op: str,
        kind: str,
        objective: float,
        threshold_s: float | None = None,
    ) -> None:
        if kind not in ("latency", "availability"):
            raise ValueError(f"unknown SLO kind {kind!r}")
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be a fraction in (0, 1)")
        if kind == "latency" and (threshold_s is None or threshold_s <= 0):
            raise ValueError("latency SLO needs a positive threshold")
        self.op = op
        self.kind = kind
        self.objective = objective
        self.threshold_s = threshold_s
        if kind == "latency":
            self.name = f"{op}_latency_{_fmt_threshold(threshold_s)}"
        else:
            self.name = f"{op}_availability"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SLOTarget(op={self.op!r}, kind={self.kind!r}, "
            f"objective={self.objective}, threshold_s={self.threshold_s})"
        )


def _fmt_threshold(threshold_s: float) -> str:
    if threshold_s < 1e-3:
        return f"{threshold_s * 1e6:g}us"
    if threshold_s < 1.0:
        return f"{threshold_s * 1e3:g}ms"
    return f"{threshold_s:g}s"


def parse_slo(spec: str) -> SLOTarget:
    """Parse one spec string into an :class:`SLOTarget`.

    Latency form: ``<op> p<q> < <n><unit> [@ <obj>%]`` — the ``p<q>``
    names the quantile the threshold is aimed at and doubles as the
    default objective (``p99`` -> 99%) when no explicit ``@`` is given.
    Availability form: ``<op> availability @ <obj>%``.
    """
    text = spec.strip()
    m = _LATENCY_RE.match(text)
    if m:
        obj = float(m.group("obj")) if m.group("obj") else float(m.group("q"))
        return SLOTarget(
            op=m.group("op"),
            kind="latency",
            objective=obj / 100.0,
            threshold_s=float(m.group("num")) * _UNIT_S[m.group("unit")],
        )
    m = _AVAIL_RE.match(text)
    if m:
        return SLOTarget(
            op=m.group("op"),
            kind="availability",
            objective=float(m.group("obj")) / 100.0,
        )
    raise ValueError(
        f"unparseable SLO spec {spec!r} "
        "(expected e.g. 'score p99 < 50ms @ 99.9%' or 'align availability @ 99.9%')"
    )


def _sample_value(samples: dict, name: str, **labels) -> float | None:
    key = (name, tuple(sorted(labels.items())))
    return samples.get(key)


def _histogram_good_total(
    samples: dict, name: str, threshold_s: float
) -> tuple[float, float, float] | None:
    """(good, total, snapped threshold) from cumulative bucket counts,
    or ``None`` when the histogram is absent from the exposition."""
    buckets: list[tuple[float, float]] = []
    total = None
    for (sample_name, labels), value in samples.items():
        if sample_name != f"{name}_bucket":
            continue
        le = dict(labels).get("le")
        if le is None:
            continue
        bound = float("inf") if le == "+Inf" else float(le)
        if bound == float("inf"):
            total = value
        else:
            buckets.append((bound, value))
    if total is None:
        return None
    buckets.sort()
    # Snap up to the first bound at or above the threshold: the SLI
    # becomes "under <snapped>s", the tightest bound the fixed bucket
    # layout can actually measure without undercounting good events.
    for bound, value in buckets:
        if bound >= threshold_s:
            return (value, total, bound)
    return (total, total, float("inf"))


class SLOEngine:
    """Snapshot (good, total) per target; evaluate burn over windows.

    Thread-safe: the server samples from the request path while the
    metrics renderer exports gauges from another task.
    """

    # 6h window at one sample per second would need 21600 snapshots;
    # in practice sampling happens per `slo` op / metrics render, far
    # sparser.  The deque bound is a memory backstop, and `_prune`
    # keeps only what the longest window can use.
    MAX_SNAPSHOTS = 8192

    def __init__(self, targets: tuple[SLOTarget, ...] | list[SLOTarget]) -> None:
        if not targets:
            raise ValueError("SLOEngine needs at least one target")
        names = [t.name for t in targets]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO target names: {names}")
        self.targets = tuple(targets)
        self._lock = threading.Lock()
        # target name -> deque of (ts, good, total)
        self._history: dict[str, deque] = {
            t.name: deque(maxlen=self.MAX_SNAPSHOTS) for t in self.targets
        }

    @staticmethod
    def from_specs(specs) -> "SLOEngine":
        return SLOEngine([parse_slo(s) for s in (specs or DEFAULT_SLOS)])

    # -- sampling -----------------------------------------------------

    def sample(self, parsed: dict, now: float | None = None) -> None:
        """Record one (good, total) snapshot per target from a parsed
        exposition (``parse_exposition`` / merged dict with a
        ``"samples"`` key)."""
        samples = parsed["samples"]
        ts = time.time() if now is None else now
        with self._lock:
            for target in self.targets:
                gt = self._read_good_total(samples, target)
                if gt is None:
                    continue
                history = self._history[target.name]
                history.append((ts, gt[0], gt[1]))
                self._prune(history, ts)

    @staticmethod
    def _read_good_total(samples: dict, target: SLOTarget):
        if target.kind == "latency":
            got = _histogram_good_total(
                samples,
                f"fragalign_{target.op}_latency_seconds",
                target.threshold_s,
            )
            return None if got is None else (got[0], got[1])
        total = _sample_value(samples, "fragalign_requests_total", op=target.op)
        if total is None:
            return None
        bad = (
            _sample_value(samples, "fragalign_errors_by_op_total", op=target.op)
            or 0.0
        )
        return (total - bad, total)

    @staticmethod
    def _prune(history: deque, now: float) -> None:
        horizon = now - max(WINDOWS.values()) - 60.0
        # Keep one snapshot older than the horizon as the 6h anchor.
        while len(history) > 1 and history[1][0] < horizon:
            history.popleft()

    # -- evaluation ---------------------------------------------------

    def evaluate(self, now: float | None = None) -> list[dict]:
        """Burn rates, compliance, and alert state for every target."""
        ts = time.time() if now is None else now
        out = []
        with self._lock:
            for target in self.targets:
                out.append(self._evaluate_one(target, ts))
        return out

    def _evaluate_one(self, target: SLOTarget, now: float) -> dict:
        history = self._history[target.name]
        report = {
            "name": target.name,
            "op": target.op,
            "kind": target.kind,
            "objective": target.objective,
            "threshold_s": target.threshold_s,
            "windows": {},
            "compliance": None,
            "alert": "ok",
            "good": None,
            "total": None,
        }
        if not history:
            report["alert"] = "no-data"
            return report
        ts_now, good_now, total_now = history[-1]
        report["good"] = good_now
        report["total"] = total_now
        if total_now > 0:
            report["compliance"] = good_now / total_now
        budget = 1.0 - target.objective
        for label, window in WINDOWS.items():
            anchor = self._anchor(history, ts_now - window)
            d_total = total_now - anchor[2]
            d_bad = d_total - (good_now - anchor[1])
            if d_total <= 0:
                report["windows"][label] = 0.0
            else:
                report["windows"][label] = (d_bad / d_total) / budget
        burns = report["windows"]
        if all(burns[w] >= PAGE_BURN for w in _PAGE_PAIR):
            report["alert"] = "page"
        elif all(burns[w] >= TICKET_BURN for w in _TICKET_PAIR):
            report["alert"] = "ticket"
        return report

    @staticmethod
    def _anchor(history: deque, target_ts: float):
        """Newest snapshot at or before ``target_ts`` — or the oldest
        one (window clamps to uptime on a young engine)."""
        anchor = history[0]
        for snap in history:
            if snap[0] <= target_ts:
                anchor = snap
            else:
                break
        return anchor

    # -- export -------------------------------------------------------

    _ALERT_LEVEL = {"ok": 0.0, "ticket": 1.0, "page": 2.0, "no-data": -1.0}

    def export_gauges(self, registry: MetricsRegistry, now: float | None = None) -> None:
        """Publish the current evaluation as ``fragalign_slo_*`` gauges."""
        burn = registry.gauge(
            "fragalign_slo_burn_rate",
            "Error-budget burn rate per SLO and window (1.0 = on budget).",
            labels=("slo", "window"),
        )
        compliance = registry.gauge(
            "fragalign_slo_compliance",
            "Cumulative fraction of good events per SLO.",
            labels=("slo",),
        )
        alert = registry.gauge(
            "fragalign_slo_alert",
            "Alert state per SLO: 0 ok, 1 ticket, 2 page, -1 no data.",
            labels=("slo",),
        )
        for report in self.evaluate(now):
            for window, value in report["windows"].items():
                burn.set(value, slo=report["name"], window=window)
            if report["compliance"] is not None:
                compliance.set(report["compliance"], slo=report["name"])
            alert.set(self._ALERT_LEVEL[report["alert"]], slo=report["name"])


def format_slo_report(reports: list[dict]) -> str:
    """The `fragalign slo` table: one row per target."""
    header = (
        f"{'SLO':<28} {'objective':>9} {'compliance':>10} "
        f"{'5m':>8} {'1h':>8} {'30m':>8} {'6h':>8}  alert"
    )
    lines = [header, "-" * len(header)]
    for r in reports:
        comp = "-" if r["compliance"] is None else f"{100 * r['compliance']:.3f}%"
        burns = [
            f"{r['windows'][w]:.2f}" if w in r["windows"] else "-"
            for w in ("5m", "1h", "30m", "6h")
        ]
        lines.append(
            f"{r['name']:<28} {100 * r['objective']:>8.2f}% {comp:>10} "
            f"{burns[0]:>8} {burns[1]:>8} {burns[2]:>8} {burns[3]:>8}  {r['alert']}"
        )
    return "\n".join(lines) + "\n"
