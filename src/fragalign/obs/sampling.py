"""Tail-based trace sampling: keep the traces worth keeping.

Head sampling alone (trace every Nth request) is cheap but blind — at
a 10% rate it throws away 90% of the errors and 90% of the p99 tail,
which is exactly the 10% an operator wants.  The :class:`TailSampler`
inverts the decision: every server-initiated trace is *recorded* in
full, and the keep/drop choice is made at request completion, when the
outcome and duration are known:

* **errors** (including deadline-exceeded and shed requests — anything
  with ``ok=false``) are always retained;
* **slow** requests — above an adaptive per-op threshold, an EWMA of
  the op's own latency scaled by ``slow_factor`` — are always retained;
* everything else is head-sampled at ``head_rate`` (deterministic
  counter stride, so a drill at rate 0.1 keeps exactly every 10th
  boring trace — no flaky-randomness in tests, nothing for the
  analyzer's determinism rule to object to).

The decision happens *before* the latency histogram observation, so a
retained trace id rides along as the bucket's exemplar: ``fragalign
metrics --summary`` shows the p99 and the exact trace to pull for it.

Client-supplied traces (the request carried ``trace_id``) are not this
module's to drop: someone upstream asked for that trace.  The server
always retains those.
"""

from __future__ import annotations

import threading

from fragalign.obs.metrics import MetricsRegistry

__all__ = ["TailSampler", "SampleDecision"]


class SampleDecision:
    """Outcome of one retention decision (cheap; built per request)."""

    __slots__ = ("retain", "reason")

    def __init__(self, retain: bool, reason: str) -> None:
        self.retain = retain
        self.reason = reason  # "error" | "slow" | "head" | "dropped"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SampleDecision(retain={self.retain}, reason={self.reason!r})"


# Decisions are stateless value objects; the four possible outcomes are
# prebuilt so the hot path hands out a shared instance instead of
# allocating one per request.
_DECISION = {
    "error": SampleDecision(True, "error"),
    "slow": SampleDecision(True, "slow"),
    "head": SampleDecision(True, "head"),
    "dropped": SampleDecision(False, "dropped"),
}


class TailSampler:
    """Decide, per finished request, whether its trace is retained.

    Parameters
    ----------
    head_rate:
        Fraction of *boring* (fast, successful) traces to keep,
        ``0 < head_rate <= 1``.  Implemented as a stride: every
        ``round(1/head_rate)``-th boring trace per op is kept.
    slow_factor:
        A request is "slow" when its duration exceeds
        ``slow_factor`` x the op's EWMA mean latency.
    min_slow_s:
        Floor for the slow threshold — below this a request is never
        "slow", however fast the op usually is.  Keeps microsecond
        jitter on cache hits from flooding the buffer.
    warmup:
        Observations per op before the adaptive threshold engages;
        until then only the ``min_slow_s`` floor applies.  The first
        few requests of a cold op are noise, not signal.
    registry:
        Optional :class:`MetricsRegistry`; when given, retained /
        dropped counters are published per retention reason.
    """

    def __init__(
        self,
        head_rate: float = 0.1,
        slow_factor: float = 3.0,
        min_slow_s: float = 0.001,
        warmup: int = 20,
        registry: MetricsRegistry | None = None,
        ewma_alpha: float = 0.05,
    ) -> None:
        if not 0.0 < head_rate <= 1.0:
            raise ValueError("head_rate must be in (0, 1]")
        if slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")
        self.head_rate = head_rate
        self.slow_factor = slow_factor
        self.min_slow_s = min_slow_s
        self.warmup = warmup
        self._alpha = ewma_alpha
        self._stride = max(1, round(1.0 / head_rate))
        self._lock = threading.Lock()
        # One state record per op — [seen, ewma_mean, head_tick] — so a
        # decision costs one dict probe, not three.
        self._state: dict[str, list] = {}
        # Decision tallies accumulate as plain ints on the hot path and
        # flush to the registry counters at scrape time (publish) — a
        # labeled counter inc costs ~2us, which at one per request was
        # the single biggest line item of the sampling overhead budget.
        self._tally = {"error": 0, "slow": 0, "head": 0, "dropped": 0}
        self._published = {"error": 0, "slow": 0, "head": 0, "dropped": 0}
        self._retained = None
        self._dropped = None
        if registry is not None:
            self._retained = registry.counter(
                "fragalign_traces_retained_total",
                "Traces retained by the tail sampler, by reason.",
                labels=("reason",),
            )
            self._dropped = registry.counter(
                "fragalign_traces_sampled_out_total",
                "Server-initiated traces dropped by head sampling.",
            )

    def slow_threshold(self, op: str) -> float:
        """Current "slow" cutoff in seconds for ``op`` (inspectable so
        tests and the drill can craft above/below-threshold work)."""
        with self._lock:
            st = self._state.get(op)
            if st is None or st[0] < self.warmup:
                return float("inf") if self.min_slow_s <= 0 else self.min_slow_s
            return max(self.min_slow_s, self.slow_factor * st[1])

    def decide(self, op: str, duration_s: float, ok: bool) -> SampleDecision:
        """The retention decision for one finished request.

        Only *boring* requests feed the op's EWMA: errors and instant
        rejections (shed, bad input) would drag the threshold down and
        mark everything "slow", while above-threshold outliers would
        drag it *up* — a sustained latency regression could then raise
        its own bar until it stopped looking slow.  The mean tracks
        what normal looks like; the tail is judged against it.
        """
        with self._lock:
            st = self._state.get(op)
            if st is None:
                st = self._state[op] = [0, None, 0]  # [seen, ewma, tick]
            seen, mean = st[0], st[1]
            if not ok:
                reason = "error"
            elif (
                seen >= self.warmup
                and mean is not None
                and duration_s >= max(self.min_slow_s, self.slow_factor * mean)
            ):
                reason = "slow"
            else:
                if ok:
                    st[0] = seen + 1
                    if mean is None:
                        st[1] = duration_s
                    else:
                        st[1] = mean + self._alpha * (duration_s - mean)
                tick = st[2]
                st[2] = tick + 1
                reason = "head" if tick % self._stride == 0 else "dropped"
            self._tally[reason] += 1
        return _DECISION[reason]

    def publish(self) -> None:
        """Flush accumulated decision tallies to the registry counters.

        Called at scrape time (the server's ``render_metrics`` does,
        mirroring how the trace-buffer ``dropped`` gauge is refreshed)
        so exposition readers always see current totals without the
        hot path paying a counter inc per request.
        """
        if self._retained is None and self._dropped is None:
            return
        with self._lock:
            deltas = {
                reason: self._tally[reason] - self._published[reason]
                for reason in self._tally
            }
            self._published.update(self._tally)
        for reason in ("error", "slow", "head"):
            if deltas[reason] and self._retained is not None:
                self._retained.inc(deltas[reason], reason=reason)
        if deltas["dropped"] and self._dropped is not None:
            self._dropped.inc(deltas["dropped"])
