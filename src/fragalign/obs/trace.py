"""Request tracing: trace context, spans, and the in-process ring buffer.

A trace context is two 64-bit hex ids — ``trace_id`` names the whole
request tree, ``span_id`` names one operation within it — plus the
parent span's id.  The context rides the JSON-lines wire as
*non-semantic* fields: ``service/fields.py`` registers ``trace_id``
and ``span_id`` with every participation flag off, so the
knob-propagation analyzer proves they can never enter a cache key,
ring key, or batch group key.  Tracing therefore cannot split batches
or poison cache identity — it only annotates.

Spans land in a bounded :class:`TraceBuffer` (a ring: old spans are
dropped, never blocks, drop count exposed) and are drained via the
``trace`` request op.  Id entropy lives only in this module — the
analyzer's determinism rule bans entropy sources from every
key-making code path, and ``obs/`` is deliberately outside its scan
scope.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager

__all__ = [
    "TraceContext",
    "Span",
    "TraceBuffer",
    "Tracer",
    "new_trace_context",
    "child_context",
    "leaf_entry",
]

# Ids need exactly one property: uniqueness across every process that
# can contribute spans to one trace.  A random per-process prefix
# (one urandom read at import) plus a process-local counter gives
# that without a syscall per id — span recording sits on the request
# hot path, where os.urandom's ~0.5µs apiece was the single largest
# tracing cost.
_PROCESS = os.urandom(6).hex()
_counter = itertools.count(1)  # thread-safe: one CPython bytecode per next()


def _new_id() -> str:
    return "%s-%x" % (_PROCESS, next(_counter))


class TraceContext:
    """The triple carried on the wire; immutable by convention, tiny.

    A plain ``__slots__`` class rather than a frozen dataclass: these
    are built per request and per span on the hot path, and frozen
    dataclass construction costs ~2.5x more.
    """

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(
        self, trace_id: str, span_id: str, parent_id: str | None = None
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, parent_id={self.parent_id!r})"
        )

    def child(self) -> "TraceContext":
        """A fresh span under this one, in the same trace."""
        return TraceContext(self.trace_id, _new_id(), self.span_id)

    def to_wire(self) -> dict:
        """The two fields a request carries (parent is implicit: the
        receiver treats the caller's ``span_id`` as its parent)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}


def new_trace_context() -> TraceContext:
    # The root context reuses the trace id as its span id: the root is
    # never recorded as a span itself (children just parent under it),
    # so a second id would only buy a second id-generation on every
    # traced request.
    root = _new_id()
    return TraceContext(trace_id=root, span_id=root, parent_id=None)


def child_context(
    trace_id: str | None, parent_span_id: str | None
) -> TraceContext | None:
    """Context for work done *on behalf of* an incoming traced request.

    Returns ``None`` when the request carries no trace — the universal
    "tracing off" signal throughout the stack (every span-recording
    site is a no-op on a ``None`` context).
    """
    if not trace_id:
        return None
    return TraceContext(trace_id=trace_id, span_id=_new_id(), parent_id=parent_span_id)


class Span:
    """One timed operation inside a trace.

    ``start_s`` is wall-clock (``time.time``) so spans from different
    processes order sensibly in one tree.  Like :class:`TraceContext`
    this is a ``__slots__`` class, not a dataclass: one is built per
    recorded span on the hot path.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_s",
        "duration_s",
        "tags",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        start_s: float,
        duration_s: float,
        tags: dict | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.duration_s = duration_s
        self.tags = {} if tags is None else tags

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return all(
            getattr(self, slot) == getattr(other, slot) for slot in self.__slots__
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{s}={getattr(self, s)!r}" for s in self.__slots__)
        return f"Span({fields})"

    def to_dict(self) -> dict:
        out = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }
        if self.tags:
            out["tags"] = self.tags
        return out

    @staticmethod
    def from_dict(obj: dict) -> "Span":
        return Span(
            trace_id=obj["trace_id"],
            span_id=obj["span_id"],
            parent_id=obj.get("parent_id"),
            name=obj["name"],
            start_s=obj["start_s"],
            duration_s=obj["duration_s"],
            tags=obj.get("tags", {}),
        )


# A "leaf entry" is the deferred form of a span that nothing else will
# ever reference: (trace_id, parent_id, name, start_s, duration_s,
# tags-or-None).  Recording one costs a tuple and a deque append — the
# Span object and its fresh span id are only materialised when the
# buffer is read, off the request hot path.  Only spans whose id is
# never a parent (the per-stage leaves) may use this form; spans other
# spans parent under (``record_raw`` sites) carry their ctx-assigned
# id eagerly.
def leaf_entry(
    ctx: TraceContext,
    name: str,
    start_s: float,
    duration_s: float,
    tags: dict | None = None,
) -> tuple:
    """A deferred child-of-``ctx`` span for :meth:`TraceBuffer.extend`.
    Takes ownership of ``tags``."""
    return (ctx.trace_id, ctx.span_id, name, start_s, duration_s, tags)


def _materialize(entry) -> Span:
    if type(entry) is tuple:
        return Span(entry[0], _new_id(), entry[1], entry[2], entry[3], entry[4], entry[5])
    return entry


class TraceBuffer:
    """Bounded ring of finished spans, shared across threads.

    ``append`` never blocks and never grows past ``maxlen`` — the
    oldest spans fall off and ``dropped`` counts them, so a busy
    server pays O(1) per span and bounded memory total.  Entries may
    be :class:`Span` objects or deferred :func:`leaf_entry` tuples;
    readers only ever see ``Span`` (tuples are materialised, in
    place, on first read — so ``peek`` then ``drain`` agree on ids).
    """

    def __init__(self, maxlen: int = 4096) -> None:
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=maxlen)
        self._appended = 0
        self._drained = 0
        self._discarded = 0
        self.maxlen = maxlen

    def append(self, entry) -> None:
        with self._lock:
            self._appended += 1
            self._spans.append(entry)

    def extend(self, entries: list) -> None:
        """Append a request's worth of entries in one call — the hot
        path pays one lock acquisition per request, not per span."""
        with self._lock:
            self._appended += len(entries)
            self._spans.extend(entries)

    @property
    def dropped(self) -> int:
        """Spans the ring has silently lost to overflow: everything
        appended that was neither drained out, deliberately discarded,
        nor is still buffered."""
        with self._lock:
            return max(
                0,
                self._appended - self._drained - self._discarded - len(self._spans),
            )

    def discard(self, trace_id: str) -> int:
        """Drop one trace's buffered spans without draining them.

        The tail sampler's "not retained" path: a head-sampled-out
        trace may already have out-of-band spans buffered (the batcher
        records ``batcher.wait``/``batcher.compute`` at batch time,
        before the retention decision exists), and leaving those
        orphans in the ring would leak partial trees to later drains.
        Deferred tuples carry ``trace_id`` at index 0, so no settling
        is needed.  Returns the number of spans discarded; they are
        counted separately from overflow ``dropped``.
        """
        with self._lock:
            before = len(self._spans)
            keep = [
                e
                for e in self._spans
                if (e[0] if type(e) is tuple else e.trace_id) != trace_id
            ]
            removed = before - len(keep)
            if removed:
                self._spans.clear()
                self._spans.extend(keep)
                self._discarded += removed
            return removed

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def _settle(self) -> None:
        # Materialise deferred leaves in place (caller holds the lock)
        # so repeated reads hand out stable span ids.
        if any(type(e) is tuple for e in self._spans):
            settled = [_materialize(e) for e in self._spans]
            self._spans.clear()
            self._spans.extend(settled)

    def drain(self, trace_id: str | None = None) -> list[Span]:
        """Remove and return buffered spans.

        With ``trace_id``, only that trace's spans are removed — other
        traces stay buffered for their own drains.
        """
        with self._lock:
            self._settle()
            if trace_id is None:
                out = list(self._spans)
                self._spans.clear()
            else:
                out = [s for s in self._spans if s.trace_id == trace_id]
                if out:
                    keep = [s for s in self._spans if s.trace_id != trace_id]
                    self._spans.clear()
                    self._spans.extend(keep)
            self._drained += len(out)
            return out

    def peek(self, trace_id: str | None = None) -> list[Span]:
        with self._lock:
            self._settle()
            if trace_id is None:
                return list(self._spans)
            return [s for s in self._spans if s.trace_id == trace_id]


class Tracer:
    """Record spans against a buffer; every method no-ops on ctx=None."""

    def __init__(self, buffer: TraceBuffer | None = None) -> None:
        self.buffer = buffer if buffer is not None else TraceBuffer()

    @contextmanager
    def span(self, ctx: TraceContext | None, name: str, **tags):
        """Time a block as a child span of ``ctx``.

        Yields the child context (or ``None``) so nested stages can
        parent under it; mutate the yielded ``tags`` via the returned
        context object's buffer entry only through ``record``.
        """
        if ctx is None:
            yield None
            return
        child = ctx.child()
        start_wall = time.time()
        start = time.perf_counter()
        try:
            yield child
        finally:
            self.record_raw(
                child, name, start_wall, time.perf_counter() - start, tags
            )

    def record(
        self, ctx: TraceContext | None, name: str, duration_s: float, **tags
    ) -> None:
        """Record an already-measured duration as a child span of ``ctx``.

        The span is a leaf (nothing can parent under it — no context
        for it ever escapes), so it is buffered in deferred form: id
        assignment and Span construction happen at read time.
        """
        if ctx is None:
            return
        self.buffer.append(
            (
                ctx.trace_id,
                ctx.span_id,
                name,
                time.time() - duration_s,
                duration_s,
                tags or None,
            )
        )

    def extend(self, entries: list) -> None:
        """Buffer a batch of :func:`leaf_entry` tuples / :class:`Span`
        objects in one call (the per-request hot path)."""
        if entries:
            self.buffer.extend(entries)

    def record_raw(
        self,
        ctx: TraceContext,
        name: str,
        start_wall: float,
        duration_s: float,
        tags: dict,
    ) -> None:
        """Record a span *as* ``ctx`` (not under it).  Takes ownership
        of ``tags``: pass a dict the caller will not mutate again."""
        self.buffer.append(
            Span(
                ctx.trace_id,
                ctx.span_id,
                ctx.parent_id,
                name,
                start_wall,
                duration_s,
                tags,
            )
        )


def span_tree(spans: list[Span]) -> dict[str | None, list[Span]]:
    """Index spans by parent_id for tree walks in tests and CLI output."""
    by_parent: dict[str | None, list[Span]] = {}
    for span in sorted(spans, key=lambda s: s.start_s):
        by_parent.setdefault(span.parent_id, []).append(span)
    return by_parent
