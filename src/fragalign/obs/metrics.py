"""The metrics registry: counters, gauges, log-bucket histograms.

One :class:`MetricsRegistry` per server process holds every
instrument; the ``metrics`` request op renders it in the Prometheus
text exposition format, and ``fragalign metrics`` scrapes and
aggregates those expositions across a whole cluster.

Design constraints, in order:

* **O(1) memory under unbounded traffic.**  Histograms are
  fixed-bucket — log-spaced bounds chosen once at construction — so a
  histogram is an int array plus a running sum, never a sample
  reservoir.  That is what fixes the recency bias of the old
  sorted-deque quantile estimator in ``service/stats.py``: every
  observation since boot contributes to the quantile, not just the
  newest 4096.
* **Mergeable across shards.**  Counters add; histogram bucket counts
  add bucket-by-bucket (all shards share the same fixed bounds), so
  cluster-level quantiles are computable from summed expositions —
  :func:`parse_exposition` + :func:`merge_expositions` implement the
  scrape side.
* **Thread-safe.**  The batcher's worker thread records kernel
  timings while the event loop records request latencies; every
  instrument mutation holds a lock for O(1) work only.

Quantiles are estimated from the cumulative bucket counts with linear
interpolation inside the owning bucket, so the estimate is exact to
within one bucket width (the standing acceptance bound the tests pin).
"""

from __future__ import annotations

import math
import re
import threading
import time
from typing import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_buckets",
    "render_exposition",
    "parse_exposition",
    "merge_expositions",
    "histogram_quantile_from_samples",
    "exemplar_for_quantile",
]


def default_latency_buckets(
    lo: float = 1e-5, hi: float = 30.0, per_decade: int = 8
) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds from ``lo`` to at least ``hi``.

    ``per_decade=8`` gives a bucket-width ratio of ``10**(1/8) ≈ 1.33``
    — quantile estimates are exact to within that factor, which is the
    "within one bucket width" bound the stats surface promises.
    """
    n = math.ceil(per_decade * math.log10(hi / lo)) + 1
    bounds = tuple(round(lo * 10 ** (k / per_decade), 12) for k in range(n))
    return bounds


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: dict) -> tuple[tuple[str, str], ...]:
    for k in labels:
        if not _LABEL_RE.match(k):
            raise ValueError(f"invalid label name {k!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _fmt_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_float(x: float) -> str:
    # NaN and the infinities first: int(nan)/int(inf) raise, so the
    # integer shortcut below must never see them (a NaN gauge — e.g. a
    # ratio with a zero denominator — must render, not crash the scrape).
    if math.isnan(x):
        return "NaN"
    if x == math.inf:
        return "+Inf"
    if x == -math.inf:
        return "-Inf"
    if x == int(x) and abs(x) < 1e15:
        return str(int(x))
    return repr(float(x))


def _fmt_exemplar(ex: tuple[str, float, float] | None) -> str:
    """OpenMetrics-style exemplar suffix for a bucket sample line:
    `` # {trace_id="..."} value timestamp`` (empty when absent)."""
    if ex is None:
        return ""
    trace_id, value, ts = ex
    return f' # {{trace_id="{_escape(trace_id)}"}} {repr(float(value))} {repr(float(ts))}'


class _Instrument:
    """Shared child bookkeeping for labeled instruments."""

    kind = "?"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...]) -> None:
        self.name = _check_name(name)
        self.help = help
        self.label_names = label_names
        self._lock = threading.Lock()

    def _key_for(self, labels: dict) -> tuple[tuple[str, str], ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {tuple(labels)}"
            )
        return _label_key(labels)


class Counter(_Instrument):
    """A monotonically increasing count, optionally labeled."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key_for(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._key_for(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def values(self) -> dict[tuple[tuple[str, str], ...], float]:
        with self._lock:
            return dict(self._values)

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(f"{self.name}{_fmt_labels(key)} {_fmt_float(value)}")
        return lines


class Gauge(_Instrument):
    """A value that can go up and down (open connections, high-water marks)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels) -> None:
        key = self._key_for(labels)
        with self._lock:
            self._values[key] = float(value)

    def add(self, delta: float, **labels) -> None:
        key = self._key_for(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + delta

    def set_max(self, value: float, **labels) -> None:
        """Keep the maximum ever set (batch-size high-water marks)."""
        key = self._key_for(labels)
        with self._lock:
            self._values[key] = max(self._values.get(key, float(value)), float(value))

    def value(self, **labels) -> float:
        key = self._key_for(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(f"{self.name}{_fmt_labels(key)} {_fmt_float(value)}")
        return lines


class Histogram(_Instrument):
    """Fixed-bucket histogram with log-spaced bounds and quantile estimation.

    ``observe`` is O(log #buckets) (bisect) and allocation-free;
    memory is one int array regardless of traffic volume.  Quantiles
    interpolate linearly inside the owning bucket, so the estimate is
    within one bucket width of the true order statistic.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, help, ())
        bounds = tuple(buckets) if buckets is not None else default_latency_buckets()
        if not bounds or list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be sorted and distinct")
        self.bounds = bounds  # upper bounds; +Inf bucket is implicit
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        # Last exemplar per bucket index: (label_value, value, wall_ts).
        # One slot per bucket keeps memory O(#buckets) under any load.
        self._exemplars: dict[int, tuple[str, float, float]] = {}

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one observation.

        ``exemplar`` (optional) attaches an identifying string — by
        convention a retained ``trace_id`` — to the bucket this value
        lands in, rendered OpenMetrics-style on the bucket's exposition
        line so a scrape can jump from a quantile to the exact trace.
        """
        # Hand-rolled bisect over the (short, immutable) bounds tuple.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._sum += value
            self._count += 1
            if exemplar is not None:
                self._exemplars[lo] = (exemplar, value, time.time())

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def counts(self) -> list[int]:
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 <= q <= 1) from the buckets.

        Linear interpolation between the owning bucket's bounds; the
        overflow bucket reports its lower bound (the largest finite
        bound) — an under-estimate, but a bounded one, and the signal
        "off the top of the histogram" is visible in the bucket counts.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        # Nearest-rank on the cumulative counts, like the legacy
        # estimator: rank r = round(q * (N - 1)) + 1 observations.
        rank = min(total, max(1, round(q * (total - 1)) + 1))
        cum = 0
        for k, c in enumerate(counts):
            if c == 0:
                continue
            if cum + c >= rank:
                if k == len(self.bounds):  # overflow bucket
                    return self.bounds[-1]
                lo = self.bounds[k - 1] if k > 0 else 0.0
                hi = self.bounds[k]
                frac = (rank - cum) / c
                return lo + (hi - lo) * frac
            cum += c
        return self.bounds[-1]  # pragma: no cover - unreachable

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} histogram"]
        with self._lock:
            counts = list(self._counts)
            total, total_sum = self._count, self._sum
            exemplars = dict(self._exemplars)
        cum = 0
        for k, (bound, c) in enumerate(zip(self.bounds, counts)):
            cum += c
            lines.append(
                f'{self.name}_bucket{{le="{_fmt_float(bound)}"}} {cum}'
                f"{_fmt_exemplar(exemplars.get(k))}"
            )
        lines.append(
            f'{self.name}_bucket{{le="+Inf"}} {total}'
            f"{_fmt_exemplar(exemplars.get(len(self.bounds)))}"
        )
        lines.append(f"{self.name}_sum {repr(float(total_sum))}")
        lines.append(f"{self.name}_count {total}")
        return lines


class MetricsRegistry:
    """Create-or-get instruments by name; render the whole set.

    ``counter``/``gauge``/``histogram`` are idempotent per name (the
    same name returns the same instrument), so feeder code can call
    them without threading instrument handles around.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_make(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Counter:
        return self._get_or_make(Counter, name, help, label_names=labels)

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Gauge:
        return self._get_or_make(Gauge, name, help, label_names=labels)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] | None = None
    ) -> Histogram:
        return self._get_or_make(Histogram, name, help, buckets=buckets)

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def render(self) -> str:
        return render_exposition(self.instruments())


def render_exposition(instruments: Iterable[_Instrument]) -> str:
    """The Prometheus text exposition (0.0.4) for a set of instruments."""
    lines: list[str] = []
    for instrument in instruments:
        lines.extend(instrument.render())
    return "\n".join(lines) + "\n" if lines else ""


# -- scrape side: parse + merge expositions ---------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _parse_exemplar(text: str) -> tuple[str, float, float] | None:
    """Parse an OpenMetrics exemplar suffix (``{trace_id="..."} value
    [timestamp]``) back into the render-side tuple; None if malformed."""
    body, brace, rest = text.partition("}")
    if not brace or not body.startswith("{"):
        return None
    labels = dict(_LABEL_PAIR_RE.findall(body[1:]))
    trace_id = labels.get("trace_id")
    parts = rest.split()
    if trace_id is None or not parts:
        return None
    try:
        value = _parse_value(parts[0])
        ts = _parse_value(parts[1]) if len(parts) > 1 else 0.0
    except ValueError:
        return None
    return (trace_id, value, ts)


def parse_exposition(text: str) -> dict:
    """Parse Prometheus text into ``{"types": {name: type},
    "help": {name: str}, "samples": {(name, labelkey): value},
    "exemplars": {(name, labelkey): (trace_id, value, ts)}}``.

    Strict enough for round-tripping our own output and validating CI
    scrapes: unknown lines raise.  Bucket lines may carry an
    OpenMetrics-style exemplar suffix (`` # {trace_id="..."} v ts``);
    it is split off and returned under ``"exemplars"``.
    """
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    exemplars: dict[tuple[str, tuple[tuple[str, str], ...]], tuple] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind.strip()
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("#"):
            continue
        exemplar = None
        if " # {" in line:
            line, _, exemplar_text = line.partition(" # ")
            exemplar = _parse_exemplar(exemplar_text)
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a metric sample: {line!r}")
        labels = tuple(
            sorted(
                (k, v.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\"))
                for k, v in _LABEL_PAIR_RE.findall(match.group("labels") or "")
            )
        )
        key = (match.group("name"), labels)
        samples[key] = _parse_value(match.group("value"))
        if exemplar is not None:
            exemplars[key] = exemplar
    return {"types": types, "help": helps, "samples": samples, "exemplars": exemplars}


def _base_name(sample_name: str, types: dict[str, str]) -> str | None:
    """The owning histogram's name for a _bucket/_sum/_count sample."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def merge_expositions(texts: Sequence[str]) -> str:
    """Sum a set of expositions sample-by-sample into one.

    Counters, histogram buckets/sums/counts and gauges all add — for
    gauges this means "cluster total" semantics (open connections
    across shards), which is what the aggregate scrape wants.  All
    shards run the same code, so identical histogram bucket layouts
    are a given (and violations just produce extra bucket samples that
    stay visible rather than silently merging).

    A metric registered with *different types* across shards raises
    :class:`ValueError` — summing a counter into a gauge (or histogram
    buckets into either) silently fabricates numbers, and a cluster
    scrape must fail loudly rather than report them.

    Bucket exemplars survive the merge: per bucket, the newest exemplar
    (largest timestamp) across the inputs is kept.
    """
    merged: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    exemplars: dict[tuple[str, tuple[tuple[str, str], ...]], tuple] = {}
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    for text in texts:
        parsed = parse_exposition(text)
        for name, kind in parsed["types"].items():
            known = types.get(name)
            if known is not None and known != kind:
                raise ValueError(
                    f"metric type conflict for {name!r}: "
                    f"{known} vs {kind} across merged expositions"
                )
            types[name] = kind
        helps.update(parsed["help"])
        for key, value in parsed["samples"].items():
            merged[key] = merged.get(key, 0.0) + value
        for key, ex in parsed["exemplars"].items():
            kept = exemplars.get(key)
            if kept is None or ex[2] >= kept[2]:
                exemplars[key] = ex
    # Re-render grouped by family, families sorted by name.
    by_family: dict[str, list[tuple[str, tuple[tuple[str, str], ...], float]]] = {}
    for (name, labels), value in merged.items():
        family = _base_name(name, types) or name
        by_family.setdefault(family, []).append((name, labels, value))
    lines: list[str] = []
    for family in sorted(by_family):
        kind = types.get(family)
        if kind:
            lines.append(f"# HELP {family} {helps.get(family, '')}")
            lines.append(f"# TYPE {family} {kind}")

        def sample_order(item):
            name, labels, _ = item
            # _sum/_count after every _bucket; buckets by le value.
            rank = 0 if name.endswith("_bucket") else 1 if name.endswith("_sum") else 2
            le = dict(labels).get("le")
            return (rank, _parse_value(le) if le is not None else 0.0, name, labels)

        for name, labels, value in sorted(by_family[family], key=sample_order):
            lines.append(
                f"{name}{_fmt_labels(labels)} {_fmt_float(value)}"
                f"{_fmt_exemplar(exemplars.get((name, labels)))}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def histogram_quantile_from_samples(
    samples: dict, name: str, q: float
) -> float:
    """Quantile of a (possibly merged) exposition's histogram ``name``.

    Mirrors :meth:`Histogram.quantile` so scrape-side quantiles agree
    with server-side ones given the same bucket counts.
    """
    buckets: list[tuple[float, float]] = []
    for (sample_name, labels), value in samples.items():
        if sample_name == f"{name}_bucket":
            le = dict(labels).get("le")
            if le is not None:
                buckets.append((_parse_value(le), value))
    if not buckets:
        raise ValueError(f"no histogram buckets for {name!r}")
    buckets.sort()
    total = buckets[-1][1]
    if total == 0:
        return 0.0
    rank = min(total, max(1, round(q * (total - 1)) + 1))
    prev_bound, prev_cum = 0.0, 0.0
    for bound, cum in buckets:
        if cum >= rank:
            in_bucket = cum - prev_cum
            if math.isinf(bound):
                return prev_bound
            frac = (rank - prev_cum) / in_bucket if in_bucket else 1.0
            return prev_bound + (bound - prev_bound) * frac
        prev_bound, prev_cum = (0.0 if math.isinf(bound) else bound), cum
    return prev_bound


def exemplar_for_quantile(parsed: dict, name: str, q: float) -> dict | None:
    """The exemplar nearest the q-quantile of histogram ``name`` in a
    parsed (possibly merged) exposition.

    Finds the bucket owning the quantile, then walks outward (upward
    first — a p99 investigation wants the slower neighbour) until a
    bucket with an exemplar is found.  Returns ``{"trace_id", "value",
    "ts", "le"}`` or ``None`` when the histogram carries no exemplars.
    """
    samples, exemplars = parsed["samples"], parsed.get("exemplars", {})
    by_le: dict[float, tuple] = {}
    bounds: list[float] = []
    for (sample_name, labels), _value in samples.items():
        if sample_name != f"{name}_bucket":
            continue
        le = dict(labels).get("le")
        if le is None:
            continue
        bound = _parse_value(le)
        bounds.append(bound)
        ex = exemplars.get((sample_name, labels))
        if ex is not None:
            by_le[bound] = ex
    if not bounds or not by_le:
        return None
    bounds.sort()
    target = histogram_quantile_from_samples(samples, name, q)
    owner = next((i for i, b in enumerate(bounds) if target <= b), len(bounds) - 1)
    order = list(range(owner, len(bounds))) + list(range(owner - 1, -1, -1))
    for i in order:
        ex = by_le.get(bounds[i])
        if ex is not None:
            trace_id, value, ts = ex
            return {"trace_id": trace_id, "value": value, "ts": ts, "le": bounds[i]}
    return None  # pragma: no cover - by_le non-empty makes this unreachable
