"""Kernel profiling: per-call timing of engine dispatch, by family.

The engine facade calls :meth:`KernelProfiler.record` around every
backend kernel invocation (when profiling is enabled) with the kernel
family (``score``/``align``/``score_many``/``align_many``), backend
name, resolved mode, batch shape, and DP cell count.  Everything is
stored as labeled counters/gauges in the shared
:class:`~fragalign.obs.metrics.MetricsRegistry`, so the data rides the
same ``metrics`` exposition as the service counters and aggregates
across shards for free; :func:`top_rows` turns either a live registry
or a scraped exposition into the per-family throughput table behind
``fragalign top``.

Recording runs on the batcher's worker thread while the event loop
serves other traffic — and under the ``parallel`` backend several
worker threads can dispatch kernels at once, so :meth:`record` takes
one profiler-level lock around its cross-instrument update.  The
per-instrument locks alone keep each counter uncorrupted, but not the
*set* coherent: a reader could otherwise see this dispatch's seconds
without its cells and compute a garbage Mcells/s for the row.
"""

from __future__ import annotations

import threading
from typing import Sequence

from fragalign.obs.metrics import MetricsRegistry, parse_exposition

__all__ = ["KernelProfiler", "top_rows", "top_rows_from_exposition", "format_top"]

_LABELS = ("family", "backend", "mode")


class KernelProfiler:
    """Feeds kernel-dispatch timings into a metrics registry."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._lock = threading.Lock()
        self._calls = registry.counter(
            "fragalign_kernel_calls_total",
            "Engine kernel dispatches by family/backend/mode.",
            labels=_LABELS,
        )
        self._pairs = registry.counter(
            "fragalign_kernel_pairs_total",
            "Sequence pairs computed by kernel dispatches.",
            labels=_LABELS,
        )
        self._cells = registry.counter(
            "fragalign_kernel_cells_total",
            "DP cells computed by kernel dispatches.",
            labels=_LABELS,
        )
        self._seconds = registry.counter(
            "fragalign_kernel_seconds_total",
            "Wall seconds spent inside kernel dispatches.",
            labels=_LABELS,
        )
        self._max_batch = registry.gauge(
            "fragalign_kernel_max_batch",
            "Largest batch (pairs) seen per kernel family.",
            labels=_LABELS,
        )

    def record(
        self,
        family: str,
        backend: str,
        mode: str,
        shapes: Sequence[tuple[int, int]],
        seconds: float,
    ) -> None:
        """One kernel dispatch: ``shapes`` is the batch's (len(a), len(b))
        list; cells is the summed DP area (band-agnostic upper bound —
        honest enough for throughput trends, and identical to how the
        engine benchmarks count)."""
        labels = {"family": family, "backend": backend, "mode": mode}
        cells = sum(n * m for n, m in shapes)
        with self._lock:
            self._calls.inc(**labels)
            self._pairs.inc(len(shapes), **labels)
            self._cells.inc(cells, **labels)
            self._seconds.inc(seconds, **labels)
            self._max_batch.set_max(len(shapes), **labels)


def _rows_from_samples(samples: dict) -> list[dict]:
    per_key: dict[tuple[str, str, str], dict] = {}

    def slot(labels: tuple[tuple[str, str], ...]) -> dict | None:
        d = dict(labels)
        if set(d) != set(_LABELS):
            return None
        key = (d["family"], d["backend"], d["mode"])
        return per_key.setdefault(
            key,
            {
                "family": d["family"], "backend": d["backend"], "mode": d["mode"],
                "calls": 0.0, "pairs": 0.0, "cells": 0.0, "seconds": 0.0,
                "max_batch": 0.0,
            },
        )

    field_by_metric = {
        "fragalign_kernel_calls_total": "calls",
        "fragalign_kernel_pairs_total": "pairs",
        "fragalign_kernel_cells_total": "cells",
        "fragalign_kernel_seconds_total": "seconds",
    }
    for (name, labels), value in samples.items():
        field = field_by_metric.get(name)
        if field is not None:
            row = slot(labels)
            if row is not None:
                row[field] += value
        elif name == "fragalign_kernel_max_batch":
            row = slot(labels)
            if row is not None:
                row["max_batch"] = max(row["max_batch"], value)
    rows = []
    for row in per_key.values():
        row["mcells_per_s"] = (
            row["cells"] / row["seconds"] / 1e6 if row["seconds"] > 0 else 0.0
        )
        rows.append(row)
    rows.sort(key=lambda r: r["seconds"], reverse=True)
    return rows


def top_rows(registry: MetricsRegistry) -> list[dict]:
    """The ``fragalign top`` table from a live registry."""
    return top_rows_from_exposition(registry.render())


def top_rows_from_exposition(text: str) -> list[dict]:
    """The ``fragalign top`` table from scraped Prometheus text
    (single shard or a merged cluster exposition)."""
    return _rows_from_samples(parse_exposition(text)["samples"])


def format_top(rows: list[dict]) -> str:
    """Fixed-width human rendering of the kernel-profile table."""
    if not rows:
        return "no kernel-profile samples (is profiling enabled?)\n"
    header = (
        f"{'FAMILY':<12} {'BACKEND':<10} {'MODE':<8} {'CALLS':>7} "
        f"{'PAIRS':>9} {'MAXB':>5} {'CELLS':>12} {'SECONDS':>9} {'MCELLS/S':>9}"
    )
    lines = [header]
    for r in rows:
        lines.append(
            f"{r['family']:<12} {r['backend']:<10} {r['mode']:<8} "
            f"{int(r['calls']):>7} {int(r['pairs']):>9} {int(r['max_batch']):>5} "
            f"{int(r['cells']):>12} {r['seconds']:>9.3f} {r['mcells_per_s']:>9.1f}"
        )
    return "\n".join(lines) + "\n"
