"""``fragalign.obs`` — telemetry for the serving stack.

Three legs, all wired through every layer:

* :mod:`fragalign.obs.trace` — request tracing.  A ``trace_id`` /
  ``span_id`` pair rides the JSON-lines wire as *non-semantic* fields
  (registered in ``service/fields.py`` with every participation flag
  off, which the knob-propagation analyzer enforces — tracing can
  never split a batch or enter a cache key).  Per-stage spans land in
  a bounded ring buffer, drained via the ``trace`` op.
* :mod:`fragalign.obs.metrics` — a counters/gauges/histograms registry
  with Prometheus text exposition (the ``metrics`` op), fixed
  log-spaced histogram buckets (mergeable across shards, no recency
  bias), and scrape-side parse/merge for ``fragalign metrics``.
* :mod:`fragalign.obs.kprof` — kernel profiling: the engine facade
  times every backend dispatch into the registry, and ``fragalign
  top`` renders Mcells/s by kernel family / backend / mode.

:mod:`fragalign.obs.logs` adds structured (optionally JSON) logging
for lifecycle events that metrics can't narrate: shard eviction,
failover retries, server start/stop.
"""

from fragalign.obs.kprof import KernelProfiler, format_top, top_rows
from fragalign.obs.logs import JsonFormatter, configure_logging, get_logger
from fragalign.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
    merge_expositions,
    parse_exposition,
)
from fragalign.obs.trace import (
    Span,
    TraceBuffer,
    TraceContext,
    Tracer,
    child_context,
    new_trace_context,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "KernelProfiler",
    "MetricsRegistry",
    "Span",
    "TraceBuffer",
    "TraceContext",
    "Tracer",
    "child_context",
    "configure_logging",
    "default_latency_buckets",
    "format_top",
    "get_logger",
    "merge_expositions",
    "new_trace_context",
    "parse_exposition",
    "top_rows",
]
