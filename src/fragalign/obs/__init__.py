"""``fragalign.obs`` — telemetry for the serving stack.

Three legs, all wired through every layer:

* :mod:`fragalign.obs.trace` — request tracing.  A ``trace_id`` /
  ``span_id`` pair rides the JSON-lines wire as *non-semantic* fields
  (registered in ``service/fields.py`` with every participation flag
  off, which the knob-propagation analyzer enforces — tracing can
  never split a batch or enter a cache key).  Per-stage spans land in
  a bounded ring buffer, drained via the ``trace`` op.
* :mod:`fragalign.obs.metrics` — a counters/gauges/histograms registry
  with Prometheus text exposition (the ``metrics`` op), fixed
  log-spaced histogram buckets (mergeable across shards, no recency
  bias), and scrape-side parse/merge for ``fragalign metrics``.
* :mod:`fragalign.obs.kprof` — kernel profiling: the engine facade
  times every backend dispatch into the registry, and ``fragalign
  top`` renders Mcells/s by kernel family / backend / mode.

:mod:`fragalign.obs.logs` adds structured (optionally JSON) logging
for lifecycle events that metrics can't narrate: shard eviction,
failover retries, server start/stop.

The v2 layer turns the telemetry into operations:

* :mod:`fragalign.obs.slo` — declarative SLO targets evaluated as
  multi-window burn rates (the ``slo`` op, ``fragalign slo``, and the
  ``fragalign_slo_*`` gauges).
* :mod:`fragalign.obs.sampling` — tail-based trace sampling: head-
  sample boring traces, always retain slow and errored ones, and pin
  retained trace ids to histogram buckets as exemplars.
* :mod:`fragalign.obs.journal` — the workload flight recorder and
  ``fragalign replay``.
* :mod:`fragalign.obs.dash` — the ``fragalign dash`` terminal
  dashboard's pure state/render halves.
"""

from fragalign.obs.dash import build_state, render_frame
from fragalign.obs.journal import (
    JournalWriter,
    diff_report,
    format_diff_report,
    read_journal,
    replay_journal,
    synth_sequence,
)
from fragalign.obs.kprof import KernelProfiler, format_top, top_rows
from fragalign.obs.sampling import TailSampler
from fragalign.obs.slo import (
    DEFAULT_SLOS,
    SLOEngine,
    SLOTarget,
    format_slo_report,
    parse_slo,
)
from fragalign.obs.logs import JsonFormatter, configure_logging, get_logger
from fragalign.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
    exemplar_for_quantile,
    histogram_quantile_from_samples,
    merge_expositions,
    parse_exposition,
)
from fragalign.obs.trace import (
    Span,
    TraceBuffer,
    TraceContext,
    Tracer,
    child_context,
    new_trace_context,
)

__all__ = [
    "Counter",
    "DEFAULT_SLOS",
    "Gauge",
    "Histogram",
    "JournalWriter",
    "JsonFormatter",
    "KernelProfiler",
    "MetricsRegistry",
    "SLOEngine",
    "SLOTarget",
    "Span",
    "TailSampler",
    "TraceBuffer",
    "TraceContext",
    "Tracer",
    "build_state",
    "child_context",
    "configure_logging",
    "default_latency_buckets",
    "diff_report",
    "exemplar_for_quantile",
    "format_diff_report",
    "format_slo_report",
    "format_top",
    "get_logger",
    "histogram_quantile_from_samples",
    "merge_expositions",
    "new_trace_context",
    "parse_exposition",
    "parse_slo",
    "read_journal",
    "render_frame",
    "replay_journal",
    "synth_sequence",
    "top_rows",
]
