"""Workload flight recorder: journal real traffic, replay it later.

The journal is an opt-in (``--journal PATH``) JSON-lines file the
server appends one sanitized record per pair request to.  Sanitized
means **no sequence content by default**: a record carries the knobs
from the shared field registry (:func:`fragalign.service.fields
.keyset_fields` — the journal schema extends automatically when a knob
is registered), the sequences' lengths and short content hashes, the
outcome, the disposition (cache hit / coalesced / computed /
degraded), and timings.  ``--journal-sequences`` opts the raw
sequences in for trusted environments.

Hashes are enough to *replay* the workload faithfully: replay
synthesizes a deterministic sequence from each content hash (same hash
-> same synthetic sequence), so the dedup/cache structure of the
recorded traffic — which requests repeat, which coalesce, which
collide in the LRU — survives even though the letters differ.  That
structure is what capacity questions ("would a bigger cache have
helped?", "does the new build hold the recorded p99?") actually
depend on.

The file is bounded by segment rotation: when the active segment
exceeds ``max_bytes`` it shifts to ``PATH.1`` (existing ``PATH.1`` to
``PATH.2`` and so on), and the oldest segment beyond ``segments``
falls off.  :func:`read_journal` reads segments oldest-first so
replay sees the original arrival order.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import threading
import time

from fragalign.service.fields import keyset_fields

__all__ = [
    "JournalWriter",
    "build_record",
    "read_journal",
    "synth_sequence",
    "replay_journal",
    "diff_report",
    "format_diff_report",
]

_HASH_LEN = 12  # hex chars; collisions across one journal are ~impossible
_ALPHABET = "ACGT"


def _content_hash(seq: str) -> str:
    return hashlib.sha1(seq.encode()).hexdigest()[:_HASH_LEN]


def build_record(
    op: str,
    a: str,
    b: str,
    knobs: dict,
    *,
    ok: bool,
    code: str | None = None,
    cached: bool | None = None,
    disposition: str | None = None,
    degraded: bool | None = None,
    duration_s: float = 0.0,
    deadline_ms: float | None = None,
    include_sequences: bool = False,
    ts: float | None = None,
) -> dict:
    """One journal record.  ``knobs`` maps registry keyset fields;
    ``None`` values (engine defaults) are elided to keep lines short."""
    record = {
        "ts": time.time() if ts is None else ts,
        "op": op,
        "a_len": len(a),
        "b_len": len(b),
        "a_sha": _content_hash(a),
        "b_sha": _content_hash(b),
        "ok": ok,
        "duration_ms": round(duration_s * 1e3, 3),
    }
    for name in keyset_fields():
        value = knobs.get(name)
        if value is not None:
            record[name] = value
    if code is not None:
        record["code"] = code
    if cached is not None:
        record["cached"] = cached
    if disposition is not None:
        record["disposition"] = disposition
    if degraded:
        record["degraded"] = True
    if deadline_ms is not None:
        record["deadline_ms"] = deadline_ms
    if include_sequences:
        record["a"] = a
        record["b"] = b
    return record


class JournalWriter:
    """Append-only, segment-rotated JSON-lines journal.

    Thread-safe; ``write`` never raises on a full/failed disk — the
    flight recorder must not take down the flight.  Write failures
    flip ``self.failed`` and subsequent writes no-op.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = 64 * 1024 * 1024,
        segments: int = 4,
    ) -> None:
        if segments < 1:
            raise ValueError("segments must be >= 1")
        self.path = path
        self.max_bytes = max_bytes
        self.segments = segments
        self.failed = False
        self.written = 0
        self._lock = threading.Lock()
        self._fh = None

    def write(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            if self.failed:
                return
            try:
                if self._fh is None:
                    self._fh = open(self.path, "a", encoding="utf-8")
                if self._fh.tell() + len(line) > self.max_bytes:
                    self._rotate()
                self._fh.write(line)
                self._fh.flush()
                self.written += 1
            except OSError:
                self.failed = True

    def _rotate(self) -> None:
        # Caller holds the lock.  Shift PATH.(n-1) -> PATH.n downward,
        # then PATH -> PATH.1; the segment past the cap falls off.
        self._fh.close()
        self._fh = None
        oldest = f"{self.path}.{self.segments - 1}"
        if self.segments > 1 and os.path.exists(oldest):
            os.remove(oldest)
        for n in range(self.segments - 1, 1, -1):
            src = f"{self.path}.{n - 1}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{n}")
        if self.segments > 1:
            os.replace(self.path, f"{self.path}.1")
        else:
            os.remove(self.path)
        self._fh = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def read_journal(path: str) -> list[dict]:
    """All records across rotation segments, oldest first.  Torn final
    lines (a crash mid-write) are skipped, not fatal."""
    paths = []
    n = 1
    while os.path.exists(f"{path}.{n}"):
        paths.append(f"{path}.{n}")
        n += 1
    paths.reverse()  # highest suffix = oldest
    if os.path.exists(path):
        paths.append(path)
    records = []
    for p in paths:
        with open(p, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue
    return records


def synth_sequence(sha: str, length: int) -> str:
    """A deterministic sequence for a recorded content hash.

    Same (hash, length) -> same letters, so replayed traffic repeats
    and dedups exactly where the recorded traffic did; different
    hashes diverge immediately.  Entropy here is *derived from the
    record*, not fresh — replay is reproducible run to run.
    """
    rng = random.Random(int(sha, 16) ^ length)
    return "".join(rng.choice(_ALPHABET) for _ in range(length))


def _record_pair(record: dict) -> tuple[str, str]:
    if "a" in record and "b" in record:
        return record["a"], record["b"]
    return (
        synth_sequence(record["a_sha"], record["a_len"]),
        synth_sequence(record["b_sha"], record["b_len"]),
    )


def replay_journal(
    records: list[dict],
    send,
    speed: float = 1.0,
    max_gap_s: float = 1.0,
) -> list[dict]:
    """Re-drive a journal through ``send`` and measure each request.

    ``send(op, a, b, knobs)`` runs one request against whatever target
    the caller wired (live server client or local engine) and returns
    ``(ok, cached)``.  Inter-arrival gaps from the recorded ``ts``
    stream are preserved scaled by ``1/speed`` and capped at
    ``max_gap_s`` (``speed=0`` disables pacing entirely — "as fast as
    possible" compression).  Returns one result dict per record with
    the replayed ``ok``/``cached``/``duration_ms``.
    """
    knob_names = keyset_fields()
    results = []
    prev_ts = None
    for record in records:
        if record.get("op") not in ("score", "align"):
            continue
        ts = record.get("ts")
        if speed > 0 and prev_ts is not None and ts is not None:
            gap = (ts - prev_ts) / speed
            if gap > 0:
                time.sleep(min(gap, max_gap_s))
        prev_ts = ts
        a, b = _record_pair(record)
        knobs = {name: record[name] for name in knob_names if name in record}
        start = time.perf_counter()
        try:
            ok, cached = send(record["op"], a, b, knobs)
        except Exception as exc:
            ok, cached = False, None
            results.append(
                {
                    "op": record["op"],
                    "ok": False,
                    "cached": None,
                    "duration_ms": (time.perf_counter() - start) * 1e3,
                    "error": str(exc),
                }
            )
            continue
        results.append(
            {
                "op": record["op"],
                "ok": bool(ok),
                "cached": cached,
                "duration_ms": (time.perf_counter() - start) * 1e3,
            }
        )
    return results


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def _run_stats(rows: list[dict]) -> dict:
    pair_rows = [r for r in rows if r.get("op") in ("score", "align")]
    n = len(pair_rows)
    ok = sum(1 for r in pair_rows if r.get("ok"))
    with_cache = [r for r in pair_rows if r.get("cached") is not None]
    hits = sum(1 for r in with_cache if r.get("cached"))
    lat = sorted(r.get("duration_ms", 0.0) for r in pair_rows)
    return {
        "requests": n,
        "ok": ok,
        "ok_rate": (ok / n) if n else 0.0,
        "hit_rate": (hits / len(with_cache)) if with_cache else 0.0,
        "cache_known": len(with_cache),
        "p50_ms": _quantile(lat, 0.50),
        "p95_ms": _quantile(lat, 0.95),
        "p99_ms": _quantile(lat, 0.99),
    }


def diff_report(recorded: list[dict], replayed: list[dict]) -> dict:
    """Recorded-vs-replayed workload comparison (the acceptance check:
    hit-rate within a few points, latency deltas surfaced)."""
    rec = _run_stats(recorded)
    rep = _run_stats(replayed)
    return {
        "recorded": rec,
        "replayed": rep,
        "hit_rate_delta": rep["hit_rate"] - rec["hit_rate"],
        "ok_rate_delta": rep["ok_rate"] - rec["ok_rate"],
        "p50_delta_ms": rep["p50_ms"] - rec["p50_ms"],
        "p99_delta_ms": rep["p99_ms"] - rec["p99_ms"],
    }


def format_diff_report(diff: dict) -> str:
    rec, rep = diff["recorded"], diff["replayed"]
    rows = [
        ("requests", f"{rec['requests']}", f"{rep['requests']}", ""),
        (
            "ok rate",
            f"{100 * rec['ok_rate']:.1f}%",
            f"{100 * rep['ok_rate']:.1f}%",
            f"{100 * diff['ok_rate_delta']:+.1f}pt",
        ),
        (
            "cache hit rate",
            f"{100 * rec['hit_rate']:.1f}%",
            f"{100 * rep['hit_rate']:.1f}%",
            f"{100 * diff['hit_rate_delta']:+.1f}pt",
        ),
        (
            "p50 latency",
            f"{rec['p50_ms']:.2f}ms",
            f"{rep['p50_ms']:.2f}ms",
            f"{diff['p50_delta_ms']:+.2f}ms",
        ),
        (
            "p95 latency",
            f"{rec['p95_ms']:.2f}ms",
            f"{rep['p95_ms']:.2f}ms",
            "",
        ),
        (
            "p99 latency",
            f"{rec['p99_ms']:.2f}ms",
            f"{rep['p99_ms']:.2f}ms",
            f"{diff['p99_delta_ms']:+.2f}ms",
        ),
    ]
    header = f"{'metric':<16} {'recorded':>10} {'replayed':>10} {'delta':>10}"
    lines = [header, "-" * len(header)]
    for name, a, b, d in rows:
        lines.append(f"{name:<16} {a:>10} {b:>10} {d:>10}")
    return "\n".join(lines) + "\n"
