"""The suppression baseline: known findings carried with justification.

The baseline is a committed JSON file.  Every entry suppresses exactly
one finding fingerprint ``(rule, path, symbol)`` and **must** carry a
non-empty ``justification`` that does not start with ``FIXME`` —
``--update-baseline`` writes ``FIXME`` placeholders precisely so that
a freshly regenerated baseline cannot pass CI until a human replaces
each placeholder with a real reason.

Etiquette (also in the README): the baseline is for *false positives*
and consciously-accepted debt, never a dumping ground — a genuine
violation gets fixed, not suppressed.  Stale entries (suppressing
nothing) fail the run so the file can only shrink back honestly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from fragalign.analysis.findings import Finding

__all__ = ["BaselineEntry", "Baseline", "BaselineError"]

_VERSION = 1
_PLACEHOLDER = "FIXME"


class BaselineError(ValueError):
    """A malformed baseline file (bad JSON, missing justification...)."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    justification: str

    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read and validate a baseline file.  A missing file is an
        empty baseline (the common, healthy case)."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            obj = json.loads(path.read_text())
        except ValueError as exc:
            raise BaselineError(f"{path}: invalid JSON: {exc}") from exc
        if not isinstance(obj, dict) or not isinstance(obj.get("entries"), list):
            raise BaselineError(f"{path}: expected an object with an 'entries' list")
        entries = []
        seen: set[tuple[str, str, str]] = set()
        for k, raw in enumerate(obj["entries"]):
            if not isinstance(raw, dict):
                raise BaselineError(f"{path}: entry {k} is not an object")
            missing = {"rule", "path", "symbol", "justification"} - set(raw)
            if missing:
                raise BaselineError(f"{path}: entry {k} missing {sorted(missing)}")
            justification = str(raw["justification"]).strip()
            if not justification or justification.upper().startswith(_PLACEHOLDER):
                raise BaselineError(
                    f"{path}: entry {k} ({raw['rule']} @ {raw['path']}:{raw['symbol']}) "
                    "needs a real justification (placeholders don't pass)"
                )
            entry = BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                symbol=str(raw["symbol"]),
                justification=justification,
            )
            if entry.fingerprint() in seen:
                raise BaselineError(
                    f"{path}: duplicate entry for {entry.fingerprint()}"
                )
            seen.add(entry.fingerprint())
            entries.append(entry)
        return cls(entries=entries)

    def apply(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Split findings into (new, suppressed) and report stale
        entries (suppressing nothing — they must be pruned)."""
        by_fp = {e.fingerprint(): e for e in self.entries}
        new: list[Finding] = []
        suppressed: list[Finding] = []
        used: set[tuple[str, str, str]] = set()
        for finding in findings:
            entry = by_fp.get(finding.fingerprint())
            if entry is None:
                new.append(finding)
            else:
                suppressed.append(finding)
                used.add(entry.fingerprint())
        stale = [e for e in self.entries if e.fingerprint() not in used]
        return new, suppressed, stale

    @staticmethod
    def write(path: str | Path, findings: Iterable[Finding]) -> int:
        """Write a fresh baseline of FIXME placeholders for the given
        findings (``--update-baseline``).  Returns the entry count."""
        entries = []
        seen: set[tuple[str, str, str]] = set()
        for finding in findings:
            fp = finding.fingerprint()
            if fp in seen:
                continue
            seen.add(fp)
            entries.append(
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "symbol": finding.symbol,
                    "justification": f"{_PLACEHOLDER}: justify or fix ({finding.message})",
                }
            )
        Path(path).write_text(
            json.dumps({"version": _VERSION, "entries": entries}, indent=2) + "\n"
        )
        return len(entries)
