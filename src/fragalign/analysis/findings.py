"""Findings: what a rule reports, and how suppressions anchor to them.

A :class:`Finding` is one contract violation at one location.  Its
:meth:`~Finding.fingerprint` deliberately excludes the line number —
baselines anchor on ``(rule, path, symbol)`` so an unrelated edit that
shifts lines doesn't invalidate every suppression in the file.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.  ``ERROR`` findings gate CI; ``WARNING``
    findings are reported but never fail the run."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  # rule id, e.g. "kernel-parity"
    path: str  # path relative to the analyzed package root (posix)
    line: int  # 1-based line of the offending node (0 = whole file)
    symbol: str  # enclosing def/class qualname or the flagged name
    message: str
    severity: Severity = field(default=Severity.ERROR)

    def fingerprint(self) -> tuple[str, str, str]:
        """The baseline anchor: stable across line-number churn."""
        return (self.rule, self.path, self.symbol)

    def format(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location}: {self.severity.value}[{self.rule}] {self.symbol}: {self.message}"
