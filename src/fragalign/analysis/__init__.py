"""fragalign.analysis — repo-specific static checks (``fragalign check``).

An AST-based analyzer that enforces the contracts the test suite can't
see: kernel/oracle parity coverage, request-knob propagation through
every serving layer, asyncio hygiene, hot-loop numpy discipline and
key determinism.  See the rule modules under
:mod:`fragalign.analysis.rules` for the individual contracts and
``analysis-baseline.json`` at the repo root for suppressions.
"""

from __future__ import annotations

from fragalign.analysis.baseline import Baseline, BaselineEntry, BaselineError
from fragalign.analysis.findings import Finding, Severity
from fragalign.analysis.project import Project
from fragalign.analysis.runner import CheckResult, format_report, run_check

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "CheckResult",
    "Finding",
    "Project",
    "Severity",
    "format_report",
    "run_check",
]
