"""Run the rules, apply the baseline, decide pass/fail.

Exit contract (what ``fragalign check`` and CI key off):

* **0** — no new ERROR findings, baseline valid, no stale entries;
* **1** — new findings, or stale baseline entries (the suppressed
  thing no longer fires — prune the entry);
* **2** — the baseline file itself is invalid (bad JSON, FIXME
  placeholders, duplicates).

``update_baseline=True`` rewrites the baseline with FIXME placeholders
for every current finding; the run still fails until each placeholder
is replaced with a real justification (see baseline.py).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from fragalign.analysis.baseline import Baseline, BaselineEntry, BaselineError
from fragalign.analysis.findings import Finding, Severity
from fragalign.analysis.project import Project
from fragalign.analysis.rules import ALL_RULES

__all__ = ["CheckResult", "run_check", "format_report"]


@dataclass
class CheckResult:
    """Everything one analyzer run decided."""

    new: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)
    baseline_error: str | None = None
    rules_run: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        if self.baseline_error is not None:
            return 2
        gating = [f for f in self.new if f.severity is Severity.ERROR]
        if gating or self.stale:
            return 1
        return 0

    def to_json(self) -> str:
        def enc(f: Finding) -> dict:
            return {
                "rule": f.rule, "path": f.path, "line": f.line,
                "symbol": f.symbol, "message": f.message,
                "severity": f.severity.value,
            }

        return json.dumps(
            {
                "exit_code": self.exit_code,
                "rules": self.rules_run,
                "new": [enc(f) for f in self.new],
                "suppressed": [enc(f) for f in self.suppressed],
                "stale": [
                    {"rule": e.rule, "path": e.path, "symbol": e.symbol}
                    for e in self.stale
                ],
                "baseline_error": self.baseline_error,
            },
            indent=2,
        )


def _sorted(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.symbol))


def run_check(
    root: str | Path,
    tests: str | Path | None = None,
    baseline_path: str | Path | None = None,
    rules: Sequence[str] | None = None,
    update_baseline: bool = False,
) -> CheckResult:
    """Run the analyzer over one package tree.

    ``rules`` filters by rule id; ``baseline_path=None`` means no
    suppressions at all.
    """
    project = Project(root, tests=tests)
    selected = [
        r for r in ALL_RULES if rules is None or r.ID in rules
    ]
    if rules is not None:
        unknown = set(rules) - {r.ID for r in ALL_RULES}
        if unknown:
            raise ValueError(f"unknown rule id(s): {sorted(unknown)}")

    result = CheckResult(rules_run=[r.ID for r in selected])
    findings: list[Finding] = []
    for rule in selected:
        findings.extend(rule.check(project))
    findings = _sorted(findings)

    if update_baseline and baseline_path is not None:
        Baseline.write(baseline_path, findings)

    if baseline_path is None:
        result.new = findings
        return result
    try:
        baseline = Baseline.load(baseline_path)
    except BaselineError as exc:
        result.baseline_error = str(exc)
        result.new = findings
        return result
    new, suppressed, stale = baseline.apply(findings)
    result.new = new
    result.suppressed = suppressed
    result.stale = stale
    return result


def format_report(result: CheckResult, verbose: bool = False) -> str:
    """Human-readable report (the default ``fragalign check`` output)."""
    lines: list[str] = []
    if result.baseline_error is not None:
        lines.append(f"baseline error: {result.baseline_error}")
    for finding in result.new:
        lines.append(finding.format())
    if verbose:
        for finding in result.suppressed:
            lines.append(f"[baselined] {finding.format()}")
    for entry in result.stale:
        lines.append(
            f"stale baseline entry: {entry.rule} @ {entry.path}:{entry.symbol} "
            "no longer fires — prune it"
        )
    status = "FAILED" if result.exit_code else "ok"
    lines.append(
        f"fragalign check: {status} — {len(result.new)} new, "
        f"{len(result.suppressed)} baselined, {len(result.stale)} stale "
        f"({', '.join(result.rules_run)})"
    )
    return "\n".join(lines)
