"""kernel-parity: every align kernel needs an oracle and a parity test.

The repo's standing discipline (PR 1 → PR 5): a vectorized kernel is
only trusted because a deliberately-dumb per-cell ``*_reference``
oracle exists and a test pins the two against each other.  This rule
makes the discipline mechanical:

* every **public** function in ``align/`` whose name ends in
  ``_batch``, ``_scores`` or ``_align`` is a kernel;
* a kernel must have a matching ``*_reference`` oracle somewhere in
  ``align/`` — matching means the kernel's family prefix and the
  oracle's prefix (minus the ``score``/``scores``/``align`` verb
  words) extend one another on ``_``-token boundaries, e.g.
  ``banded_scores_batch`` ↔ ``banded_global_score_reference`` and
  ``affine_local_align_batch`` ↔ ``affine_align_reference``;
* at least one test file must reference the kernel **and** one of its
  matching oracles (the co-mention is what makes the parity test
  findable and deletable-with-consequences).

Verb compatibility: a score kernel needs a score oracle; an align
kernel accepts an align *or* a score oracle — align kernels' scores
are pinned to the score oracle while the path itself is covered by
the direction-walk identity tests.

A kernel whose oracle has an unrelated name can declare it with a
directive comment on (or right above) its ``def`` line::

    def linear_align(...):  # parity-oracle: hirschberg_align_reference

The declared oracle must still exist in ``align/`` and still co-occur
with the kernel in some test file.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from fragalign.analysis.findings import Finding
from fragalign.analysis.project import Project

ID = "kernel-parity"
DESCRIPTION = "align/ kernels must have *_reference oracles and parity tests"

_KERNEL_SUFFIXES = ("_batch", "_scores", "_align")
_VERB_WORDS = {"score", "scores", "align"}
_DIRECTIVE = re.compile(r"#\s*parity-oracle:\s*(\w+)")


def _is_kernel(name: str) -> bool:
    return (
        not name.startswith("_")
        and not name.endswith("_reference")
        and name.endswith(_KERNEL_SUFFIXES)
    )


def _family(name: str) -> str:
    """The kernel/oracle family prefix: the name minus suffix/verb words.

    ``affine_local_align_batch`` → ``affine_local``;
    ``banded_global_score_reference`` → ``banded_global``.
    """
    tokens = name.split("_")
    while tokens and tokens[-1] in {"batch", "reference", *_VERB_WORDS}:
        tokens.pop()
    return "_".join(tokens)


def _token_prefix(short: str, long: str) -> bool:
    """True when ``short`` is a ``_``-token-boundary prefix of ``long``."""
    return long == short or long.startswith(short + "_")


def _families_match(kernel_family: str, oracle_family: str) -> bool:
    if not kernel_family or not oracle_family:
        return False
    return _token_prefix(kernel_family, oracle_family) or _token_prefix(
        oracle_family, kernel_family
    )


def _verb(name: str) -> str:
    tokens = name.split("_")
    for token in reversed(tokens):
        if token in ("score", "scores"):
            return "score"
        if token == "align":
            return "align"
    return "score"


def _verbs_compatible(kernel: str, oracle: str) -> bool:
    if _verb(kernel) == "score":
        return _verb(oracle) == "score"
    return True  # align kernels accept align or score oracles


def _directive_oracle(source_lines: list[str], node: ast.AST) -> str | None:
    """A ``# parity-oracle: name`` comment on the def line or the line
    above it."""
    for lineno in (node.lineno, node.lineno - 1):
        if 1 <= lineno <= len(source_lines):
            match = _DIRECTIVE.search(source_lines[lineno - 1])
            if match:
                return match.group(1)
    return None


_WORD_CACHE: dict[Path, set[str]] = {}


def _words(project: Project, path: Path) -> set[str]:
    if path not in _WORD_CACHE:
        _WORD_CACHE[path] = set(re.findall(r"\w+", project.source(path)))
    return _WORD_CACHE[path]


def check(project: Project) -> list[Finding]:
    _WORD_CACHE.clear()
    kernels: list[tuple[Path, ast.AST, str, str | None]] = []
    oracles: set[str] = set()
    for path in project.files("align"):
        tree = project.tree(path)
        lines = project.source(path).splitlines()
        for node in tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.endswith("_reference") and not node.name.startswith("_"):
                oracles.add(node.name)
            elif _is_kernel(node.name):
                kernels.append((path, node, node.name, _directive_oracle(lines, node)))

    findings: list[Finding] = []
    test_files = project.test_files()
    for path, node, kernel, declared in kernels:
        relpath = project.relpath(path)
        if declared is not None:
            if declared not in oracles:
                findings.append(
                    Finding(
                        rule=ID, path=relpath, line=node.lineno, symbol=kernel,
                        message=(
                            f"declared parity oracle {declared!r} does not exist "
                            "in align/"
                        ),
                    )
                )
                continue
            matching = [declared]
        else:
            family = _family(kernel)
            matching = sorted(
                o
                for o in oracles
                if _families_match(family, _family(o)) and _verbs_compatible(kernel, o)
            )
            if not matching:
                findings.append(
                    Finding(
                        rule=ID, path=relpath, line=node.lineno, symbol=kernel,
                        message=(
                            f"kernel has no matching *_reference oracle in align/ "
                            f"(family {family!r}); add one or declare "
                            "'# parity-oracle: <name>'"
                        ),
                    )
                )
                continue
        pinned = any(
            kernel in _words(project, tf)
            and any(o in _words(project, tf) for o in matching)
            for tf in test_files
        )
        if not pinned:
            findings.append(
                Finding(
                    rule=ID, path=relpath, line=node.lineno, symbol=kernel,
                    message=(
                        "no test file references both the kernel and a matching "
                        f"oracle ({', '.join(matching)})"
                    ),
                )
            )
    return findings
