"""hot-kernel-numpy: no per-iteration allocation in the sweep loops.

The batched kernels in ``align/pairwise.py``, ``align/hirschberg.py``
and ``align/affine.py`` owe their throughput to a strict buffer
discipline: allocate once before the row loop, then only ``out=``
writes and views inside it (the PR 2/3 rewrites were exactly this).
This rule freezes that discipline for the *hot functions* — any
function in those files whose name contains ``sweep`` or ends with
``_batch``:

* **growth-in-loop** — ``np.append``/``concatenate``/``vstack``/
  ``hstack``/``stack`` inside a ``for``/``while`` loop: quadratic
  reallocation by growth;
* **alloc-in-loop** — ``np.zeros``/``empty``/``ones``/``full``/
  ``array``/``arange``/``tile``/``repeat`` inside a loop: a fresh
  array per iteration where a preallocated buffer belongs;
* **convert-in-loop** — ``.astype(...)``/``.copy()``/``np.float64()``
  per iteration: hidden copies and float64 widening of what should be
  one dtype end to end.  (Bare ``float(x)`` is deliberately *not*
  flagged: extracting a Python scalar per pair in a traceback loop is
  the normal way to build result objects, not a buffer conversion.)

Loops *inside nested function defs* are skipped (they're someone
else's budget), as is anything outside the hot functions — reference
oracles are deliberately naive and may allocate freely.
"""

from __future__ import annotations

import ast

from fragalign.analysis.findings import Finding
from fragalign.analysis.project import Project, qualname_of

ID = "hot-kernel-numpy"
DESCRIPTION = "sweep/batch kernels must not allocate or convert per iteration"

_FILES = ("align/pairwise.py", "align/hirschberg.py", "align/affine.py")

_GROWTH = {"append", "concatenate", "vstack", "hstack", "stack", "column_stack"}
_ALLOC = {"zeros", "empty", "ones", "full", "array", "arange", "tile", "repeat"}
_CONVERT_ATTRS = {"astype", "copy"}


def _is_hot(name: str) -> bool:
    return "sweep" in name or name.endswith("_batch")


def _np_call(node: ast.Call) -> str | None:
    """'zeros' for np.zeros(...) / numpy.zeros(...), else None."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


class _LoopVisitor(ast.NodeVisitor):
    """Walk a hot function; track loop depth; flag per-iteration work."""

    def __init__(self, path: str, qualname: str) -> None:
        self.path = path
        self.qualname = qualname
        self.depth = 0
        self.findings: list[Finding] = []

    def _finding(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=ID, path=self.path, line=node.lineno, symbol=self.qualname,
                message=message,
            )
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested defs: not this function's loop budget

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def _loop(self, node: ast.For | ast.While) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    visit_For = _loop
    visit_While = _loop

    def visit_Call(self, node: ast.Call) -> None:
        if self.depth > 0:
            np_name = _np_call(node)
            if np_name in _GROWTH:
                self._finding(
                    node,
                    f"np.{np_name} inside a sweep loop reallocates per iteration "
                    "(preallocate before the loop and write through out=/views)",
                )
            elif np_name in _ALLOC:
                self._finding(
                    node,
                    f"np.{np_name} inside a sweep loop allocates per iteration "
                    "(hoist the buffer out of the loop)",
                )
            elif np_name == "float64":
                self._finding(
                    node,
                    "per-iteration float64 conversion widens/copies inside a "
                    "sweep loop (keep one dtype end to end)",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _CONVERT_ATTRS
            ):
                self._finding(
                    node,
                    f".{node.func.attr}() inside a sweep loop copies per iteration "
                    "(hoist the conversion or reuse a buffer)",
                )
        self.generic_visit(node)


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for relfile in _FILES:
        path = project.file(relfile)
        if path is None:
            continue
        relpath = project.relpath(path)
        for node, stack in project.walk_with_stack(path):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_hot(node.name):
                continue
            visitor = _LoopVisitor(relpath, qualname_of(stack + [node]))
            for stmt in node.body:
                visitor.visit(stmt)
            findings.extend(visitor.findings)
    return findings
