"""The rule registry.  Each rule module exposes ``ID``, ``DESCRIPTION``
and ``check(project) -> list[Finding]``."""

from __future__ import annotations

from fragalign.analysis.rules import (
    asyncio_hygiene,
    determinism,
    io_timeout,
    kernel_parity,
    knob_propagation,
    numpy_hot_loops,
)

ALL_RULES = (
    kernel_parity,
    knob_propagation,
    asyncio_hygiene,
    io_timeout,
    numpy_hot_loops,
    determinism,
)

RULES_BY_ID = {rule.ID: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_ID"]
