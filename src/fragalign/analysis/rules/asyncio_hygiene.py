"""asyncio-hygiene: the event loop in service/ and cluster/ never blocks.

The serving tiers run on one event loop; a single blocking call inside
an ``async def`` stalls *every* connection (latency cliffs that load
tests rarely catch, because the blocked coroutine still completes).
Four checks, all scoped to ``async def`` bodies in ``service/`` and
``cluster/`` (nested sync ``def``\\ s are skipped — they run wherever
their caller puts them, e.g. an executor):

* **blocking-call** — ``time.sleep``, blocking ``subprocess``/``os``
  process helpers, synchronous socket/url/file I/O (``open``,
  ``Path.read_text``...), and ``.result()`` on futures.  CPU-bound
  engine compute must go through ``run_in_executor`` — referencing
  ``engine.score_many`` inside a ``partial(...)`` is fine, *calling*
  it inline is not.
* **engine-call** — a direct call of ``<...>engine<...>.score/align/
  score_many/align_many`` inside an async body (the batcher's
  worker-thread contract).
* **unawaited-coroutine** — an expression-statement call of an
  ``async def`` defined in the same module (``self.foo()`` or bare
  ``foo()``) whose result is discarded: the coroutine never runs.
  Only ``self.``-receivers are matched for attribute calls — an
  unrelated object may share a method name with a module coroutine
  (``StreamWriter.close()`` vs an async ``close`` method).
* **sync-lock-across-await** — a plain ``with`` on something named
  like a lock whose body contains ``await``: a thread lock held across
  a suspension point deadlocks the loop the moment a second task wants
  it (use ``asyncio.Lock`` + ``async with``).
"""

from __future__ import annotations

import ast

from fragalign.analysis.findings import Finding
from fragalign.analysis.project import Project, qualname_of

ID = "asyncio-hygiene"
DESCRIPTION = "async bodies in service/ and cluster/ must not block the loop"

_SUBDIRS = ("service", "cluster")

# Dotted calls that block the calling thread.
_BLOCKING_DOTTED = {
    "time.sleep",
    "os.system",
    "os.waitpid",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
    "socket.getaddrinfo",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.request",
}
# Bare names whose call blocks (builtin file open; input).
_BLOCKING_NAMES = {"open", "input"}
# Attribute calls that block regardless of receiver (sync file/Path I/O,
# concurrent.futures results).
_BLOCKING_ATTRS = {"read_text", "write_text", "read_bytes", "write_bytes", "result"}
_ENGINE_VERBS = {"score", "align", "score_many", "align_many"}


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _async_names(tree: ast.Module) -> set[str]:
    """Names of every async def in the module (functions and methods)."""
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.AsyncFunctionDef)
    }


def _lockish(expr: ast.AST) -> bool:
    name = None
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    return name is not None and "lock" in name.lower()


class _AsyncBodyVisitor(ast.NodeVisitor):
    """Walk one async def's body without descending into nested defs."""

    def __init__(
        self, rule_path: str, qualname: str, async_names: set[str]
    ) -> None:
        self.path = rule_path
        self.qualname = qualname
        self.async_names = async_names
        self.findings: list[Finding] = []

    def _finding(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=ID, path=self.path, line=node.lineno, symbol=self.qualname,
                message=message,
            )
        )

    # Don't descend: nested defs get their own context (or none).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted in _BLOCKING_DOTTED:
            self._finding(
                node,
                f"blocking call {dotted}() inside an async def "
                "(use the asyncio equivalent or an executor)",
            )
        elif isinstance(node.func, ast.Name) and node.func.id in _BLOCKING_NAMES:
            self._finding(
                node,
                f"blocking call {node.func.id}() inside an async def "
                "(synchronous I/O stalls the event loop)",
            )
        elif isinstance(node.func, ast.Attribute) and node.func.attr in _BLOCKING_ATTRS:
            self._finding(
                node,
                f".{node.func.attr}() inside an async def blocks the event loop",
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _ENGINE_VERBS
            and dotted is not None
            and "engine" in dotted.rsplit(".", 1)[0].lower()
        ):
            self._finding(
                node,
                f"direct engine compute {dotted}() inside an async def "
                "(dispatch through run_in_executor, like the MicroBatcher)",
            )
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if isinstance(call, ast.Call):
            target = None
            if isinstance(call.func, ast.Name) and call.func.id in self.async_names:
                target = call.func.id
            elif (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in self.async_names
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == "self"
            ):
                target = call.func.attr
            if target is not None:
                self._finding(
                    node,
                    f"coroutine {target}(...) is never awaited "
                    "(await it, or wrap it in create_task)",
                )
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        if any(_lockish(item.context_expr) for item in node.items) and any(
            isinstance(inner, ast.Await)
            for stmt in node.body
            for inner in ast.walk(stmt)
        ):
            self._finding(
                node,
                "synchronous lock held across an await "
                "(use asyncio.Lock with 'async with')",
            )
        self.generic_visit(node)


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for path in project.files(*_SUBDIRS):
        tree = project.tree(path)
        relpath = project.relpath(path)
        async_names = _async_names(tree)
        for node, stack in project.walk_with_stack(path):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            visitor = _AsyncBodyVisitor(
                relpath, qualname_of(stack + [node]), async_names
            )
            for stmt in node.body:
                visitor.visit(stmt)
            findings.extend(visitor.findings)
    return findings
