"""determinism: key-making code must be reproducible across processes.

Cache keys, routing keys and response payloads must hash/compare the
same on every replica and every restart — the cluster tier's whole
correctness story (one owner per key, warm caches that survive
restarts) rests on it.  Two scopes:

* **whole files** that exist to build identities —
  ``service/protocol.py``, ``service/fields.py``, ``cluster/ring.py``;
* **key-making functions** anywhere in ``service/`` and ``cluster/``:
  any def whose name matches ``cache_key|ring_key|key_for|shard_for|
  fingerprint|normalize`` (substring, so ``_normalize`` and
  ``model_fingerprint`` count).

Inside scope the rule forbids sources of cross-process or cross-run
drift:

* the builtin ``hash()`` (salted per process by PYTHONHASHSEED) and
  ``id()`` (an address);
* wall clock — ``time.time``/``time_ns``/``monotonic``,
  ``datetime.now``/``utcnow``/``today``;
* entropy — ``random.*``, ``np.random.*``, ``uuid.*``,
  ``os.urandom``, ``secrets.*``.

``hashlib`` is deliberately **allowed**: the ring hashes with sha1
precisely because it is stable where ``hash()`` is not.  Code that
legitimately needs a clock or RNG (timeouts, jitter, keyset
*generation* with an explicit seed) belongs outside key-making
functions — or, for real exceptions, in the baseline with a reason.
"""

from __future__ import annotations

import ast
import re

from fragalign.analysis.findings import Finding
from fragalign.analysis.project import Project, qualname_of

ID = "determinism"
DESCRIPTION = "key-making code must not use hash()/clock/entropy"

_KEY_FUNC = re.compile(r"cache_key|ring_key|key_for|shard_for|fingerprint|normalize")
_WHOLE_FILES = ("service/protocol.py", "service/fields.py", "cluster/ring.py")
_SUBDIRS = ("service", "cluster")

_FORBIDDEN_NAMES = {
    "hash": "builtin hash() is salted per process (PYTHONHASHSEED)",
    "id": "id() is a memory address, unstable across runs",
}
_FORBIDDEN_DOTTED = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.monotonic": "per-process clock",
    "datetime.now": "wall clock",
    "datetime.utcnow": "wall clock",
    "datetime.today": "wall clock",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "os.urandom": "entropy",
}
_FORBIDDEN_PREFIXES = {
    "random.": "entropy",
    "np.random.": "entropy",
    "numpy.random.": "entropy",
    "uuid.": "entropy",
    "secrets.": "entropy",
}


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _violation(node: ast.Call) -> str | None:
    """Why this call breaks determinism, or None."""
    if isinstance(node.func, ast.Name) and node.func.id in _FORBIDDEN_NAMES:
        return f"{node.func.id}(): {_FORBIDDEN_NAMES[node.func.id]}"
    dotted = _dotted(node.func)
    if dotted is None:
        return None
    if dotted in _FORBIDDEN_DOTTED:
        return f"{dotted}(): {_FORBIDDEN_DOTTED[dotted]}"
    for prefix, why in _FORBIDDEN_PREFIXES.items():
        if dotted.startswith(prefix):
            return f"{dotted}(): {why}"
    return None


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    whole = {project.file(rel) for rel in _WHOLE_FILES} - {None}
    scanned: set = set()

    def scan(path, restrict_to_key_funcs: bool) -> None:
        relpath = project.relpath(path)
        for node, stack in project.walk_with_stack(path):
            if not isinstance(node, ast.Call):
                continue
            if restrict_to_key_funcs and not any(
                isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                and _KEY_FUNC.search(s.name)
                for s in stack
            ):
                continue
            why = _violation(node)
            if why is not None:
                findings.append(
                    Finding(
                        rule=ID, path=relpath, line=node.lineno,
                        symbol=qualname_of(stack),
                        message=f"non-deterministic {why} in key-making code",
                    )
                )

    for path in sorted(whole):
        scanned.add(path)
        scan(path, restrict_to_key_funcs=False)
    for path in project.files(*_SUBDIRS):
        if path in scanned:
            continue
        scan(path, restrict_to_key_funcs=True)
    return findings
