"""io-timeout: awaited network I/O in service/ and cluster/ is bounded.

An await on stream I/O with no timeout is an unbounded wait: a peer
that stops talking (half-open TCP, a black-holed host, a wedged shard)
parks the coroutine forever, and whatever resource it holds — a
connection slot, an admission token, a caller's thread — leaks with
it.  The resilience tier's contract is that *every* network wait is
bounded somewhere, so this rule flags every ``await`` of a raw
network-I/O call in ``service/`` and ``cluster/`` that is neither

* wrapped in ``asyncio.wait_for(...)`` (the timeout is right there), nor
* annotated with a justification directive::

      data = await reader.readline()  # io-timeout: bounded by the caller

The directive may sit on the awaited statement's own lines or the line
directly above it, and must carry a non-empty justification after the
colon.  Flagged calls are the stream-level waits (``readline``,
``readexactly``, ``readuntil``, ``drain``, ``wait_closed``) plus
``asyncio.open_connection`` — connection establishment against a host
dropping SYNs hangs for the OS TCP timeout, minutes not seconds.
Higher-level client verbs (``client.score(...)``) are deliberately not
matched: their timeout obligations live inside the client and router,
where this rule checks the raw calls they are built from.
"""

from __future__ import annotations

import ast
import re

from fragalign.analysis.findings import Finding
from fragalign.analysis.project import Project, qualname_of

ID = "io-timeout"
DESCRIPTION = (
    "awaited network I/O in service/ and cluster/ must be bounded by "
    "asyncio.wait_for or carry an '# io-timeout:' justification"
)

_SUBDIRS = ("service", "cluster")

# Stream-level waits that block until the peer acts.
_STREAM_ATTRS = {"readline", "readexactly", "readuntil", "drain", "wait_closed"}
# Dotted calls that establish connections (OS-timeout-bounded at best).
_CONNECT_DOTTED = {"asyncio.open_connection"}

_DIRECTIVE = re.compile(r"#\s*io-timeout:\s*\S")


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _io_call_name(call: ast.Call) -> str | None:
    """The flaggable name of an awaited call, or None if benign."""
    dotted = _dotted(call.func)
    if dotted in _CONNECT_DOTTED:
        return dotted
    if isinstance(call.func, ast.Attribute) and call.func.attr in _STREAM_ATTRS:
        return f"...{call.func.attr}"
    return None


def _justified(lines: list[str], node: ast.Await) -> bool:
    """True when an ``# io-timeout: <why>`` directive covers the await
    (its own lines, or the line directly above)."""
    end = node.end_lineno if node.end_lineno is not None else node.lineno
    for lineno in range(max(1, node.lineno - 1), end + 1):
        if lineno <= len(lines) and _DIRECTIVE.search(lines[lineno - 1]):
            return True
    return False


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for path in project.files(*_SUBDIRS):
        relpath = project.relpath(path)
        lines = project.source(path).splitlines()
        for node, stack in project.walk_with_stack(path):
            if not isinstance(node, ast.Await):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            # `await asyncio.wait_for(inner(...), timeout=...)` is the
            # sanctioned shape: the inner call is not itself awaited,
            # so matching the Await's direct call skips it naturally.
            name = _io_call_name(call)
            if name is None or _justified(lines, node):
                continue
            scope = [s for s in stack if isinstance(
                s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )]
            findings.append(
                Finding(
                    rule=ID,
                    path=relpath,
                    line=node.lineno,
                    symbol=qualname_of(scope) if scope else "<module>",
                    message=(
                        f"awaited network I/O {name}() has no timeout — wrap "
                        "it in asyncio.wait_for(...) or justify with "
                        "'# io-timeout: <why>'"
                    ),
                )
            )
    return findings
