"""knob-propagation: every layer covers exactly the registered fields.

The request schema lives once, in ``service/fields.py`` (``_SPECS``, a
pure literal this rule parses without importing anything).  Each layer
that re-materializes the schema is a *site*; the rule verifies each
site covers the registered fields — and, for the key-builder sites,
covers them **exactly**, so deleting a field from the registry (or
adding an unregistered knob parameter to a key builder) fails the
check in both directions:

* ``service/protocol.py`` — ``parse_request`` must read every field
  off the wire (``obj.get("<field>")``), and the ``Request`` dataclass
  must carry exactly ``id/op/a/b`` plus the registered fields;
* ``service/batcher.py`` — ``MicroBatcher.submit`` takes exactly
  ``op/a/b`` plus the ``group_key`` fields;
* ``service/server.py`` — the ``cache_key`` method takes exactly
  ``op/a/b`` plus the ``cache_key`` fields;
* ``cluster/ring.py`` — ``ring_key`` takes exactly ``op/a/b`` (plus
  ``model_fp``/``default_mode`` structure) and the ``ring_key``
  fields, and the ``ring_key`` field set must equal the ``cache_key``
  set (routing must agree with caching);
* ``cluster/warm.py`` — ``generate_keyset`` parameters cover exactly
  the ``keyset`` fields beyond its structural knobs;
* ``cli.py`` — the serving verbs' ``add_argument`` calls (in
  ``build_parser`` and its ``_add_*`` helpers) define every registered
  ``cli_flag``.

Sites are only checked when their file exists under the analyzed root,
so fixture trees can exercise one site at a time.
"""

from __future__ import annotations

import ast

from fragalign.analysis.findings import Finding
from fragalign.analysis.project import FIELDS_MODULE, Project

ID = "knob-propagation"
DESCRIPTION = "request knobs must propagate exactly per the fields registry"

_REQUIRED_SPEC_KEYS = {
    "name", "kind", "ops", "cache_key", "ring_key", "group_key", "keyset",
    "cli_flag", "doc",
}


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return {n for n in names if n != "self"}


def _find_def(tree: ast.Module, name: str, method: bool = False):
    """A def by name: module-level, or (``method=True``) inside any
    class.  Returns the node or None."""
    if method:
        scopes = [n.body for n in tree.body if isinstance(n, ast.ClassDef)]
    else:
        scopes = [tree.body]
    for body in scopes:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == name:
                    return node
    return None


def _exactness(
    findings: list[Finding],
    path: str,
    node,
    symbol: str,
    have: set[str],
    required: set[str],
    structural: set[str],
    what: str,
) -> None:
    """Report both drift directions for one site."""
    for name in sorted(required - have):
        findings.append(
            Finding(
                rule=ID, path=path, line=node.lineno, symbol=symbol,
                message=f"missing registered field {name!r} in {what}",
            )
        )
    for name in sorted(have - required - structural):
        findings.append(
            Finding(
                rule=ID, path=path, line=node.lineno, symbol=symbol,
                message=(
                    f"{name!r} in {what} is not a registered request field "
                    "(register it in service/fields.py or remove it)"
                ),
            )
        )


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    specs = project.load_field_registry()
    fields_path = project.file(FIELDS_MODULE)
    if specs is None:
        if fields_path is not None or project.file("service/protocol.py") is not None:
            findings.append(
                Finding(
                    rule=ID, path=FIELDS_MODULE, line=0, symbol="_SPECS",
                    message=(
                        "service/fields.py must define the _SPECS registry as a "
                        "pure literal tuple of dicts"
                    ),
                )
            )
        return findings

    for k, spec in enumerate(specs):
        missing = _REQUIRED_SPEC_KEYS - set(spec)
        if missing:
            findings.append(
                Finding(
                    rule=ID, path=FIELDS_MODULE, line=0,
                    symbol=str(spec.get("name", f"_SPECS[{k}]")),
                    message=f"registry entry missing keys {sorted(missing)}",
                )
            )
    specs = [s for s in specs if not (_REQUIRED_SPEC_KEYS - set(s))]

    names = {s["name"] for s in specs}
    cache_fields = {s["name"] for s in specs if s["cache_key"]}
    ring_fields = {s["name"] for s in specs if s["ring_key"]}
    group_fields = {s["name"] for s in specs if s["group_key"]}
    keyset_fields = {s["name"] for s in specs if s["keyset"]}
    flags = {s["cli_flag"] for s in specs}

    if cache_fields != ring_fields:
        findings.append(
            Finding(
                rule=ID, path=FIELDS_MODULE, line=0, symbol="_SPECS",
                message=(
                    "ring_key fields must mirror cache_key fields "
                    f"(cache {sorted(cache_fields)} vs ring {sorted(ring_fields)}): "
                    "routing must agree with caching"
                ),
            )
        )

    # -- site: protocol.parse_request + Request ------------------------
    path = project.file("service/protocol.py")
    if path is not None:
        tree = project.tree(path)
        relpath = project.relpath(path)
        parse = _find_def(tree, "parse_request")
        if parse is None:
            findings.append(
                Finding(
                    rule=ID, path=relpath, line=0, symbol="parse_request",
                    message="service/protocol.py must define parse_request",
                )
            )
        else:
            read = {
                node.args[0].value
                for node in ast.walk(parse)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            }
            for name in sorted(names - read):
                findings.append(
                    Finding(
                        rule=ID, path=relpath, line=parse.lineno, symbol="parse_request",
                        message=(
                            f"registered field {name!r} is never read off the wire "
                            "(no obj.get call)"
                        ),
                    )
                )
        request = next(
            (n for n in tree.body if isinstance(n, ast.ClassDef) and n.name == "Request"),
            None,
        )
        if request is not None:
            declared = {
                stmt.target.id
                for stmt in request.body
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
            }
            _exactness(
                findings, relpath, request, "Request",
                declared, names, {"id", "op", "a", "b"}, "the Request dataclass",
            )

    # -- site: batcher group key --------------------------------------
    path = project.file("service/batcher.py")
    if path is not None:
        tree = project.tree(path)
        relpath = project.relpath(path)
        submit = _find_def(tree, "submit", method=True)
        if submit is None:
            findings.append(
                Finding(
                    rule=ID, path=relpath, line=0, symbol="MicroBatcher.submit",
                    message="service/batcher.py must define a submit method",
                )
            )
        else:
            _exactness(
                findings, relpath, submit, "MicroBatcher.submit",
                _param_names(submit), group_fields, {"op", "a", "b"},
                "the batch-group key (submit parameters)",
            )

    # -- site: server result-cache key --------------------------------
    path = project.file("service/server.py")
    if path is not None:
        tree = project.tree(path)
        relpath = project.relpath(path)
        cache_key = _find_def(tree, "cache_key", method=True)
        if cache_key is None:
            findings.append(
                Finding(
                    rule=ID, path=relpath, line=0, symbol="cache_key",
                    message="service/server.py must define a cache_key method",
                )
            )
        else:
            _exactness(
                findings, relpath, cache_key, "cache_key",
                _param_names(cache_key), cache_fields, {"op", "a", "b"},
                "the result-cache key (cache_key parameters)",
            )

    # -- site: cluster routing key ------------------------------------
    path = project.file("cluster/ring.py")
    if path is not None:
        tree = project.tree(path)
        relpath = project.relpath(path)
        ring = _find_def(tree, "ring_key")
        if ring is None:
            findings.append(
                Finding(
                    rule=ID, path=relpath, line=0, symbol="ring_key",
                    message="cluster/ring.py must define ring_key",
                )
            )
        else:
            _exactness(
                findings, relpath, ring, "ring_key",
                _param_names(ring), ring_fields,
                {"op", "a", "b", "model_fp", "default_mode"},
                "the routing key (ring_key parameters)",
            )

    # -- site: warm keysets -------------------------------------------
    path = project.file("cluster/warm.py")
    if path is not None:
        tree = project.tree(path)
        relpath = project.relpath(path)
        generate = _find_def(tree, "generate_keyset")
        if generate is None:
            findings.append(
                Finding(
                    rule=ID, path=relpath, line=0, symbol="generate_keyset",
                    message="cluster/warm.py must define generate_keyset",
                )
            )
        else:
            _exactness(
                findings, relpath, generate, "generate_keyset",
                _param_names(generate), keyset_fields, {"n", "length", "seed", "op"},
                "the keyset generator (generate_keyset parameters)",
            )

    # -- site: CLI flags ----------------------------------------------
    path = project.file("cli.py")
    if path is not None:
        tree = project.tree(path)
        relpath = project.relpath(path)
        build = _find_def(tree, "build_parser")
        if build is not None:
            defined: set[str] = set()
            scopes = [build] + [
                n
                for n in tree.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n.name.startswith("_add")
            ]
            for scope in scopes:
                for node in ast.walk(scope):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "add_argument"
                        and node.args
                        and isinstance(node.args[0], ast.Constant)
                        and isinstance(node.args[0].value, str)
                    ):
                        defined.add(node.args[0].value)
            for flag in sorted(flags - defined):
                findings.append(
                    Finding(
                        rule=ID, path=relpath, line=build.lineno, symbol="build_parser",
                        message=(
                            f"registered CLI flag {flag!r} is not defined by "
                            "build_parser (or its _add_* helpers)"
                        ),
                    )
                )
    return findings
