"""The analyzed project: file discovery, parsed-AST cache, registry.

A :class:`Project` wraps one package root (normally ``src/fragalign``)
plus its test directory.  Rules pull files and ASTs through it so
every rule sees the same parse and path normalization, and so tests
can point the whole analyzer at a synthetic fixture tree.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

__all__ = ["Project", "qualname_of", "FIELDS_MODULE"]

# Where the request-field registry lives, relative to the package root.
FIELDS_MODULE = "service/fields.py"


def qualname_of(stack: list[ast.AST]) -> str:
    """Dotted qualname for a node's enclosing def/class stack
    (``Class.method`` / ``outer.<locals>.inner`` style, simplified)."""
    parts = [
        node.name
        for node in stack
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    ]
    return ".".join(parts) or "<module>"


class Project:
    """One package tree under analysis.

    Parameters
    ----------
    root:
        The package root (the directory holding ``align/``,
        ``service/``, ``cluster/``...).
    tests:
        The test directory whose sources the kernel-parity rule scans
        for co-mentions.  Defaults to ``<root>/../../tests`` (the
        repo's ``src/<pkg>`` layout) when that exists.
    """

    def __init__(self, root: str | Path, tests: str | Path | None = None) -> None:
        self.root = Path(root).resolve()
        if not self.root.is_dir():
            raise NotADirectoryError(f"analysis root {self.root} is not a directory")
        if tests is None:
            candidate = self.root.parent.parent / "tests"
            tests = candidate if candidate.is_dir() else None
        self.tests = Path(tests).resolve() if tests is not None else None
        self._trees: dict[Path, ast.Module] = {}
        self._sources: dict[Path, str] = {}

    # -- file discovery -----------------------------------------------

    def files(self, *subdirs: str) -> list[Path]:
        """Sorted ``.py`` files under the given package subdirs (or the
        whole root when none are given).  Missing subdirs are simply
        empty — rules degrade gracefully on partial fixture trees."""
        roots = [self.root / s for s in subdirs] if subdirs else [self.root]
        out: list[Path] = []
        for base in roots:
            if base.is_file() and base.suffix == ".py":
                out.append(base)
            elif base.is_dir():
                out.extend(p for p in base.rglob("*.py"))
        return sorted(set(out))

    def file(self, relpath: str) -> Path | None:
        """One package file by root-relative path, or None if absent."""
        path = self.root / relpath
        return path if path.is_file() else None

    def test_files(self) -> list[Path]:
        if self.tests is None:
            return []
        return sorted(self.tests.rglob("*.py"))

    def relpath(self, path: Path) -> str:
        """Root-relative posix path (test files get a ``tests/`` prefix)."""
        path = Path(path).resolve()
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            if self.tests is not None:
                try:
                    return f"tests/{path.relative_to(self.tests).as_posix()}"
                except ValueError:
                    pass
            return path.as_posix()

    # -- parsing ------------------------------------------------------

    def source(self, path: Path) -> str:
        path = Path(path)
        if path not in self._sources:
            self._sources[path] = path.read_text()
        return self._sources[path]

    def tree(self, path: Path) -> ast.Module:
        path = Path(path)
        if path not in self._trees:
            self._trees[path] = ast.parse(self.source(path), filename=str(path))
        return self._trees[path]

    def walk_with_stack(self, path: Path) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
        """Yield every node with its enclosing def/class stack."""

        def visit(node: ast.AST, stack: list[ast.AST]):
            for child in ast.iter_child_nodes(node):
                yield child, stack
                scoped = isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
                yield from visit(child, stack + [child] if scoped else stack)

        yield from visit(self.tree(path), [])

    # -- the request-field registry -----------------------------------

    def load_field_registry(self) -> list[dict] | None:
        """Parse ``_SPECS`` out of ``service/fields.py`` **statically**
        (no import): the registry is required to stay a pure literal.
        Returns the list of spec dicts, or None when the module or the
        literal is missing/unreadable (the knob rule reports that)."""
        path = self.file(FIELDS_MODULE)
        if path is None:
            return None
        for node in ast.walk(self.tree(path)):
            if not isinstance(node, ast.Assign):
                continue
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "_SPECS" not in names:
                continue
            try:
                value = ast.literal_eval(node.value)
            except ValueError:
                return None
            if isinstance(value, (list, tuple)) and all(
                isinstance(item, dict) for item in value
            ):
                return list(value)
            return None
        return None
