"""Linear-memory alignment with *exact* traceback reproduction.

The direction-tensor traceback of the batched kernels holds one packed
byte per DP cell — an ``(n, B, m)`` tensor.  At 32k x 32k that is a
gigabyte per pair, which caps pair length long before the hardware
does.  This module recovers the **byte-identical** alignment in
near-linear memory with a Hirschberg-style divide and conquer:

* split the rows in half and recompute the frontier at the middle row
  with a *score-only* half sweep (O(m) memory — the same kernels, no
  direction codes);
* recurse on the **bottom** half first: its backward walk reveals the
  exact column where the canonical traceback crosses the middle row;
* recurse on the top half with the columns truncated to that crossing
  column (the walk can never move right of it);
* at small sub-problems, emit direction codes for just that block
  (bounded by ``block_cells``) and walk them with the standard code
  walk.

Because every block sweep restarts from a checkpoint frontier computed
by the *same* kernel operations, the block's direction codes — and
therefore the walk — are bit-identical to what the full tensor sweep
would have produced.  The result is *equal by construction* to
``global_align`` / ``overlap_align`` / ``local_align``, not merely
co-optimal: a standing test invariant.

Memory is O(m·log n) (one checkpoint frontier per recursion level)
plus the constant ``block_cells`` code block — versus O(n·m) for the
tensor.  Time is ~2-3x a score-only sweep for typical inputs (the
bottom-half chain re-sweeps full-width rows; truncated top halves
shrink geometrically), degrading toward O(n·m·log n) only when the
optimal path hugs the top-right corner.

The classic score-splitting Hirschberg (which returns *a* co-optimal
alignment, not the canonical one) survives as
:func:`hirschberg_align_reference`, the score-parity oracle.
"""

from __future__ import annotations

import numpy as np

from fragalign.align.pairwise import (
    Alignment,
    _sweep_global,
    _sweep_local,
    _walk_global,
    _walk_local,
    global_align,
)
from fragalign.align.scoring_matrices import SubstitutionModel, encode, unit_dna

__all__ = ["hirschberg_align", "hirschberg_align_reference", "linear_align"]

#: Direction-code cells a base-case block may hold (bytes); 4 MiB of
#: codes per block keeps the walk's working set small while making the
#: per-block Python overhead negligible.
DEFAULT_BLOCK_CELLS = 1 << 22

LINEAR_MODES = ("global", "overlap", "local")


class _LinearWalk:
    """One linear-memory walk: mode-specific sweeps + the recursion."""

    def __init__(
        self,
        a_codes: np.ndarray,
        b_codes: np.ndarray,
        model: SubstitutionModel,
        mode: str,
        block_cells: int,
    ) -> None:
        self.ac = a_codes
        self.bc = b_codes
        self.model = model
        self.mode = mode
        self.block_cells = max(1, block_cells)
        self.segments: list[list[tuple[int, int]]] = []  # bottom-first
        self.stop: tuple[int, int] | None = None  # where the walk ended
        self.corner: float | None = None  # f-space F at (len(ac), je_root)

    # -- kernel plumbing ----------------------------------------------

    def _sweep(self, lo: int, hi: int, F_lo: np.ndarray, je: int, D=None):
        """Sweep rows (lo, hi] over columns 0..je from checkpoint
        ``F_lo``; returns the new frontier row (f-space, length je+1)."""
        A = self.ac[lo:hi][None, :]
        Bm = self.bc[:je][None, :]
        F0 = F_lo[None, : je + 1]
        if self.mode == "local":
            _, _, _, fr = _sweep_local(A, Bm, self.model, D=D, F0=F0, i0=lo)
        else:
            fr = _sweep_global(
                A, Bm, self.model, overlap=self.mode == "overlap", D=D, F0=F0, i0=lo
            )
        return fr.prev[0, : je + 1].copy()

    def _walk_block(self, db: bytes, rows: int, je: int):
        if self.mode == "local":
            return _walk_local(db, je, rows, je)
        return _walk_global(db, je, rows, je)

    # -- the recursion ------------------------------------------------

    def run(self, lo: int, hi: int, F_lo: np.ndarray, je: int) -> int | None:
        """Walk rows (lo, hi] backward from (hi, je).

        Appends this range's aligned pairs (forward order, absolute
        indices) as one segment per block, bottom blocks first.
        Returns the crossing column at row ``lo``, or ``None`` when the
        walk terminated inside the range (column 0 reached, or a local
        stop code) — ``self.stop`` then holds the terminal cell.
        """
        if je == 0:
            # Already pinned to column 0: the remaining rows are forced
            # gaps, no pairs.  (self.stop was set when j first hit 0.)
            return 0
        rows = hi - lo
        if rows == 0:
            return je
        if rows * je <= self.block_cells or rows <= 1:
            D = np.empty((rows, 1, je), dtype=np.uint8)
            F_hi = self._sweep(lo, hi, F_lo, je, D=D)
            if hi == len(self.ac) and self.corner is None:
                # The first base case is always the bottom-right block
                # (the bottom chain never shrinks rows or columns), so
                # its frontier carries the corner value for the score.
                self.corner = float(F_hi[je])
            walked, i_rel, j_stop = self._walk_block(D[:, 0, :].tobytes(), rows, je)
            if walked:
                self.segments.append([(lo + ri, cj) for ri, cj in walked])
            if i_rel == 0 and j_stop > 0:
                return j_stop  # crossed row lo
            self.stop = (lo + i_rel, j_stop)
            return None
        mid = (lo + hi) // 2
        F_mid = self._sweep(lo, mid, F_lo, je)
        j_mid = self.run(mid, hi, F_mid, je)
        if j_mid is None:
            return None
        return self.run(lo, mid, F_lo, j_mid)

    def pairs(self) -> tuple[tuple[int, int], ...]:
        out: list[tuple[int, int]] = []
        for segment in reversed(self.segments):
            out.extend(segment)
        return tuple(out)


def linear_align(  # parity-oracle: hirschberg_align_reference
    a: str | np.ndarray,
    b: str | np.ndarray,
    model: SubstitutionModel | None = None,
    mode: str = "global",
    block_cells: int = DEFAULT_BLOCK_CELLS,
) -> Alignment:
    """Optimal alignment in near-linear memory, byte-identical to the
    direction-tensor kernels.

    ``mode`` is ``"global"``, ``"overlap"`` or ``"local"`` (banded
    traceback is already O(n·band) and affine gaps keep their tensor
    path — the engine rejects ``memory="linear"`` for those).  Equal —
    score *and* aligned pairs — to :func:`~fragalign.align.pairwise.
    global_align` / ``overlap_align`` / ``local_align`` on the same
    inputs, while peak traceback memory stays O(m·log n) + one
    ``block_cells`` code block instead of the (n, m) byte tensor.
    """
    model = model or unit_dna()
    if mode not in LINEAR_MODES:
        raise ValueError(
            f"linear-memory alignment supports modes {LINEAR_MODES}, got {mode!r}"
        )
    ac = a if isinstance(a, np.ndarray) else encode(a)
    bc = b if isinstance(b, np.ndarray) else encode(b)
    n, m = len(ac), len(bc)
    g = model.gap
    if n == 0 or m == 0:
        if mode == "global":
            return Alignment((n + m) * g, (), (0, n), (0, m))
        if mode == "overlap":
            return Alignment(0.0, (), (n, n), (0, 0))
        return Alignment(0.0, (), (0, 0), (0, 0))
    js = np.arange(m + 1)

    if mode == "global":
        walk = _LinearWalk(ac, bc, model, mode, block_cells)
        walk.run(0, n, np.zeros(m + 1), m)
        # f-space: H(n, m) = F(n, m) + g*m + n*g.
        score = walk.corner + g * (m + n)
        return Alignment(score, walk.pairs(), (0, n), (0, m))

    if mode == "overlap":
        fr = _sweep_global(ac[None, :], bc[None, :], model, overlap=True)
        hrow = fr.prev[0, : m + 1] + g * js
        b_end = int(np.argmax(hrow))
        score = float(hrow[b_end] + n * g)
        if b_end == 0:  # empty overlap: the walk starts (and ends) at (n, 0)
            return Alignment(score, (), (n, n), (0, 0))
        walk = _LinearWalk(ac, bc, model, mode, block_cells)
        F0 = np.zeros(m + 1)
        walk.run(0, n, F0, b_end)
        # stop records where the walk hit column 0; otherwise it
        # reached row 0 with the b column still open (a_start = 0).
        a_start = walk.stop[0] if walk.stop is not None else 0
        return Alignment(score, walk.pairs(), (a_start, n), (0, b_end))

    # local
    best, bi, bj, _ = _sweep_local(ac[None, :], bc[None, :], model)
    score, ei, ej = float(best[0]), int(bi[0]), int(bj[0])
    if ei == 0 or ej == 0:
        return Alignment(0.0, (), (0, 0), (0, 0))
    walk = _LinearWalk(ac, bc, model, mode, block_cells)
    F0 = -g * js  # row 0: H = 0 -> F = -g*j
    crossed = walk.run(0, ei, F0[: ej + 1], ej)
    if walk.stop is not None:
        i0, j0 = walk.stop
    else:
        i0, j0 = 0, crossed if crossed is not None else 0
    return Alignment(score, walk.pairs(), (i0, ei), (j0, ej))


def hirschberg_align(
    a: str, b: str, model: SubstitutionModel | None = None
) -> Alignment:
    """Optimal global alignment in near-linear memory.

    Byte-identical to :func:`~fragalign.align.pairwise.global_align`
    (score *and* pairs — a standing test invariant), via the
    canonical-walk divide and conquer of :func:`linear_align`.
    """
    return linear_align(a, b, model, mode="global")


# ---------------------------------------------------------------------------
# The classic score-splitting Hirschberg — kept as the parity oracle.
# ---------------------------------------------------------------------------


def _score_last_row(
    a_codes: np.ndarray, b_codes: np.ndarray, model: SubstitutionModel
) -> np.ndarray:
    """Final NW DP row for a vs b (linear gap), O(m) memory."""
    g = model.gap
    m = len(b_codes)
    js = np.arange(m + 1)
    prev = js * g
    for i in range(1, len(a_codes) + 1):
        W_row = model.matrix[a_codes[i - 1]][b_codes] if m else None
        V = np.empty(m + 1)
        V[0] = i * g
        if m:
            np.maximum(prev[:-1] + W_row, prev[1:] + g, out=V[1:])
        t = V - g * js
        np.maximum.accumulate(t, out=t)
        prev = t + g * js
    return prev


def _recurse(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    a_off: int,
    b_off: int,
    model: SubstitutionModel,
    pairs: list[tuple[int, int]],
) -> None:
    n, m = len(a_codes), len(b_codes)
    if n == 0 or m == 0:
        return
    if n == 1 or m == 1:
        # Small base case: quadratic memory is O(n + m) here anyway.
        a_str = "ACGTN"
        base = global_align(
            "".join(a_str[c] for c in a_codes),
            "".join(a_str[c] for c in b_codes),
            model,
        )
        pairs.extend((a_off + i, b_off + j) for i, j in base.pairs)
        return
    mid = n // 2
    upper = _score_last_row(a_codes[:mid], b_codes, model)
    lower = _score_last_row(a_codes[mid:][::-1], b_codes[::-1], model)
    split = int(np.argmax(upper + lower[::-1]))
    _recurse(a_codes[:mid], b_codes[:split], a_off, b_off, model, pairs)
    _recurse(
        a_codes[mid:], b_codes[split:], a_off + mid, b_off + split, model, pairs
    )


def hirschberg_align_reference(
    a: str, b: str, model: SubstitutionModel | None = None
) -> Alignment:
    """The classic forward+backward score-splitting Hirschberg.

    Returns *a* co-optimal global alignment in linear space — equal in
    score to :func:`hirschberg_align` but free to pick a different
    co-optimal pair list.  Kept as the score-parity oracle for the
    canonical walker.
    """
    model = model or unit_dna()
    pairs: list[tuple[int, int]] = []
    _recurse(encode(a), encode(b), 0, 0, model, pairs)
    from fragalign.align.pairwise import global_score

    return Alignment(
        score=global_score(a, b, model),
        pairs=tuple(pairs),
        a_interval=(0, len(a)),
        b_interval=(0, len(b)),
    )
