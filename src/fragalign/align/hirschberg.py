"""Hirschberg's linear-space global alignment with traceback.

The O(nm)-memory traceback of :func:`fragalign.align.pairwise.
global_align` is the limiting factor for long conserved regions; the
divide-and-conquer of Hirschberg (1975) recovers the same optimal
aligned pairs in O(n + m) memory and ~2× the time: split ``a`` in the
middle, find the optimal crossing column of ``b`` by combining a
forward score row with a backward score row, recurse on the halves.
"""

from __future__ import annotations

import numpy as np

from fragalign.align.pairwise import Alignment, global_align
from fragalign.align.scoring_matrices import SubstitutionModel, encode, unit_dna

__all__ = ["hirschberg_align"]


def _score_last_row(
    a_codes: np.ndarray, b_codes: np.ndarray, model: SubstitutionModel
) -> np.ndarray:
    """Final NW DP row for a vs b (linear gap), O(m) memory."""
    g = model.gap
    m = len(b_codes)
    js = np.arange(m + 1)
    prev = js * g
    for i in range(1, len(a_codes) + 1):
        W_row = model.matrix[a_codes[i - 1]][b_codes] if m else None
        V = np.empty(m + 1)
        V[0] = i * g
        if m:
            np.maximum(prev[:-1] + W_row, prev[1:] + g, out=V[1:])
        t = V - g * js
        np.maximum.accumulate(t, out=t)
        prev = t + g * js
    return prev


def _recurse(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    a_off: int,
    b_off: int,
    model: SubstitutionModel,
    pairs: list[tuple[int, int]],
) -> None:
    n, m = len(a_codes), len(b_codes)
    if n == 0 or m == 0:
        return
    if n == 1 or m == 1:
        # Small base case: quadratic memory is O(n + m) here anyway.
        a_str = "ACGTN"
        base = global_align(
            "".join(a_str[c] for c in a_codes),
            "".join(a_str[c] for c in b_codes),
            model,
        )
        pairs.extend((a_off + i, b_off + j) for i, j in base.pairs)
        return
    mid = n // 2
    upper = _score_last_row(a_codes[:mid], b_codes, model)
    lower = _score_last_row(a_codes[mid:][::-1], b_codes[::-1], model)
    split = int(np.argmax(upper + lower[::-1]))
    _recurse(a_codes[:mid], b_codes[:split], a_off, b_off, model, pairs)
    _recurse(
        a_codes[mid:], b_codes[split:], a_off + mid, b_off + split, model, pairs
    )


def hirschberg_align(
    a: str, b: str, model: SubstitutionModel | None = None
) -> Alignment:
    """Optimal global alignment in linear space.

    Equal in score to :func:`global_align` (test invariant); the pair
    list may differ among co-optimal alignments.
    """
    model = model or unit_dna()
    pairs: list[tuple[int, int]] = []
    _recurse(encode(a), encode(b), 0, 0, model, pairs)
    from fragalign.align.pairwise import global_score

    return Alignment(
        score=global_score(a, b, model),
        pairs=tuple(pairs),
        a_interval=(0, len(a)),
        b_interval=(0, len(b)),
    )
