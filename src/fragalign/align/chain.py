"""Max-weight chain ("free-gap") dynamic programming.

This is the computational heart of the paper's ``P_score``
(Definition 4): padding both sites with the zero-scoring symbol ⊥ makes
the optimal padded alignment equal to the maximum-weight *chain* of
cells in the |s|×|t| weight matrix W, where W[i, j] = σ(s_i, t_j) and a
chain is a set of cells strictly increasing in both coordinates.
Unselected symbols pair with ⊥ for free, so gaps cost nothing.

The recurrence is

    C[i][j] = max(C[i-1][j], C[i][j-1], C[i-1][j-1] + W[i-1][j-1])

with C[0][*] = C[*][0] = 0.  Because the row update is monotone it
collapses to a prefix maximum, giving a fully vectorized NumPy kernel
(two elementwise ops + one ``maximum.accumulate`` per row) — see the
"vectorizing for loops" guidance this repo follows for hot DP loops.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "chain_score_reference",
    "chain_score",
    "chain_table",
    "chain_score_with_pairs",
]


def chain_score_reference(weights: np.ndarray) -> float:
    """Pure-Python reference for :func:`chain_score`.

    Kept deliberately simple; used as the oracle in unit and property
    tests and as the scalar kernel in GIL-demonstration benchmarks.
    """
    W = np.asarray(weights, dtype=float)
    if W.ndim != 2:
        raise ValueError("weight matrix must be 2-D")
    n, m = W.shape
    prev = [0.0] * (m + 1)
    for i in range(n):
        cur = [0.0] * (m + 1)
        row = W[i]
        for j in range(1, m + 1):
            best = prev[j]
            diag = prev[j - 1] + row[j - 1]
            if diag > best:
                best = diag
            if cur[j - 1] > best:
                best = cur[j - 1]
            cur[j] = best
        prev = cur
    return float(prev[m])


def chain_score(weights: np.ndarray) -> float:
    """Maximum-weight chain score of ``weights`` (vectorized).

    Empty chains are allowed, so the result is always ≥ 0; negative
    entries are simply never selected unless they enable nothing (they
    cannot — chains have no connectivity constraint), hence they are
    never selected at all.
    """
    W = np.asarray(weights, dtype=float)
    if W.ndim != 2:
        raise ValueError("weight matrix must be 2-D")
    n, m = W.shape
    if n == 0 or m == 0:
        return 0.0
    prev = np.zeros(m + 1)
    for i in range(n):
        # candidates: extend diagonally into column j, or keep prev[j];
        # the left-neighbour dependency is the prefix maximum.
        diag = prev[:-1] + W[i]
        np.maximum(prev[1:], diag, out=diag)
        np.maximum.accumulate(diag, out=diag)
        prev[1:] = diag
    return float(prev[m])


def chain_table(weights: np.ndarray) -> np.ndarray:
    """Full (n+1)×(m+1) DP table for traceback; C[n, m] is the score."""
    W = np.asarray(weights, dtype=float)
    n, m = W.shape
    C = np.zeros((n + 1, m + 1))
    for i in range(1, n + 1):
        diag = C[i - 1, :-1] + W[i - 1]
        np.maximum(C[i - 1, 1:], diag, out=diag)
        np.maximum.accumulate(diag, out=diag)
        C[i, 1:] = diag
    return C


def chain_score_with_pairs(
    weights: np.ndarray,
) -> tuple[float, list[tuple[int, int]]]:
    """Score plus one optimal chain as a list of (row, col) cells.

    The traceback prefers skipping rows/columns over taking pairs with
    non-positive weight, so the returned chain contains only cells that
    strictly contribute (each selected weight > 0 unless the optimum is
    exactly 0, in which case the chain is empty).
    """
    W = np.asarray(weights, dtype=float)
    n, m = W.shape
    C = chain_table(W)
    pairs: list[tuple[int, int]] = []
    i, j = n, m
    while i > 0 and j > 0:
        if C[i, j] == C[i - 1, j]:
            i -= 1
        elif C[i, j] == C[i, j - 1]:
            j -= 1
        else:
            pairs.append((i - 1, j - 1))
            i -= 1
            j -= 1
    pairs.reverse()
    return float(C[n, m]), pairs


def chain_pairs_scores(
    left: Sequence, right: Sequence, score
) -> np.ndarray:
    """Build the weight matrix W[i, j] = score(left[i], right[j]).

    Convenience for callers holding symbol sequences plus a scoring
    callable rather than a precomputed matrix.
    """
    n, m = len(left), len(right)
    W = np.empty((n, m))
    for i, a in enumerate(left):
        for j, b in enumerate(right):
            W[i, j] = score(a, b)
    return W
