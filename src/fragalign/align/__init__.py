"""Alignment substrate: chain DP (P_score kernel), pairwise nucleotide
alignment (linear and affine gaps, linear-space traceback),
blocked-wavefront parallel DP, incremental all-intervals DP.
"""

from fragalign.align.affine import (
    affine_global_score,
    affine_global_score_reference,
)
from fragalign.align.chain import (
    chain_pairs_scores,
    chain_score,
    chain_score_reference,
    chain_score_with_pairs,
    chain_table,
)
from fragalign.align.hirschberg import hirschberg_align
from fragalign.align.interval_dp import (
    all_interval_chain_scores,
    all_interval_chain_scores_parallel,
    all_interval_chain_scores_reference,
)
from fragalign.align.pairwise import (
    Alignment,
    banded_align,
    banded_align_batch,
    banded_global_score,
    banded_global_score_reference,
    banded_scores_batch,
    get_prefix_max_mode,
    global_align,
    global_align_batch,
    global_score,
    global_score_reference,
    global_scores_batch,
    local_align,
    local_align_batch,
    local_score,
    local_score_reference,
    local_scores_batch,
    overlap_align,
    overlap_align_batch,
    overlap_score,
    overlap_score_reference,
    overlap_scores_batch,
    set_prefix_max_mode,
)
from fragalign.align.scoring_matrices import (
    SubstitutionModel,
    encode,
    transition_transversion,
    unit_dna,
)
from fragalign.align.wavefront import nw_score_wavefront

__all__ = [
    "affine_global_score",
    "affine_global_score_reference",
    "hirschberg_align",
    "chain_pairs_scores",
    "chain_score",
    "chain_score_reference",
    "chain_score_with_pairs",
    "chain_table",
    "all_interval_chain_scores",
    "all_interval_chain_scores_parallel",
    "all_interval_chain_scores_reference",
    "Alignment",
    "banded_align",
    "banded_align_batch",
    "banded_global_score",
    "banded_global_score_reference",
    "banded_scores_batch",
    "get_prefix_max_mode",
    "global_align",
    "global_align_batch",
    "global_score",
    "global_score_reference",
    "global_scores_batch",
    "local_align",
    "local_align_batch",
    "local_score",
    "local_score_reference",
    "local_scores_batch",
    "overlap_align",
    "overlap_align_batch",
    "overlap_score",
    "overlap_score_reference",
    "overlap_scores_batch",
    "set_prefix_max_mode",
    "SubstitutionModel",
    "encode",
    "transition_transversion",
    "unit_dna",
    "nw_score_wavefront",
]
