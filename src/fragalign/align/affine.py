"""Affine-gap (Gotoh) alignment: reference oracles + thin wrappers.

The *production* affine path is the batched three-frontier kernel
family in :mod:`fragalign.align.pairwise` (``affine_scores_batch`` and
friends — all four modes, score and align, packed direction codes).
This module keeps two things:

* the **parity oracles** — transparent per-cell Python DPs
  (:func:`affine_score_reference` / :func:`affine_align_reference`,
  plus the long-standing :func:`affine_global_score_reference`) that
  implement exactly the same recurrences *and tie orders* as the
  kernels, so the randomized cross-parity suite can require
  alignment-for-alignment agreement on integer models;
* thin scalar wrappers (:func:`affine_global_score`,
  :func:`affine_global_align`) that are the batch kernels at batch
  size 1 — there is one production code path.

Gotoh's three-state DP (match M, gap-in-b X consuming ``a``,
gap-in-a Y consuming ``b``) charges ``open + (k-1)·extend`` for a
k-long gap; a direct X↔Y switch pays ``open`` again:

    M[i,j] = max(M, X, Y)[i-1, j-1] + s(i, j)
    X[i,j] = max(max(M, Y)[i-1, j] + open, X[i-1, j] + extend)
    Y[i,j] = max(max(M, X)[i, j-1] + open, Y[i, j-1] + extend)

Tie orders everywhere (shared with the kernels' direction codes):
diagonal sources prefer M, then X, then Y; gap states prefer opening
from M, then opening from the other gap state, then extending — all
"beats" are strict comparisons.
"""

from __future__ import annotations

from fragalign.align.pairwise import (
    Alignment,
    _affine_empty,
    _check_band,
    affine_align_batch,
    affine_scores_batch,
    check_affine_gaps,
)
from fragalign.align.scoring_matrices import SubstitutionModel, encode, unit_dna

__all__ = [
    "affine_global_score",
    "affine_global_align",
    "affine_global_score_reference",
    "affine_score_reference",
    "affine_align_reference",
]

_NEG = -1e30


def affine_global_score(
    a: str,
    b: str,
    model: SubstitutionModel | None = None,
    open_: float = -4.0,
    extend: float = -1.0,
) -> float:
    """Gotoh global alignment score — the batch kernel at batch 1."""
    return float(
        affine_scores_batch([(a, b)], model, gap_open=open_, gap_extend=extend, chunk=1)[0]
    )


def affine_global_align(
    a: str,
    b: str,
    model: SubstitutionModel | None = None,
    open_: float = -4.0,
    extend: float = -1.0,
) -> Alignment:
    """Gotoh global alignment with traceback — the batch kernel at batch 1."""
    return affine_align_batch(
        [(a, b)], model, gap_open=open_, gap_extend=extend, chunk=1
    )[0]


def affine_global_score_reference(
    a: str,
    b: str,
    model: SubstitutionModel | None = None,
    open_: float = -4.0,
    extend: float = -1.0,
) -> float:
    """Scalar Gotoh — the historical oracle for the global kernel."""
    return affine_score_reference(a, b, model, open_, extend, mode="global")


def _affine_tables(
    a: str,
    b: str,
    model: SubstitutionModel,
    open_: float,
    ext: float,
    mode: str,
    band: int | None,
):
    """Per-cell Gotoh tables for any mode; returns (M, X, Y, W, stop).

    ``stop[i][j]`` is only meaningful for local mode (the M clamp won).
    Out-of-band cells stay at ``_NEG`` when ``band`` is set.
    """
    W = model.pair_matrix(encode(a), encode(b))
    n, m = len(a), len(b)
    M = [[_NEG] * (m + 1) for _ in range(n + 1)]
    X = [[_NEG] * (m + 1) for _ in range(n + 1)]
    Y = [[_NEG] * (m + 1) for _ in range(n + 1)]
    stop = [[False] * (m + 1) for _ in range(n + 1)]
    local = mode == "local"
    overlap = mode == "overlap"

    def in_band(i: int, j: int) -> bool:
        return band is None or abs(j - i) <= band

    if local:
        for j in range(m + 1):
            M[0][j] = 0.0
    else:
        M[0][0] = 0.0
        for j in range(1, m + 1):
            if in_band(0, j):
                Y[0][j] = open_ + (j - 1) * ext
    for i in range(1, n + 1):
        if local or overlap:
            M[i][0] = 0.0  # fresh (local) / free (overlap) start
        elif in_band(i, 0):
            X[i][0] = open_ + (i - 1) * ext
        for j in range(1, m + 1):
            if not in_band(i, j):
                continue
            bp = max(M[i - 1][j - 1], X[i - 1][j - 1], Y[i - 1][j - 1])
            mv = bp + W[i - 1, j - 1]
            if local:
                if mv <= 0.0:
                    mv = 0.0
                    stop[i][j] = True
            M[i][j] = mv
            X[i][j] = max(max(M[i - 1][j], Y[i - 1][j]) + open_, X[i - 1][j] + ext)
            Y[i][j] = max(max(M[i][j - 1], X[i][j - 1]) + open_, Y[i][j - 1] + ext)
    return M, X, Y, W, stop


def affine_score_reference(
    a: str,
    b: str,
    model: SubstitutionModel | None = None,
    open_: float = -4.0,
    extend: float = -1.0,
    mode: str = "global",
    band: int | None = None,
) -> float:
    """Per-cell Gotoh score for any mode — the kernels' parity oracle."""
    model = model or unit_dna()
    open_, ext = check_affine_gaps(open_, extend)
    n, m = len(a), len(b)
    if mode == "banded":
        band = _check_band(n, m, band)
        mode = "global"
    else:
        band = None
    if n == 0 or m == 0:
        return _affine_empty(n, m, open_, ext, mode)[0]
    M, X, Y, _, _ = _affine_tables(a, b, model, open_, ext, mode, band)
    if mode == "local":
        return max(max(row) for row in M)
    if mode == "overlap":
        return max(max(M[n][j], X[n][j], Y[n][j]) for j in range(m + 1))
    return float(max(M[n][m], X[n][m], Y[n][m]))


def affine_align_reference(
    a: str,
    b: str,
    model: SubstitutionModel | None = None,
    open_: float = -4.0,
    extend: float = -1.0,
    mode: str = "global",
    band: int | None = None,
) -> Alignment:
    """Per-cell Gotoh alignment for any mode, with the kernels' exact
    tie orders — the oracle the cross-parity suite compares tracebacks
    against (alignment-for-alignment on integer models)."""
    model = model or unit_dna()
    open_, ext = check_affine_gaps(open_, extend)
    n, m = len(a), len(b)
    if mode == "banded":
        band = _check_band(n, m, band)
        table_mode = "global"
    else:
        band = None
        table_mode = mode
    if n == 0 or m == 0:
        score, ai, bi = _affine_empty(n, m, open_, ext, table_mode)
        return Alignment(score, (), ai, bi)
    M, X, Y, W, stop = _affine_tables(a, b, model, open_, ext, table_mode, band)

    def end_state(i: int, j: int) -> int:
        best = max(M[i][j], X[i][j], Y[i][j])
        if M[i][j] == best:
            return 0
        if X[i][j] == best:
            return 1
        return 2

    if table_mode == "local":
        best, ei, ej = 0.0, 0, 0
        for i in range(1, n + 1):
            for j in range(1, m + 1):
                if M[i][j] > best:
                    best, ei, ej = M[i][j], i, j
        score, state = best, 0
    elif table_mode == "overlap":
        ej = max(
            range(m + 1), key=lambda j: (max(M[n][j], X[n][j], Y[n][j]), -j)
        )
        ei = n
        score = max(M[n][ej], X[n][ej], Y[n][ej])
        state = end_state(n, ej)
    else:
        ei, ej = n, m
        score = max(M[n][m], X[n][m], Y[n][m])
        state = end_state(n, m)

    i, j = ei, ej
    pairs: list[tuple[int, int]] = []
    while i > 0 and j > 0:
        if state == 0:
            if table_mode == "local" and stop[i][j]:
                break
            pairs.append((i - 1, j - 1))
            # Diagonal source, tie order M > X > Y (strict beats).
            mv, xv, yv = M[i - 1][j - 1], X[i - 1][j - 1], Y[i - 1][j - 1]
            if yv > max(mv, xv):
                state = 2
            elif xv > mv:
                state = 1
            else:
                state = 0
            i -= 1
            j -= 1
        elif state == 1:
            # Extend only if it strictly beat opening; open from M
            # unless Y strictly beat it.
            if X[i - 1][j] + ext > max(M[i - 1][j], Y[i - 1][j]) + open_:
                state = 1
            elif Y[i - 1][j] > M[i - 1][j]:
                state = 2
            else:
                state = 0
            i -= 1
        else:
            if Y[i][j - 1] + ext > max(M[i][j - 1], X[i][j - 1]) + open_:
                state = 2
            elif X[i][j - 1] > M[i][j - 1]:
                state = 1
            else:
                state = 0
            j -= 1
    pairs.reverse()
    if table_mode == "local":
        return Alignment(float(score), tuple(pairs), (i, ei), (j, ej))
    if table_mode == "overlap":
        return Alignment(float(score), tuple(pairs), (i, n), (0, ej))
    return Alignment(float(score), tuple(pairs), (0, n), (0, m))
