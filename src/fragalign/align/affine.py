"""Affine-gap global alignment (Gotoh's algorithm).

The linear gap model of :mod:`fragalign.align.pairwise` over-penalizes
long indels, which matters when the genome pipeline scores conserved
regions across species with real indel processes.  Gotoh's three-state
DP (match M, gap-in-a I_a, gap-in-b I_b) costs ``open + k·extend`` for
a k-long gap:

    M[i,j]  = max(M, Ia, Ib)[i-1, j-1] + s(i, j)
    Ia[i,j] = max(M[i-1, j] + open, Ia[i-1, j] + extend)
    Ib[i,j] = max(M[i, j-1] + open, Ib[i, j-1] + extend)

The Ib recurrence is an in-row prefix maximum (same trick as the
linear-gap kernel), so the whole thing stays row-vectorized.
"""

from __future__ import annotations

import numpy as np

from fragalign.align.scoring_matrices import SubstitutionModel, encode, unit_dna

__all__ = ["affine_global_score", "affine_global_score_reference"]

_NEG = -1e30


def affine_global_score_reference(
    a: str,
    b: str,
    model: SubstitutionModel | None = None,
    open_: float = -4.0,
    extend: float = -1.0,
) -> float:
    """Scalar Gotoh — the oracle for the vectorized kernel."""
    model = model or unit_dna()
    W = model.pair_matrix(encode(a), encode(b))
    n, m = len(a), len(b)
    M = [[_NEG] * (m + 1) for _ in range(n + 1)]
    Ia = [[_NEG] * (m + 1) for _ in range(n + 1)]
    Ib = [[_NEG] * (m + 1) for _ in range(n + 1)]
    M[0][0] = 0.0
    for i in range(1, n + 1):
        Ia[i][0] = open_ + (i - 1) * extend
    for j in range(1, m + 1):
        Ib[0][j] = open_ + (j - 1) * extend
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            best_prev = max(M[i - 1][j - 1], Ia[i - 1][j - 1], Ib[i - 1][j - 1])
            M[i][j] = best_prev + W[i - 1, j - 1]
            Ia[i][j] = max(
                max(M[i - 1][j], Ib[i - 1][j]) + open_, Ia[i - 1][j] + extend
            )
            Ib[i][j] = max(
                max(M[i][j - 1], Ia[i][j - 1]) + open_, Ib[i][j - 1] + extend
            )
    return float(max(M[n][m], Ia[n][m], Ib[n][m]))


def affine_global_score(
    a: str,
    b: str,
    model: SubstitutionModel | None = None,
    open_: float = -4.0,
    extend: float = -1.0,
) -> float:
    """Row-vectorized Gotoh global alignment score.

    The Ib in-row dependency collapses to a prefix maximum of
    ``candidate[j] − extend·j``; everything else is elementwise.
    """
    model = model or unit_dna()
    n, m = len(a), len(b)
    if n == 0 and m == 0:
        return 0.0
    if n == 0:
        return open_ + (m - 1) * extend
    if m == 0:
        return open_ + (n - 1) * extend
    W = model.pair_matrix(encode(a), encode(b))
    js = np.arange(m + 1)
    M_prev = np.full(m + 1, _NEG)
    Ia_prev = np.full(m + 1, _NEG)
    Ib_prev = np.full(m + 1, _NEG)
    M_prev[0] = 0.0
    Ib_prev[1:] = open_ + (js[1:] - 1) * extend
    for i in range(1, n + 1):
        M_cur = np.full(m + 1, _NEG)
        Ia_cur = np.empty(m + 1)
        diag = np.maximum(np.maximum(M_prev, Ia_prev), Ib_prev)
        M_cur[1:] = diag[:-1] + W[i - 1]
        np.maximum(
            np.maximum(M_prev, Ib_prev) + open_, Ia_prev + extend, out=Ia_cur
        )
        Ia_cur[0] = open_ + (i - 1) * extend
        # Ib via prefix max: Ib[j] = max over j' < j of
        #   (max(M[j'], Ia[j']) + open + (j - j' - 1)·extend)
        # = extend·j + max prefix of (max(M, Ia)[j'] + open − extend·(j'+1)).
        src = np.maximum(M_cur, Ia_cur) + open_ - extend * (js + 1)
        run = np.empty(m + 1)
        run[0] = _NEG
        np.maximum.accumulate(src[:-1], out=run[1:])
        Ib_cur = run + extend * js
        Ib_cur[0] = _NEG
        M_prev, Ia_prev, Ib_prev = M_cur, Ia_cur, Ib_cur
    return float(max(M_prev[m], Ia_prev[m], Ib_prev[m]))
