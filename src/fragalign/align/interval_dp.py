"""Incremental all-intervals chain DP.

The 1-CSR → ISP reduction (paper §3.4) needs the profit

    p(i, [d, e)) = MS(h_i, m(d, e))

for *every* subinterval [d, e) of the single m-sequence.  Running an
independent chain DP per interval costs O(n·m²·m) per fragment; the
incremental engine below computes all of them in O(n·m²) by fixing the
left endpoint ``d`` and extending ``e`` one column at a time, carrying
the DP frontier ``f`` forward:

    f[i]   = best chain within rows [0, i), cols [d, e)
    g[r]   = f[r] + W[r, e]                (chains ending in column e)
    f'[i]  = max(f[i], max_{r < i} g[r])   (two maximum.accumulate)

This is the "incremental DP variant" of the IPPS evaluation; the
parallel version fans left endpoints out over a process pool (the
columns for different ``d`` are independent), standing in for the
paper's cluster run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

__all__ = [
    "all_interval_chain_scores",
    "all_interval_chain_scores_reference",
    "all_interval_chain_scores_parallel",
]


def all_interval_chain_scores_reference(W: np.ndarray) -> np.ndarray:
    """Per-interval chain DP (oracle): S[d, e] = chain score of W[:, d:e]."""
    from fragalign.align.chain import chain_score

    W = np.asarray(W, dtype=float)
    m = W.shape[1]
    S = np.zeros((m + 1, m + 1))
    for d in range(m):
        for e in range(d + 1, m + 1):
            S[d, e] = chain_score(W[:, d:e])
    return S


def _scores_for_left_endpoints(W: np.ndarray, ds: range) -> np.ndarray:
    """Rows ``ds`` of the interval-score table, incrementally."""
    n, m = W.shape
    out = np.zeros((len(ds), m + 1))
    for row, d in enumerate(ds):
        f = np.zeros(n + 1)
        for e in range(d, m):
            g = f[:-1] + W[:, e]
            np.maximum.accumulate(g, out=g)
            np.maximum(f[1:], g, out=f[1:])
            # f is nondecreasing by construction, so f[n] is the score.
            out[row, e + 1] = f[n]
    return out


def all_interval_chain_scores(W: np.ndarray) -> np.ndarray:
    """S[d, e] = max-weight chain of W restricted to columns [d, e).

    O(n·m²) total; equals the reference implementation exactly (test
    invariant).  ``S`` is (m+1)×(m+1), upper-triangular, with S[d, d]=0.

    All left endpoints are advanced together: ``F[d]`` holds the DP
    frontier for left endpoint ``d``, and extending every active
    frontier to column ``e`` is one batched sweep (the same ops as
    :func:`_scores_for_left_endpoints` per row, but m python-level
    iterations total instead of m²/2).
    """
    W = np.asarray(W, dtype=float)
    if W.ndim != 2:
        raise ValueError("weight matrix must be 2-D (rows x columns)")
    n, m = W.shape
    S = np.zeros((m + 1, m + 1))
    if W.size == 0:
        return S
    F = np.zeros((m, n + 1))
    for e in range(m):
        A = F[: e + 1]
        G = A[:, :-1] + W[:, e]
        np.maximum.accumulate(G, axis=1, out=G)
        np.maximum(A[:, 1:], G, out=A[:, 1:])
        S[: e + 1, e + 1] = A[:, n]
    return S


# Worker-process global: the weight matrix is broadcast once through
# the pool initializer instead of being pickled into every task (the
# message-passing pattern an MPI implementation would use: one bcast,
# then index-only work assignments).
_WORKER_W: np.ndarray | None = None


def _init_worker(W: np.ndarray) -> None:
    global _WORKER_W
    _WORKER_W = W


def _parallel_worker(span: tuple[int, int]) -> tuple[int, int, np.ndarray]:
    lo, hi = span
    assert _WORKER_W is not None
    return lo, hi, _scores_for_left_endpoints(_WORKER_W, range(lo, hi))


def all_interval_chain_scores_parallel(
    W: np.ndarray, workers: int = 2, chunk: int | None = None
) -> np.ndarray:
    """Process-pool version of :func:`all_interval_chain_scores`.

    Left endpoints are independent, so the table is computed in
    contiguous ``d``-chunks by worker processes.  Work per left
    endpoint shrinks linearly with ``d`` (intervals get shorter), so
    chunks are interleaved in a cheap static load-balancing scheme:
    expensive (small d) chunks alternate with cheap (large d) ones.
    """
    W = np.asarray(W, dtype=float)
    m = W.shape[1]
    S = np.zeros((m + 1, m + 1))
    if W.size == 0:
        return S
    if workers <= 1 or m < 4:
        S[:m, :] = _scores_for_left_endpoints(W, range(m))
        return S
    chunk = chunk or max(1, m // (4 * workers))
    tasks = [(lo, min(lo + chunk, m)) for lo in range(0, m, chunk)]
    # Pair expensive (small lo) with cheap (large lo) chunks.
    order = []
    i, j = 0, len(tasks) - 1
    while i <= j:
        order.append(tasks[i])
        if i != j:
            order.append(tasks[j])
        i += 1
        j -= 1
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(W,)
    ) as pool:
        for lo, hi, rows in pool.map(_parallel_worker, order):
            S[lo:hi, :] = rows
    return S
