"""Blocked wavefront parallelization of the global-alignment DP.

The DP table is tiled into rectangular blocks; block (p, q) depends
only on blocks (p-1, q), (p, q-1) and (p-1, q-1), so all blocks on an
anti-diagonal *wave* p+q = w are independent and can run concurrently.
Each block consumes its top boundary row and left boundary column and
emits its bottom row and right column — the shared-nothing hand-off
that an MPI implementation would send between ranks.  This module is
the stand-in for the paper's (IPPS 2002) cluster evaluation:

* ``executor="serial"`` — single process, vectorized kernel;
* ``executor="threads"`` — demonstrates the GIL wall for the pure
  Python kernel and the partial relief NumPy's GIL-releasing kernels
  provide;
* ``executor="processes"`` — true multi-core scaling via
  ``ProcessPoolExecutor`` (the documented workaround for parallel DP
  in CPython).
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Literal

import numpy as np

from fragalign.align.scoring_matrices import SubstitutionModel, encode, unit_dna

__all__ = ["nw_score_wavefront"]

ExecutorKind = Literal["serial", "threads", "processes"]
Kernel = Literal["numpy", "python"]


def _block_numpy(
    W: np.ndarray, gap: float, top: np.ndarray, left: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized NW on one block.

    ``top`` has length (block cols + 1) and includes the corner;
    ``left`` has length (block rows) — the column just left of the
    block, below the corner.  Returns (bottom row incl. corner-left
    value, right column) so neighbours can proceed.
    """
    nb, mb = W.shape
    js = np.arange(mb + 1)
    right = np.empty(nb)
    prev = top.astype(float, copy=True)
    for i in range(nb):
        V = np.empty(mb + 1)
        V[0] = left[i]
        np.maximum(prev[:-1] + W[i], prev[1:] + gap, out=V[1:])
        t = V - gap * js
        np.maximum.accumulate(t, out=t)
        prev = t + gap * js
        right[i] = prev[-1]
    return prev, right


def _block_python(
    W: np.ndarray, gap: float, top: np.ndarray, left: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell Python kernel (holds the GIL): the thread-scaling foil."""
    nb, mb = W.shape
    right = np.empty(nb)
    prev = list(map(float, top))
    for i in range(nb):
        cur = [0.0] * (mb + 1)
        cur[0] = float(left[i])
        wrow = W[i]
        for j in range(1, mb + 1):
            cur[j] = max(
                prev[j - 1] + wrow[j - 1],
                prev[j] + gap,
                cur[j - 1] + gap,
            )
        prev = cur
        right[i] = cur[mb]
    return np.asarray(prev), right


def _block_worker(args) -> tuple[int, int, np.ndarray, np.ndarray]:
    """Module-level worker so it pickles for process pools."""
    p, q, a_codes, b_codes, matrix, gap, top, left, kernel = args
    W = matrix[np.ix_(a_codes, b_codes)]
    if kernel == "python":
        bottom, right = _block_python(W, gap, top, left)
    else:
        bottom, right = _block_numpy(W, gap, top, left)
    return p, q, bottom, right


def nw_score_wavefront(
    a: str,
    b: str,
    model: SubstitutionModel | None = None,
    *,
    block: int = 512,
    executor: ExecutorKind = "serial",
    workers: int | None = None,
    kernel: Kernel = "numpy",
    pool: Executor | None = None,
) -> float:
    """Needleman–Wunsch score via blocked wavefront scheduling.

    Exact — identical to :func:`fragalign.align.pairwise.global_score`
    for every executor/kernel combination (a standing test invariant);
    only the schedule changes.

    ``pool`` lets a caller lend an already-running executor (e.g. the
    engine's persistent process pool) instead of paying pool start-up
    per call; a lent pool is never shut down here.
    """
    model = model or unit_dna()
    if block < 1:
        raise ValueError("block size must be positive")
    a_codes = encode(a)
    b_codes = encode(b)
    gap = model.gap
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return (n + m) * gap

    row_edges = list(range(0, n, block)) + [n]
    col_edges = list(range(0, m, block)) + [m]
    P, Q = len(row_edges) - 1, len(col_edges) - 1

    # bottoms[p][q]: H[r1-1, c0-1 .. c1-1]; rights[p][q]: H[r0..r1-1, c1-1].
    bottoms: dict[tuple[int, int], np.ndarray] = {}
    rights: dict[tuple[int, int], np.ndarray] = {}

    def boundary_for(p: int, q: int) -> tuple[np.ndarray, np.ndarray]:
        r0, r1 = row_edges[p], row_edges[p + 1]
        c0, c1 = col_edges[q], col_edges[q + 1]
        if p == 0:
            top = gap * np.arange(c0, c1 + 1, dtype=float)
        else:
            top = bottoms[(p - 1, q)]
        if q == 0:
            left = gap * np.arange(r0 + 1, r1 + 1, dtype=float)
        else:
            left = rights[(p, q - 1)]
        return top, left

    owns_pool = pool is None
    try:
        if owns_pool:
            if executor == "threads":
                pool = ThreadPoolExecutor(max_workers=workers)
            elif executor == "processes":
                pool = ProcessPoolExecutor(max_workers=workers)
        for wave in range(P + Q - 1):
            tasks = []
            for p in range(max(0, wave - Q + 1), min(P, wave + 1)):
                q = wave - p
                r0, r1 = row_edges[p], row_edges[p + 1]
                c0, c1 = col_edges[q], col_edges[q + 1]
                top, left = boundary_for(p, q)
                tasks.append(
                    (
                        p,
                        q,
                        a_codes[r0:r1],
                        b_codes[c0:c1],
                        model.matrix,
                        gap,
                        top,
                        left,
                        kernel,
                    )
                )
            if pool is None:
                results = map(_block_worker, tasks)
            else:
                results = pool.map(_block_worker, tasks)
            for p, q, bottom, right in results:
                bottoms[(p, q)] = bottom
                rights[(p, q)] = right
                # Free boundaries that no future wave reads.
                bottoms.pop((p - 1, q), None)
                rights.pop((p, q - 1), None)
    finally:
        if owns_pool and pool is not None:
            pool.shutdown()
    return float(bottoms[(P - 1, Q - 1)][-1])
