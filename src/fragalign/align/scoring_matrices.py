"""Nucleotide substitution models for the alignment substrate.

Sequences are handled as strings over ``ACGTN`` and are encoded into
small integer codes so the DP kernels can gather substitution scores
with NumPy fancy indexing instead of per-cell Python calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SubstitutionModel", "unit_dna", "transition_transversion", "encode"]

_ALPHABET = "ACGTN"
_CODE = {c: i for i, c in enumerate(_ALPHABET)}
# Purines A, G (codes 0, 2); pyrimidines C, T (codes 1, 3).
_PURINE = {0, 2}


def encode(seq: str) -> np.ndarray:
    """Encode a DNA string into uint8 codes (unknown chars become N)."""
    out = np.empty(len(seq), dtype=np.uint8)
    for i, c in enumerate(seq.upper()):
        out[i] = _CODE.get(c, 4)
    return out


@dataclass(frozen=True)
class SubstitutionModel:
    """A 5×5 substitution score matrix over A, C, G, T, N plus gap.

    ``matrix[i, j]`` scores aligning code ``i`` against code ``j``;
    ``gap`` is the (linear) per-symbol gap penalty, conventionally
    negative.  Instances are immutable so they can be shared freely
    across worker processes.
    """

    matrix: np.ndarray = field(repr=False)
    gap: float

    def __post_init__(self) -> None:
        m = np.asarray(self.matrix, dtype=float)
        if m.shape != (5, 5):
            raise ValueError("substitution matrix must be 5x5 (ACGTN)")
        if not np.allclose(m, m.T):
            raise ValueError("substitution matrix must be symmetric")
        object.__setattr__(self, "matrix", m)

    def score(self, a: str, b: str) -> float:
        """Score one character pair (slow path, for tests/examples)."""
        return float(self.matrix[_CODE.get(a.upper(), 4), _CODE.get(b.upper(), 4)])

    def pair_matrix(self, a_codes: np.ndarray, b_codes: np.ndarray) -> np.ndarray:
        """W[i, j] = score of a[i] vs b[j], via a single fancy-index gather."""
        return self.matrix[np.ix_(a_codes, b_codes)]


def unit_dna(match: float = 1.0, mismatch: float = -1.0, gap: float = -1.0) -> SubstitutionModel:
    """The classic unit-cost model; N scores 0 against everything."""
    m = np.full((5, 5), mismatch)
    np.fill_diagonal(m, match)
    m[4, :] = 0.0
    m[:, 4] = 0.0
    return SubstitutionModel(matrix=m, gap=gap)


def transition_transversion(
    match: float = 2.0,
    transition: float = -1.0,
    transversion: float = -2.0,
    gap: float = -2.0,
) -> SubstitutionModel:
    """Biology-flavoured model: transitions (A↔G, C↔T) cost less than
    transversions, mirroring the empirical substitution bias the paper's
    conserved-region alignments would see."""
    m = np.empty((5, 5))
    for i in range(4):
        for j in range(4):
            if i == j:
                m[i, j] = match
            elif (i in _PURINE) == (j in _PURINE):
                m[i, j] = transition
            else:
                m[i, j] = transversion
    m[4, :] = 0.0
    m[:, 4] = 0.0
    return SubstitutionModel(matrix=m, gap=gap)
