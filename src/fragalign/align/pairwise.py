"""Pairwise nucleotide alignment: global, local, overlap, banded.

All score-only kernels are row-vectorized.  With a linear gap penalty
``g`` the in-row dependency ``H[i][j-1] + g`` collapses to a prefix
maximum of ``V[j] - g·j`` (then add ``g·j`` back), so each row is three
NumPy elementwise ops plus one ``maximum.accumulate`` — the same trick
the chain DP uses, generalized to penalized gaps.

The ``*_batch`` kernels extend the row sweep across a whole batch of
same-shape pairs: the DP frontier becomes a (batch, m+1) matrix and
every row costs one set of NumPy ops for the *entire* batch, which is
what makes ``AlignmentEngine.align_many`` fast.

Scalar implementations with traceback are provided for callers that
need the actual aligned pairs (conserved-region discovery, tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from fragalign.align.scoring_matrices import SubstitutionModel, encode, unit_dna

__all__ = [
    "Alignment",
    "global_score",
    "global_score_reference",
    "global_scores_batch",
    "global_align",
    "global_align_batch",
    "local_score",
    "local_score_reference",
    "local_scores_batch",
    "local_align",
    "overlap_score",
    "banded_global_score",
]

_NEG = -1e30  # effectively -inf while staying finite for arithmetic


@dataclass(frozen=True)
class Alignment:
    """An explicit alignment: score plus aligned index pairs.

    ``pairs`` lists (i, j) positions aligned to each other; positions
    absent from the list are aligned to gaps.  ``start``/``end`` bound
    the aligned window in each sequence (useful for local alignments).
    """

    score: float
    pairs: tuple[tuple[int, int], ...]
    a_interval: tuple[int, int]
    b_interval: tuple[int, int]

    def identity(self, a: str, b: str) -> float:
        """Fraction of aligned pairs that are exact character matches."""
        if not self.pairs:
            return 0.0
        hits = sum(1 for i, j in self.pairs if a[i].upper() == b[j].upper())
        return hits / len(self.pairs)


def _pair_matrix(a: str, b: str, model: SubstitutionModel) -> np.ndarray:
    return model.pair_matrix(encode(a), encode(b))


def global_score_reference(a: str, b: str, model: SubstitutionModel | None = None) -> float:
    """Scalar Needleman–Wunsch, the oracle for the vectorized kernels."""
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    prev = [j * g for j in range(m + 1)]
    for i in range(1, n + 1):
        cur = [i * g] + [0.0] * m
        for j in range(1, m + 1):
            cur[j] = max(
                prev[j - 1] + W[i - 1, j - 1],
                prev[j] + g,
                cur[j - 1] + g,
            )
        prev = cur
    return float(prev[m])


def global_score(a: str, b: str, model: SubstitutionModel | None = None) -> float:
    """Needleman–Wunsch score, row-vectorized (score only)."""
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    if n == 0:
        return m * g
    if m == 0:
        return n * g
    js = np.arange(m + 1)
    prev = js * g
    for i in range(1, n + 1):
        # V[j] = best entering cell (i, j) from above or diagonally.
        V = np.empty(m + 1)
        V[0] = i * g
        np.maximum(prev[:-1] + W[i - 1], prev[1:] + g, out=V[1:])
        # Left-extension: H[j] = max_{j' <= j} V[j'] + g*(j - j').
        t = V - g * js
        np.maximum.accumulate(t, out=t)
        prev = t + g * js
    return float(prev[m])


def _global_matrix(W: np.ndarray, g: float) -> np.ndarray:
    """Full Needleman–Wunsch table, row-vectorized."""
    n, m = W.shape
    H = np.empty((n + 1, m + 1))
    H[0] = np.arange(m + 1) * g
    js = np.arange(m + 1)
    for i in range(1, n + 1):
        V = np.empty(m + 1)
        V[0] = i * g
        np.maximum(H[i - 1, :-1] + W[i - 1], H[i - 1, 1:] + g, out=V[1:])
        t = V - g * js
        np.maximum.accumulate(t, out=t)
        H[i] = t + g * js
    return H


def _traceback_global(
    H: np.ndarray, W: np.ndarray, g: float
) -> tuple[tuple[int, int], ...]:
    """Walk back from the corner, preferring diagonal, then up, then left.

    ``ndarray.item`` reads are exact Python floats straight from the
    buffer — the O(n+m) walk never pays for a bulk table conversion.
    """
    n, m = W.shape
    pairs: list[tuple[int, int]] = []
    i, j = n, m
    while i > 0 and j > 0:
        h = H.item(i, j)
        if h == H.item(i - 1, j - 1) + W.item(i - 1, j - 1):
            pairs.append((i - 1, j - 1))
            i -= 1
            j -= 1
        elif h == H.item(i - 1, j) + g:
            i -= 1
        else:
            j -= 1
    pairs.reverse()
    return tuple(pairs)


def global_align(a: str, b: str, model: SubstitutionModel | None = None) -> Alignment:
    """Needleman–Wunsch with traceback (O(nm) memory)."""
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    n, m = len(a), len(b)
    H = _global_matrix(W, model.gap)
    pairs = _traceback_global(H, W, model.gap)
    return Alignment(float(H[n, m]), pairs, (0, n), (0, m))


def _as_codes(seq: str | np.ndarray) -> np.ndarray:
    return seq if isinstance(seq, np.ndarray) else encode(seq)


def _batch_codes(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Stack a batch of same-length pairs into code matrices (B, n), (B, m)."""
    A = np.stack([_as_codes(a) for a, _ in pairs])
    B = np.stack([_as_codes(b) for _, b in pairs])
    return A, B


def _batch_tensor(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel,
) -> np.ndarray:
    """Stack a batch of same-length pairs into the W tensor (B, n, m)."""
    A, B = _batch_codes(pairs)
    return model.matrix[A[:, :, None], B[:, None, :]]


def _global_batch_rows(
    A: np.ndarray, Bm: np.ndarray, matrix: np.ndarray, g: float
) -> np.ndarray:
    """Batched NW row sweep over code matrices; final DP rows (B, m+1).

    Substitution scores are gathered one DP row at a time from ``P``
    (the per-code substitution rows, a (5, B, m) tensor built once per
    batch) instead of materializing the (B, n, m) pair tensor, and the
    sweep reuses preallocated buffers; the working set per row is
    O(B·m) regardless of n.  Elementwise operations (and so results)
    are identical to the per-pair kernel.
    """
    B, n = A.shape
    m = Bm.shape[1]
    P = matrix[:, Bm]  # P[c, b, :] = scores of code c vs b's sequence
    bidx = np.arange(B)
    gjs = g * np.arange(m + 1)
    prev = np.tile(gjs, (B, 1)).astype(float)
    cur = np.empty((B, m + 1))
    t1 = np.empty((B, m))
    t2 = np.empty((B, m))
    for i in range(1, n + 1):
        W_row = P[A[:, i - 1], bidx]
        np.add(prev[:, :-1], W_row, out=t1)
        np.add(prev[:, 1:], g, out=t2)
        cur[:, 0] = i * g
        np.maximum(t1, t2, out=cur[:, 1:])
        np.subtract(cur, gjs, out=cur)
        np.maximum.accumulate(cur, axis=1, out=cur)
        np.add(cur, gjs, out=cur)
        prev, cur = cur, prev
    return prev


def _check_uniform(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]]
) -> tuple[int, int]:
    n, m = len(pairs[0][0]), len(pairs[0][1])
    for a, b in pairs:
        if len(a) != n or len(b) != m:
            raise ValueError(
                "batch kernels need uniform lengths; bucket by shape first "
                "(AlignmentEngine does this automatically)"
            )
    return n, m


def global_scores_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    chunk: int = 64,
) -> np.ndarray:
    """Needleman–Wunsch scores for a batch of same-shape pairs.

    Each pair is (a, b) as strings or pre-encoded uint8 codes; all
    ``a`` must share one length and all ``b`` another.  Identical to
    :func:`global_score` per pair (same elementwise float operations),
    but one Python-level row loop serves the whole batch.  ``chunk``
    bounds how many pairs sweep together (working set, cache locality).
    """
    model = model or unit_dna()
    if not pairs:
        return np.zeros(0)
    n, m = _check_uniform(pairs)
    if n == 0 or m == 0:
        return np.full(len(pairs), (n + m) * model.gap)
    out = np.empty(len(pairs))
    for lo in range(0, len(pairs), chunk):
        A, B = _batch_codes(pairs[lo : lo + chunk])
        out[lo : lo + A.shape[0]] = _global_batch_rows(
            A, B, model.matrix, model.gap
        )[:, m]
    return out


def global_align_batch(
    pairs: Sequence[tuple[str, str]],
    model: SubstitutionModel | None = None,
    chunk: int = 64,
) -> list[Alignment]:
    """Batched Needleman–Wunsch with traceback.

    The DP tables for a chunk of same-shape pairs are filled together
    (one row sweep across the chunk); tracebacks are then walked per
    pair on the shared tensor.  Equals a loop of :func:`global_align`
    exactly — same table values, same tie-breaking.
    """
    model = model or unit_dna()
    if not pairs:
        return []
    n, m = _check_uniform(pairs)
    g = model.gap
    if n == 0 or m == 0:
        return [
            Alignment((n + m) * g, (), (0, n), (0, m)) for _ in pairs
        ]
    js = np.arange(m + 1)
    out: list[Alignment] = []
    for lo in range(0, len(pairs), chunk):
        W = _batch_tensor(pairs[lo : lo + chunk], model)
        B = W.shape[0]
        H = np.empty((B, n + 1, m + 1))
        H[:, 0, :] = js * g
        for i in range(1, n + 1):
            V = np.empty((B, m + 1))
            V[:, 0] = i * g
            np.maximum(
                H[:, i - 1, :-1] + W[:, i - 1, :], H[:, i - 1, 1:] + g, out=V[:, 1:]
            )
            t = V - g * js
            np.maximum.accumulate(t, axis=1, out=t)
            H[:, i, :] = t + g * js
        for k in range(B):
            pairs_k = _traceback_global(H[k], W[k], g)
            out.append(Alignment(float(H[k, n, m]), pairs_k, (0, n), (0, m)))
    return out


def local_score(a: str, b: str, model: SubstitutionModel | None = None) -> float:
    """Smith–Waterman score, row-vectorized (score only)."""
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return 0.0
    js = np.arange(m + 1)
    prev = np.zeros(m + 1)
    best = 0.0
    for i in range(1, n + 1):
        V = np.empty(m + 1)
        V[0] = 0.0
        np.maximum(prev[:-1] + W[i - 1], prev[1:] + g, out=V[1:])
        np.maximum(V, 0.0, out=V)
        t = V - g * js
        np.maximum.accumulate(t, out=t)
        prev = t + g * js
        np.maximum(prev, 0.0, out=prev)
        best = max(best, float(prev.max()))
    return best


def local_score_reference(a: str, b: str, model: SubstitutionModel | None = None) -> float:
    """Scalar Smith–Waterman, the oracle for the vectorized kernels."""
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    prev = [0.0] * (m + 1)
    best = 0.0
    for i in range(1, n + 1):
        cur = [0.0] * (m + 1)
        for j in range(1, m + 1):
            cur[j] = max(
                0.0,
                prev[j - 1] + W[i - 1, j - 1],
                prev[j] + g,
                cur[j - 1] + g,
            )
            if cur[j] > best:
                best = cur[j]
        prev = cur
    return best


def local_scores_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    chunk: int = 64,
) -> np.ndarray:
    """Smith–Waterman scores for a batch of same-shape pairs.

    The batched analogue of :func:`local_score`: one row sweep per DP
    row serves the whole chunk, with the zero clamp and running best
    applied batch-wide.
    """
    model = model or unit_dna()
    if not pairs:
        return np.zeros(0)
    n, m = _check_uniform(pairs)
    if n == 0 or m == 0:
        return np.zeros(len(pairs))
    g = model.gap
    gjs = g * np.arange(m + 1)
    out = np.empty(len(pairs))
    for lo in range(0, len(pairs), chunk):
        A, Bm = _batch_codes(pairs[lo : lo + chunk])
        B = A.shape[0]
        P = model.matrix[:, Bm]  # per-code substitution rows (5, B, m)
        bidx = np.arange(B)
        prev = np.zeros((B, m + 1))
        best = np.zeros(B)
        cur = np.empty((B, m + 1))
        t1 = np.empty((B, m))
        t2 = np.empty((B, m))
        for i in range(1, n + 1):
            W_row = P[A[:, i - 1], bidx]
            np.add(prev[:, :-1], W_row, out=t1)
            np.add(prev[:, 1:], g, out=t2)
            cur[:, 0] = 0.0
            np.maximum(t1, t2, out=cur[:, 1:])
            np.maximum(cur, 0.0, out=cur)
            np.subtract(cur, gjs, out=cur)
            np.maximum.accumulate(cur, axis=1, out=cur)
            np.add(cur, gjs, out=cur)
            np.maximum(cur, 0.0, out=cur)
            np.maximum(best, cur.max(axis=1), out=best)
            prev, cur = cur, prev
        out[lo : lo + B] = best
    return out


def local_align(a: str, b: str, model: SubstitutionModel | None = None) -> Alignment:
    """Smith–Waterman with traceback; returns the best local alignment."""
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    H = np.zeros((n + 1, m + 1))
    js = np.arange(m + 1)
    for i in range(1, n + 1):
        V = np.empty(m + 1)
        V[0] = 0.0
        np.maximum(H[i - 1, :-1] + W[i - 1], H[i - 1, 1:] + g, out=V[1:])
        np.maximum(V, 0.0, out=V)
        t = V - g * js
        np.maximum.accumulate(t, out=t)
        H[i] = np.maximum(t + g * js, 0.0)
    end = np.unravel_index(int(np.argmax(H)), H.shape)
    i, j = int(end[0]), int(end[1])
    score = float(H[i, j])
    pairs: list[tuple[int, int]] = []
    ei, ej = i, j
    while i > 0 and j > 0 and H[i, j] > 0:
        if H[i, j] == H[i - 1, j - 1] + W[i - 1, j - 1]:
            pairs.append((i - 1, j - 1))
            i -= 1
            j -= 1
        elif H[i, j] == H[i - 1, j] + g:
            i -= 1
        else:
            j -= 1
    pairs.reverse()
    return Alignment(score, tuple(pairs), (i, ei), (j, ej))


def overlap_score(a: str, b: str, model: SubstitutionModel | None = None) -> tuple[float, int, int]:
    """Best suffix(a)–prefix(b) overlap alignment.

    Free leading gaps in ``a`` and free trailing gaps in ``b``: start
    anywhere in ``a``, must start at b[0]; end at a[-1], anywhere in
    ``b``.  Returns (score, a_start, b_end) — the overlap aligns
    a[a_start:] with b[:b_end].  This is the assembler's overlap
    detector.
    """
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return 0.0, n, 0
    js = np.arange(m + 1)
    # Free start in a: first column is 0 for every i.
    H = np.empty((n + 1, m + 1))
    H[0] = js * g
    for i in range(1, n + 1):
        V = np.empty(m + 1)
        V[0] = 0.0
        np.maximum(H[i - 1, :-1] + W[i - 1], H[i - 1, 1:] + g, out=V[1:])
        t = V - g * js
        np.maximum.accumulate(t, out=t)
        H[i] = t + g * js
    b_end = int(np.argmax(H[n]))
    score = float(H[n, b_end])
    # Recover a_start by walking back (score-only callers ignore it).
    i, j = n, b_end
    while j > 0:
        if i > 0 and H[i, j] == H[i - 1, j - 1] + W[i - 1, j - 1]:
            i -= 1
            j -= 1
        elif i > 0 and H[i, j] == H[i - 1, j] + g:
            i -= 1
        else:
            j -= 1
    return score, i, b_end


def banded_global_score(
    a: str, b: str, band: int, model: SubstitutionModel | None = None
) -> float:
    """Needleman–Wunsch restricted to |i - j| ≤ band.

    Exact when the optimal path stays inside the band (always true if
    band ≥ |len(a) - len(b)| + number of indels); a cheap surrogate
    otherwise.  Scalar implementation — the band is narrow by design.
    """
    model = model or unit_dna()
    if band < abs(len(a) - len(b)):
        raise ValueError("band too narrow to connect the corners")
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    prev = {j: j * g for j in range(0, min(m, band) + 1)}
    for i in range(1, n + 1):
        lo = max(0, i - band)
        hi = min(m, i + band)
        cur: dict[int, float] = {}
        for j in range(lo, hi + 1):
            best = _NEG
            if j == 0:
                best = i * g
            if j - 1 in prev:
                best = max(best, prev[j - 1] + W[i - 1, j - 1])
            if j in prev:
                best = max(best, prev[j] + g)
            if j - 1 in cur:
                best = max(best, cur[j - 1] + g)
            cur[j] = best
        prev = cur
    return float(prev[m])
