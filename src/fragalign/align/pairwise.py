"""Pairwise nucleotide alignment: global, local, overlap, banded.

All score-only kernels are row-vectorized.  With a linear gap penalty
``g`` the in-row dependency ``H[i][j-1] + g`` collapses to a prefix
maximum of ``V[j] - g·j`` (then add ``g·j`` back), so each row is three
NumPy elementwise ops plus one ``maximum.accumulate`` — the same trick
the chain DP uses, generalized to penalized gaps.

Scalar implementations with traceback are provided for callers that
need the actual aligned pairs (conserved-region discovery, tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from fragalign.align.scoring_matrices import SubstitutionModel, encode, unit_dna

__all__ = [
    "Alignment",
    "global_score",
    "global_score_reference",
    "global_align",
    "local_score",
    "local_align",
    "overlap_score",
    "banded_global_score",
]

_NEG = -1e30  # effectively -inf while staying finite for arithmetic


@dataclass(frozen=True)
class Alignment:
    """An explicit alignment: score plus aligned index pairs.

    ``pairs`` lists (i, j) positions aligned to each other; positions
    absent from the list are aligned to gaps.  ``start``/``end`` bound
    the aligned window in each sequence (useful for local alignments).
    """

    score: float
    pairs: tuple[tuple[int, int], ...]
    a_interval: tuple[int, int]
    b_interval: tuple[int, int]

    def identity(self, a: str, b: str) -> float:
        """Fraction of aligned pairs that are exact character matches."""
        if not self.pairs:
            return 0.0
        hits = sum(1 for i, j in self.pairs if a[i].upper() == b[j].upper())
        return hits / len(self.pairs)


def _pair_matrix(a: str, b: str, model: SubstitutionModel) -> np.ndarray:
    return model.pair_matrix(encode(a), encode(b))


def global_score_reference(a: str, b: str, model: SubstitutionModel | None = None) -> float:
    """Scalar Needleman–Wunsch, the oracle for the vectorized kernels."""
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    prev = [j * g for j in range(m + 1)]
    for i in range(1, n + 1):
        cur = [i * g] + [0.0] * m
        for j in range(1, m + 1):
            cur[j] = max(
                prev[j - 1] + W[i - 1, j - 1],
                prev[j] + g,
                cur[j - 1] + g,
            )
        prev = cur
    return float(prev[m])


def global_score(a: str, b: str, model: SubstitutionModel | None = None) -> float:
    """Needleman–Wunsch score, row-vectorized (score only)."""
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    if n == 0:
        return m * g
    if m == 0:
        return n * g
    js = np.arange(m + 1)
    prev = js * g
    for i in range(1, n + 1):
        # V[j] = best entering cell (i, j) from above or diagonally.
        V = np.empty(m + 1)
        V[0] = i * g
        np.maximum(prev[:-1] + W[i - 1], prev[1:] + g, out=V[1:])
        # Left-extension: H[j] = max_{j' <= j} V[j'] + g*(j - j').
        t = V - g * js
        np.maximum.accumulate(t, out=t)
        prev = t + g * js
    return float(prev[m])


def global_align(a: str, b: str, model: SubstitutionModel | None = None) -> Alignment:
    """Needleman–Wunsch with traceback (O(nm) memory)."""
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    H = np.empty((n + 1, m + 1))
    H[0] = np.arange(m + 1) * g
    js = np.arange(m + 1)
    for i in range(1, n + 1):
        V = np.empty(m + 1)
        V[0] = i * g
        np.maximum(H[i - 1, :-1] + W[i - 1], H[i - 1, 1:] + g, out=V[1:])
        t = V - g * js
        np.maximum.accumulate(t, out=t)
        H[i] = t + g * js
    pairs: list[tuple[int, int]] = []
    i, j = n, m
    while i > 0 and j > 0:
        if H[i, j] == H[i - 1, j - 1] + W[i - 1, j - 1]:
            pairs.append((i - 1, j - 1))
            i -= 1
            j -= 1
        elif H[i, j] == H[i - 1, j] + g:
            i -= 1
        else:
            j -= 1
    pairs.reverse()
    return Alignment(float(H[n, m]), tuple(pairs), (0, n), (0, m))


def local_score(a: str, b: str, model: SubstitutionModel | None = None) -> float:
    """Smith–Waterman score, row-vectorized (score only)."""
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return 0.0
    js = np.arange(m + 1)
    prev = np.zeros(m + 1)
    best = 0.0
    for i in range(1, n + 1):
        V = np.empty(m + 1)
        V[0] = 0.0
        np.maximum(prev[:-1] + W[i - 1], prev[1:] + g, out=V[1:])
        np.maximum(V, 0.0, out=V)
        t = V - g * js
        np.maximum.accumulate(t, out=t)
        prev = t + g * js
        np.maximum(prev, 0.0, out=prev)
        best = max(best, float(prev.max()))
    return best


def local_align(a: str, b: str, model: SubstitutionModel | None = None) -> Alignment:
    """Smith–Waterman with traceback; returns the best local alignment."""
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    H = np.zeros((n + 1, m + 1))
    js = np.arange(m + 1)
    for i in range(1, n + 1):
        V = np.empty(m + 1)
        V[0] = 0.0
        np.maximum(H[i - 1, :-1] + W[i - 1], H[i - 1, 1:] + g, out=V[1:])
        np.maximum(V, 0.0, out=V)
        t = V - g * js
        np.maximum.accumulate(t, out=t)
        H[i] = np.maximum(t + g * js, 0.0)
    end = np.unravel_index(int(np.argmax(H)), H.shape)
    i, j = int(end[0]), int(end[1])
    score = float(H[i, j])
    pairs: list[tuple[int, int]] = []
    ei, ej = i, j
    while i > 0 and j > 0 and H[i, j] > 0:
        if H[i, j] == H[i - 1, j - 1] + W[i - 1, j - 1]:
            pairs.append((i - 1, j - 1))
            i -= 1
            j -= 1
        elif H[i, j] == H[i - 1, j] + g:
            i -= 1
        else:
            j -= 1
    pairs.reverse()
    return Alignment(score, tuple(pairs), (i, ei), (j, ej))


def overlap_score(a: str, b: str, model: SubstitutionModel | None = None) -> tuple[float, int, int]:
    """Best suffix(a)–prefix(b) overlap alignment.

    Free leading gaps in ``a`` and free trailing gaps in ``b``: start
    anywhere in ``a``, must start at b[0]; end at a[-1], anywhere in
    ``b``.  Returns (score, a_start, b_end) — the overlap aligns
    a[a_start:] with b[:b_end].  This is the assembler's overlap
    detector.
    """
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return 0.0, n, 0
    js = np.arange(m + 1)
    # Free start in a: first column is 0 for every i.
    H = np.empty((n + 1, m + 1))
    H[0] = js * g
    for i in range(1, n + 1):
        V = np.empty(m + 1)
        V[0] = 0.0
        np.maximum(H[i - 1, :-1] + W[i - 1], H[i - 1, 1:] + g, out=V[1:])
        t = V - g * js
        np.maximum.accumulate(t, out=t)
        H[i] = t + g * js
    b_end = int(np.argmax(H[n]))
    score = float(H[n, b_end])
    # Recover a_start by walking back (score-only callers ignore it).
    i, j = n, b_end
    while j > 0:
        if i > 0 and H[i, j] == H[i - 1, j - 1] + W[i - 1, j - 1]:
            i -= 1
            j -= 1
        elif i > 0 and H[i, j] == H[i - 1, j] + g:
            i -= 1
        else:
            j -= 1
    return score, i, b_end


def banded_global_score(
    a: str, b: str, band: int, model: SubstitutionModel | None = None
) -> float:
    """Needleman–Wunsch restricted to |i - j| ≤ band.

    Exact when the optimal path stays inside the band (always true if
    band ≥ |len(a) - len(b)| + number of indels); a cheap surrogate
    otherwise.  Scalar implementation — the band is narrow by design.
    """
    model = model or unit_dna()
    if band < abs(len(a) - len(b)):
        raise ValueError("band too narrow to connect the corners")
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    prev = {j: j * g for j in range(0, min(m, band) + 1)}
    for i in range(1, n + 1):
        lo = max(0, i - band)
        hi = min(m, i + band)
        cur: dict[int, float] = {}
        for j in range(lo, hi + 1):
            best = _NEG
            if j == 0:
                best = i * g
            if j - 1 in prev:
                best = max(best, prev[j - 1] + W[i - 1, j - 1])
            if j in prev:
                best = max(best, prev[j] + g)
            if j - 1 in cur:
                best = max(best, cur[j - 1] + g)
            cur[j] = best
        prev = cur
    return float(prev[m])
