"""Pairwise nucleotide alignment: global, local, overlap, banded.

Kernel design
-------------
Every kernel sweeps the DP row by row with NumPy; two tricks carry the
throughput:

* **Shifted frontier ("f-space").**  A DP row is stored as
  ``F[j] = H[i][j] - g*j - i*g`` (the banded kernel shifts
  per-diagonal).  Under this change of variables the up-move
  ``H[i-1][j] + g`` becomes a plain *view* of the previous frontier,
  the diagonal move folds its constants into a pre-shifted
  substitution gather (``W - 2g``), the ``j = 0`` boundary becomes a
  per-row constant, and the in-row left-extension becomes an
  *unweighted* running maximum — a score row costs one add, one max,
  and one prefix-max.

* **Prefix max behind a switch.**  The left-extension
  ``H[j] = max(V[j], H[j-1] + g)`` collapses to a prefix maximum of
  the shifted frontier.  Two parity-tested implementations sit behind
  :func:`set_prefix_max_mode`: ``"scan"`` (``np.maximum.accumulate``,
  sequential per batch row) and ``"blocked"`` (a two-pass block-local
  accumulate plus a broadcast carry, which turns the scan into
  elementwise maxima that vectorize *across the batch* and wins for
  wide batches).  ``"auto"`` (the default) picks per shape.  Both are
  exact — ``max`` is associative — so results are bit-identical.

Traceback is **table-free**: the align kernels emit one packed uint8
direction code per cell during the forward sweep (2 bits — bit0 "up
beat diag", bit1 "left beat both"; local adds bit2 "stop, cell is 0")
and each pair is recovered by an exact O(n+m) walk over the codes.
No float H table is kept and no float equality is re-tested during
the walk, which removes both the 8x memory cost of the old float
table and the tie-breaking fragility of recompute walks.  Tie order
everywhere: diagonal, then up, then left (then stop).

The ``*_batch`` kernels sweep a whole batch of same-shape pairs in
lockstep: the frontier is a (batch, m+1) matrix and every DP row
costs one set of NumPy ops for the entire batch.  The scalar entry
points (:func:`global_align`, :func:`local_align`, ...) are the batch
kernels at batch size 1, so *every* traceback in the system goes
through the direction-code walk.  The ``*_reference`` functions are
independent per-cell Python oracles for the parity tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from fragalign.align.scoring_matrices import SubstitutionModel, encode, unit_dna

__all__ = [
    "Alignment",
    "global_score",
    "global_score_reference",
    "global_scores_batch",
    "global_align",
    "global_align_batch",
    "local_score",
    "local_score_reference",
    "local_scores_batch",
    "local_align",
    "local_align_batch",
    "overlap_score",
    "overlap_score_reference",
    "overlap_scores_batch",
    "overlap_align",
    "overlap_align_batch",
    "banded_global_score",
    "banded_global_score_reference",
    "banded_scores_batch",
    "banded_align",
    "banded_align_batch",
    "affine_scores_batch",
    "affine_align_batch",
    "affine_local_scores_batch",
    "affine_local_align_batch",
    "affine_overlap_scores_batch",
    "affine_overlap_align_batch",
    "affine_banded_scores_batch",
    "affine_banded_align_batch",
    "check_affine_gaps",
    "set_prefix_max_mode",
    "get_prefix_max_mode",
]

_NEG = -1e30  # effectively -inf while staying finite for arithmetic


@dataclass(frozen=True)
class Alignment:
    """An explicit alignment: score plus aligned index pairs.

    ``pairs`` lists (i, j) positions aligned to each other; positions
    absent from the list are aligned to gaps.  ``start``/``end`` bound
    the aligned window in each sequence (useful for local alignments).
    """

    score: float
    pairs: tuple[tuple[int, int], ...]
    a_interval: tuple[int, int]
    b_interval: tuple[int, int]

    def identity(self, a: str, b: str) -> float:
        """Fraction of aligned pairs that are exact character matches."""
        if not self.pairs:
            return 0.0
        hits = sum(1 for i, j in self.pairs if a[i].upper() == b[j].upper())
        return hits / len(self.pairs)


def _pair_matrix(a: str, b: str, model: SubstitutionModel) -> np.ndarray:
    return model.pair_matrix(encode(a), encode(b))


def _as_codes(seq: str | np.ndarray) -> np.ndarray:
    return seq if isinstance(seq, np.ndarray) else encode(seq)


def _batch_codes(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Stack a batch of same-length pairs into code matrices (B, n), (B, m)."""
    A = np.stack([_as_codes(a) for a, _ in pairs])
    B = np.stack([_as_codes(b) for _, b in pairs])
    return A, B


def _check_uniform(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]]
) -> tuple[int, int]:
    n, m = len(pairs[0][0]), len(pairs[0][1])
    for a, b in pairs:
        if len(a) != n or len(b) != m:
            raise ValueError(
                "batch kernels need uniform lengths; bucket by shape first "
                "(AlignmentEngine does this automatically)"
            )
    return n, m


def _check_band(n: int, m: int, band) -> int:
    """Validate ``band`` once, up front, for an (n, m)-shaped pair."""
    if not isinstance(band, (int, np.integer)) or isinstance(band, bool):
        raise ValueError(f"band must be an integer, got {band!r}")
    if band < 0:
        raise ValueError("band must be non-negative")
    if band < abs(n - m):
        raise ValueError("band too narrow to connect the corners")
    return int(band)


# ---------------------------------------------------------------------------
# Prefix-max switch and the rotating frontier buffers.
# ---------------------------------------------------------------------------

_PREFIX_MAX_MODES = ("auto", "scan", "blocked")
_prefix_max_mode = "auto"
_PM_BLOCK = 8  # block width of the two-pass formulation
_PM_MIN_BATCH = 192  # "auto": blocked only pays off for wide batches


def set_prefix_max_mode(mode: str) -> str:
    """Select the row prefix-max implementation; returns the old mode.

    ``"scan"`` is the sequential ``np.maximum.accumulate``;
    ``"blocked"`` is the two-pass block-local accumulate + broadcast
    carry; ``"auto"`` (default) uses blocked only where measurement
    says it wins — sweeps at least ~200 pairs wide, which the default
    ``chunk=64`` never reaches, so auto engages blocked only when a
    caller also raises the kernel ``chunk``.  The two produce
    bit-identical results (``max`` is associative) — a standing test
    invariant.
    """
    global _prefix_max_mode
    if mode not in _PREFIX_MAX_MODES:
        raise ValueError(
            f"unknown prefix-max mode {mode!r} (expected one of {_PREFIX_MAX_MODES})"
        )
    old, _prefix_max_mode = _prefix_max_mode, mode
    return old


def get_prefix_max_mode() -> str:
    """The currently selected prefix-max mode."""
    return _prefix_max_mode


class _Frontier:
    """Rotating padded row buffers plus the prefix-max strategy.

    Three (B, P) float buffers — ``prev`` (last finished row), ``cur``
    (this row before left-extension), ``acc`` (this row after) — whose
    first ``M`` columns are live; any pad beyond ``M`` exists only for
    the blocked prefix-max and starts at -inf (pad positions sit after
    the live data inside the final block, so block-local maxima never
    leak pad values into live columns, and the final block's carry is
    never consumed).
    """

    __slots__ = ("M", "blocked", "prev", "cur", "acc", "_views", "_tot", "_carry")

    def __init__(self, B: int, M: int) -> None:
        mode = _prefix_max_mode
        self.M = M
        self.blocked = mode == "blocked" or (
            mode == "auto" and B >= _PM_MIN_BATCH and M > 2 * _PM_BLOCK
        )
        if self.blocked:
            nb = -(-M // _PM_BLOCK)
            P = nb * _PM_BLOCK
        else:
            nb, P = 1, M
        self.prev = np.full((B, P), -np.inf)
        self.cur = np.full((B, P), -np.inf)
        self.acc = np.full((B, P), -np.inf)
        if self.blocked:
            self._views = {
                id(buf): buf.reshape(B, nb, _PM_BLOCK)
                for buf in (self.prev, self.cur, self.acc)
            }
            self._tot = np.empty((B, nb))
            self._carry = np.empty((B, nb))

    def prefix_max(self) -> None:
        """``acc[:, :M]`` <- running maxima of ``cur[:, :M]`` (axis 1)."""
        if not self.blocked:
            np.maximum.accumulate(
                self.cur[:, : self.M], axis=1, out=self.acc[:, : self.M]
            )
            return
        cur_v = self._views[id(self.cur)]
        acc_v = self._views[id(self.acc)]
        # Pass 1: block-local running maxima.  Each of the K-1 steps is
        # one elementwise max over the whole (batch, n_blocks) grid —
        # vectorized across the batch, unlike the sequential scan.
        np.copyto(acc_v[:, :, 0], cur_v[:, :, 0])
        for k in range(1, _PM_BLOCK):
            np.maximum(acc_v[:, :, k - 1], cur_v[:, :, k], out=acc_v[:, :, k])
        # Pass 2: carry every block's total into all later blocks.
        np.maximum.accumulate(acc_v[:, :, _PM_BLOCK - 1], axis=1, out=self._tot)
        self._carry[:, 0] = -np.inf
        self._carry[:, 1:] = self._tot[:, :-1]
        np.maximum(acc_v, self._carry[:, :, None], out=acc_v)

    def advance(self) -> None:
        """The accumulated row becomes ``prev``; old ``prev`` is scratch."""
        self.prev, self.acc = self.acc, self.prev


# ---------------------------------------------------------------------------
# Direction codes and the table-free walks.
#
# bit0 (value 1): the up-move strictly beat the diagonal.
# bit1 (value 2): the left-extension strictly beat both.
# bit2 (value 4): local only — the cell was clamped to 0 (stop).
#
# Checking high bits first on the walk reproduces the tie order
# diagonal > up > left (> stop overrides all, matching the scalar
# local walk's ``H > 0`` guard).
# ---------------------------------------------------------------------------


def _walk_global(db: bytes, m: int, i: int, j: int) -> tuple[list[tuple[int, int]], int, int]:
    """Walk direction codes from (i, j) toward the origin.

    ``db`` is the row-major bytes of the (n, m) code matrix for one
    pair.  Returns (pairs in forward order, stop_i, stop_j); the walk
    stops at the first row/column (remaining moves are forced gaps).
    """
    rev: list[tuple[int, int]] = []
    while i > 0 and j > 0:
        c = db[(i - 1) * m + (j - 1)]
        if c >= 2:
            j -= 1
        elif c == 1:
            i -= 1
        else:
            rev.append((i - 1, j - 1))
            i -= 1
            j -= 1
    rev.reverse()
    return rev, i, j


def _walk_local(db: bytes, m: int, i: int, j: int) -> tuple[list[tuple[int, int]], int, int]:
    """Like :func:`_walk_global` but a stop code (bit2) ends the walk."""
    rev: list[tuple[int, int]] = []
    while i > 0 and j > 0:
        c = db[(i - 1) * m + (j - 1)]
        if c >= 4:
            break
        if c >= 2:
            j -= 1
        elif c == 1:
            i -= 1
        else:
            rev.append((i - 1, j - 1))
            i -= 1
            j -= 1
    rev.reverse()
    return rev, i, j


def _pair_bytes(D: np.ndarray, k: int) -> bytes:
    """Row-major bytes of pair ``k``'s code matrix from the (n, B, m)
    direction tensor (one strided copy; bytes indexing is the fastest
    per-step read Python offers)."""
    return D[:, k, :].tobytes()


# ---------------------------------------------------------------------------
# Global (Needleman–Wunsch) and overlap kernels.
#
# f-space: F[j] = H[i][j] - g*j - i*g.  Then
#   diag  H[i-1][j-1] + W  ->  F_prev[j-1] + (W - 2g)
#   up    H[i-1][j] + g    ->  F_prev[j]            (free: a view)
#   left  H[i][j-1] + g    ->  F_cur[j-1]           (unweighted prefix max)
#   H[i][0] = i*g          ->  F[0] = 0             (global)
#   H[i][0] = 0            ->  F[0] = -i*g          (overlap: free start in a)
#   row 0 (H = g*j)        ->  F = 0 everywhere
# ---------------------------------------------------------------------------


def _sweep_global(
    A: np.ndarray,
    Bm: np.ndarray,
    model: SubstitutionModel,
    overlap: bool = False,
    D: np.ndarray | None = None,
    F0: np.ndarray | None = None,
    i0: int = 0,
) -> _Frontier:
    """Forward sweep; final frontier in ``fr.prev``.  Emits direction
    codes into ``D`` ((n, B, m) uint8) when given.

    ``F0`` is an optional initial frontier (f-space, shape (B, m+1)) —
    the checkpoint row a linear-memory walk restarts from; ``i0`` is
    that row's absolute index (the overlap boundary depends on it).
    Defaults reproduce a sweep from row 0.
    """
    g = model.gap
    B, n = A.shape
    m = Bm.shape[1]
    M = m + 1
    P2 = (model.matrix - 2.0 * g)[:, Bm]  # per-code diag rows, pre-shifted
    bidx = np.arange(B)
    fr = _Frontier(B, M)
    fr.prev[:, :M] = 0.0 if F0 is None else F0
    t1 = np.empty((B, m))
    if D is not None:
        up = np.empty((B, m), dtype=bool)
        left = np.empty((B, m), dtype=bool)
        tmp8 = np.empty((B, m), dtype=np.uint8)
    for i in range(1, n + 1):
        prev, cur = fr.prev, fr.cur
        np.add(prev[:, :m], P2[A[:, i - 1], bidx], out=t1)
        up_from = prev[:, 1:M]
        if D is not None:
            np.greater(up_from, t1, out=up)
        cur[:, 0] = -(i0 + i) * g if overlap else 0.0
        np.maximum(t1, up_from, out=cur[:, 1:M])
        fr.prefix_max()
        if D is not None:
            np.greater(fr.acc[:, 1:M], cur[:, 1:M], out=left)
            np.multiply(left.view(np.uint8), 2, out=tmp8)
            np.add(tmp8, up.view(np.uint8), out=D[i - 1])
        fr.advance()
    return fr


def global_score_reference(a: str, b: str, model: SubstitutionModel | None = None) -> float:
    """Scalar Needleman–Wunsch, the oracle for the vectorized kernels."""
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    prev = [j * g for j in range(m + 1)]
    for i in range(1, n + 1):
        cur = [i * g] + [0.0] * m
        for j in range(1, m + 1):
            cur[j] = max(
                prev[j - 1] + W[i - 1, j - 1],
                prev[j] + g,
                cur[j - 1] + g,
            )
        prev = cur
    return float(prev[m])


def global_scores_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    chunk: int = 64,
) -> np.ndarray:
    """Needleman–Wunsch scores for a batch of same-shape pairs.

    Each pair is (a, b) as strings or pre-encoded uint8 codes; all
    ``a`` must share one length and all ``b`` another.  Exact on
    integer-valued models (every operation stays integral in float64);
    ``chunk`` bounds how many pairs sweep together (working set).
    """
    model = model or unit_dna()
    if not pairs:
        return np.zeros(0)
    n, m = _check_uniform(pairs)
    if n == 0 or m == 0:
        return np.full(len(pairs), (n + m) * model.gap)
    g = model.gap
    shift = g * (m + n)
    out = np.empty(len(pairs))
    for lo in range(0, len(pairs), chunk):
        A, B = _batch_codes(pairs[lo : lo + chunk])
        fr = _sweep_global(A, B, model)
        out[lo : lo + A.shape[0]] = fr.prev[:, m] + shift
    return out


def global_score(a: str, b: str, model: SubstitutionModel | None = None) -> float:
    """Needleman–Wunsch score, row-vectorized (score only)."""
    return float(global_scores_batch([(a, b)], model, chunk=1)[0])


def global_align_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    chunk: int = 64,
) -> list[Alignment]:
    """Batched Needleman–Wunsch with table-free traceback.

    One forward sweep per chunk emits the packed direction tensor
    ((n, B, m) uint8 — ~8x smaller than the float H table it
    replaces); each pair is then an exact O(n+m) code walk.  Equals a
    loop of :func:`global_align` — same scores, same tie-breaking.
    """
    model = model or unit_dna()
    if not pairs:
        return []
    n, m = _check_uniform(pairs)
    g = model.gap
    if n == 0 or m == 0:
        return [Alignment((n + m) * g, (), (0, n), (0, m)) for _ in pairs]
    shift = g * (m + n)
    out: list[Alignment] = []
    Dbuf = np.empty((n, min(chunk, len(pairs)), m), dtype=np.uint8)
    for lo in range(0, len(pairs), chunk):
        A, Bm = _batch_codes(pairs[lo : lo + chunk])
        B = A.shape[0]
        D = Dbuf[:, :B]
        fr = _sweep_global(A, Bm, model, D=D)
        scores = fr.prev[:, m] + shift
        for k in range(B):
            walked, _, _ = _walk_global(_pair_bytes(D, k), m, n, m)
            out.append(Alignment(float(scores[k]), tuple(walked), (0, n), (0, m)))
    return out


def global_align(a: str, b: str, model: SubstitutionModel | None = None) -> Alignment:
    """Needleman–Wunsch with traceback (via the direction-code walk)."""
    return global_align_batch([(a, b)], model, chunk=1)[0]


# ---------------------------------------------------------------------------
# Overlap: free leading gaps in a, free trailing gaps in b.
# ---------------------------------------------------------------------------


def overlap_score_reference(
    a: str, b: str, model: SubstitutionModel | None = None
) -> float:
    """Scalar per-cell overlap DP score, the oracle for the kernels."""
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return 0.0
    prev = [j * g for j in range(m + 1)]
    for i in range(1, n + 1):
        cur = [0.0] * (m + 1)
        for j in range(1, m + 1):
            cur[j] = max(
                prev[j - 1] + W[i - 1, j - 1],
                prev[j] + g,
                cur[j - 1] + g,
            )
        prev = cur
    return float(max(prev))


def overlap_scores_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    chunk: int = 64,
) -> np.ndarray:
    """Best suffix(a)–prefix(b) overlap scores for same-shape pairs."""
    model = model or unit_dna()
    if not pairs:
        return np.zeros(0)
    n, m = _check_uniform(pairs)
    if n == 0 or m == 0:
        return np.zeros(len(pairs))
    g = model.gap
    gjs = g * np.arange(m + 1)
    out = np.empty(len(pairs))
    for lo in range(0, len(pairs), chunk):
        A, B = _batch_codes(pairs[lo : lo + chunk])
        fr = _sweep_global(A, B, model, overlap=True)
        # H[n][j] = F[j] + g*j + n*g; the free end in b takes the max.
        out[lo : lo + A.shape[0]] = (fr.prev[:, : m + 1] + gjs).max(axis=1) + n * g
    return out


def overlap_align_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    chunk: int = 64,
) -> list[Alignment]:
    """Batched overlap alignment with table-free traceback.

    ``a_interval`` is (a_start, n) and ``b_interval`` is (0, b_end):
    the overlap aligns ``a[a_start:]`` against ``b[:b_end]``.
    """
    model = model or unit_dna()
    if not pairs:
        return []
    n, m = _check_uniform(pairs)
    if n == 0 or m == 0:
        return [Alignment(0.0, (), (n, n), (0, 0)) for _ in pairs]
    g = model.gap
    gjs = g * np.arange(m + 1)
    out: list[Alignment] = []
    Dbuf = np.empty((n, min(chunk, len(pairs)), m), dtype=np.uint8)
    for lo in range(0, len(pairs), chunk):
        A, Bm = _batch_codes(pairs[lo : lo + chunk])
        B = A.shape[0]
        D = Dbuf[:, :B]
        fr = _sweep_global(A, Bm, model, overlap=True, D=D)
        hrow = fr.prev[:, : m + 1] + gjs
        ends = np.argmax(hrow, axis=1)  # first maximum, like np.argmax
        for k in range(B):
            b_end = int(ends[k])
            score = float(hrow[k, b_end] + n * g)
            walked, a_start, _ = _walk_global(_pair_bytes(D, k), m, n, b_end)
            out.append(
                Alignment(score, tuple(walked), (a_start, n), (0, b_end))
            )
    return out


def overlap_align(a: str, b: str, model: SubstitutionModel | None = None) -> Alignment:
    """Best suffix(a)–prefix(b) overlap alignment with traceback."""
    return overlap_align_batch([(a, b)], model, chunk=1)[0]


def overlap_score(a: str, b: str, model: SubstitutionModel | None = None) -> tuple[float, int, int]:
    """Best suffix(a)–prefix(b) overlap alignment.

    Free leading gaps in ``a`` and free trailing gaps in ``b``: start
    anywhere in ``a``, must start at b[0]; end at a[-1], anywhere in
    ``b``.  Returns (score, a_start, b_end) — the overlap aligns
    a[a_start:] with b[:b_end].  This is the assembler's overlap
    detector.
    """
    aln = overlap_align(a, b, model)
    return aln.score, aln.a_interval[0], aln.b_interval[1]


# ---------------------------------------------------------------------------
# Local (Smith–Waterman) kernels.
#
# f-space again (F = H - g*j - i*g); the 0-clamp becomes a clamp
# against the per-row vector cv[j] = -g*j - i*g (the F-value of a
# zero cell), and the running best needs one subtract per row to read
# the H values back out.
# ---------------------------------------------------------------------------


def _sweep_local(
    A: np.ndarray,
    Bm: np.ndarray,
    model: SubstitutionModel,
    D: np.ndarray | None = None,
    F0: np.ndarray | None = None,
    i0: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, _Frontier]:
    """Forward local sweep; returns (best, best_i, best_j, frontier)
    per pair (``best_i`` counts rows within this sweep).

    ``F0``/``i0`` restart the sweep from a checkpoint frontier, as in
    :func:`_sweep_global`; the local f-space depends on the absolute
    row index, so ``i0`` shifts the zero-cell clamp accordingly.
    """
    g = model.gap
    B, n = A.shape
    m = Bm.shape[1]
    M = m + 1
    P2 = (model.matrix - 2.0 * g)[:, Bm]
    bidx = np.arange(B)
    negjs = -g * np.arange(M)
    fr = _Frontier(B, M)
    if F0 is None:
        fr.prev[:, :M] = negjs  # row 0: H = 0  ->  F = -g*j
    else:
        fr.prev[:, :M] = F0
    t1 = np.empty((B, m))
    cv = np.empty(M)
    hrow = np.empty((B, M))
    best = np.zeros(B)
    bi = np.zeros(B, dtype=np.int64)
    bj = np.zeros(B, dtype=np.int64)
    if D is not None:
        up = np.empty((B, m), dtype=bool)
        left = np.empty((B, m), dtype=bool)
        stop = np.empty((B, m), dtype=bool)
        tmp8 = np.empty((B, m), dtype=np.uint8)
    for i in range(1, n + 1):
        prev, cur = fr.prev, fr.cur
        np.add(prev[:, :m], P2[A[:, i - 1], bidx], out=t1)
        up_from = prev[:, 1:M]
        if D is not None:
            np.greater(up_from, t1, out=up)
        np.add(negjs, -g * (i0 + i), out=cv)  # F-value of a zero cell, this row
        cur[:, 0] = cv[0]
        np.maximum(t1, up_from, out=cur[:, 1:M])
        np.maximum(cur[:, :M], cv, out=cur[:, :M])  # the 0-clamp
        fr.prefix_max()
        acc = fr.acc
        # H never drops below its own clamped V, so no second clamp;
        # read the H row back out for the running best.
        np.subtract(acc[:, :M], cv, out=hrow)
        rowmax = hrow.max(axis=1)
        better = rowmax > best
        if better.any():
            best[better] = rowmax[better]
            bi[better] = i
            bj[better] = np.argmax(hrow[better], axis=1)
        if D is not None:
            np.greater(acc[:, 1:M], cur[:, 1:M], out=left)
            np.equal(acc[:, 1:M], cv[1:M], out=stop)  # H == 0: clamp won
            np.multiply(left.view(np.uint8), 2, out=tmp8)
            np.add(tmp8, up.view(np.uint8), out=D[i - 1])
            np.multiply(stop.view(np.uint8), 4, out=tmp8)
            np.add(D[i - 1], tmp8, out=D[i - 1])
        fr.advance()
    return best, bi, bj, fr


def local_score_reference(a: str, b: str, model: SubstitutionModel | None = None) -> float:
    """Scalar Smith–Waterman, the oracle for the vectorized kernels."""
    model = model or unit_dna()
    W = _pair_matrix(a, b, model)
    g = model.gap
    n, m = len(a), len(b)
    prev = [0.0] * (m + 1)
    best = 0.0
    for i in range(1, n + 1):
        cur = [0.0] * (m + 1)
        for j in range(1, m + 1):
            cur[j] = max(
                0.0,
                prev[j - 1] + W[i - 1, j - 1],
                prev[j] + g,
                cur[j - 1] + g,
            )
            if cur[j] > best:
                best = cur[j]
        prev = cur
    return best


def local_scores_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    chunk: int = 64,
) -> np.ndarray:
    """Smith–Waterman scores for a batch of same-shape pairs."""
    model = model or unit_dna()
    if not pairs:
        return np.zeros(0)
    n, m = _check_uniform(pairs)
    if n == 0 or m == 0:
        return np.zeros(len(pairs))
    out = np.empty(len(pairs))
    for lo in range(0, len(pairs), chunk):
        A, B = _batch_codes(pairs[lo : lo + chunk])
        best, _, _, _ = _sweep_local(A, B, model)
        out[lo : lo + A.shape[0]] = best
    return out


def local_score(a: str, b: str, model: SubstitutionModel | None = None) -> float:
    """Smith–Waterman score, row-vectorized (score only)."""
    return float(local_scores_batch([(a, b)], model, chunk=1)[0])


def local_align_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    chunk: int = 64,
) -> list[Alignment]:
    """Batched Smith–Waterman with table-free traceback.

    The best cell per pair is tracked during the sweep (earliest row,
    then earliest column on ties — matching ``np.argmax`` over the
    full table) and the walk runs back over the direction codes until
    a stop code (a zero cell) or the table edge.
    """
    model = model or unit_dna()
    if not pairs:
        return []
    n, m = _check_uniform(pairs)
    if n == 0 or m == 0:
        return [Alignment(0.0, (), (0, 0), (0, 0)) for _ in pairs]
    out: list[Alignment] = []
    Dbuf = np.empty((n, min(chunk, len(pairs)), m), dtype=np.uint8)
    for lo in range(0, len(pairs), chunk):
        A, Bm = _batch_codes(pairs[lo : lo + chunk])
        B = A.shape[0]
        D = Dbuf[:, :B]
        best, bi, bj, _ = _sweep_local(A, Bm, model, D=D)
        for k in range(B):
            ei, ej = int(bi[k]), int(bj[k])
            walked, i0, j0 = _walk_local(_pair_bytes(D, k), m, ei, ej)
            out.append(
                Alignment(float(best[k]), tuple(walked), (i0, ei), (j0, ej))
            )
    return out


def local_align(a: str, b: str, model: SubstitutionModel | None = None) -> Alignment:
    """Smith–Waterman with traceback; returns the best local alignment."""
    return local_align_batch([(a, b)], model, chunk=1)[0]


# ---------------------------------------------------------------------------
# Banded global kernels (diagonal-offset layout).
#
# Column k of the banded frontier is the diagonal j - i + band, so a
# row sweep in this layout *is* the per-diagonal formulation: the
# diagonal move stays in-place (same k), up shifts by one (k+1, with a
# -inf sentinel column at k = w), and the left-extension is again an
# unweighted prefix max along k after the shift
# F_i[k] = H[i][i-band+k] - g*k - 2*i*g.  The j = 0 boundary becomes
# the constant -g*band, as does row 0.
# ---------------------------------------------------------------------------


def _sweep_banded(
    A: np.ndarray,
    Bm: np.ndarray,
    band: int,
    model: SubstitutionModel,
    D: np.ndarray | None = None,
) -> _Frontier:
    g = model.gap
    B, n = A.shape
    m = Bm.shape[1]
    w = 2 * band + 1
    M = w + 1  # slot w is the -inf sentinel feeding the up-shift
    P2m = model.matrix - 2.0 * g
    ks = np.arange(w)
    boundary = -g * band
    fr = _Frontier(B, M)
    init = np.full(w, -np.inf)
    valid0 = (ks >= band) & (ks - band <= m)
    init[valid0] = boundary  # row 0: H = g*j  ->  F = -g*band
    fr.prev[:, :w] = init
    fr.prev[:, w] = -np.inf
    # Pre-gather every row's diagonal substitution scores when the
    # tensor is small (it always is for narrow bands); out-of-matrix
    # positions are clip artifacts and get masked below anyway.
    jm1_all = np.clip(np.arange(n)[:, None] - band + ks, 0, max(m - 1, 0))
    W_all = None
    if B * n * w * 8 <= (64 << 20):
        W_all = P2m[A[:, :, None], Bm[:, jm1_all]]  # (B, n, w)
    t1 = np.empty((B, w))
    if D is not None:
        up = np.empty((B, w), dtype=bool)
        left = np.empty((B, w), dtype=bool)
        tmp8 = np.empty((B, w), dtype=np.uint8)
    for i in range(1, n + 1):
        prev, cur = fr.prev, fr.cur
        if W_all is not None:
            Wk = W_all[:, i - 1]
        else:
            Wk = P2m[A[:, i - 1][:, None], Bm[:, jm1_all[i - 1]]]
        np.add(prev[:, :w], Wk, out=t1)
        up_from = prev[:, 1 : w + 1]
        if D is not None:
            np.greater(up_from, t1, out=up)
        np.maximum(t1, up_from, out=cur[:, :w])
        # Mask cells outside the matrix; plant the j == 0 boundary.
        klo = band - i + 1  # first k with j >= 1
        if klo > 0:
            cur[:, : min(klo, w)] = -np.inf
            if klo - 1 < w:
                cur[:, klo - 1] = boundary
        khi = m - i + band  # last k with j <= m
        if khi < w - 1:
            cur[:, max(khi + 1, 0) : w] = -np.inf
        cur[:, w] = -np.inf
        fr.prefix_max()
        if D is not None:
            np.greater(fr.acc[:, :w], cur[:, :w], out=left)
            np.multiply(left.view(np.uint8), 2, out=tmp8)
            np.add(tmp8, up.view(np.uint8), out=D[i - 1])
        fr.advance()
        fr.prev[:, w] = -np.inf  # re-pin the sentinel after rotation
    return fr


def _sweep_banded_single(
    ac: np.ndarray,
    bc: np.ndarray,
    band: int,
    model: SubstitutionModel,
    D: np.ndarray | None = None,
) -> np.ndarray:
    """Dispatch-trimmed single-pair banded sweep; returns the final
    f-space frontier (length w).

    The batched banded kernel is dispatch-bound at batch 1 (~6 NumPy
    calls per DP row over a narrow band).  This path cuts the interior
    to 3 calls per row on 1-D buffers: the whole band's substitution
    scores are pre-gathered in one fancy-index gather, boundary
    masking runs only over the <= 2*band edge rows (interior rows need
    none), the rotating frontier views are pre-built per parity, and
    the up-shift sentinel is written once instead of re-pinned per
    row.  ~2-2.5x the batch kernel at batch 1 on the reference host
    (measured against the anti-diagonal front sweep and a skewed
    multi-row fixpoint sweep, which both lose — see ROADMAP).
    Direction codes (``D``: (n, w) uint8) match the batch kernel's.
    """
    g = model.gap
    n, m = len(ac), len(bc)
    w = 2 * band + 1
    P2m = model.matrix - 2.0 * g
    ks = np.arange(w)
    boundary = -g * band
    jm1_all = np.clip(np.arange(n)[:, None] - band + ks, 0, max(m - 1, 0))
    W_all = P2m[ac[:, None], bc[jm1_all]]  # (n, w), one gather
    bufs = (np.full(w + 1, -np.inf), np.full(w + 1, -np.inf))
    acc = np.empty(w) if D is not None else None
    t1 = np.empty(w)
    valid0 = (ks >= band) & (ks - band <= m)
    bufs[0][:w][valid0] = boundary
    # Pre-built rotating views: (row 0..w-1, up-shifted 1..w).
    views = ((bufs[0][:w], bufs[0][1 : w + 1]), (bufs[1][:w], bufs[1][1 : w + 1]))
    add, maximum, accum = np.add, np.maximum, np.maximum.accumulate
    if D is not None:
        up = np.empty(w, dtype=bool)
        left = np.empty(w, dtype=bool)
        tmp8 = np.empty(w, dtype=np.uint8)
    lo_int = min(band + 1, n + 1)  # rows below this mask at k's low end
    hi_int = min(n, m - band)  # rows above this mask at k's high end
    p = 0

    def row(i: int, interior: bool) -> None:
        (pw, pu), (cw, _) = views[p], views[1 - p]
        add(pw, W_all[i - 1], out=t1)
        if D is not None:
            np.greater(pu, t1, out=up)
        maximum(t1, pu, out=cw)
        if not interior:
            klo = band - i + 1
            if klo > 0:
                cw[: min(klo, w)] = -np.inf
                if klo - 1 < w:
                    cw[klo - 1] = boundary
            khi = m - i + band
            if khi < w - 1:
                cw[max(khi + 1, 0) : w] = -np.inf
        if D is None:
            accum(cw, out=cw)
        else:
            accum(cw, out=acc)
            np.greater(acc, cw, out=left)
            np.multiply(left.view(np.uint8), 2, out=tmp8)
            np.add(tmp8, up.view(np.uint8), out=D[i - 1])
            cw[:] = acc

    for i in range(1, lo_int):
        row(i, False)
        p = 1 - p
    for i in range(lo_int, hi_int + 1):
        row(i, True)
        p = 1 - p
    for i in range(max(lo_int, hi_int + 1), n + 1):
        row(i, False)
        p = 1 - p
    return views[p][0]


#: Pre-gathering the whole band's substitution tensor caps the single-
#: pair fast path; bigger sweeps take the batch kernel at B = 1.
_BANDED_SINGLE_MAX_BYTES = 64 << 20


def banded_global_score_reference(
    a: str, b: str, band: int, model: SubstitutionModel | None = None
) -> float:
    """Per-cell dict-based banded DP, the oracle for the kernels."""
    model = model or unit_dna()
    n, m = len(a), len(b)
    band = _check_band(n, m, band)
    W = _pair_matrix(a, b, model)
    g = model.gap
    prev = {j: j * g for j in range(0, min(m, band) + 1)}
    for i in range(1, n + 1):
        lo = max(0, i - band)
        hi = min(m, i + band)
        cur: dict[int, float] = {}
        for j in range(lo, hi + 1):
            best = _NEG
            if j == 0:
                best = i * g
            if j - 1 in prev:
                best = max(best, prev[j - 1] + W[i - 1, j - 1])
            if j in prev:
                best = max(best, prev[j] + g)
            if j - 1 in cur:
                best = max(best, cur[j - 1] + g)
            cur[j] = best
        prev = cur
    return float(prev[m])


def banded_scores_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    band: int,
    model: SubstitutionModel | None = None,
    chunk: int = 64,
) -> np.ndarray:
    """Banded Needleman–Wunsch scores (|i - j| <= band) for a batch.

    Exact when the optimal path stays inside the band (always true if
    band >= |len(a) - len(b)| + number of indels); a cheap surrogate
    otherwise.  The vectorized diagonal-offset sweep costs O(n * band)
    per pair instead of O(n * m).
    """
    model = model or unit_dna()
    if not pairs:
        return np.zeros(0)
    n, m = _check_uniform(pairs)
    band = _check_band(n, m, band)
    if n == 0 or m == 0:
        return np.full(len(pairs), (n + m) * model.gap)
    g = model.gap
    k_end = m - n + band
    shift = g * k_end + 2.0 * g * n
    out = np.empty(len(pairs))
    w = 2 * band + 1
    if min(len(pairs), chunk) == 1 and n * w * 8 <= _BANDED_SINGLE_MAX_BYTES:
        # Batch-of-one sweeps are dispatch-bound; take the trimmed
        # single-pair path (identical scores, ~2x fewer NumPy calls).
        for k, (a, b) in enumerate(pairs):
            final = _sweep_banded_single(_as_codes(a), _as_codes(b), band, model)
            out[k] = final[k_end] + shift
        return out
    for lo in range(0, len(pairs), chunk):
        A, B = _batch_codes(pairs[lo : lo + chunk])
        fr = _sweep_banded(A, B, band, model)
        out[lo : lo + A.shape[0]] = fr.prev[:, k_end] + shift
    return out


def banded_align_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    band: int,
    model: SubstitutionModel | None = None,
    chunk: int = 64,
) -> list[Alignment]:
    """Batched banded global alignment with table-free traceback."""
    model = model or unit_dna()
    if not pairs:
        return []
    n, m = _check_uniform(pairs)
    band = _check_band(n, m, band)
    g = model.gap
    if n == 0 or m == 0:
        return [Alignment((n + m) * g, (), (0, n), (0, m)) for _ in pairs]
    w = 2 * band + 1
    k_end = m - n + band
    shift = g * k_end + 2.0 * g * n

    def walk_codes(db: bytes, score: float) -> Alignment:
        i, j = n, m
        rev: list[tuple[int, int]] = []
        while i > 0 and j > 0:
            c = db[(i - 1) * w + (j - i + band)]
            if c >= 2:
                j -= 1
            elif c == 1:
                i -= 1
            else:
                rev.append((i - 1, j - 1))
                i -= 1
                j -= 1
        rev.reverse()
        return Alignment(score, tuple(rev), (0, n), (0, m))

    out: list[Alignment] = []
    if min(len(pairs), chunk) == 1 and n * w * 9 <= _BANDED_SINGLE_MAX_BYTES:
        D1 = np.empty((n, w), dtype=np.uint8)
        for a, b in pairs:
            final = _sweep_banded_single(_as_codes(a), _as_codes(b), band, model, D=D1)
            out.append(walk_codes(D1.tobytes(), float(final[k_end] + shift)))
        return out
    Dbuf = np.empty((n, min(chunk, len(pairs)), w), dtype=np.uint8)
    for lo in range(0, len(pairs), chunk):
        A, Bm = _batch_codes(pairs[lo : lo + chunk])
        B = A.shape[0]
        D = Dbuf[:, :B]
        fr = _sweep_banded(A, Bm, band, model, D=D)
        scores = fr.prev[:, k_end] + shift
        for k in range(B):
            out.append(walk_codes(_pair_bytes(D, k), float(scores[k])))
    return out


def banded_align(
    a: str, b: str, band: int, model: SubstitutionModel | None = None
) -> Alignment:
    """Banded global alignment with traceback."""
    return banded_align_batch([(a, b)], band, model, chunk=1)[0]


def banded_global_score(
    a: str, b: str, band: int, model: SubstitutionModel | None = None
) -> float:
    """Needleman–Wunsch restricted to |i - j| <= band.

    The vectorized diagonal-offset kernel (the scalar dict DP it
    replaced survives as :func:`banded_global_score_reference`, the
    parity oracle).  ``band`` is validated once up front.
    """
    return float(banded_scores_batch([(a, b)], band, model, chunk=1)[0])


# ---------------------------------------------------------------------------
# Affine-gap (Gotoh) kernels.
#
# Three frontiers per row: M (last move was a match/mismatch), X (gap
# in b — consuming a, the "up" gap) and Y (gap in a — consuming b, the
# "left" gap).  A k-long gap costs gap_open + (k-1)*gap_extend; a
# direct X<->Y switch pays gap_open again (the convention of the
# scalar Gotoh oracle in fragalign.align.affine).
#
#   M[i,j] = max(M, X, Y)[i-1, j-1] + W(i, j)
#   X[i,j] = max(max(M, Y)[i-1, j] + open,  X[i-1, j] + extend)
#   Y[i,j] = max(max(M, X)[i, j-1] + open,  Y[i, j-1] + extend)
#
# The Y in-row dependency collapses to a prefix maximum of
# ``max(M, X)[j'] + open - extend*(j'+1)`` (add ``extend*j`` back per
# column) — the affine twin of the linear kernel's f-space trick — so
# a row costs a fixed number of whole-batch NumPy ops.  Everything is
# exact on integer-valued models.
#
# Direction codes, one packed uint8 per cell:
#   bits 0-1: M's diagonal source state (0=M, 1=X, 2=Y); ties M > X > Y
#   bit 2 (4):  X extended (from X above); unset = opened
#   bit 3 (8):  X opened from Y (read when bit2 unset); unset = from M
#   bit 4 (16): Y extended (from Y on the left); unset = opened
#   bit 5 (32): Y opened from X (read when bit4 unset); unset = from M
#   bit 6 (64): local only — M was clamped to 0 (stop)
# All "beats" are strict, so the walk reproduces the tie orders above.
# ---------------------------------------------------------------------------


def check_affine_gaps(gap_open, gap_extend) -> tuple[float, float]:
    """Validate an affine gap parameter pair; returns them as floats.

    Both must be set together and be non-positive numbers (the local
    kernels rely on gaps never improving a score, so an optimal local
    alignment always ends in the M state).
    """
    if (gap_open is None) != (gap_extend is None):
        raise ValueError(
            "gap_open and gap_extend must be set together "
            f"(got gap_open={gap_open!r}, gap_extend={gap_extend!r})"
        )
    for name, value in (("gap_open", gap_open), ("gap_extend", gap_extend)):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"{name} must be a number, got {value!r}")
        if value > 0:
            raise ValueError(f"{name} must be <= 0, got {value!r}")
    return float(gap_open), float(gap_extend)


def _affine_empty(
    n: int, m: int, open_: float, ext: float, mode: str
) -> tuple[float, tuple[int, int], tuple[int, int]]:
    """Score and intervals for a degenerate (n==0 or m==0) affine pair."""
    if mode in ("local", "overlap"):
        score = 0.0
    elif n == 0 and m == 0:
        score = 0.0
    else:
        score = open_ + (max(n, m) - 1) * ext
    if mode == "local":
        return score, (0, 0), (0, 0)
    if mode == "overlap":
        return score, (n, n), (0, 0)
    return score, (0, n), (0, m)


class _AffineRows:
    """The three rotating (B, m+1) frontiers plus per-row scratch."""

    __slots__ = ("Mp", "Xp", "Yp", "Mc", "Xc", "Yc", "bp", "osrc", "run", "t")

    def __init__(self, B: int, M: int) -> None:
        self.Mp = np.full((B, M), -np.inf)
        self.Xp = np.full((B, M), -np.inf)
        self.Yp = np.full((B, M), -np.inf)
        self.Mc = np.full((B, M), -np.inf)
        self.Xc = np.full((B, M), -np.inf)
        self.Yc = np.full((B, M), -np.inf)
        self.bp = np.empty((B, M))
        self.osrc = np.empty((B, M))
        self.run = np.empty((B, M))
        self.t = np.empty((B, M))

    def advance(self) -> None:
        self.Mp, self.Mc = self.Mc, self.Mp
        self.Xp, self.Xc = self.Xc, self.Xp
        self.Yp, self.Yc = self.Yc, self.Yp


def _sweep_affine(
    A: np.ndarray,
    Bm: np.ndarray,
    model: SubstitutionModel,
    open_: float,
    ext: float,
    mode: str,
    D: np.ndarray | None = None,
) -> tuple[_AffineRows, np.ndarray, np.ndarray, np.ndarray]:
    """Forward Gotoh sweep for ``mode`` in global/overlap/local.

    Returns (rows, best, best_i, best_j); the final frontiers are in
    ``rows.Mp/Xp/Yp``.  ``best*`` track the running best M cell (used
    by local; zeros otherwise).  Emits packed direction codes into
    ``D`` ((n, B, m) uint8) when given.
    """
    B, n = A.shape
    m = Bm.shape[1]
    M = m + 1
    P = model.matrix[:, Bm]  # per-code substitution rows, (5, B, m)
    bidx = np.arange(B)
    js = np.arange(M)
    extjs = ext * js
    src_shift = open_ - ext * (js + 1.0)
    r = _AffineRows(B, M)
    local = mode == "local"
    overlap = mode == "overlap"
    # Row 0: M[0][0] = 0 (local: the whole row restarts at 0);
    # leading gaps in b live in Y unless local.
    if local:
        r.Mp[:, :] = 0.0
    else:
        r.Mp[:, 0] = 0.0
        if m:
            r.Yp[:, 1:] = open_ + (js[1:] - 1) * ext
    best = np.zeros(B)
    bi = np.zeros(B, dtype=np.int64)
    bj = np.zeros(B, dtype=np.int64)
    if D is not None:
        e_x = np.empty((B, m), dtype=bool)
        e_y = np.empty((B, m), dtype=bool)
        b1 = np.empty((B, m), dtype=bool)
        u8a = np.empty((B, m), dtype=np.uint8)
        u8b = np.empty((B, m), dtype=np.uint8)
    for i in range(1, n + 1):
        Mp, Xp, Yp = r.Mp, r.Xp, r.Yp
        Mc, Xc, Yc = r.Mc, r.Xc, r.Yc
        # M: best previous state, one diagonal step back.
        np.maximum(Mp, Xp, out=r.bp)
        if D is not None:
            # bits 0-1: M's diag source (ties M > X > Y), from columns
            # 0..m-1 of the previous row.
            np.greater(Xp[:, :m], Mp[:, :m], out=e_x)
            np.greater(Yp[:, :m], r.bp[:, :m], out=e_y)
            np.multiply(e_y.view(np.uint8), 2, out=u8a)
            np.logical_and(e_x, ~e_y, out=b1)
            np.add(u8a, b1.view(np.uint8), out=u8a)  # u8a = msrc
        np.maximum(r.bp, Yp, out=r.bp)
        np.add(r.bp[:, :m], P[A[:, i - 1], bidx], out=Mc[:, 1:])
        Mc[:, 0] = 0.0 if (local or overlap) else -np.inf
        if local:
            if D is not None:
                # bit 6: the clamp won (cell value 0) — stop.
                np.less_equal(Mc[:, 1:], 0.0, out=b1)
                np.multiply(b1.view(np.uint8), 64, out=u8b)
                np.add(u8a, u8b, out=u8a)
            np.maximum(Mc, 0.0, out=Mc)
        # X: open from M/Y above, or extend the running gap.
        np.maximum(Mp, Yp, out=r.osrc)
        if D is not None:
            np.greater(Yp[:, 1:], Mp[:, 1:], out=b1)  # bit 3
            np.multiply(b1.view(np.uint8), 8, out=u8b)
            np.add(u8a, u8b, out=u8a)
        np.add(r.osrc, open_, out=r.osrc)
        np.add(Xp, ext, out=r.t)
        if D is not None:
            np.greater(r.t[:, 1:], r.osrc[:, 1:], out=b1)  # bit 2
            np.multiply(b1.view(np.uint8), 4, out=u8b)
            np.add(u8a, u8b, out=u8a)
        np.maximum(r.osrc, r.t, out=Xc)
        Xc[:, 0] = -np.inf if (local or overlap) else open_ + (i - 1) * ext
        # Y: prefix max over max(M, X)[j'] + open - ext*(j'+1).
        np.maximum(Mc, Xc, out=r.osrc)
        if D is not None:
            np.greater(Xc[:, :m], Mc[:, :m], out=b1)  # bit 5
            np.multiply(b1.view(np.uint8), 32, out=u8b)
            np.add(u8a, u8b, out=u8a)
        np.add(r.osrc, src_shift, out=r.t)
        r.run[:, 0] = -np.inf
        np.maximum.accumulate(r.t[:, :m], axis=1, out=r.run[:, 1:])
        np.add(r.run, extjs, out=Yc)
        Yc[:, 0] = -np.inf
        if D is not None:
            # bit 4: Y extended — the gap ran past the previous column.
            np.add(Yc[:, :m], ext, out=r.t[:, :m])
            np.add(r.osrc[:, :m], open_, out=r.run[:, :m])
            np.greater(r.t[:, :m], r.run[:, :m], out=b1)
            np.multiply(b1.view(np.uint8), 16, out=u8b)
            np.add(u8a, u8b, out=D[i - 1])
        if local:
            rowmax = Mc.max(axis=1)
            better = rowmax > best
            if better.any():
                best[better] = rowmax[better]
                bi[better] = i
                bj[better] = np.argmax(Mc[better], axis=1)
        r.advance()
    return r, best, bi, bj


def _end_state(mv: float, xv: float, yv: float) -> int:
    """Best end state with tie order M > X > Y."""
    best = max(mv, xv, yv)
    if mv == best:
        return 0
    if xv == best:
        return 1
    return 2


def _walk_affine(
    db: bytes, m: int, i: int, j: int, state: int, band: int | None = None
) -> tuple[list[tuple[int, int]], int, int]:
    """Walk affine direction codes from (i, j) in ``state`` toward the
    origin; returns (pairs in forward order, stop_i, stop_j).

    ``db`` is the row-major bytes of one pair's code matrix: (n, m)
    cell-indexed, or — when ``band`` is given — the (n, 2*band+1)
    diagonal-offset layout, where ``m`` is the band width and a cell
    (i, j) lives at offset ``j - i + band``.  The walk ends at the
    first row/column or at a local stop code.
    """
    rev: list[tuple[int, int]] = []
    while i > 0 and j > 0:
        col = (j - 1) if band is None else (j - i + band)
        c = db[(i - 1) * m + col]
        if state == 0:
            if c >= 64:  # local stop: this cell's M is 0
                break
            rev.append((i - 1, j - 1))
            state = c & 3
            i -= 1
            j -= 1
        elif state == 1:
            state = 1 if c & 4 else (2 if c & 8 else 0)
            i -= 1
        else:
            state = 2 if c & 16 else (1 if c & 32 else 0)
            j -= 1
    rev.reverse()
    return rev, i, j


def _affine_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None,
    gap_open,
    gap_extend,
    chunk: int,
    mode: str,
    kind: str,
):
    """Shared driver for the unbanded affine score/align kernels."""
    model = model or unit_dna()
    open_, ext = check_affine_gaps(gap_open, gap_extend)
    if not pairs:
        return np.zeros(0) if kind == "score" else []
    n, m = _check_uniform(pairs)
    if n == 0 or m == 0:
        score, ai, bi_ = _affine_empty(n, m, open_, ext, mode)
        if kind == "score":
            return np.full(len(pairs), score)
        return [Alignment(score, (), ai, bi_) for _ in pairs]
    out_scores = np.empty(len(pairs))
    out_alns: list[Alignment] = []
    cap = min(chunk, len(pairs))
    rows = np.arange(cap)
    Dbuf = np.empty((n, cap, m), dtype=np.uint8) if kind == "align" else None
    for lo in range(0, len(pairs), chunk):
        A, Bm = _batch_codes(pairs[lo : lo + chunk])
        B = A.shape[0]
        D = Dbuf[:, :B] if Dbuf is not None else None
        r, best, bi, bj = _sweep_affine(A, Bm, model, open_, ext, mode, D=D)
        if mode == "global":
            mv, xv, yv = r.Mp[:, m], r.Xp[:, m], r.Yp[:, m]
            scores = np.maximum(np.maximum(mv, xv), yv)
        elif mode == "overlap":
            hrow = np.maximum(np.maximum(r.Mp, r.Xp), r.Yp)
            ends = np.argmax(hrow, axis=1)
            scores = hrow[rows[:B], ends]
        else:  # local
            scores = best
        if kind == "score":
            out_scores[lo : lo + B] = scores
            continue
        for k in range(B):
            db = _pair_bytes(D, k)
            if mode == "global":
                state = _end_state(float(r.Mp[k, m]), float(r.Xp[k, m]), float(r.Yp[k, m]))
                walked, _, _ = _walk_affine(db, m, n, m, state)
                out_alns.append(
                    Alignment(float(scores[k]), tuple(walked), (0, n), (0, m))
                )
            elif mode == "overlap":
                b_end = int(ends[k])
                state = _end_state(
                    float(r.Mp[k, b_end]), float(r.Xp[k, b_end]), float(r.Yp[k, b_end])
                )
                walked, a_start, _ = _walk_affine(db, m, n, b_end, state)
                out_alns.append(
                    Alignment(float(scores[k]), tuple(walked), (a_start, n), (0, b_end))
                )
            else:  # local: best cell is always an M cell
                ei, ej = int(bi[k]), int(bj[k])
                walked, i0, j0 = _walk_affine(db, m, ei, ej, 0)
                out_alns.append(
                    Alignment(float(scores[k]), tuple(walked), (i0, ei), (j0, ej))
                )
    return out_scores if kind == "score" else out_alns


def affine_scores_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    gap_open: float = -4.0,
    gap_extend: float = -1.0,
    chunk: int = 64,
) -> np.ndarray:
    """Batched Gotoh global scores (affine gaps) for same-shape pairs."""
    return _affine_batch(pairs, model, gap_open, gap_extend, chunk, "global", "score")


def affine_align_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    gap_open: float = -4.0,
    gap_extend: float = -1.0,
    chunk: int = 64,
) -> list[Alignment]:
    """Batched Gotoh global alignment with table-free traceback."""
    return _affine_batch(pairs, model, gap_open, gap_extend, chunk, "global", "align")


def affine_local_scores_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    gap_open: float = -4.0,
    gap_extend: float = -1.0,
    chunk: int = 64,
) -> np.ndarray:
    """Batched affine Smith–Waterman scores for same-shape pairs."""
    return _affine_batch(pairs, model, gap_open, gap_extend, chunk, "local", "score")


def affine_local_align_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    gap_open: float = -4.0,
    gap_extend: float = -1.0,
    chunk: int = 64,
) -> list[Alignment]:
    """Batched affine Smith–Waterman with table-free traceback."""
    return _affine_batch(pairs, model, gap_open, gap_extend, chunk, "local", "align")


def affine_overlap_scores_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    gap_open: float = -4.0,
    gap_extend: float = -1.0,
    chunk: int = 64,
) -> np.ndarray:
    """Batched affine suffix(a)–prefix(b) overlap scores."""
    return _affine_batch(pairs, model, gap_open, gap_extend, chunk, "overlap", "score")


def affine_overlap_align_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    gap_open: float = -4.0,
    gap_extend: float = -1.0,
    chunk: int = 64,
) -> list[Alignment]:
    """Batched affine overlap alignment with table-free traceback."""
    return _affine_batch(pairs, model, gap_open, gap_extend, chunk, "overlap", "align")


# ---------------------------------------------------------------------------
# Banded affine kernels (diagonal-offset layout, three frontiers).
#
# Same layout as the linear banded sweep (column k is the diagonal
# j - i + band), but with plain H values and -inf masking instead of
# the f-space shift: the diagonal move stays in-place (same k), the X
# gap reads k+1 from the previous row (sentinel column at k = w), and
# the Y in-row dependency is the same prefix maximum as the unbanded
# affine kernel, along k.
# ---------------------------------------------------------------------------


def _sweep_affine_banded(
    A: np.ndarray,
    Bm: np.ndarray,
    band: int,
    model: SubstitutionModel,
    open_: float,
    ext: float,
    D: np.ndarray | None = None,
) -> _AffineRows:
    B, n = A.shape
    m = Bm.shape[1]
    w = 2 * band + 1
    M = w + 1  # slot w is the -inf sentinel feeding the X up-shift
    ks = np.arange(M)
    extks = ext * ks
    src_shift = open_ - ext * (ks + 1.0)
    # Pre-gather every row's diagonal substitution scores (masked
    # positions are clip artifacts; they are -inf'd below anyway).
    jm1_all = np.clip(np.arange(n)[:, None] - band + ks[:w], 0, max(m - 1, 0))
    W_all = None
    Pm = model.matrix
    if B * n * w * 8 <= (64 << 20):
        W_all = Pm[A[:, :, None], Bm[:, jm1_all]]  # (B, n, w)
    r = _AffineRows(B, M)
    # Row 0: j = k - band in [0, m]; M[0][0] = 0, Y[0][j] carries the
    # leading gap in b.
    j0s = ks[:w] - band
    valid0 = (j0s >= 0) & (j0s <= m)
    r.Mp[:, :w][:, valid0 & (j0s == 0)] = 0.0
    ypos = valid0 & (j0s >= 1)
    if ypos.any():
        r.Yp[:, :w][:, ypos] = open_ + (j0s[ypos] - 1) * ext
    if D is not None:
        e_x = np.empty((B, w), dtype=bool)
        e_y = np.empty((B, w), dtype=bool)
        b1 = np.empty((B, w), dtype=bool)
        u8a = np.empty((B, w), dtype=np.uint8)
        u8b = np.empty((B, w), dtype=np.uint8)
    for i in range(1, n + 1):
        Mp, Xp, Yp = r.Mp, r.Xp, r.Yp
        Mc, Xc, Yc = r.Mc, r.Xc, r.Yc
        if W_all is not None:
            Wk = W_all[:, i - 1]
        else:
            Wk = Pm[A[:, i - 1][:, None], Bm[:, jm1_all[i - 1]]]
        # M: diagonal move is in-place in this layout.
        np.maximum(Mp[:, :w], Xp[:, :w], out=r.bp[:, :w])
        if D is not None:
            np.greater(Xp[:, :w], Mp[:, :w], out=e_x)
            np.greater(Yp[:, :w], r.bp[:, :w], out=e_y)
            np.multiply(e_y.view(np.uint8), 2, out=u8a)
            np.logical_and(e_x, ~e_y, out=b1)
            np.add(u8a, b1.view(np.uint8), out=u8a)
        np.maximum(r.bp[:, :w], Yp[:, :w], out=r.bp[:, :w])
        np.add(r.bp[:, :w], Wk, out=Mc[:, :w])
        # X: open/extend from k+1 of the previous row.
        np.maximum(Mp[:, 1:M], Yp[:, 1:M], out=r.osrc[:, :w])
        if D is not None:
            np.greater(Yp[:, 1:M], Mp[:, 1:M], out=b1)  # bit 3
            np.multiply(b1.view(np.uint8), 8, out=u8b)
            np.add(u8a, u8b, out=u8a)
        np.add(r.osrc[:, :w], open_, out=r.osrc[:, :w])
        np.add(Xp[:, 1:M], ext, out=r.t[:, :w])
        if D is not None:
            np.greater(r.t[:, :w], r.osrc[:, :w], out=b1)  # bit 2
            np.multiply(b1.view(np.uint8), 4, out=u8b)
            np.add(u8a, u8b, out=u8a)
        np.maximum(r.osrc[:, :w], r.t[:, :w], out=Xc[:, :w])
        # Mask cells outside the matrix; plant the j == 0 boundary.
        klo = band - i + 1  # first k with j >= 1
        if klo > 0:
            Mc[:, : min(klo, w)] = -np.inf
            Xc[:, : min(klo, w)] = -np.inf
            if klo - 1 < w:
                Xc[:, klo - 1] = open_ + (i - 1) * ext
        khi = m - i + band  # last k with j <= m
        if khi < w - 1:
            Mc[:, max(khi + 1, 0) : w] = -np.inf
            Xc[:, max(khi + 1, 0) : w] = -np.inf
        Mc[:, w] = -np.inf
        Xc[:, w] = -np.inf
        # Y: in-row prefix max along k.  The in-row predecessor of cell
        # k is k-1, so the Y bits compare one slot to the left (the
        # unbanded kernel's column slices do this implicitly).
        np.maximum(Mc[:, :w], Xc[:, :w], out=r.osrc[:, :w])
        if D is not None:
            b1[:, 0] = False  # k = 0 has no in-row predecessor
            np.greater(Xc[:, : w - 1], Mc[:, : w - 1], out=b1[:, 1:w])  # bit 5
            np.multiply(b1.view(np.uint8), 32, out=u8b)
            np.add(u8a, u8b, out=u8a)
        np.add(r.osrc[:, :w], src_shift[:w], out=r.t[:, :w])
        r.run[:, 0] = -np.inf
        np.maximum.accumulate(r.t[:, : w - 1], axis=1, out=r.run[:, 1:w])
        np.add(r.run[:, :w], extks[:w], out=Yc[:, :w])
        Yc[:, 0] = -np.inf
        if khi < w - 1:
            Yc[:, max(khi + 1, 0) : w] = -np.inf
        if klo > 0:
            Yc[:, : min(klo, w)] = -np.inf
        Yc[:, w] = -np.inf
        if D is not None:
            np.add(Yc[:, : w - 1], ext, out=r.t[:, : w - 1])
            np.add(r.osrc[:, : w - 1], open_, out=r.run[:, : w - 1])
            b1[:, 0] = False
            np.greater(r.t[:, : w - 1], r.run[:, : w - 1], out=b1[:, 1:w])  # bit 4
            np.multiply(b1.view(np.uint8), 16, out=u8b)
            np.add(u8a, u8b, out=D[i - 1])
        r.advance()
    return r


def _sweep_affine_banded_single(
    ac: np.ndarray,
    bc: np.ndarray,
    band: int,
    model: SubstitutionModel,
    open_: float,
    ext: float,
    D: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dispatch-trimmed single-pair banded Gotoh sweep; returns the
    final (M, X, Y) frontiers (each length w).

    Same trick as :func:`_sweep_banded_single`, applied to the affine
    kernel: at batch 1 the batched sweep is dispatch-bound (three
    frontiers x ~6 NumPy calls per DP row, each paying 2-D slicing
    overhead over a narrow band).  This path pre-gathers the whole
    band's substitution scores in one fancy-index gather, pre-builds
    the rotating frontier views per parity, writes the up-shift
    sentinels once at init instead of re-pinning per row, and masks
    band edges only over the <= 2*band boundary rows.  Direction codes
    (``D``: (n, w) uint8) are bit-for-bit the batch kernel's, so
    :func:`_walk_affine` reads either.
    """
    n, m = len(ac), len(bc)
    w = 2 * band + 1
    M = w + 1  # slot w is the -inf sentinel feeding the up-shifts
    ks = np.arange(w)
    extks = ext * ks
    src_shift = open_ - ext * (ks + 1.0)
    Pm = model.matrix
    jm1_all = np.clip(np.arange(n)[:, None] - band + ks, 0, max(m - 1, 0))
    W_all = Pm[ac[:, None], bc[jm1_all]]  # (n, w), one gather
    bufs = tuple(np.full(M, -np.inf) for _ in range(6))  # Mp Xp Yp Mc Xc Yc
    # Row 0: j = k - band in [0, m]; M[0][0] = 0, Y[0][j] carries the
    # leading gap in b (mirrors the batch kernel's init).
    j0s = ks - band
    valid0 = (j0s >= 0) & (j0s <= m)
    bufs[0][:w][valid0 & (j0s == 0)] = 0.0
    ypos = valid0 & (j0s >= 1)
    if ypos.any():
        bufs[2][:w][ypos] = open_ + (j0s[ypos] - 1) * ext
    # Pre-built rotating views per parity: (band slice 0..w-1,
    # up-shifted slice 1..w) for each of the three frontiers.
    views = tuple(
        tuple((buf[:w], buf[1:M]) for buf in trio)
        for trio in (bufs[:3], bufs[3:])
    )
    bp, t, run = np.empty(w), np.empty(w), np.empty(w)
    add, maximum, accum = np.add, np.maximum, np.maximum.accumulate
    if D is not None:
        e_x = np.empty(w, dtype=bool)
        e_y = np.empty(w, dtype=bool)
        b1 = np.empty(w, dtype=bool)
        u8a = np.empty(w, dtype=np.uint8)
        u8b = np.empty(w, dtype=np.uint8)
    lo_int = min(band + 1, n + 1)  # rows below this mask at k's low end
    hi_int = min(n, m - band)  # rows above this mask at k's high end
    p = 0

    def row(i: int, interior: bool) -> None:
        (Mw, Mu), (Xw, Xu), (Yw, Yu) = views[p]
        (Mcw, _), (Xcw, _), (Ycw, _) = views[1 - p]
        # M: diagonal move is in-place in this layout.
        maximum(Mw, Xw, out=bp)
        if D is not None:
            np.greater(Xw, Mw, out=e_x)
            np.greater(Yw, bp, out=e_y)
            np.multiply(e_y.view(np.uint8), 2, out=u8a)
            np.logical_and(e_x, ~e_y, out=b1)
            np.add(u8a, b1.view(np.uint8), out=u8a)
        maximum(bp, Yw, out=bp)
        add(bp, W_all[i - 1], out=Mcw)
        # X: open/extend from k+1 of the previous row.
        maximum(Mu, Yu, out=bp)
        if D is not None:
            np.greater(Yu, Mu, out=b1)  # bit 3
            np.multiply(b1.view(np.uint8), 8, out=u8b)
            np.add(u8a, u8b, out=u8a)
        add(bp, open_, out=bp)
        add(Xu, ext, out=t)
        if D is not None:
            np.greater(t, bp, out=b1)  # bit 2
            np.multiply(b1.view(np.uint8), 4, out=u8b)
            np.add(u8a, u8b, out=u8a)
        maximum(bp, t, out=Xcw)
        if not interior:
            # Mask cells outside the matrix; plant the j == 0 boundary.
            klo = band - i + 1
            if klo > 0:
                Mcw[: min(klo, w)] = -np.inf
                Xcw[: min(klo, w)] = -np.inf
                if klo - 1 < w:
                    Xcw[klo - 1] = open_ + (i - 1) * ext
            khi = m - i + band
            if khi < w - 1:
                Mcw[max(khi + 1, 0) : w] = -np.inf
                Xcw[max(khi + 1, 0) : w] = -np.inf
        # Y: in-row prefix max along k (predecessor is one slot left).
        maximum(Mcw, Xcw, out=bp)
        if D is not None:
            b1[0] = False  # k = 0 has no in-row predecessor
            np.greater(Xcw[: w - 1], Mcw[: w - 1], out=b1[1:w])  # bit 5
            np.multiply(b1.view(np.uint8), 32, out=u8b)
            np.add(u8a, u8b, out=u8a)
        add(bp, src_shift, out=t)
        run[0] = -np.inf
        accum(t[: w - 1], out=run[1:w])
        add(run, extks, out=Ycw)
        Ycw[0] = -np.inf
        if not interior:
            khi = m - i + band
            if khi < w - 1:
                Ycw[max(khi + 1, 0) : w] = -np.inf
            klo = band - i + 1
            if klo > 0:
                Ycw[: min(klo, w)] = -np.inf
        if D is not None:
            np.add(Ycw[: w - 1], ext, out=t[: w - 1])
            np.add(bp[: w - 1], open_, out=run[: w - 1])
            b1[0] = False
            np.greater(t[: w - 1], run[: w - 1], out=b1[1:w])  # bit 4
            np.multiply(b1.view(np.uint8), 16, out=u8b)
            np.add(u8a, u8b, out=D[i - 1])

    for i in range(1, lo_int):
        row(i, False)
        p = 1 - p
    for i in range(lo_int, hi_int + 1):
        row(i, True)
        p = 1 - p
    for i in range(max(lo_int, hi_int + 1), n + 1):
        row(i, False)
        p = 1 - p
    (Mw, _), (Xw, _), (Yw, _) = views[p]
    return Mw, Xw, Yw


def affine_banded_scores_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    band: int,
    model: SubstitutionModel | None = None,
    gap_open: float = -4.0,
    gap_extend: float = -1.0,
    chunk: int = 64,
) -> np.ndarray:
    """Banded Gotoh scores (|i - j| <= band) for same-shape pairs."""
    model = model or unit_dna()
    open_, ext = check_affine_gaps(gap_open, gap_extend)
    if not pairs:
        return np.zeros(0)
    n, m = _check_uniform(pairs)
    band = _check_band(n, m, band)
    if n == 0 or m == 0:
        return np.full(len(pairs), _affine_empty(n, m, open_, ext, "global")[0])
    k_end = m - n + band
    out = np.empty(len(pairs))
    w = 2 * band + 1
    if min(len(pairs), chunk) == 1 and n * w * 8 <= _BANDED_SINGLE_MAX_BYTES:
        # Batch-of-one sweeps are dispatch-bound; take the trimmed
        # single-pair path (identical scores, fewer NumPy calls).
        for k, (a, b) in enumerate(pairs):
            Mf, Xf, Yf = _sweep_affine_banded_single(
                _as_codes(a), _as_codes(b), band, model, open_, ext
            )
            out[k] = max(float(Mf[k_end]), float(Xf[k_end]), float(Yf[k_end]))
        return out
    for lo in range(0, len(pairs), chunk):
        A, B = _batch_codes(pairs[lo : lo + chunk])
        r = _sweep_affine_banded(A, B, band, model, open_, ext)
        out[lo : lo + A.shape[0]] = np.maximum(
            np.maximum(r.Mp[:, k_end], r.Xp[:, k_end]), r.Yp[:, k_end]
        )
    return out


def affine_banded_align_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    band: int,
    model: SubstitutionModel | None = None,
    gap_open: float = -4.0,
    gap_extend: float = -1.0,
    chunk: int = 64,
) -> list[Alignment]:
    """Batched banded Gotoh alignment with table-free traceback."""
    model = model or unit_dna()
    open_, ext = check_affine_gaps(gap_open, gap_extend)
    if not pairs:
        return []
    n, m = _check_uniform(pairs)
    band = _check_band(n, m, band)
    if n == 0 or m == 0:
        score, ai, bi_ = _affine_empty(n, m, open_, ext, "global")
        return [Alignment(score, (), ai, bi_) for _ in pairs]
    w = 2 * band + 1
    k_end = m - n + band
    out: list[Alignment] = []
    if min(len(pairs), chunk) == 1 and n * w * 9 <= _BANDED_SINGLE_MAX_BYTES:
        D1 = np.empty((n, w), dtype=np.uint8)
        for a, b in pairs:
            Mf, Xf, Yf = _sweep_affine_banded_single(
                _as_codes(a), _as_codes(b), band, model, open_, ext, D=D1
            )
            state = _end_state(float(Mf[k_end]), float(Xf[k_end]), float(Yf[k_end]))
            score = (Mf[k_end], Xf[k_end], Yf[k_end])[state]
            walked, _, _ = _walk_affine(D1.tobytes(), w, n, m, state, band=band)
            out.append(Alignment(float(score), tuple(walked), (0, n), (0, m)))
        return out
    Dbuf = np.empty((n, min(chunk, len(pairs)), w), dtype=np.uint8)
    for lo in range(0, len(pairs), chunk):
        A, Bm = _batch_codes(pairs[lo : lo + chunk])
        B = A.shape[0]
        D = Dbuf[:, :B]
        r = _sweep_affine_banded(A, Bm, band, model, open_, ext, D=D)
        for k in range(B):
            state = _end_state(
                float(r.Mp[k, k_end]), float(r.Xp[k, k_end]), float(r.Yp[k, k_end])
            )
            score = (r.Mp[k, k_end], r.Xp[k, k_end], r.Yp[k, k_end])[state]
            walked, _, _ = _walk_affine(_pair_bytes(D, k), w, n, m, state, band=band)
            out.append(Alignment(float(score), tuple(walked), (0, n), (0, m)))
    return out
