"""Bit-parallel score-only kernels: 64 DP cells per machine word.

Myers' trick (and its BitPAl-flavoured integer-score generalization)
packs the *vertical deltas* of a DP column into bit-vectors — one bit
per query position — and advances a whole column per text character
with a fixed number of word-wide boolean operations plus one carry
add.  On a 256-long query that is 4 uint64 words of state instead of
256 float cells, which is where the order-of-magnitude win over the
row-vectorized float kernels comes from.

Two **flat-cost model families** are supported, selected by
:func:`flat_model_family`:

* ``"unit"`` — ``(match, mismatch, gap) = (c, -c, -c)`` with ``c > 0``
  (the default ``unit_dna()`` model).  Plain edit-distance bit
  parallelism is *not* enough here: the NW score under unit scores is
  not a function of the Levenshtein distance (``a="ab"`` vs ``b="ba"``
  ties with ``"ab"`` vs ``"cd"`` at distance 2 but scores -1 vs -2,
  because a substitution costs 2 score units while an indel costs
  1.5).  Instead the horizontal/vertical deltas — which for this
  family live in ``{-1, 0, 1, 2}`` (units of ``c``) — are tracked as
  three cumulative threshold indicators per direction, advanced with a
  carry-propagation primitive (:func:`_propagate`).
* ``"lev"`` — ``(0, -c, -c)``: the NW score is exactly ``-c`` times
  the Levenshtein distance, handled by the classic Myers/Hyyrö
  formulation (deltas in ``{-1, 0, 1}``).

Both families cover ``global`` and ``overlap`` (free a-suffix start,
max over the last row) modes, score-only.  Scales ``c`` with ``2*c``
integral are accepted — every DP cell is then a multiple of ``0.5``,
so the float64 oracle accumulates exactly and parity is bit-exact.
Models containing ``N`` codes are fine (``N`` scores 0 against
everything, which breaks two-valued flatness) as long as the
*sequences* contain no ``N`` — the native backend routes N-carrying
pairs to the float kernels per pair.

``bitparallel_scores_batch`` is the engine-facing kernel (numpy
uint64, batched); ``bitparallel_score_reference`` is its per-cell
oracle, and the C twin in :mod:`fragalign._native` is pinned against
both by the cross-backend parity fuzz tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from fragalign.align.pairwise import (
    global_score_reference,
    overlap_score_reference,
)
from fragalign.align.scoring_matrices import SubstitutionModel, encode, unit_dna

__all__ = [
    "flat_model_family",
    "bitparallel_scores_batch",
    "bitparallel_score_reference",
]

_MODES = ("global", "overlap")
_ONE = np.uint64(1)
_S63 = np.uint64(63)


def flat_model_family(model: SubstitutionModel | None) -> tuple[str, float] | None:
    """Which bit-parallel family covers ``model`` — ``None`` for none.

    Returns ``("unit", c)`` for ``(c, -c, -c)`` models, ``("lev", c)``
    for ``(0, -c, -c)`` models, both restricted to scales where ``2*c``
    is integral (so float64 parity with the accumulating oracles is
    exact).  Only the A/C/G/T core of the matrix matters — the ``N``
    row/column is handled per pair by the caller.
    """
    model = model or unit_dna()
    core = model.matrix[:4, :4]
    diag = float(core[0, 0])
    off = float(core[0, 1])
    if not (np.all(np.diag(core) == diag) and np.all(core[~np.eye(4, dtype=bool)] == off)):
        return None
    gap = float(model.gap)
    if diag > 0 and off == -diag and gap == -diag:
        c = diag
    elif diag == 0 and off == gap and gap < 0:
        c = -off
    else:
        return None
    if not float(2 * c).is_integer():
        return None
    return ("unit" if diag > 0 else "lev", c)


def bitparallel_score_reference(
    a: str, b: str, model: SubstitutionModel | None = None, mode: str = "global"
) -> float:
    """Per-cell oracle for the bit-parallel kernels (both families)."""
    if mode == "overlap":
        return overlap_score_reference(a, b, model)
    if mode != "global":
        raise ValueError(f"bit-parallel kernels cover {_MODES}, got mode={mode!r}")
    return global_score_reference(a, b, model)


# -- multiword uint64 primitives (B pairs x W words, bit k of word w
# -- is query row w*64 + k + 1; all information flows toward higher
# -- bits, so padding bits above n never contaminate valid ones) ------


def _shl1(x: np.ndarray) -> np.ndarray:
    """Shift every pair's W-word bit-vector up one bit (zero fill)."""
    out = x << _ONE
    if x.shape[1] > 1:
        out[:, 1:] |= x[:, :-1] >> _S63
    return out


def _add(x: np.ndarray, y: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Multiword add with carry chain across words (wraparound ok)."""
    carry = np.zeros(x.shape[0], dtype=np.uint64)
    for w in range(x.shape[1]):
        t = x[:, w] + y[:, w]
        c1 = t < x[:, w]
        r = t + carry
        c2 = r < t
        out[:, w] = r
        carry = (c1 | c2).astype(np.uint64)
    return out


def _propagate(S: np.ndarray, R: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """Solve ``X[i] = S[i] | (R[i] & X[i-1])`` along the bit chain.

    The carry of ``R + (S << 1)`` rides exactly the runs of ``R``
    sitting on top of a seed; OR-ing the shifted seed back in covers
    the run-of-length-zero case the adder's carry-in misses.
    """
    Sh = _shl1(S)
    U = _add(R, Sh, scratch)
    C = (U ^ R ^ Sh) | Sh
    return S | (R & C)


def _pack_eq(codes: np.ndarray, W: int) -> np.ndarray:
    """``(B, 4, W)`` uint64 match masks: bit i of Eq[p, c] set iff
    ``codes[p, i] == c``."""
    B, n = codes.shape
    eq = codes[:, None, :] == np.arange(4, dtype=codes.dtype)[None, :, None]
    padded = np.zeros((B, 4, W * 64), dtype=bool)
    padded[:, :, :n] = eq
    weights = _ONE << np.arange(64, dtype=np.uint64)
    return (padded.reshape(B, 4, W, 64) * weights).sum(axis=3, dtype=np.uint64)


def _scores_unit(acodes: np.ndarray, bcodes: np.ndarray, mode: str) -> np.ndarray:
    """Unit-family sweep, scores in units of ``c`` (int64).

    State per pair: four disjoint indicator vectors over query rows
    for the vertical delta ``DV in {-1, 0, 1, 2}`` (``Vm``/``V0``/
    ``V1``/``V2``).  Per text char the horizontal-delta thresholds
    ``A_t = [DH >= t]`` come out of seed/propagate algebra, the top
    bit of each accumulates the last-row score, and the new vertical
    indicators are rebuilt from delta-threshold case analysis.
    """
    B, n = acodes.shape
    m = bcodes.shape[1]
    W = (n + 63) // 64
    Eq_all = _pack_eq(acodes, W)
    rows = np.arange(B)

    valid = np.zeros((B, W), dtype=np.uint64)
    valid[:, : n // 64] = ~np.uint64(0)
    if n % 64:
        valid[:, n // 64] = (_ONE << np.uint64(n % 64)) - _ONE

    Vm = np.zeros((B, W), dtype=np.uint64)
    V0 = np.zeros((B, W), dtype=np.uint64)
    V1 = np.zeros((B, W), dtype=np.uint64)
    V2 = np.zeros((B, W), dtype=np.uint64)
    if mode == "global":
        Vm[:] = valid  # H[i][0] = -i: every vertical delta is -1
    else:
        V0[:] = valid  # overlap: H[i][0] = 0, every delta is 0

    wn, bn = (n - 1) // 64, np.uint64((n - 1) % 64)
    run = np.full(B, -n if mode == "global" else 0, dtype=np.int64)
    best = np.zeros(B, dtype=np.int64)
    scratch = np.empty((B, W), dtype=np.uint64)

    for j in range(m):
        Eq = Eq_all[rows, bcodes[:, j]]
        NEq = ~Eq
        # Horizontal-delta thresholds up the column.  Chain positions
        # R (mismatch over DV=-1) pass any threshold along unchanged;
        # matches seed 1 - DV; a mismatch one level down feeds the
        # next threshold through the shifted indicators.
        R = NEq & Vm
        A2 = _propagate(Eq & Vm, R, scratch)
        A2s = _shl1(A2)
        M0 = NEq & V0
        A1 = _propagate((Eq & (Vm | V0)) | (M0 & A2s), R, scratch)
        A1s = _shl1(A1)
        A0 = (Eq & ~V2) | R | (M0 & A1s) | ((NEq & V1) & A2s)

        run += (
            ((A0[:, wn] >> bn) & _ONE)
            + ((A1[:, wn] >> bn) & _ONE)
            + ((A2[:, wn] >> bn) & _ONE)
        ).astype(np.int64) - 1
        if mode == "overlap":
            np.maximum(best, run, out=best)

        # New vertical deltas from DH[i-1] thresholds (shift in the
        # top-row delta, always -1) and the old vertical indicators.
        B0 = _shl1(A0)
        NV2 = ~B0 & (Eq | V2)
        NV1 = (Eq & ~A1s) | (NEq & ((~B0 & (V1 | V2)) | (B0 & ~A1s & V2)))
        NV0 = (Eq & ~A2s) | (
            NEq & (~B0 | (B0 & ~A1s & (V1 | V2)) | (A1s & ~A2s & V2))
        )
        Vm = ~NV0 & valid
        V0 = NV0 & ~NV1
        V1 = NV1 & ~NV2
        V2 = NV2
    return best if mode == "overlap" else run


def _scores_lev(acodes: np.ndarray, bcodes: np.ndarray) -> np.ndarray:
    """Myers/Hyyrö Levenshtein sweep; returns ``-distance`` (int64).

    Only the global mode runs here — under ``(0, -c, -c)`` every
    overlap cell is ``<= 0`` with ``H[n][0] = 0`` free, so the overlap
    score is identically 0 and the caller short-circuits it.
    """
    B, n = acodes.shape
    m = bcodes.shape[1]
    W = (n + 63) // 64
    Eq_all = _pack_eq(acodes, W)
    rows = np.arange(B)

    valid = np.zeros((B, W), dtype=np.uint64)
    valid[:, : n // 64] = ~np.uint64(0)
    if n % 64:
        valid[:, n // 64] = (_ONE << np.uint64(n % 64)) - _ONE

    Pv = valid.copy()
    Mv = np.zeros((B, W), dtype=np.uint64)
    wn, bn = (n - 1) // 64, np.uint64((n - 1) % 64)
    dist = np.full(B, n, dtype=np.int64)
    scratch = np.empty((B, W), dtype=np.uint64)

    for j in range(m):
        Eq = Eq_all[rows, bcodes[:, j]]
        Xv = Eq | Mv
        Xh = (_add(Eq & Pv, Pv, scratch) ^ Pv) | Eq
        Ph = Mv | ~(Xh | Pv)
        Mh = Pv & Xh
        dist += ((Ph[:, wn] >> bn) & _ONE).astype(np.int64)
        dist -= ((Mh[:, wn] >> bn) & _ONE).astype(np.int64)
        Phs = _shl1(Ph)
        Phs[:, 0] |= _ONE  # top-row delta is always +1 cost
        Mhs = _shl1(Mh)
        Pv = (Mhs | ~(Xv | Phs)) & valid
        Mv = Phs & Xv
    return -dist


def bitparallel_scores_batch(
    pairs: Sequence[tuple[str | np.ndarray, str | np.ndarray]],
    model: SubstitutionModel | None = None,
    mode: str = "global",
) -> np.ndarray:
    """Bit-parallel scores for a batch of same-shape pairs.

    Pairs are ``(a, b)`` strings or pre-encoded uint8 codes, all
    sharing one ``(len(a), len(b))`` shape; the model must be in a
    flat family (see :func:`flat_model_family`) and no sequence may
    contain an ``N`` code — violations raise ``ValueError`` so the
    dispatching backend's capability probe stays honest.
    """
    model = model or unit_dna()
    family = flat_model_family(model)
    if family is None:
        raise ValueError("bit-parallel kernels need a flat (unit/lev) model")
    if mode not in _MODES:
        raise ValueError(f"bit-parallel kernels cover {_MODES}, got mode={mode!r}")
    if not pairs:
        return np.zeros(0)
    kind, c = family
    coded = [
        (
            a if isinstance(a, np.ndarray) else encode(a),
            b if isinstance(b, np.ndarray) else encode(b),
        )
        for a, b in pairs
    ]
    n, m = len(coded[0][0]), len(coded[0][1])
    if any(len(a) != n or len(b) != m for a, b in coded):
        raise ValueError("bitparallel_scores_batch needs a uniform-shape batch")
    if n == 0 or m == 0:
        if mode == "overlap":
            return np.zeros(len(coded))
        return np.full(len(coded), (n + m) * model.gap)
    acodes = np.stack([a for a, _ in coded])
    bcodes = np.stack([b for _, b in coded])
    if acodes.max() > 3 or bcodes.max() > 3:
        raise ValueError("bit-parallel kernels take A/C/G/T sequences (no N)")
    if kind == "lev":
        if mode == "overlap":
            # Every cell is <= 0 and the last row starts at the free 0.
            return np.zeros(len(coded))
        ints = _scores_lev(acodes, bcodes)
    else:
        ints = _scores_unit(acodes, bcodes, mode)
    return ints.astype(np.float64) * c
