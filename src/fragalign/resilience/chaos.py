"""The ``fragalign chaos`` drill: a scripted fault schedule with
verified invariants.

The drill boots a real local fleet — N ``fragalign serve`` processes
under an auto-healing :class:`~fragalign.cluster.supervisor.ClusterSupervisor`,
each reached *only* through its own :class:`~fragalign.resilience.faults.FaultProxyThread`
— and drives a :class:`~fragalign.cluster.router.ShardRouter` through a
fixed schedule of injected faults:

1. ``baseline``     — all healthy; every request must succeed.
2. ``latency``      — 150 ms upstream latency on shard 0; hedged
   retries should win races against the slow replica.
3. ``blackhole``    — shard 1 swallows bytes; its circuit breaker must
   open and traffic must fail over with no wrong answers.
4. ``abrupt-close`` — shard 2 aborts connections mid-request.
5. ``expired``      — requests carrying a microscopic deadline; the
   router must refuse to spend wire time on them.
6. ``overload``     — a concurrent burst of oversized jobs against a
   small admission budget; shards must shed, not queue unboundedly.
7. ``kill-heal``    — shard 0 is SIGKILLed; the supervisor must
   auto-restart it and the drill re-points its proxy at the new port.
8. ``recovery``     — all faults cleared; breakers must readmit, every
   shard must serve again, and every request must succeed.

Throughout, the drill enforces the resilience contract rather than any
particular success rate: a degraded cluster may *refuse* work (typed
``DeadlineExceeded`` / ``Overloaded`` / ``CircuitOpen`` /
``ClusterError`` failures are tolerated mid-fault) but may never return
a wrong answer (``--verify`` recomputes every accepted answer on a
local engine), never fail with an untyped error, and never let a call
outlive its deadline by more than the grace window.  Structural
invariants — breaker opened, sheds observed, deadline enforcement
counted, supervisor respawn seen, full recovery — are asserted from the
router and shard counters at the end.

Exit status: 0 when every invariant holds, 1 otherwise (the CI
``chaos-drill`` job gates on it).
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import Counter

from fragalign.cluster import (
    ClusterError,
    ClusterSupervisor,
    HealthMonitor,
    ShardRouter,
)
from fragalign.engine import AlignmentEngine
from fragalign.genome.dna import random_dna
from fragalign.resilience.faults import FaultProxyThread
from fragalign.util.errors import (
    CircuitOpen,
    DeadlineExceeded,
    Overloaded,
)

__all__ = ["run_chaos"]

# Failures a degraded cluster is *allowed* to produce.  Anything else
# escaping the router is an invariant breach — the taxonomy exists so
# callers can tell "the cluster protected itself" from "the cluster
# broke".
_ALLOWED_FAILURES = (DeadlineExceeded, Overloaded, CircuitOpen, ClusterError)

# Grace window on top of a request's deadline before an answer (or a
# typed failure) counts as "outlived its deadline": one batch flush
# window is the contract, the rest absorbs CI scheduling noise.
_DEADLINE_SLACK_S = 0.75

# Drill-fleet tuning: tight enough that faults bite within seconds,
# loose enough that the healthy phases never trip anything.
_REQUEST_TIMEOUT_S = 1.0
_BREAKER_THRESHOLD = 3
_BREAKER_RECOVERY_S = 1.25
_HEDGE_DELAY_S = 0.05
_LATENCY_FAULT_MS = 150.0
_EXPIRED_DEADLINE_MS = 1e-4
_HEAL_WAIT_S = 30.0


class _PhaseStats:
    """Outcome tally for one drill phase."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.sent = 0
        self.ok = 0
        self.typed: Counter[str] = Counter()
        self.wrong: list[str] = []
        self.untyped: list[str] = []
        self.overshoots: list[str] = []
        self.max_elapsed_s = 0.0

    def _deadline_check(self, elapsed: float, deadline_ms: float | None) -> None:
        self.max_elapsed_s = max(self.max_elapsed_s, elapsed)
        if deadline_ms is not None and elapsed > deadline_ms / 1e3 + _DEADLINE_SLACK_S:
            self.overshoots.append(
                f"{elapsed * 1e3:.1f}ms elapsed against a {deadline_ms:.3f}ms deadline"
            )

    def note_ok(self, elapsed: float, deadline_ms: float | None) -> None:
        self.ok += 1
        self._deadline_check(elapsed, deadline_ms)

    def note_failure(
        self, exc: BaseException, elapsed: float, deadline_ms: float | None
    ) -> None:
        if isinstance(exc, _ALLOWED_FAILURES):
            self.typed[type(exc).__name__] += 1
        else:
            self.untyped.append(f"{type(exc).__name__}: {exc}")
        self._deadline_check(elapsed, deadline_ms)

    def note_wrong(self, detail: str) -> None:
        self.wrong.append(detail)

    @property
    def deadline_failures(self) -> int:
        return sum(n for name, n in self.typed.items() if "Deadline" in name)

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "sent": self.sent,
            "ok": self.ok,
            "typed": dict(self.typed),
            "wrong": self.wrong,
            "untyped": self.untyped,
            "overshoots": self.overshoots,
            "max_elapsed_ms": round(self.max_elapsed_s * 1e3, 1),
        }

    def line(self) -> str:
        typed = sum(self.typed.values())
        extra = f" typed={dict(self.typed)}" if typed else ""
        bad = ""
        if self.wrong or self.untyped or self.overshoots:
            bad = (
                f" WRONG={len(self.wrong)} untyped={len(self.untyped)}"
                f" overshoots={len(self.overshoots)}"
            )
        return (
            f"fragalign.chaos {self.name}: sent={self.sent} ok={self.ok}"
            f" max_elapsed={self.max_elapsed_s * 1e3:.0f}ms{extra}{bad}"
        )


class _PairBook:
    """Deterministic request material: a pool of unique pairs with
    shard-targeted draws (computed against the full ring, so a wave can
    be aimed at one shard before the schedule knocks it over)."""

    def __init__(self, pool: list[tuple[str, str]]) -> None:
        self.pool = pool
        self._cursor = 0
        self._used: set[tuple[str, str]] = set()

    def take(self, n: int) -> list[tuple[str, str]]:
        out: list[tuple[str, str]] = []
        while len(out) < n and self._cursor < len(self.pool):
            pair = self.pool[self._cursor]
            self._cursor += 1
            if pair in self._used:
                continue
            self._used.add(pair)
            out.append(pair)
        if len(out) < n:  # pool sized generously; wrap rather than starve
            out.extend(self.pool[: n - len(out)])
        return out

    def owned_by(
        self, router: ShardRouter, shard: str, n: int
    ) -> list[tuple[str, str]]:
        out: list[tuple[str, str]] = []
        for pair in self.pool:
            if pair in self._used:
                continue
            if router.shard_for("score", pair[0], pair[1]) == shard:
                self._used.add(pair)
                out.append(pair)
                if len(out) == n:
                    break
        return out


async def _score_wave(
    router: ShardRouter,
    pairs: list[tuple[str, str]],
    stats: _PhaseStats,
    expected: dict[tuple[str, str], float],
    deadline_ms: float | None,
    concurrency: int,
) -> None:
    """Fire one wave of score requests and tally every outcome."""
    semaphore = asyncio.Semaphore(max(1, concurrency))

    async def one(pair: tuple[str, str]) -> None:
        stats.sent += 1
        async with semaphore:
            started = time.monotonic()
            try:
                value = await router.score(pair[0], pair[1], deadline_ms=deadline_ms)
            except Exception as exc:
                stats.note_failure(exc, time.monotonic() - started, deadline_ms)
                return
            stats.note_ok(time.monotonic() - started, deadline_ms)
            if pair in expected and value != expected[pair]:
                stats.note_wrong(
                    f"score({pair[0][:12]}…) = {value!r}, engine says {expected[pair]!r}"
                )

    await asyncio.gather(*(one(p) for p in pairs))


async def _drill(args, supervisor: ClusterSupervisor,
                 proxies: list[FaultProxyThread],
                 book: _PairBook,
                 oversized: list[tuple[str, str]],
                 expected: dict[tuple[str, str], float],
                 align_pairs: list[tuple[str, str]],
                 align_expected: dict) -> dict:
    host = supervisor.host
    shard_name = {i: f"{host}:{proxies[i].port}" for i in range(len(proxies))}
    router = ShardRouter(
        [(host, proxy.port) for proxy in proxies],
        max_attempts=max(2, args.shards),
        request_timeout=_REQUEST_TIMEOUT_S,
        connect_timeout=_REQUEST_TIMEOUT_S,
        breaker_threshold=_BREAKER_THRESHOLD,
        breaker_recovery=_BREAKER_RECOVERY_S,
        # Hedging is switched on only for the latency phase: against a
        # blackhole a winning hedge would mask every stall, and the
        # drill wants the breaker — not the hedge — to absorb those.
        hedge_delay=None,
        hedge_max_fraction=0.5,
    )
    monitor = HealthMonitor(router, interval=0.4, timeout=_REQUEST_TIMEOUT_S,
                            fail_after=2)
    phases: list[_PhaseStats] = []
    violations: list[str] = []
    deadline_ms = args.deadline_ms

    def phase(name: str) -> _PhaseStats:
        if phases:  # breaker/ring view at each phase boundary
            snap = router.router_stats()
            print(
                f"fragalign.chaos   state: breakers={snap['breakers']} "
                f"opens={snap['breaker_opens']} live={len(snap['live_shards'])}"
                f"/{len(snap['configured_shards'])}"
            )
        stats = _PhaseStats(name)
        phases.append(stats)
        return stats

    try:
        monitor.start()

        # -- 1. baseline: healthy fleet, zero tolerance -----------------
        stats = phase("baseline")
        await _score_wave(router, book.take(args.requests), stats, expected,
                          deadline_ms, args.concurrency)
        for pair in align_pairs:
            stats.sent += 1
            started = time.monotonic()
            try:
                alignment = await router.align(
                    pair[0], pair[1], deadline_ms=deadline_ms
                )
            except Exception as exc:
                stats.note_failure(exc, time.monotonic() - started, deadline_ms)
                continue
            stats.note_ok(time.monotonic() - started, deadline_ms)
            if pair in align_expected and alignment != align_expected[pair]:
                stats.note_wrong(f"align({pair[0][:12]}…) drifted from the engine")
        if stats.ok != stats.sent:
            violations.append(
                f"baseline had failures on a healthy fleet: {stats.snapshot()}"
            )
        print(stats.line())

        # -- 2. latency spike on shard 0: hedges should win -------------
        stats = phase("latency")
        proxies[0].set_faults(latency_ms=_LATENCY_FAULT_MS)
        router.hedge_delay = _HEDGE_DELAY_S
        targeted = book.owned_by(router, shard_name[0], 8)
        await _score_wave(router, targeted + book.take(args.requests), stats,
                          expected, deadline_ms, args.concurrency)
        router.hedge_delay = None
        proxies[0].clear_faults()
        print(stats.line())

        # -- 3. blackhole shard 1: the breaker must open ----------------
        stats = phase("blackhole")
        proxies[1].set_faults(blackhole=True)
        targeted = book.owned_by(router, shard_name[1], 6)
        # Concurrent wave aimed at the wedged shard: every attempt times
        # out, so the breaker sees >= threshold consecutive failures.
        await _score_wave(router, targeted, stats, expected, deadline_ms,
                          len(targeted))
        breaker_after = router.router_stats()["breakers"].get(shard_name[1])
        if breaker_after not in ("open", "half_open"):
            violations.append(
                f"blackholed shard's breaker is {breaker_after!r}, expected open"
            )
        await _score_wave(router, book.take(args.requests), stats, expected,
                          deadline_ms, args.concurrency)
        print(stats.line())
        # The blackhole stays on until recovery: readmission must happen
        # because the fault cleared, not because the drill got polite.

        # -- 4. abrupt closes on shard 2 --------------------------------
        stats = phase("abrupt-close")
        proxies[2 % len(proxies)].set_faults(abrupt_close=True)
        targeted = book.owned_by(router, shard_name[2 % len(proxies)], 6)
        await _score_wave(router, targeted + book.take(args.requests), stats,
                          expected, deadline_ms, args.concurrency)
        proxies[2 % len(proxies)].clear_faults()
        print(stats.line())

        # -- 5. expired deadlines: refuse, don't spend ------------------
        stats = phase("expired")
        await _score_wave(router, book.take(8), stats, expected,
                          _EXPIRED_DEADLINE_MS, args.concurrency)
        if stats.deadline_failures != stats.sent:
            violations.append(
                "expired-deadline burst was not fully refused: "
                f"{stats.snapshot()}"
            )
        print(stats.line())

        # -- 6. overload: oversized burst against a small budget --------
        stats = phase("overload")
        await _score_wave(router, oversized, stats, expected, None,
                          len(oversized))
        if stats.ok == 0:
            violations.append("overload burst made zero progress (expected "
                              "at least one admitted job)")
        print(stats.line())

        # -- 7. kill shard 0: the supervisor must bring it back ---------
        stats = phase("kill-heal")
        targeted = book.owned_by(router, shard_name[0], 6)
        supervisor.kill_shard(0)
        # A beat for the health monitor to re-probe the fleet (and the
        # heal thread to notice the corpse) before traffic arrives.
        await asyncio.sleep(1.0)
        await _score_wave(router, targeted, stats, expected, deadline_ms,
                          len(targeted))
        healed_port: int | None = None
        wait_until = time.monotonic() + _HEAL_WAIT_S
        while time.monotonic() < wait_until:
            respawns = [
                event for event in supervisor.heal_events
                if event.get("event") == "respawned" and event.get("index") == 0
            ]
            if respawns:
                healed_port = respawns[-1]["port"]
                break
            await asyncio.sleep(0.1)
        if healed_port is None:
            violations.append(
                f"supervisor never respawned shard 0 within {_HEAL_WAIT_S:.0f}s "
                f"(heal_events={supervisor.heal_events})"
            )
        else:
            # The shard restarted on a fresh ephemeral port; re-point
            # its proxy the way a service-discovery layer would.
            proxies[0].set_upstream(host, healed_port)
        print(stats.line())

        # -- 8. recovery: clear everything, demand full health ----------
        stats = phase("recovery")
        for proxy in proxies:
            proxy.clear_faults()
        # Let breakers age past their recovery window and the health
        # monitor re-probe everything before demanding perfection.
        await asyncio.sleep(_BREAKER_RECOVERY_S + 1.0)
        # Warm the fleet: a half-open breaker admits exactly one trial,
        # so a cold concurrent wave would mostly fast-fail CircuitOpen —
        # correct fail-fast behavior, but the strict wave below wants a
        # settled fleet.  Serial per-shard nudges close each breaker.
        warm_pairs = {
            shard: book.owned_by(router, shard, 1) for shard in shard_name.values()
        }
        warm_until = time.monotonic() + 15.0
        while time.monotonic() < warm_until:
            snap = router.router_stats()
            settled = sorted(snap["live_shards"]) == sorted(
                snap["configured_shards"]
            ) and all(state == "closed" for state in snap["breakers"].values())
            if settled:
                break
            for shard, state in snap["breakers"].items():
                if state == "closed" and shard in snap["live_shards"]:
                    continue
                for pair in warm_pairs.get(shard, ()):
                    try:
                        await router.score(pair[0], pair[1], deadline_ms=deadline_ms)
                    except Exception:
                        pass  # judged below: the fleet must settle in time
            await asyncio.sleep(0.25)
        else:
            violations.append(
                "fleet never settled after faults cleared: "
                f"{router.router_stats()['breakers']}"
            )
        routed_before = dict(router.routed)
        targeted = []
        for index in range(len(proxies)):
            targeted += book.owned_by(router, shard_name[index], 4)
        await _score_wave(router, targeted + book.take(args.requests), stats,
                          expected, deadline_ms, args.concurrency)
        if stats.ok != stats.sent:
            violations.append(
                f"recovered fleet still failing requests: {stats.snapshot()}"
            )
        final = router.router_stats()
        if sorted(final["live_shards"]) != sorted(final["configured_shards"]):
            violations.append(
                f"not every shard was readmitted: live={final['live_shards']}"
            )
        stuck = {s: b for s, b in final["breakers"].items() if b != "closed"}
        if stuck:
            violations.append(f"breakers never closed after recovery: {stuck}")
        idle = [
            shard for shard in shard_name.values()
            if router.routed.get(shard, 0) <= routed_before.get(shard, 0)
        ]
        if idle:
            violations.append(f"shards served no recovery traffic: {idle}")
        print(stats.line())

        cluster = await router.cluster_stats()
    finally:
        await monitor.stop()
        await router.close()

    # -- cross-phase invariants ----------------------------------------
    shard_rows = [s for s in cluster["shards"].values() if "error" not in s]
    shed_total = sum(s.get("resilience", {}).get("shed", 0) for s in shard_rows)
    server_deadline = sum(
        s.get("resilience", {}).get("deadline_exceeded", 0) for s in shard_rows
    )
    rstats = cluster["router"]
    total = _PhaseStats("total")
    for p in phases:
        total.sent += p.sent
        total.ok += p.ok
        total.typed.update(p.typed)
        total.wrong += p.wrong
        total.untyped += p.untyped
        total.overshoots += p.overshoots
        total.max_elapsed_s = max(total.max_elapsed_s, p.max_elapsed_s)

    invariants = {
        "no_wrong_answers": not total.wrong,
        "no_untyped_failures": not total.untyped,
        "no_deadline_overshoots": not total.overshoots,
        "breaker_opened": rstats["breaker_opens"] >= 1,
        "hedges_fired": rstats["hedges"] >= 1,
        "deadline_enforced": (
            total.deadline_failures >= 1
            and rstats["deadline_gaveups"] + server_deadline >= 1
        ),
        "load_shed": shed_total >= 1 or rstats["shed_retries"] >= 1,
        "auto_healed": any(
            event.get("event") == "respawned" for event in supervisor.heal_events
        ),
        "no_phase_violations": not violations,
    }
    return {
        "phases": [p.snapshot() for p in phases],
        "totals": total.snapshot(),
        "router": rstats,
        "resilience": {
            "shed_total": shed_total,
            "server_deadline_exceeded": server_deadline,
            "heal_events": supervisor.heal_events,
        },
        "violations": violations,
        "invariants": invariants,
        "ok": all(invariants.values()),
    }


def run_chaos(args) -> int:
    """Boot the drill fleet, run the schedule, print the verdict."""
    import numpy as np

    rng = np.random.default_rng(args.seed)
    pool_size = args.requests * 6 + 64
    pool = [
        (random_dna(args.length, rng), random_dna(args.length, rng))
        for _ in range(pool_size)
    ]
    align_pairs = pool[:2]
    book = _PairBook(pool[2:])

    # Admission budget: headroom for the healthy waves, but a single
    # oversized pair blows through it, so a concurrent burst of them
    # must shed (the always-admit-one floor keeps the burst live).
    cap = max(400_000, args.concurrency * args.length * args.length)
    big = int((1.25 * cap) ** 0.5) + 1
    oversized = [(random_dna(big, rng), random_dna(big, rng)) for _ in range(12)]

    expected: dict[tuple[str, str], float] = {}
    align_expected: dict = {}
    if args.verify:
        engine = AlignmentEngine(backend=args.backend, mode="global")
        for pair, score in zip(pool, engine.score_many(pool)):
            expected[pair] = float(score)
        for pair, score in zip(oversized, engine.score_many(oversized)):
            expected[pair] = float(score)
        for pair, alignment in zip(align_pairs, engine.align_many(align_pairs)):
            align_expected[pair] = alignment

    supervisor = ClusterSupervisor(
        shards=args.shards,
        backend=args.backend,
        base_dir=args.base_dir,
        max_inflight_cells=cap,
        degrade="widen",
        degrade_watermark=0.6,
        auto_heal=True,
        heal_backoff=0.2,
        heal_backoff_max=1.0,
        heal_jitter=0.25,
        heal_poll=0.05,
        # One scripted kill must never look like a crash loop.
        crash_loop_threshold=8,
        crash_loop_window=30.0,
    )
    proxies: list[FaultProxyThread] = []
    try:
        supervisor.start()
        for shard_host, shard_port in supervisor.addresses:
            proxy = FaultProxyThread(shard_host, shard_port, host=supervisor.host)
            proxy.start()
            proxies.append(proxy)
        print(
            f"fragalign.chaos fleet up: {args.shards} shards behind fault "
            f"proxies, admission cap {cap} cells, verify={'on' if args.verify else 'off'}"
        )
        report = asyncio.run(
            _drill(args, supervisor, proxies, book, oversized, expected,
                   align_pairs, align_expected)
        )
    finally:
        for proxy in proxies:
            proxy.stop()
        supervisor.stop()

    if args.json:
        print(json.dumps(report, indent=2, default=str))
    else:
        for name, held in report["invariants"].items():
            print(f"fragalign.chaos invariant {name}: {'ok' if held else 'VIOLATED'}")
        for violation in report["violations"]:
            print(f"fragalign.chaos violation: {violation}")
    print(f"fragalign.chaos verdict: {'PASS' if report['ok'] else 'FAIL'}")
    return 0 if report["ok"] else 1
