"""fragalign.resilience — the robustness layer for the serving stack.

End-to-end deadlines (:mod:`.deadline`), cost-aware admission control
(:mod:`.admission`), per-shard circuit breakers (:mod:`.breaker`), TCP
fault injection (:mod:`.faults`), and the scripted chaos drill behind
``fragalign chaos`` (:mod:`.chaos`).  The serving tiers import the
pieces; this package only defines them.
"""

from fragalign.resilience.admission import AdmissionController, estimate_cost
from fragalign.resilience.breaker import CircuitBreaker
from fragalign.resilience.deadline import deadline_from_budget_ms, expired, remaining_ms
from fragalign.resilience.faults import FaultConfig, FaultProxy, FaultProxyThread

__all__ = [
    "AdmissionController",
    "estimate_cost",
    "CircuitBreaker",
    "deadline_from_budget_ms",
    "remaining_ms",
    "expired",
    "FaultConfig",
    "FaultProxy",
    "FaultProxyThread",
]
